// Regenerates Table 3: MELO quality as a function of the eigenvector count
// d — the table behind the paper's title. Expect the cut to (mostly) fall
// as d grows, with d = 2 reproducing SB.
#include "bench_common.h"
#include "util/stringutil.h"

int main(int argc, char** argv) {
  using namespace specpart;
  bench::BenchCli b("table3_eigcount",
                    "Table 3: MELO balanced cut vs number of eigenvectors");
  b.cli.add_flag("dims", "2,3,5,10,15,20", "comma-separated d values");
  try {
    if (!b.parse(argc, argv)) return 0;
    std::vector<std::size_t> dims;
    for (const std::string& tok : split_char(b.cli.get("dims"), ','))
      if (!trim(tok).empty()) dims.push_back(parse_size(tok, "--dims"));
    SP_CHECK_INPUT(!dims.empty(), "--dims must list at least one value");
    b.print(exp::run_table3_dims(b.runner, dims),
            "Table 3: balanced 45-55% net cut vs d");
  } catch (const Error& e) {
    std::cerr << "table3_eigcount: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
