// Extended multi-way comparison beyond Table 4: Scaled Cost of MELO vs RSB
// vs spectral k-means (the "points in d-space" family taken to Lloyd's
// algorithm) vs Barnes' transportation method [7].
#include "bench_common.h"
#include "util/stringutil.h"

int main(int argc, char** argv) {
  using namespace specpart;
  bench::BenchCli b("extended_multiway",
                    "Extended multi-way Scaled Cost comparison");
  b.cli.add_flag("ks", "4,8", "comma-separated cluster counts");
  try {
    if (!b.parse(argc, argv)) return 0;
    std::vector<std::uint32_t> ks;
    for (const std::string& tok : split_char(b.cli.get("ks"), ','))
      if (!trim(tok).empty())
        ks.push_back(static_cast<std::uint32_t>(parse_size(tok, "--ks")));
    SP_CHECK_INPUT(!ks.empty(), "--ks must list at least one value");
    b.print(exp::run_extended_multiway(b.runner, ks),
            "Extended multi-way: Scaled Cost x 1e5");
  } catch (const Error& e) {
    std::cerr << "extended_multiway: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
