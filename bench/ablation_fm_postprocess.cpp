// Ablation: FM post-refinement of MELO bipartitions — the Hadley et al.
// [26] iterative-improvement post-processing direction the paper cites.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "ablation_fm_postprocess",
      "Ablation: MELO with/without FM post-refinement",
      [](const bench::BenchCli& b) {
        b.print(exp::run_ablation_fm_post(b.runner),
                "Ablation: FM post-refinement of MELO (balanced cut)");
      });
}
