// Regenerates the paper's titular claim as a plottable series: balanced
// bipartitioning cut as a function of the number of eigenvectors d on one
// benchmark, with the SB cut as the reference line.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  bench::BenchCli b("fig_quality_vs_d",
                    "Figure: MELO balanced cut vs d (series for plotting)");
  b.cli.add_flag("benchmark", "prim2", "suite benchmark to sweep");
  b.cli.add_flag("max-d", "20", "largest eigenvector count");
  try {
    if (!b.parse(argc, argv)) return 0;
    b.print(exp::run_fig_quality_vs_d(
                b.runner, b.cli.get("benchmark"),
                static_cast<std::size_t>(b.cli.get_int("max-d"))),
            "Figure: quality vs d on " + b.cli.get("benchmark"));
  } catch (const Error& e) {
    std::cerr << "fig_quality_vs_d: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
