// Microbenchmarks for the algorithmic kernels (google-benchmark): MELO
// ordering construction (exact vs lazy), DP-RP splitting, FM passes, and
// the clique expansion.
#include <benchmark/benchmark.h>

#include "core/drivers.h"
#include "core/melo.h"
#include "core/reduction.h"
#include "graph/generator.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "seed_assembly.h"
#include "part/fm.h"
#include "spectral/dprp.h"
#include "spectral/embedding.h"

namespace {

using namespace specpart;

graph::Hypergraph make_netlist(std::size_t modules) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 10;
  cfg.seed = 1234;
  return graph::generate_netlist(cfg);
}

core::VectorInstance make_vectors(const graph::Hypergraph& h, std::size_t d) {
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions eo;
  eo.count = d;
  const spectral::EigenBasis basis = spectral::compute_eigenbasis(g, eo);
  return core::build_scaled_instance(basis, core::CoordScaling::kSqrtGap,
                                     core::default_h(basis));
}

void BM_MeloOrderingExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Hypergraph h = make_netlist(n);
  const core::VectorInstance inst = make_vectors(h, 10);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::melo_order_vectors(inst, core::MeloOrderingOptions{}));
  state.SetLabel("n=" + std::to_string(n) + " d=10 exact");
}
BENCHMARK(BM_MeloOrderingExact)->Arg(500)->Arg(1500)->Arg(3000)->Unit(
    benchmark::kMillisecond);

void BM_MeloOrderingLazy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Hypergraph h = make_netlist(n);
  const core::VectorInstance inst = make_vectors(h, 10);
  core::MeloOrderingOptions opts;
  opts.lazy_ranking = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::melo_order_vectors(inst, opts));
  state.SetLabel("n=" + std::to_string(n) + " d=10 lazy");
}
BENCHMARK(BM_MeloOrderingLazy)->Arg(500)->Arg(1500)->Arg(3000)->Unit(
    benchmark::kMillisecond);

void BM_MeloOrderingExactThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const graph::Hypergraph h = make_netlist(n);
  const core::VectorInstance inst = make_vectors(h, 10);
  core::MeloOrderingOptions opts;
  opts.parallel = ParallelConfig::with_threads(threads);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::melo_order_vectors(inst, opts));
  state.SetLabel("n=" + std::to_string(n) + " d=10 threads:" +
                 std::to_string(threads));
}
BENCHMARK(BM_MeloOrderingExactThreaded)
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({5000, 4})
    ->Args({5000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_MeloOrderingLazyThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const graph::Hypergraph h = make_netlist(n);
  const core::VectorInstance inst = make_vectors(h, 10);
  core::MeloOrderingOptions opts;
  opts.lazy_ranking = true;
  opts.parallel = ParallelConfig::with_threads(threads);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::melo_order_vectors(inst, opts));
  state.SetLabel("n=" + std::to_string(n) + " d=10 lazy threads:" +
                 std::to_string(threads));
}
BENCHMARK(BM_MeloOrderingLazyThreaded)
    ->Args({5000, 1})
    ->Args({5000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_DprpSplitThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const graph::Hypergraph h = make_netlist(n);
  core::MeloOptions m;
  const auto runs = core::melo_orderings(h, m);
  spectral::DprpOptions opts;
  opts.k = 10;
  opts.parallel = ParallelConfig::with_threads(threads);
  for (auto _ : state)
    benchmark::DoNotOptimize(spectral::dprp_split(h, runs[0].ordering, opts));
  state.SetLabel("n=" + std::to_string(n) + " k=10 threads:" +
                 std::to_string(threads));
}
BENCHMARK(BM_DprpSplitThreaded)
    ->Args({1500, 1})
    ->Args({1500, 8})
    ->Unit(benchmark::kMillisecond);

void BM_DprpSplit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const graph::Hypergraph h = make_netlist(n);
  core::MeloOptions m;
  const auto runs = core::melo_orderings(h, m);
  spectral::DprpOptions opts;
  opts.k = k;
  for (auto _ : state)
    benchmark::DoNotOptimize(spectral::dprp_split(h, runs[0].ordering, opts));
  state.SetLabel("n=" + std::to_string(n) + " k=" + std::to_string(k));
}
BENCHMARK(BM_DprpSplit)
    ->Args({500, 4})
    ->Args({1500, 4})
    ->Args({1500, 10})
    ->Unit(benchmark::kMillisecond);

void BM_FmBipartition(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Hypergraph h = make_netlist(n);
  part::FmOptions opts;
  opts.num_starts = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(part::fm_bipartition(h, opts));
  state.SetLabel("n=" + std::to_string(n) + " 1 start");
}
BENCHMARK(BM_FmBipartition)->Arg(500)->Arg(1500)->Arg(3000)->Unit(
    benchmark::kMillisecond);

void BM_CliqueExpand(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Hypergraph h = make_netlist(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        model::clique_expand(h, model::NetModel::kPartitioningSpecific));
}
BENCHMARK(BM_CliqueExpand)->Arg(1500)->Arg(6000)->Unit(
    benchmark::kMillisecond);

void BM_AssemblySeedPath(benchmark::State& state) {
  // The pre-refactor pins -> edges -> triplets -> sorted-CSR path, kept as
  // a local replica (bench/seed_assembly.h); the baseline the fused
  // assembler is measured against.
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Hypergraph h = make_netlist(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(bench::seed_clique_laplacian(
        h, model::NetModel::kPartitioningSpecific));
  state.SetLabel("n=" + std::to_string(n) + " seed triplet path");
}
BENCHMARK(BM_AssemblySeedPath)->Arg(1500)->Arg(6000)->Unit(
    benchmark::kMillisecond);

void BM_AssemblyFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Hypergraph h = make_netlist(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(model::build_clique_laplacian(
        h, model::NetModel::kPartitioningSpecific));
  state.SetLabel("n=" + std::to_string(n) + " fused cold build");
}
BENCHMARK(BM_AssemblyFused)->Arg(1500)->Arg(6000)->Unit(
    benchmark::kMillisecond);

void BM_AssemblyFusedThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const graph::Hypergraph h = make_netlist(n);
  model::ModelBuildOptions opts;
  opts.parallel = ParallelConfig::with_threads(threads);
  for (auto _ : state)
    benchmark::DoNotOptimize(model::build_clique_laplacian(
        h, model::NetModel::kPartitioningSpecific, opts));
  state.SetLabel("n=" + std::to_string(n) + " fused threads:" +
                 std::to_string(threads));
}
BENCHMARK(BM_AssemblyFusedThreaded)
    ->Args({6000, 1})
    ->Args({6000, 2})
    ->Args({6000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
