// Regenerates Table 1: the benchmark suite statistics.
//
// Paper: names and module/net counts of the ACM/SIGDA netlists. Here: the
// synthetic stand-ins with matching names and sizes (DESIGN.md §4).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "table1_suite",
      "Table 1: benchmark suite statistics (synthetic stand-ins)",
      [](const bench::BenchCli& b) {
        b.print(exp::run_table1(b.runner), "Table 1: benchmark suite");
      });
}
