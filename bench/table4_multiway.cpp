// Regenerates Table 4: multi-way Scaled Cost — MELO vs RSB, KP and SFC.
//
// Paper numbers to mirror in shape: MELO improves on RSB / KP / SFC by
// 10.6% / 15.8% / 13.2% on average. The summary line below reports the same
// three averages for this run.
#include "bench_common.h"
#include "util/stringutil.h"

int main(int argc, char** argv) {
  using namespace specpart;
  bench::BenchCli b("table4_multiway",
                    "Table 4: multi-way Scaled Cost vs RSB/KP/SFC");
  b.cli.add_flag("ks", "2,4,6,8,10", "comma-separated cluster counts");
  try {
    if (!b.parse(argc, argv)) return 0;
    std::vector<std::uint32_t> ks;
    for (const std::string& tok : split_char(b.cli.get("ks"), ','))
      if (!trim(tok).empty())
        ks.push_back(static_cast<std::uint32_t>(parse_size(tok, "--ks")));
    SP_CHECK_INPUT(!ks.empty(), "--ks must list at least one value");

    exp::Table4Summary summary;
    const exp::Table t = exp::run_table4_multiway(b.runner, ks, &summary);
    b.print(t, "Table 4: Scaled Cost x 1e5 (lower is better)");
    if (!b.csv) {
      std::cout << strprintf(
          "\nMELO average improvement: vs RSB %.1f%%, vs KP %.1f%%, "
          "vs SFC %.1f%%  (paper: 10.6%% / 15.8%% / 13.2%%)\n",
          summary.avg_improvement_vs_rsb, summary.avg_improvement_vs_kp,
          summary.avg_improvement_vs_sfc);
    }
  } catch (const Error& e) {
    std::cerr << "table4_multiway: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
