// Ablation: the exact O(d n^2) greedy vs the paper's lazy-ranking speedup
// ("re-rank every ~100 iterations"). Reports both runtimes and the cut
// delta — the speedup should cost little to no quality.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "ablation_lazy_ranking",
      "Ablation: exact vs lazy-ranking MELO selection",
      [](const bench::BenchCli& b) {
        b.print(exp::run_ablation_lazy(b.runner),
                "Ablation: lazy ranking (time and quality)");
      });
}
