// Microbenchmarks for the partitioning service layer (google-benchmark):
// cold vs warm request execution (what the embedding cache buys), queue
// round-trip throughput across worker counts, graph fingerprinting cost,
// and wire-protocol serialization.
#include <benchmark/benchmark.h>

#include <future>
#include <sstream>
#include <vector>

#include "graph/generator.h"
#include "model/clique_models.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "service/service.h"

namespace {

using namespace specpart;

graph::Hypergraph make_netlist(std::size_t modules, std::uint64_t seed = 1234) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 10;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

service::PartitionRequest make_request(std::size_t modules,
                                       std::uint64_t seed = 1234) {
  service::PartitionRequest req;
  req.graph = make_netlist(modules, seed);
  req.pipeline.num_eigenvectors = 10;
  return req;
}

void BM_ServeCold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const service::PartitionRequest req = make_request(n);
  service::ServiceOptions opts;
  opts.cache.max_bytes = 0;  // every execution solves from scratch
  service::PartitionService svc(opts);
  for (auto _ : state) benchmark::DoNotOptimize(svc.execute(req));
  state.SetLabel("n=" + std::to_string(n) + " cache off");
}
BENCHMARK(BM_ServeCold)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ServeWarm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const service::PartitionRequest req = make_request(n);
  service::PartitionService svc;
  svc.execute(req);  // populate the cache
  for (auto _ : state) benchmark::DoNotOptimize(svc.execute(req));
  state.SetLabel("n=" + std::to_string(n) + " cache hit");
}
BENCHMARK(BM_ServeWarm)->Arg(300)->Arg(1000)->Unit(benchmark::kMillisecond);

/// Queue round-trip throughput: a warm batch of requests over a handful of
/// graphs, submitted through the bounded queue and drained. range(1) is
/// the worker count.
void BM_QueueThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  std::vector<service::PartitionRequest> batch;
  for (std::size_t i = 0; i < 16; ++i)
    batch.push_back(make_request(n, 1234 + i % 4));

  service::ServiceOptions opts;
  opts.num_workers = workers;
  opts.parallel = ParallelConfig::with_threads(1);
  service::PartitionService svc(opts);
  for (const auto& req : batch) svc.execute(req);  // warm the cache

  for (auto _ : state) {
    std::vector<std::future<service::PartitionResponse>> futs;
    futs.reserve(batch.size());
    for (const auto& req : batch) futs.push_back(svc.submit(req));
    for (auto& fut : futs) benchmark::DoNotOptimize(fut.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.SetLabel("n=" + std::to_string(n) + " workers=" +
                 std::to_string(workers) + " warm");
}
BENCHMARK(BM_QueueThroughput)
    ->Args({300, 1})
    ->Args({300, 4})
    ->Unit(benchmark::kMillisecond);

void BM_EigenKeyFingerprint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = model::clique_expand(
      make_netlist(n), model::NetModel::kPartitioningSpecific);
  const spectral::EmbeddingOptions eopts;
  for (auto _ : state)
    benchmark::DoNotOptimize(service::EmbeddingCache::eigen_key(g, eopts, 16));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edges().size()));
  state.SetLabel("n=" + std::to_string(n) + " edges=" +
                 std::to_string(g.edges().size()));
}
BENCHMARK(BM_EigenKeyFingerprint)->Arg(1000)->Arg(5000)->Unit(
    benchmark::kMicrosecond);

void BM_WireRoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const service::PartitionRequest req = make_request(n);
  for (auto _ : state) {
    std::ostringstream out;
    service::write_request(req, out);
    std::istringstream in(out.str());
    benchmark::DoNotOptimize(service::read_request(in));
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_WireRoundTrip)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
