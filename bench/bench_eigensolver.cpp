// Microbenchmarks for the eigensolver substrate (google-benchmark).
//
// The paper quotes LASO2 Lanczos runtimes for its eigenvector computations;
// this is the equivalent measurement for our from-scratch Lanczos, plus the
// dense oracle for context.
#include <benchmark/benchmark.h>

#include "graph/generator.h"
#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "model/clique_models.h"

namespace {

using namespace specpart;

linalg::SymCsrMatrix benchmark_laplacian(std::size_t modules) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 10;
  cfg.seed = 99;
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  return graph::build_laplacian(
      model::clique_expand(h, model::NetModel::kPartitioningSpecific));
}

void BM_LanczosSmallest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const linalg::SymCsrMatrix q = benchmark_laplacian(n);
  for (auto _ : state) {
    linalg::LanczosOptions opts;
    opts.num_eigenpairs = d;
    benchmark::DoNotOptimize(linalg::lanczos_smallest(q, opts));
  }
  state.SetLabel("n=" + std::to_string(n) + " d=" + std::to_string(d));
}
BENCHMARK(BM_LanczosSmallest)
    ->Args({500, 2})
    ->Args({500, 10})
    ->Args({2000, 2})
    ->Args({2000, 10})
    ->Args({6000, 10})
    ->Unit(benchmark::kMillisecond);

void BM_LanczosSelective(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  const linalg::SymCsrMatrix q = benchmark_laplacian(n);
  for (auto _ : state) {
    linalg::LanczosOptions opts;
    opts.num_eigenpairs = d;
    opts.reorthogonalization = linalg::Reorthogonalization::kSelective;
    benchmark::DoNotOptimize(linalg::lanczos_smallest(q, opts));
  }
  state.SetLabel("n=" + std::to_string(n) + " d=" + std::to_string(d) +
                 " selective");
}
BENCHMARK(BM_LanczosSelective)
    ->Args({2000, 10})
    ->Args({6000, 10})
    ->Unit(benchmark::kMillisecond);

void BM_LanczosSmallestThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const linalg::SymCsrMatrix q = benchmark_laplacian(n);
  for (auto _ : state) {
    linalg::LanczosOptions opts;
    opts.num_eigenpairs = 10;
    opts.parallel = ParallelConfig::with_threads(threads);
    benchmark::DoNotOptimize(linalg::lanczos_smallest(q, opts));
  }
  state.SetLabel("n=" + std::to_string(n) + " d=10 threads:" +
                 std::to_string(threads));
}
BENCHMARK(BM_LanczosSmallestThreaded)
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({2000, 4})
    ->Args({2000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_DenseEigenOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::DenseMatrix a = benchmark_laplacian(n).to_dense();
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::solve_symmetric_eigen(a));
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_DenseEigenOracle)->Arg(100)->Arg(200)->Arg(400)->Unit(
    benchmark::kMillisecond);

void BM_SparseMatvec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const linalg::SymCsrMatrix q = benchmark_laplacian(n);
  linalg::Vec x(n, 1.0), y;
  for (auto _ : state) {
    q.matvec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.nnz()));
}
BENCHMARK(BM_SparseMatvec)->Arg(2000)->Arg(6000)->Arg(20000);

void BM_SparseMatvecThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const linalg::SymCsrMatrix q = benchmark_laplacian(n);
  const ParallelConfig par = ParallelConfig::with_threads(threads);
  linalg::Vec x(n, 1.0), y;
  for (auto _ : state) {
    q.matvec(x, y, par);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.nnz()));
  state.SetLabel("threads:" + std::to_string(threads));
}
BENCHMARK(BM_SparseMatvecThreaded)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Args({20000, 8});

}  // namespace

BENCHMARK_MAIN();
