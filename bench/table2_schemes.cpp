// Regenerates Table 2: comparison of the MELO weighting schemes #1-#4
// (eigenvector coordinate scalings) on balanced bipartitioning net cut.
//
// Paper finding to reproduce: no scheme dominates across benchmarks, and
// the magnitude-bearing schemes are solid defaults.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  bench::BenchCli b("table2_schemes",
                    "Table 2: MELO weighting schemes #1-#4 (balanced cut)");
  b.cli.add_flag("d", "10", "number of eigenvectors");
  try {
    if (!b.parse(argc, argv)) return 0;
    const auto d = static_cast<std::size_t>(b.cli.get_int("d"));
    b.print(exp::run_table2_schemes(b.runner, d),
            "Table 2: weighting schemes (balanced 45-55% net cut, d=" +
                std::to_string(d) + ")");
  } catch (const Error& e) {
    std::cerr << "table2_schemes: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
