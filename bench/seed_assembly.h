// Reference replica of the seed repo's hypergraph -> Laplacian path, kept
// only as the benchmark baseline for the fused assembler
// (model::build_clique_laplacian). The library itself no longer contains
// this code path; the replica preserves its shape faithfully so
// BENCH_kernels.json records a like-for-like cold-build comparison:
//
//   pins -> Edge list -> comparison-sorted/merged graph edges
//        -> Triplet list -> mirrored, comparison-sorted Laplacian CSR
//
// i.e. four materializations of the same sparsity structure and two
// O(nnz log nnz) std::sort calls, versus the fused path's single
// counting-sorted materialization.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/hypergraph.h"
#include "linalg/sparse.h"
#include "model/clique_models.h"

namespace specpart::bench {

inline linalg::SymCsrMatrix seed_clique_laplacian(const graph::Hypergraph& h,
                                                  model::NetModel m) {
  struct E {
    std::uint32_t u, v;
    double w;
  };
  // Stage 1 (seed clique_expand): every pin pair as an Edge.
  std::vector<E> edges;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    const double w =
        h.net_weight(e) * model::clique_edge_cost(m, pins.size());
    for (std::size_t i = 0; i < pins.size(); ++i)
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        if (pins[i] == pins[j]) continue;
        const auto a = static_cast<std::uint32_t>(pins[i]);
        const auto b = static_cast<std::uint32_t>(pins[j]);
        edges.push_back({std::min(a, b), std::max(a, b), w});
      }
  }
  // Stage 2 (seed Graph ctor): comparison sort + parallel-edge merge.
  std::sort(edges.begin(), edges.end(), [](const E& a, const E& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<E> merged;
  for (const E& e : edges) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v)
      merged.back().w += e.w;
    else
      merged.push_back(e);
  }
  // Stage 3 (seed build_laplacian): off-diagonal + degree triplets.
  const std::size_t n = h.num_nodes();
  std::vector<double> degree(n, 0.0);
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(merged.size() + n);
  for (const E& e : merged) {
    triplets.push_back({e.u, e.v, -e.w});
    degree[e.u] += e.w;
    degree[e.v] += e.w;
  }
  for (std::size_t v = 0; v < n; ++v) triplets.push_back({v, v, degree[v]});
  // Stage 4 (seed SymCsrMatrix triplet ctor): mirror both triangles,
  // comparison sort by (row, col), merge, pack CSR.
  struct T {
    std::size_t row, col;
    double value;
  };
  std::vector<T> entries;
  entries.reserve(2 * triplets.size());
  for (const linalg::Triplet& t : triplets) {
    entries.push_back({t.row, t.col, t.value});
    if (t.row != t.col) entries.push_back({t.col, t.row, t.value});
  }
  std::sort(entries.begin(), entries.end(), [](const T& a, const T& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  linalg::CsrStorage csr;
  csr.offsets.assign(n + 1, 0);
  for (std::size_t k = 0; k < entries.size();) {
    std::size_t run = k + 1;
    double sum = entries[k].value;
    while (run < entries.size() && entries[run].row == entries[k].row &&
           entries[run].col == entries[k].col)
      sum += entries[run++].value;
    csr.cols.push_back(entries[k].col);
    csr.values.push_back(sum);
    ++csr.offsets[entries[k].row + 1];
    k = run;
  }
  for (std::size_t r = 0; r < n; ++r) csr.offsets[r + 1] += csr.offsets[r];
  return linalg::SymCsrMatrix(std::move(csr));
}

}  // namespace specpart::bench
