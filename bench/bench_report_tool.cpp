// bench_report_tool: times the parallel compute kernels at 1 thread (the
// serial reference) and at an oversubscribed thread count, and writes the
// results as JSON. The `bench_report` CMake target runs the two
// google-benchmark binaries for human-readable output and then this tool to
// refresh BENCH_kernels.json, the committed trajectory baseline.
//
//   $ ./bench_report_tool --out BENCH_kernels.json [--scale 1.0] [--threads 8]
//
// On a single-core host the "parallel" numbers measure pure threading
// overhead (speedup <= 1.0 is expected); the host core count is recorded in
// the JSON metadata so the baseline is interpretable either way.
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/drivers.h"
#include "core/melo.h"
#include "core/reduction.h"
#include "graph/generator.h"
#include "graph/laplacian.h"
#include "linalg/block_lanczos.h"
#include "linalg/dense.h"
#include "linalg/lanczos.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "multilevel/vcycle.h"
#include "part/fm.h"
#include "part/sweep_cut.h"
#include "seed_assembly.h"
#include "service/cache.h"
#include "service/service.h"
#include "spectral/dprp.h"
#include "spectral/embedding.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace specpart;

namespace {

struct KernelResult {
  std::string name;
  std::string instance;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  // Eigensolver rows also report algorithmic cost per converged pair,
  // from the solver's own FLOP / bytes-moved counters (machine-independent,
  // unlike the wall-clock columns).
  bool has_counters = false;
  std::uint64_t pairs = 0;
  std::uint64_t flops_per_pair = 0;
  std::uint64_t bytes_per_pair = 0;
  // Multilevel rows additionally report the hierarchy shape and the
  // per-level refinement breakdown (coarse-to-fine, finest last).
  bool has_multilevel = false;
  std::size_t levels = 0;
  double coarsening_ratio = 0.0;
  std::vector<multilevel::LevelStats> per_level = {};
  // The sweep_cut row reports the conductance of the normalized-objective
  // sweep-cut split against the FM min-cut split on the same netlist.
  bool has_conductance = false;
  double sweep_phi = 0.0;
  double fm_phi = 0.0;
};

void attach_counters(KernelResult& r, const linalg::LanczosResult& solve) {
  const std::uint64_t pairs = std::max<std::uint64_t>(solve.num_converged, 1);
  r.has_counters = true;
  r.pairs = solve.num_converged;
  r.flops_per_pair = solve.flops / pairs;
  r.bytes_per_pair = solve.matrix_bytes_moved / pairs;
}

graph::Hypergraph make_netlist(std::size_t modules) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 10;
  cfg.seed = 1234;
  return graph::generate_netlist(cfg);
}

core::VectorInstance make_vectors(const graph::Hypergraph& h, std::size_t d) {
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions eo;
  eo.count = d;
  const spectral::EigenBasis basis = spectral::compute_eigenbasis(g, eo);
  return core::build_scaled_instance(basis, core::CoordScaling::kSqrtGap,
                                     core::default_h(basis));
}

/// Median-of-3 wall-clock seconds of `fn()`.
template <class Fn>
double time_median(Fn&& fn) {
  std::vector<double> samples;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    fn();
    samples.push_back(t.seconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[1];
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_report_tool",
          "time the parallel kernels and write BENCH_kernels.json");
  cli.add_flag("out", "BENCH_kernels.json", "output JSON path");
  cli.add_flag("scale", "1.0", "instance size factor");
  cli.add_flag("threads", "0",
               "parallel thread count (0 = min(8, 2 x hardware cores))");
  cli.add_flag("smoke", "false",
               "CI sanity mode: run only the eigensolver rows at reduced "
               "size, then fail unless every counter field (converged "
               "pairs, flops_per_pair, bytes_per_pair) is present and "
               "nonzero in the written JSON, the multilevel row "
               "reports a live hierarchy (levels, coarsening_ratio, "
               "per_level), the cache_disk_warm row served the tier-2 "
               "read bit-identically and faster than the cold compute, and "
               "the sweep_cut row's normalized-objective conductance beat "
               "the FM split's");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bool smoke = cli.get_bool("smoke");
    const double scale =
        smoke ? std::min(cli.get_double("scale"), 0.3) : cli.get_double("scale");
    const std::size_t cores =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    std::size_t threads = static_cast<std::size_t>(cli.get_int("threads"));
    if (threads == 0) threads = std::min<std::size_t>(8, 2 * cores);
    const ParallelConfig serial;
    const ParallelConfig par = ParallelConfig::with_threads(threads);

    auto scaled = [&](std::size_t n) {
      return std::max<std::size_t>(64, static_cast<std::size_t>(
                                           static_cast<double>(n) * scale));
    };
    std::vector<KernelResult> results;

    if (!smoke) {
      const std::size_t n = scaled(5000);
      const graph::Hypergraph h = make_netlist(n);
      const core::VectorInstance inst = make_vectors(h, 10);
      core::MeloOrderingOptions opts;
      KernelResult r{"melo_exact", "n=" + std::to_string(n) + " d=10"};
      opts.parallel = serial;
      r.serial_seconds =
          time_median([&] { core::melo_order_vectors(inst, opts); });
      opts.parallel = par;
      r.parallel_seconds =
          time_median([&] { core::melo_order_vectors(inst, opts); });
      results.push_back(r);

      core::MeloOrderingOptions lazy = opts;
      lazy.lazy_ranking = true;
      KernelResult rl{"melo_lazy", "n=" + std::to_string(n) + " d=10"};
      lazy.parallel = serial;
      rl.serial_seconds =
          time_median([&] { core::melo_order_vectors(inst, lazy); });
      lazy.parallel = par;
      rl.parallel_seconds =
          time_median([&] { core::melo_order_vectors(inst, lazy); });
      results.push_back(rl);
    }

    {
      const std::size_t n = scaled(2000);
      const linalg::SymCsrMatrix q = graph::build_laplacian(model::clique_expand(
          make_netlist(n), model::NetModel::kPartitioningSpecific));
      const std::string inst = "n=" + std::to_string(n) + " d=10";

      linalg::LanczosOptions opts;
      opts.num_eigenpairs = 10;
      KernelResult r{"lanczos", inst};
      attach_counters(r, linalg::lanczos_smallest(q, opts));
      opts.parallel = serial;
      r.serial_seconds = time_median([&] { linalg::lanczos_smallest(q, opts); });
      opts.parallel = par;
      r.parallel_seconds =
          time_median([&] { linalg::lanczos_smallest(q, opts); });
      results.push_back(r);

      // Same matrix, same 10 pairs, through the block-Krylov backend: the
      // bytes_per_pair column against the row above is the headline number
      // (one spmm sweep advances every direction, so the block path should
      // stream the Laplacian >= 2x fewer times per converged pair).
      linalg::BlockLanczosOptions bopts;
      bopts.num_eigenpairs = 10;
      KernelResult rb{"block_lanczos", inst};
      attach_counters(rb, linalg::block_lanczos_smallest(q, bopts));
      bopts.parallel = serial;
      rb.serial_seconds =
          time_median([&] { linalg::block_lanczos_smallest(q, bopts); });
      bopts.parallel = par;
      rb.parallel_seconds =
          time_median([&] { linalg::block_lanczos_smallest(q, bopts); });
      results.push_back(rb);
    }

    {
      // Multilevel V-cycle against the flat solver, same matrix, same 10
      // pairs. Like the "assembly" row this reuses the two timing columns
      // for an algorithmic comparison: both are the single-thread
      // end-to-end eigensolve stage (spectral::compute_eigenbasis, which
      // for flat includes the escalation chain a cold solve actually
      // pays), serial under strategy=flat and parallel under
      // strategy=multilevel, so `speedup` records the multilevel-vs-flat
      // end-to-end ratio (>= 3x at n=20000). Counters, hierarchy shape
      // and per-level sweep timings come from the V-cycle's own
      // instrumentation.
      const std::size_t n = smoke ? scaled(2000) : scaled(20000);
      const linalg::SymCsrMatrix q = graph::build_laplacian(model::clique_expand(
          make_netlist(n), model::NetModel::kPartitioningSpecific));
      const linalg::SolverOptions sopts;
      const std::uint64_t seed = 0x3E10ULL;

      multilevel::MultilevelStats stats;
      KernelResult r{"multilevel", "n=" + std::to_string(n) +
                                       " d=10 serial=flat parallel=vcycle"};
      attach_counters(r, multilevel::multilevel_solve_smallest(
                             q, 10, seed, sopts, serial, nullptr, &stats));
      r.has_multilevel = true;
      r.levels = stats.levels;
      r.coarsening_ratio = stats.coarsening_ratio;
      r.per_level = stats.per_level;
      spectral::EmbeddingOptions eflat;
      eflat.count = 10;
      eflat.parallel = serial;
      spectral::EmbeddingOptions eml = eflat;
      eml.solver.strategy = linalg::SolverStrategy::kMultilevel;
      r.serial_seconds =
          time_median([&] { spectral::compute_eigenbasis(q, eflat); });
      r.parallel_seconds =
          time_median([&] { spectral::compute_eigenbasis(q, eml); });
      results.push_back(r);

      // Conventional serial-vs-threaded pair for the refinement stage
      // (Chebyshev filter + Rayleigh-Ritz sweeps), which dominates the
      // V-cycle and is the part built on the fixed-block parallel kernels.
      const auto refine_median = [&](const ParallelConfig& p) {
        std::vector<double> samples;
        for (int rep = 0; rep < 3; ++rep) {
          multilevel::MultilevelStats s;
          multilevel::multilevel_solve_smallest(q, 10, seed, sopts, p,
                                                nullptr, &s);
          samples.push_back(s.refine_seconds);
        }
        std::sort(samples.begin(), samples.end());
        return samples[1];
      };
      KernelResult rr{"multilevel_refine", "n=" + std::to_string(n) + " d=10"};
      rr.has_multilevel = true;
      rr.levels = stats.levels;
      rr.coarsening_ratio = stats.coarsening_ratio;
      rr.serial_seconds = refine_median(serial);
      rr.parallel_seconds = refine_median(par);
      results.push_back(rr);
    }

    if (!smoke) {
      const std::size_t n = scaled(20000);
      const linalg::SymCsrMatrix q = graph::build_laplacian(model::clique_expand(
          make_netlist(n), model::NetModel::kPartitioningSpecific));
      linalg::Vec x(q.size(), 1.0), y;
      const int reps = 50;
      KernelResult r{"spmv_x" + std::to_string(reps),
                     "n=" + std::to_string(n)};
      r.serial_seconds = time_median([&] {
        for (int i = 0; i < reps; ++i) q.matvec(x, y);
      });
      r.parallel_seconds = time_median([&] {
        for (int i = 0; i < reps; ++i) q.matvec(x, y, par);
      });
      results.push_back(r);

      // The fused sparse x dense-panel kernel the block solver runs on:
      // one sweep advances a 10-wide panel, so compare against 10 spmv
      // sweeps (same reps) for the per-column bandwidth amortization.
      linalg::Panel px(q.size(), 10);
      for (std::size_t row = 0; row < q.size(); ++row)
        for (std::size_t c = 0; c < 10; ++c) px.at(row, c) = 1.0;
      linalg::Panel py(q.size(), 10);
      KernelResult rp{"spmm_x" + std::to_string(reps),
                      "n=" + std::to_string(n) + " b=10"};
      rp.serial_seconds = time_median([&] {
        for (int i = 0; i < reps; ++i) q.spmm(px, py);
      });
      rp.parallel_seconds = time_median([&] {
        for (int i = 0; i < reps; ++i) q.spmm(px, py, par);
      });
      results.push_back(rp);
    }

    if (!smoke) {
      const std::size_t n = scaled(1500);
      const graph::Hypergraph h = make_netlist(n);
      const auto runs = core::melo_orderings(h, core::MeloOptions{});
      spectral::DprpOptions opts;
      opts.k = 10;
      KernelResult r{"dprp", "n=" + std::to_string(n) + " k=10"};
      opts.parallel = serial;
      r.serial_seconds =
          time_median([&] { spectral::dprp_split(h, runs[0].ordering, opts); });
      opts.parallel = par;
      r.parallel_seconds =
          time_median([&] { spectral::dprp_split(h, runs[0].ordering, opts); });
      results.push_back(r);
    }

    if (!smoke) {
      // Sparse data plane: cold hypergraph -> Laplacian build. The
      // "assembly" row reuses the serial/parallel columns for a different
      // comparison — serial_seconds is the seed repo's triplet path
      // (replicated in bench/seed_assembly.h; the library no longer
      // contains it) and parallel_seconds is the fused single-thread
      // counting-sort build, so `speedup` records the fused-vs-seed
      // cold-build ratio the data plane is accountable for (>= 2x).
      // "assembly_mt" is the conventional pair: fused serial vs fused
      // threaded.
      const std::size_t n = scaled(20000);
      const graph::Hypergraph h = make_netlist(n);
      KernelResult r{"assembly",
                     "n=" + std::to_string(n) + " serial=seed parallel=fused"};
      r.serial_seconds = time_median([&] {
        bench::seed_clique_laplacian(h,
                                     model::NetModel::kPartitioningSpecific);
      });
      model::ModelBuildOptions fused;
      fused.parallel = serial;
      r.parallel_seconds = time_median([&] {
        model::build_clique_laplacian(
            h, model::NetModel::kPartitioningSpecific, fused);
      });
      results.push_back(r);

      KernelResult rt{"assembly_mt", "n=" + std::to_string(n) + " fused"};
      rt.serial_seconds = r.parallel_seconds;
      fused.parallel = par;
      rt.parallel_seconds = time_median([&] {
        model::build_clique_laplacian(
            h, model::NetModel::kPartitioningSpecific, fused);
      });
      results.push_back(rt);
    }

    if (!smoke) {
      // Service layer: a warm 24-request batch through the bounded queue,
      // 1 worker (serial reference) vs `threads` workers. Warm so it
      // measures the serving engine, not the one-off eigensolves.
      const std::size_t n = scaled(600);
      std::vector<service::PartitionRequest> batch;
      for (std::size_t i = 0; i < 24; ++i) {
        service::PartitionRequest req;
        req.graph = make_netlist(n + 16 * (i % 3));
        req.pipeline.num_eigenvectors = 10;
        batch.push_back(std::move(req));
      }
      const auto run_batch = [&](service::PartitionService& svc) {
        std::vector<std::future<service::PartitionResponse>> futs;
        futs.reserve(batch.size());
        for (const auto& req : batch) futs.push_back(svc.submit(req));
        for (auto& fut : futs) fut.get();
      };
      service::ServiceOptions one;
      one.num_workers = 1;
      one.parallel = serial;
      service::ServiceOptions many = one;
      many.num_workers = threads;
      service::PartitionService svc1(one);
      service::PartitionService svcN(many);
      run_batch(svc1);  // warm both caches
      run_batch(svcN);
      KernelResult r{"service_warm",
                     "reqs=24 n=" + std::to_string(n)};
      r.serial_seconds = time_median([&] { run_batch(svc1); });
      r.parallel_seconds = time_median([&] { run_batch(svcN); });
      results.push_back(r);
    }

    {
      // Tier-2 persistent basis store: a disk-warm read against the cold
      // eigensolve it replaces. Like the "assembly" row this reuses the
      // two timing columns for an algorithmic comparison: serial_seconds
      // is one cold compute through a fresh EmbeddingCache with the tier
      // configured (eigensolve + write-behind spill), parallel_seconds is
      // the median disk-warm serve through a fresh cache over the same
      // directory (rebuild-on-open scan + header validation + chunk reads
      // + promotion), so `speedup` records the warm-vs-cold serving ratio
      // the tier is accountable for. Bit-identity of the warm basis
      // against the cold one and warm < cold are enforced inline — a
      // violation fails the whole run, smoke or full.
      const std::size_t n = smoke ? scaled(2000) : scaled(20000);
      const graph::Graph g = model::clique_expand(
          make_netlist(n), model::NetModel::kPartitioningSpecific);
      namespace fs = std::filesystem;
      const fs::path dir =
          fs::temp_directory_path() /
          ("specpart_bench_tier2_" + std::to_string(::getpid()));
      std::error_code ec;
      fs::remove_all(dir, ec);

      spectral::EmbeddingOptions eo;
      eo.count = 10;
      eo.parallel = serial;
      service::EmbeddingCacheOptions copts;
      copts.cache_dir = dir.string();

      KernelResult r{"cache_disk_warm", "n=" + std::to_string(n) +
                                            " d=10 serial=cold "
                                            "parallel=diskwarm"};
      spectral::EigenBasis cold;
      {
        service::EmbeddingCache cache(copts);
        Timer t;
        cold = cache.compute(g, eo, nullptr, nullptr);
        r.serial_seconds = t.seconds();
      }
      spectral::EigenBasis warm;
      r.parallel_seconds = time_median([&] {
        service::EmbeddingCache cache(copts);  // fresh tier 1, same tier 2
        warm = cache.compute(g, eo, nullptr, nullptr);
      });
      fs::remove_all(dir, ec);

      bool identical = warm.dimension() == cold.dimension() &&
                       warm.n == cold.n && cold.dimension() > 0;
      const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
      for (std::size_t j = 0; identical && j < cold.dimension(); ++j) {
        identical = bits(warm.values[j]) == bits(cold.values[j]);
        for (std::size_t i = 0; identical && i < cold.n; ++i)
          identical = bits(warm.vectors.at(i, j)) == bits(cold.vectors.at(i, j));
      }
      if (!identical) {
        std::fprintf(stderr,
                     "bench_report_tool: cache_disk_warm: disk-warm basis is "
                     "not bit-identical to the cold compute\n");
        return 1;
      }
      if (r.parallel_seconds >= r.serial_seconds) {
        std::fprintf(stderr,
                     "bench_report_tool: cache_disk_warm: tier-2 read "
                     "(%.1f ms) is not faster than the cold compute "
                     "(%.1f ms)\n",
                     r.parallel_seconds * 1e3, r.serial_seconds * 1e3);
        return 1;
      }
      results.push_back(r);
    }

    {
      // Objective-model quality row: the conductance phi of the
      // normalized-objective sweep-cut split against the FM min-cut
      // split's phi on the same mixed netlist, at the same balance floor.
      // Like the "assembly" row this reuses the two timing columns for a
      // cross-method comparison: serial_seconds is the full normalized
      // melo pipeline (eigensolve on D^{-1/2} L D^{-1/2} + sweep cut) and
      // parallel_seconds is the FM pass, so `speedup` is not a threading
      // ratio here. The quality contract — sweep phi <= FM phi — is
      // enforced inline; a violation fails the whole run, smoke or full.
      const std::size_t n = smoke ? scaled(1500) : scaled(5000);
      const graph::Hypergraph h = make_netlist(n);
      KernelResult r{"sweep_cut", "n=" + std::to_string(n) +
                                      " d=10 serial=sweep parallel=fm"};
      core::MeloOptions m;
      m.num_eigenvectors = 10;
      m.num_starts = 3;
      m.objective = core::ObjectiveModel::kNormalizedSymmetric;
      m.parallel = serial;
      {
        Timer t;
        const core::MeloBipartitionResult res =
            core::melo_bipartition(h, m, 0.10);
        r.serial_seconds = t.seconds();
        r.sweep_phi = res.conductance;
      }
      {
        part::FmOptions fo;
        fo.balance = {0.10, 0.90};
        Timer t;
        const part::FmResult res = part::fm_bipartition(h, fo);
        r.parallel_seconds = t.seconds();
        r.fm_phi = part::conductance(h, res.partition);
      }
      r.has_conductance = true;
      if (!(r.sweep_phi > 0.0) || !(r.fm_phi > 0.0) ||
          r.sweep_phi > r.fm_phi) {
        std::fprintf(stderr,
                     "bench_report_tool: sweep_cut: normalized sweep-cut "
                     "conductance %.6g does not beat the FM split's %.6g\n",
                     r.sweep_phi, r.fm_phi);
        return 1;
      }
      results.push_back(r);
    }

    const std::string out = cli.get("out");
    std::FILE* f = std::fopen(out.c_str(), "w");
    SP_CHECK_INPUT(f != nullptr, "cannot open --out file " + out);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"specpart-bench-kernels-v2\",\n");
    std::fprintf(f, "  \"host\": {\"cores\": %zu, \"parallel_threads\": %zu},\n",
                 cores, threads);
    std::fprintf(f, "  \"scale\": %g,\n", scale);
    std::fprintf(f, "  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const KernelResult& r = results[i];
      const double speedup = r.parallel_seconds > 0.0
                                 ? r.serial_seconds / r.parallel_seconds
                                 : 0.0;
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"instance\": \"%s\", "
                   "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
                   "\"speedup\": %.3f",
                   r.name.c_str(), r.instance.c_str(), r.serial_seconds,
                   r.parallel_seconds, speedup);
      if (r.has_counters)
        std::fprintf(f,
                     ", \"converged_pairs\": %llu, \"flops_per_pair\": %llu, "
                     "\"bytes_per_pair\": %llu",
                     static_cast<unsigned long long>(r.pairs),
                     static_cast<unsigned long long>(r.flops_per_pair),
                     static_cast<unsigned long long>(r.bytes_per_pair));
      if (r.has_conductance)
        std::fprintf(f, ", \"sweep_phi\": %.6f, \"fm_phi\": %.6f",
                     r.sweep_phi, r.fm_phi);
      if (r.has_multilevel) {
        std::fprintf(f, ", \"levels\": %zu, \"coarsening_ratio\": %.2f",
                     r.levels, r.coarsening_ratio);
        if (!r.per_level.empty()) {
          std::fprintf(f, ", \"per_level\": [");
          for (std::size_t l = 0; l < r.per_level.size(); ++l) {
            const multilevel::LevelStats& ls = r.per_level[l];
            std::fprintf(f,
                         "{\"n\": %zu, \"sweeps\": %zu, \"relative_residual\": "
                         "%.3e, \"seconds\": %.6f}%s",
                         ls.n, ls.sweeps, ls.relative_residual, ls.seconds,
                         l + 1 < r.per_level.size() ? ", " : "");
          }
          std::fprintf(f, "]");
        }
      }
      std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
      std::printf("%-13s %-16s serial %8.1f ms   %zu threads %8.1f ms   "
                  "speedup %.2fx",
                  r.name.c_str(), r.instance.c_str(), r.serial_seconds * 1e3,
                  threads, r.parallel_seconds * 1e3, speedup);
      if (r.has_counters)
        std::printf("   %llu pairs, %.2f MB/pair",
                    static_cast<unsigned long long>(r.pairs),
                    static_cast<double>(r.bytes_per_pair) / 1e6);
      if (r.has_conductance)
        std::printf("   phi sweep %.4f vs fm %.4f", r.sweep_phi, r.fm_phi);
      std::printf("\n");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (host: %zu core(s))\n", out.c_str(), cores);

    if (smoke) {
      // CI gate: the eigensolver rows must carry live counters. A zero
      // here means the solver stopped reporting its algorithmic cost and
      // the committed baseline would silently rot.
      std::size_t counter_rows = 0;
      for (const KernelResult& r : results) {
        if (!r.has_counters) continue;
        ++counter_rows;
        if (r.pairs == 0 || r.flops_per_pair == 0 || r.bytes_per_pair == 0) {
          std::fprintf(stderr,
                       "bench_report_tool: --smoke: kernel %s has a zero "
                       "counter (pairs=%llu flops_per_pair=%llu "
                       "bytes_per_pair=%llu)\n",
                       r.name.c_str(),
                       static_cast<unsigned long long>(r.pairs),
                       static_cast<unsigned long long>(r.flops_per_pair),
                       static_cast<unsigned long long>(r.bytes_per_pair));
          return 1;
        }
      }
      if (counter_rows < 3) {
        std::fprintf(stderr,
                     "bench_report_tool: --smoke: expected counter fields on "
                     "all three eigensolver rows, found %zu row(s)\n",
                     counter_rows);
        return 1;
      }
      // The multilevel row must additionally carry a live hierarchy: a
      // missing row or a degenerate ratio means the V-cycle silently
      // degraded to a flat solve and the committed baseline would lie.
      bool multilevel_ok = false;
      for (const KernelResult& r : results) {
        if (r.name != "multilevel") continue;
        multilevel_ok = r.has_counters && r.pairs > 0 && r.levels > 0 &&
                        r.coarsening_ratio > 1.0 && !r.per_level.empty();
        if (!multilevel_ok)
          std::fprintf(stderr,
                       "bench_report_tool: --smoke: multilevel row is "
                       "degenerate (pairs=%llu levels=%zu ratio=%.2f "
                       "per_level=%zu)\n",
                       static_cast<unsigned long long>(r.pairs), r.levels,
                       r.coarsening_ratio, r.per_level.size());
      }
      if (!multilevel_ok) {
        if (!std::any_of(results.begin(), results.end(),
                         [](const KernelResult& r) {
                           return r.name == "multilevel";
                         }))
          std::fprintf(stderr,
                       "bench_report_tool: --smoke: multilevel row missing\n");
        return 1;
      }
      // The tier-2 row must have run and won: bit-identity and warm<cold
      // are already enforced inline above, so all that can fail here is
      // the row silently disappearing from the bench.
      bool tier2_ok = false;
      for (const KernelResult& r : results)
        if (r.name == "cache_disk_warm")
          tier2_ok = r.serial_seconds > 0.0 && r.parallel_seconds > 0.0 &&
                     r.parallel_seconds < r.serial_seconds;
      if (!tier2_ok) {
        std::fprintf(stderr,
                     "bench_report_tool: --smoke: cache_disk_warm row "
                     "missing or degenerate\n");
        return 1;
      }
      // The sweep_cut row's quality contract (sweep phi <= FM phi, both
      // positive) is enforced inline above; here only its presence can
      // regress.
      bool sweep_ok = false;
      for (const KernelResult& r : results)
        if (r.name == "sweep_cut")
          sweep_ok = r.has_conductance && r.sweep_phi > 0.0 &&
                     r.sweep_phi <= r.fm_phi;
      if (!sweep_ok) {
        std::fprintf(stderr,
                     "bench_report_tool: --smoke: sweep_cut row missing or "
                     "degenerate\n");
        return 1;
      }
      std::printf("smoke: counter fields present and nonzero on %zu rows, "
                  "multilevel hierarchy live (%s), tier-2 disk-warm read "
                  "bit-identical and faster than cold, sweep-cut phi beat "
                  "the FM split\n",
                  counter_rows, "levels/coarsening_ratio/per_level");
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_report_tool: %s\n", e.what());
    return 1;
  }
}
