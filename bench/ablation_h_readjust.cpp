// Ablation: the paper's mid-construction H readjustment, on vs off.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "ablation_h_readjust",
      "Ablation: H readjustment on/off",
      [](const bench::BenchCli& b) {
        b.print(exp::run_ablation_h_readjust(b.runner),
                "Ablation: H readjustment (balanced 45-55% net cut)");
      });
}
