// Extended comparison beyond the paper's Table 5: MELO against the other
// spectral families the paper surveys (Frankle-Karp probes [19], Barnes'
// transportation method [7]) and against move-based partitioners (flat FM
// and multilevel FM), all on the balanced 45-55% net-cut protocol.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "extended_baselines",
      "Extended balanced-bipartitioning comparison",
      [](const bench::BenchCli& b) {
        b.print(exp::run_extended_bipartitioners(b.runner),
                "Extended comparison: balanced 45-55% net cut");
      });
}
