// Regenerates Table 5: balanced (45-55%) bipartitioning net cuts — SB vs
// multi-start FM (the PARABOLI stand-in, DESIGN.md §4) vs MELO — plus the
// MELO ordering-construction runtimes at d = 2 and d = 10.
//
// Shape to reproduce: MELO clearly beats SB; the strong move-based baseline
// (FM here, PARABOLI in the paper) remains hard to beat; MELO runtimes stay
// modest even at d = 10.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "table5_bipartition",
      "Table 5: balanced bipartitioning — SB vs FM vs MELO",
      [](const bench::BenchCli& b) {
        b.print(exp::run_table5_bipart(b.runner),
                "Table 5: balanced 45-55% net cut + MELO ordering runtimes");
      });
}
