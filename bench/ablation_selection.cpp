// Ablation: greedy selection rule — magnitude (||S+y||^2) vs projection
// (S.y) vs cosine (S.y/||y||). Magnitude is the library default.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "ablation_selection",
      "Ablation: MELO greedy selection rule",
      [](const bench::BenchCli& b) {
        b.print(exp::run_ablation_selection(b.runner),
                "Ablation: selection rule (balanced 45-55% net cut)");
      });
}
