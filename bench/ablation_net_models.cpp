// Ablation: clique net-model choice (standard / partitioning-specific /
// Frankle) for MELO balanced cuts and RSB 4-way Scaled Cost — the paper's
// section 5 discussion of net models, as a table.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace specpart;
  return bench::run_bench(
      argc, argv, "ablation_net_models",
      "Ablation: net model choice for MELO and RSB",
      [](const bench::BenchCli& b) {
        b.print(exp::run_ablation_net_models(b.runner),
                "Ablation: net models (MELO balanced cut; RSB k=4 Scaled "
                "Cost x 1e5)");
      });
}
