// Shared CLI scaffolding for the experiment binaries: every table/figure
// bench accepts --scale/--limit/--seed/--csv and prints an aligned table
// (or CSV) to stdout.
#pragma once

#include <iostream>

#include "exp/runners.h"
#include "util/cli.h"
#include "util/error.h"

namespace specpart::bench {

struct BenchCli {
  Cli cli;
  exp::RunnerOptions runner;
  bool csv = false;

  explicit BenchCli(const std::string& name, const std::string& description)
      : cli(name, description) {
    cli.add_flag("scale", "0.5",
                 "suite scale factor in (0,1]; 1.0 = paper-sized instances");
    cli.add_flag("limit", "0", "use only the first N benchmarks (0 = all)");
    cli.add_flag("seed", "7", "base random seed");
    cli.add_flag("csv", "false", "emit CSV instead of an aligned table");
  }

  /// Returns false when --help was printed (caller should exit 0).
  bool parse(int argc, char** argv) {
    if (!cli.parse(argc, argv)) return false;
    runner.scale = cli.get_double("scale");
    runner.limit = static_cast<std::size_t>(cli.get_int("limit"));
    runner.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    csv = cli.get_bool("csv");
    return true;
  }

  void print(const exp::Table& table, const std::string& title) const {
    if (csv) {
      table.print_csv(std::cout);
    } else {
      exp::print_banner(std::cout, title);
      table.print(std::cout);
    }
  }
};

/// Standard wrapper: parse flags, run, print, catch input errors.
template <typename RunFn>
int run_bench(int argc, char** argv, const std::string& name,
              const std::string& description, RunFn run) {
  BenchCli bench(name, description);
  try {
    if (!bench.parse(argc, argv)) return 0;
    run(bench);
  } catch (const Error& e) {
    std::cerr << name << ": " << e.what() << '\n';
    return 1;
  }
  return 0;
}

}  // namespace specpart::bench
