# Empty dependencies file for ablation_h_readjust.
# This may be replaced when dependencies are built.
