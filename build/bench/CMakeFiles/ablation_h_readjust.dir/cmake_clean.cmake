file(REMOVE_RECURSE
  "CMakeFiles/ablation_h_readjust.dir/ablation_h_readjust.cpp.o"
  "CMakeFiles/ablation_h_readjust.dir/ablation_h_readjust.cpp.o.d"
  "ablation_h_readjust"
  "ablation_h_readjust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_h_readjust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
