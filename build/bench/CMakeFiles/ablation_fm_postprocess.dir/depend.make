# Empty dependencies file for ablation_fm_postprocess.
# This may be replaced when dependencies are built.
