file(REMOVE_RECURSE
  "CMakeFiles/ablation_fm_postprocess.dir/ablation_fm_postprocess.cpp.o"
  "CMakeFiles/ablation_fm_postprocess.dir/ablation_fm_postprocess.cpp.o.d"
  "ablation_fm_postprocess"
  "ablation_fm_postprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fm_postprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
