file(REMOVE_RECURSE
  "CMakeFiles/bench_eigensolver.dir/bench_eigensolver.cpp.o"
  "CMakeFiles/bench_eigensolver.dir/bench_eigensolver.cpp.o.d"
  "bench_eigensolver"
  "bench_eigensolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eigensolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
