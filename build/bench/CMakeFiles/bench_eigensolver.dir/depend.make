# Empty dependencies file for bench_eigensolver.
# This may be replaced when dependencies are built.
