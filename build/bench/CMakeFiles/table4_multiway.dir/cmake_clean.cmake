file(REMOVE_RECURSE
  "CMakeFiles/table4_multiway.dir/table4_multiway.cpp.o"
  "CMakeFiles/table4_multiway.dir/table4_multiway.cpp.o.d"
  "table4_multiway"
  "table4_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
