# Empty compiler generated dependencies file for table4_multiway.
# This may be replaced when dependencies are built.
