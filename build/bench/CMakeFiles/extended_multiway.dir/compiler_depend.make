# Empty compiler generated dependencies file for extended_multiway.
# This may be replaced when dependencies are built.
