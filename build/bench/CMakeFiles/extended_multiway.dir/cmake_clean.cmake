file(REMOVE_RECURSE
  "CMakeFiles/extended_multiway.dir/extended_multiway.cpp.o"
  "CMakeFiles/extended_multiway.dir/extended_multiway.cpp.o.d"
  "extended_multiway"
  "extended_multiway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
