file(REMOVE_RECURSE
  "CMakeFiles/table2_schemes.dir/table2_schemes.cpp.o"
  "CMakeFiles/table2_schemes.dir/table2_schemes.cpp.o.d"
  "table2_schemes"
  "table2_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
