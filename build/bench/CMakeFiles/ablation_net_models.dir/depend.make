# Empty dependencies file for ablation_net_models.
# This may be replaced when dependencies are built.
