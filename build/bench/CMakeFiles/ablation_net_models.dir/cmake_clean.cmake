file(REMOVE_RECURSE
  "CMakeFiles/ablation_net_models.dir/ablation_net_models.cpp.o"
  "CMakeFiles/ablation_net_models.dir/ablation_net_models.cpp.o.d"
  "ablation_net_models"
  "ablation_net_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_net_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
