file(REMOVE_RECURSE
  "CMakeFiles/table5_bipartition.dir/table5_bipartition.cpp.o"
  "CMakeFiles/table5_bipartition.dir/table5_bipartition.cpp.o.d"
  "table5_bipartition"
  "table5_bipartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bipartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
