# Empty compiler generated dependencies file for table5_bipartition.
# This may be replaced when dependencies are built.
