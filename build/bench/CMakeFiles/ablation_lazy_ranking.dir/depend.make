# Empty dependencies file for ablation_lazy_ranking.
# This may be replaced when dependencies are built.
