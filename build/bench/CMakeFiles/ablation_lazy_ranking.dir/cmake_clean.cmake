file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_ranking.dir/ablation_lazy_ranking.cpp.o"
  "CMakeFiles/ablation_lazy_ranking.dir/ablation_lazy_ranking.cpp.o.d"
  "ablation_lazy_ranking"
  "ablation_lazy_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
