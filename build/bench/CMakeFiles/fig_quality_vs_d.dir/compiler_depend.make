# Empty compiler generated dependencies file for fig_quality_vs_d.
# This may be replaced when dependencies are built.
