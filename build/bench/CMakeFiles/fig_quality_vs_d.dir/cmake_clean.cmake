file(REMOVE_RECURSE
  "CMakeFiles/fig_quality_vs_d.dir/fig_quality_vs_d.cpp.o"
  "CMakeFiles/fig_quality_vs_d.dir/fig_quality_vs_d.cpp.o.d"
  "fig_quality_vs_d"
  "fig_quality_vs_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_quality_vs_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
