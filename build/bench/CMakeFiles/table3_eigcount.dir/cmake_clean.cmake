file(REMOVE_RECURSE
  "CMakeFiles/table3_eigcount.dir/table3_eigcount.cpp.o"
  "CMakeFiles/table3_eigcount.dir/table3_eigcount.cpp.o.d"
  "table3_eigcount"
  "table3_eigcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_eigcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
