# Empty compiler generated dependencies file for table3_eigcount.
# This may be replaced when dependencies are built.
