file(REMOVE_RECURSE
  "CMakeFiles/vector_partitioning.dir/vector_partitioning.cpp.o"
  "CMakeFiles/vector_partitioning.dir/vector_partitioning.cpp.o.d"
  "vector_partitioning"
  "vector_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
