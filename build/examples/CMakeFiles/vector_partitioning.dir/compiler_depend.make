# Empty compiler generated dependencies file for vector_partitioning.
# This may be replaced when dependencies are built.
