# Empty compiler generated dependencies file for clustering_and_placement.
# This may be replaced when dependencies are built.
