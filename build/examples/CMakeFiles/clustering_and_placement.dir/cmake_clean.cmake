file(REMOVE_RECURSE
  "CMakeFiles/clustering_and_placement.dir/clustering_and_placement.cpp.o"
  "CMakeFiles/clustering_and_placement.dir/clustering_and_placement.cpp.o.d"
  "clustering_and_placement"
  "clustering_and_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_and_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
