# Empty dependencies file for multiway_flow.
# This may be replaced when dependencies are built.
