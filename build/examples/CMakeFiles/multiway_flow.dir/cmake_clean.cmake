file(REMOVE_RECURSE
  "CMakeFiles/multiway_flow.dir/multiway_flow.cpp.o"
  "CMakeFiles/multiway_flow.dir/multiway_flow.cpp.o.d"
  "multiway_flow"
  "multiway_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiway_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
