# Empty dependencies file for test_kp.
# This may be replaced when dependencies are built.
