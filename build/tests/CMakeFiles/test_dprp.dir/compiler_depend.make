# Empty compiler generated dependencies file for test_dprp.
# This may be replaced when dependencies are built.
