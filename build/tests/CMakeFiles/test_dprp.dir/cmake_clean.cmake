file(REMOVE_RECURSE
  "CMakeFiles/test_dprp.dir/test_dprp.cpp.o"
  "CMakeFiles/test_dprp.dir/test_dprp.cpp.o.d"
  "test_dprp"
  "test_dprp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dprp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
