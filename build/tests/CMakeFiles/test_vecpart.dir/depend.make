# Empty dependencies file for test_vecpart.
# This may be replaced when dependencies are built.
