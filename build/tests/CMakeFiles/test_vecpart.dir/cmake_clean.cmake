file(REMOVE_RECURSE
  "CMakeFiles/test_vecpart.dir/test_vecpart.cpp.o"
  "CMakeFiles/test_vecpart.dir/test_vecpart.cpp.o.d"
  "test_vecpart"
  "test_vecpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vecpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
