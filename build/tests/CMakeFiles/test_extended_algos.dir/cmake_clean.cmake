file(REMOVE_RECURSE
  "CMakeFiles/test_extended_algos.dir/test_extended_algos.cpp.o"
  "CMakeFiles/test_extended_algos.dir/test_extended_algos.cpp.o.d"
  "test_extended_algos"
  "test_extended_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
