# Empty dependencies file for test_exp_runners.
# This may be replaced when dependencies are built.
