file(REMOVE_RECURSE
  "CMakeFiles/test_exp_runners.dir/test_exp_runners.cpp.o"
  "CMakeFiles/test_exp_runners.dir/test_exp_runners.cpp.o.d"
  "test_exp_runners"
  "test_exp_runners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_runners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
