# Empty dependencies file for test_maxcut.
# This may be replaced when dependencies are built.
