# Empty compiler generated dependencies file for test_sb_rsb.
# This may be replaced when dependencies are built.
