file(REMOVE_RECURSE
  "CMakeFiles/test_sb_rsb.dir/test_sb_rsb.cpp.o"
  "CMakeFiles/test_sb_rsb.dir/test_sb_rsb.cpp.o.d"
  "test_sb_rsb"
  "test_sb_rsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sb_rsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
