file(REMOVE_RECURSE
  "CMakeFiles/test_clique_models.dir/test_clique_models.cpp.o"
  "CMakeFiles/test_clique_models.dir/test_clique_models.cpp.o.d"
  "test_clique_models"
  "test_clique_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clique_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
