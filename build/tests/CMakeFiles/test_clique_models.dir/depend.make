# Empty dependencies file for test_clique_models.
# This may be replaced when dependencies are built.
