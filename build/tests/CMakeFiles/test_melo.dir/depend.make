# Empty dependencies file for test_melo.
# This may be replaced when dependencies are built.
