file(REMOVE_RECURSE
  "CMakeFiles/test_melo.dir/test_melo.cpp.o"
  "CMakeFiles/test_melo.dir/test_melo.cpp.o.d"
  "test_melo"
  "test_melo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_melo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
