# Empty compiler generated dependencies file for specpart.
# This may be replaced when dependencies are built.
