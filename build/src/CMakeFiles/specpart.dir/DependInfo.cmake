
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clustering.cpp" "src/CMakeFiles/specpart.dir/core/clustering.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/core/clustering.cpp.o.d"
  "/root/repo/src/core/drivers.cpp" "src/CMakeFiles/specpart.dir/core/drivers.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/core/drivers.cpp.o.d"
  "/root/repo/src/core/maxcut.cpp" "src/CMakeFiles/specpart.dir/core/maxcut.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/core/maxcut.cpp.o.d"
  "/root/repo/src/core/melo.cpp" "src/CMakeFiles/specpart.dir/core/melo.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/core/melo.cpp.o.d"
  "/root/repo/src/core/reduction.cpp" "src/CMakeFiles/specpart.dir/core/reduction.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/core/reduction.cpp.o.d"
  "/root/repo/src/core/vecpart.cpp" "src/CMakeFiles/specpart.dir/core/vecpart.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/core/vecpart.cpp.o.d"
  "/root/repo/src/exp/runners.cpp" "src/CMakeFiles/specpart.dir/exp/runners.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/exp/runners.cpp.o.d"
  "/root/repo/src/exp/suite.cpp" "src/CMakeFiles/specpart.dir/exp/suite.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/exp/suite.cpp.o.d"
  "/root/repo/src/exp/tableio.cpp" "src/CMakeFiles/specpart.dir/exp/tableio.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/exp/tableio.cpp.o.d"
  "/root/repo/src/graph/generator.cpp" "src/CMakeFiles/specpart.dir/graph/generator.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/graph/generator.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/specpart.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/hypergraph.cpp" "src/CMakeFiles/specpart.dir/graph/hypergraph.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/graph/hypergraph.cpp.o.d"
  "/root/repo/src/graph/laplacian.cpp" "src/CMakeFiles/specpart.dir/graph/laplacian.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/graph/laplacian.cpp.o.d"
  "/root/repo/src/graph/netlist_io.cpp" "src/CMakeFiles/specpart.dir/graph/netlist_io.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/graph/netlist_io.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/specpart.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "src/CMakeFiles/specpart.dir/linalg/lanczos.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/linalg/lanczos.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/CMakeFiles/specpart.dir/linalg/sparse.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/linalg/sparse.cpp.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cpp" "src/CMakeFiles/specpart.dir/linalg/symmetric_eigen.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/linalg/symmetric_eigen.cpp.o.d"
  "/root/repo/src/linalg/tridiagonal.cpp" "src/CMakeFiles/specpart.dir/linalg/tridiagonal.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/linalg/tridiagonal.cpp.o.d"
  "/root/repo/src/model/clique_models.cpp" "src/CMakeFiles/specpart.dir/model/clique_models.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/model/clique_models.cpp.o.d"
  "/root/repo/src/model/transforms.cpp" "src/CMakeFiles/specpart.dir/model/transforms.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/model/transforms.cpp.o.d"
  "/root/repo/src/opt/mincostflow.cpp" "src/CMakeFiles/specpart.dir/opt/mincostflow.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/opt/mincostflow.cpp.o.d"
  "/root/repo/src/part/fm.cpp" "src/CMakeFiles/specpart.dir/part/fm.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/fm.cpp.o.d"
  "/root/repo/src/part/kl.cpp" "src/CMakeFiles/specpart.dir/part/kl.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/kl.cpp.o.d"
  "/root/repo/src/part/kwayfm.cpp" "src/CMakeFiles/specpart.dir/part/kwayfm.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/kwayfm.cpp.o.d"
  "/root/repo/src/part/multilevel.cpp" "src/CMakeFiles/specpart.dir/part/multilevel.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/multilevel.cpp.o.d"
  "/root/repo/src/part/objectives.cpp" "src/CMakeFiles/specpart.dir/part/objectives.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/objectives.cpp.o.d"
  "/root/repo/src/part/ordering.cpp" "src/CMakeFiles/specpart.dir/part/ordering.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/ordering.cpp.o.d"
  "/root/repo/src/part/partition.cpp" "src/CMakeFiles/specpart.dir/part/partition.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/partition.cpp.o.d"
  "/root/repo/src/part/report.cpp" "src/CMakeFiles/specpart.dir/part/report.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/part/report.cpp.o.d"
  "/root/repo/src/spectral/barnes.cpp" "src/CMakeFiles/specpart.dir/spectral/barnes.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/barnes.cpp.o.d"
  "/root/repo/src/spectral/dprp.cpp" "src/CMakeFiles/specpart.dir/spectral/dprp.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/dprp.cpp.o.d"
  "/root/repo/src/spectral/embedding.cpp" "src/CMakeFiles/specpart.dir/spectral/embedding.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/embedding.cpp.o.d"
  "/root/repo/src/spectral/fkprobe.cpp" "src/CMakeFiles/specpart.dir/spectral/fkprobe.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/fkprobe.cpp.o.d"
  "/root/repo/src/spectral/kmeans.cpp" "src/CMakeFiles/specpart.dir/spectral/kmeans.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/kmeans.cpp.o.d"
  "/root/repo/src/spectral/kp.cpp" "src/CMakeFiles/specpart.dir/spectral/kp.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/kp.cpp.o.d"
  "/root/repo/src/spectral/placement.cpp" "src/CMakeFiles/specpart.dir/spectral/placement.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/placement.cpp.o.d"
  "/root/repo/src/spectral/rsb.cpp" "src/CMakeFiles/specpart.dir/spectral/rsb.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/rsb.cpp.o.d"
  "/root/repo/src/spectral/sb.cpp" "src/CMakeFiles/specpart.dir/spectral/sb.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/sb.cpp.o.d"
  "/root/repo/src/spectral/sfc.cpp" "src/CMakeFiles/specpart.dir/spectral/sfc.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/spectral/sfc.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/specpart.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/specpart.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/util/error.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/specpart.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stringutil.cpp" "src/CMakeFiles/specpart.dir/util/stringutil.cpp.o" "gcc" "src/CMakeFiles/specpart.dir/util/stringutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
