file(REMOVE_RECURSE
  "libspecpart.a"
)
