# Empty dependencies file for specpart.
# This may be replaced when dependencies are built.
