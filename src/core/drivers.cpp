#include "core/drivers.h"

#include <algorithm>
#include <limits>

#include "core/reduction.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "util/error.h"
#include "util/stringutil.h"
#include "util/timer.h"

namespace specpart::core {

namespace {

/// E(C) of a vertex set in a graph: total weight of edges leaving the set.
double set_degree(const graph::Graph& g, const std::vector<graph::NodeId>& c,
                  std::vector<char>& scratch) {
  scratch.assign(g.num_nodes(), 0);
  for (graph::NodeId v : c) scratch[v] = 1;
  double degree = 0.0;
  for (const graph::Edge& e : g.edges())
    if (scratch[e.u] != scratch[e.v]) degree += e.weight;
  return degree;
}

}  // namespace

std::vector<MeloOrderingRun> melo_orderings(const graph::Hypergraph& h,
                                            const MeloOptions& opts) {
  SP_CHECK_INPUT(h.num_nodes() >= 2, "MELO: need at least 2 vertices");
  SP_CHECK_INPUT(opts.num_eigenvectors >= 1, "MELO: need d >= 1");

  Diagnostics* diag = opts.diagnostics;
  ComputeBudget* budget = opts.budget;

  Timer eigen_timer;
  // Lazy clique model: the Laplacian is assembled fused from the pins on
  // first use; a caching provider that hits never expands the model at all.
  model::ModelBuildOptions mbopts;
  mbopts.max_clique_pairs = opts.max_clique_pairs;
  mbopts.parallel = opts.parallel;
  const model::CliqueModel cm(h, opts.net_model, mbopts);
  const spectral::EmbeddingOptions eopts = opts.embedding_options();
  const spectral::EigenBasis basis =
      opts.embedding_provider
          ? opts.embedding_provider(cm, eopts, diag, budget)
          : spectral::compute_eigenbasis(cm.laplacian(diag), eopts, diag,
                                         budget);
  const double eigen_seconds = eigen_timer.seconds();

  // Consume the solver outcome instead of ignoring it: a degraded basis
  // lowers the effective d (the paper's own "fewer eigenvectors still
  // work" justifies running on the converged prefix); an unconverged one
  // is surfaced as a warning and in every result struct.
  const std::size_t d_effective = basis.dimension();
  SP_REQUIRE(d_effective >= 1, "MELO: eigenbasis has no usable column");
  if (diag != nullptr && d_effective < basis.requested)
    diag->fallback("ordering",
                   strprintf("degraded d from %zu to %zu (unconverged "
                             "trailing eigenpairs)",
                             basis.requested, d_effective));
  if (diag != nullptr && !basis.converged)
    diag->warn("eigensolve",
               strprintf("eigenbasis not fully converged (%zu of %zu "
                         "pair(s) met tolerance)",
                         basis.converged_pairs, d_effective));

  const double h0 =
      opts.h_override > 0.0 ? opts.h_override : default_h(basis);
  const VectorInstance base_instance =
      build_scaled_instance(basis, opts.scaling, h0);

  std::vector<char> scratch;
  std::vector<MeloOrderingRun> runs;
  const std::size_t starts = std::max<std::size_t>(1, opts.num_starts);
  for (std::size_t start = 0; start < starts; ++start) {
    // Later starts are pure quality improvement: skip them (keeping the
    // result valid) once the budget is gone. The first start always runs.
    if (start > 0 && !budget_ok(budget)) {
      if (diag != nullptr) diag->mark_budget_exhausted("ordering");
      break;
    }
    MeloOrderingRun run;
    run.h_initial = h0;
    run.h_final = h0;
    run.eigen_converged = basis.converged;
    run.eigenvectors_used = d_effective;

    MeloOrderingOptions oopts = opts.ordering_options(start);
    oopts.budget = budget;

    MeloReadjust readjust;
    const bool do_readjust = opts.readjust_h && opts.h_override <= 0.0 &&
                             scaling_uses_h(opts.scaling) &&
                             h.num_nodes() >= 8;
    if (do_readjust) {
      readjust.at = h.num_nodes() / 2;
      readjust.rebuild =
          [&](const std::vector<graph::NodeId>& members) -> VectorInstance {
        // The clique graph is only needed if readjustment actually fires;
        // cm derives it lazily (O(nnz) from the Laplacian when that was
        // built, fused from the pins otherwise).
        const double degree = set_degree(cm.graph(diag), members, scratch);
        run.h_final = readjusted_h(basis, members, degree);
        return build_scaled_instance(basis, opts.scaling, run.h_final);
      };
    }

    Timer order_timer;
    {
      StageTimerScope order_scope(diag, "ordering");
      run.ordering = melo_order_vectors(base_instance, oopts,
                                        do_readjust ? &readjust : nullptr);
    }
    run.ordering_seconds = order_timer.seconds();
    run.eigen_seconds = eigen_seconds;
    run.budget_exhausted = basis.budget_exhausted || !budget_ok(budget);
    if (run.budget_exhausted && diag != nullptr)
      diag->mark_budget_exhausted("ordering");
    runs.push_back(std::move(run));
  }
  return runs;
}

MeloBipartitionResult melo_bipartition(const graph::Hypergraph& h,
                                       const MeloOptions& opts,
                                       double min_fraction) {
  const std::vector<MeloOrderingRun> runs = melo_orderings(h, opts);
  StageTimerScope split_scope(opts.diagnostics, "split");
  MeloBipartitionResult best;
  double best_objective = std::numeric_limits<double>::infinity();
  bool have = false;
  for (const MeloOrderingRun& run : runs) {
    const part::SplitResult split =
        min_fraction > 0.0
            ? part::best_min_cut_split(h, run.ordering, min_fraction)
            : part::best_ratio_cut_split(h, run.ordering);
    best.ordering_seconds += run.ordering_seconds;
    best.eigen_seconds = run.eigen_seconds;
    best.eigen_converged = run.eigen_converged;
    best.eigenvectors_used = run.eigenvectors_used;
    best.budget_exhausted = best.budget_exhausted || run.budget_exhausted;
    if (!split.feasible) continue;
    if (!have || split.objective < best_objective) {
      have = true;
      best_objective = split.objective;
      best.partition = part::split_to_partition(run.ordering, split.split);
      best.ordering = run.ordering;
      best.split = split.split;
      best.cut = split.cut;
    }
  }
  SP_CHECK_INPUT(have, "MELO bipartition: no feasible split");
  best.ratio_cut = part::ratio_cut(h, best.partition);
  return best;
}

MeloMultiwayResult melo_multiway(const graph::Hypergraph& h, std::uint32_t k,
                                 const MeloOptions& opts,
                                 std::size_t min_cluster_size,
                                 std::size_t max_cluster_size) {
  const std::vector<MeloOrderingRun> runs = melo_orderings(h, opts);
  StageTimerScope split_scope(opts.diagnostics, "split");
  spectral::DprpOptions dopts;
  dopts.k = k;
  dopts.min_cluster_size = min_cluster_size;
  dopts.max_cluster_size = max_cluster_size;
  dopts.parallel = opts.parallel;

  MeloMultiwayResult best;
  bool have = false;
  for (const MeloOrderingRun& run : runs) {
    const spectral::DprpResult dp = spectral::dprp_split(h, run.ordering, dopts);
    best.ordering_seconds += run.ordering_seconds;
    best.eigen_seconds = run.eigen_seconds;
    best.eigen_converged = run.eigen_converged;
    best.eigenvectors_used = run.eigenvectors_used;
    best.budget_exhausted = best.budget_exhausted || run.budget_exhausted;
    if (!have || dp.scaled_cost < best.scaled_cost) {
      have = true;
      best.partition = dp.partition;
      best.ordering = run.ordering;
      best.scaled_cost = dp.scaled_cost;
    }
  }
  SP_ASSERT(have);
  return best;
}

}  // namespace specpart::core
