#include "core/drivers.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/reduction.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "part/sweep_cut.h"
#include "util/error.h"
#include "util/stringutil.h"
#include "util/timer.h"

namespace specpart::core {

namespace {

/// Eigenpairs requested when num_eigenvectors == 0 (automatic d): enough
/// spectrum to expose the higher-order Cheeger gap, small enough that the
/// solve stays cheap.
constexpr std::size_t kAutoDimensionCap = 16;

/// Spectral-gap-guided d: keep the eigenvalue prefix ending at the largest
/// relative gap lambda_{i+1} / lambda_i over the nontrivial spectrum (the
/// higher-order Cheeger heuristic: a big ratio separates the cluster
/// eigenvalues from the rest). Trivial (~0) eigenvalues are skipped as
/// candidates, at least two columns are kept, and a gapless spectrum keeps
/// everything. Deterministic: the first maximal ratio wins.
std::size_t auto_dimension(const linalg::Vec& values) {
  const std::size_t m = values.size();
  if (m < 3) return m;
  const double eps = 1e-10 * std::max(1.0, std::abs(values[m - 1]));
  double best_ratio = 0.0;
  std::size_t best_keep = m;
  for (std::size_t i = 1; i + 1 < m; ++i) {
    if (values[i] <= eps) continue;  // still inside the trivial cluster
    const double ratio = values[i + 1] / values[i];
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best_keep = i + 1;
    }
  }
  return std::max<std::size_t>(best_keep, 2);
}

/// E(C) of a vertex set in a graph: total weight of edges leaving the set.
double set_degree(const graph::Graph& g, const std::vector<graph::NodeId>& c,
                  std::vector<char>& scratch) {
  scratch.assign(g.num_nodes(), 0);
  for (graph::NodeId v : c) scratch[v] = 1;
  double degree = 0.0;
  for (const graph::Edge& e : g.edges())
    if (scratch[e.u] != scratch[e.v]) degree += e.weight;
  return degree;
}

}  // namespace

std::vector<MeloOrderingRun> melo_orderings(const graph::Hypergraph& h,
                                            const MeloOptions& opts) {
  SP_CHECK_INPUT(h.num_nodes() >= 2, "MELO: need at least 2 vertices");

  Diagnostics* diag = opts.diagnostics;
  ComputeBudget* budget = opts.budget;

  Timer eigen_timer;
  // Lazy clique model: the Laplacian is assembled fused from the pins on
  // first use; a caching provider that hits never expands the model at all.
  model::ModelBuildOptions mbopts;
  mbopts.max_clique_pairs = opts.max_clique_pairs;
  mbopts.parallel = opts.parallel;
  const model::CliqueModel cm(h, opts.net_model, mbopts);
  spectral::EmbeddingOptions eopts = opts.embedding_options();
  // num_eigenvectors == 0 = automatic d: request a fixed slice of the low
  // spectrum and keep the prefix ending at the largest Cheeger gap below.
  // The fixed request keeps cache keys and the solve itself deterministic.
  const bool auto_d = opts.num_eigenvectors == 0;
  if (auto_d) eopts.count = kAutoDimensionCap;
  spectral::EigenBasis basis =
      opts.embedding_provider
          ? opts.embedding_provider(cm, eopts, diag, budget)
          : spectral::compute_eigenbasis(
                cm.operator_matrix(eopts.objective, diag), eopts, diag,
                budget);
  if (auto_d && basis.dimension() >= 3) {
    const std::size_t keep = auto_dimension(basis.values);
    if (keep < basis.dimension()) {
      basis.values.resize(keep);
      linalg::DenseMatrix kept(basis.n, keep);
      for (std::size_t j = 0; j < keep; ++j)
        kept.set_col(j, basis.vectors.col(j));
      basis.vectors = std::move(kept);
      basis.converged_pairs = std::min(basis.converged_pairs, keep);
    }
    // The selection is the requested d now — a kept prefix shorter than
    // the probe slice is the algorithm working, not a degraded basis.
    basis.requested = basis.dimension();
    if (diag != nullptr)
      diag->add_counter("eigensolve", "auto_d_selected", keep);
  }
  const double eigen_seconds = eigen_timer.seconds();

  // Consume the solver outcome instead of ignoring it: a degraded basis
  // lowers the effective d (the paper's own "fewer eigenvectors still
  // work" justifies running on the converged prefix); an unconverged one
  // is surfaced as a warning and in every result struct.
  const std::size_t d_effective = basis.dimension();
  SP_REQUIRE(d_effective >= 1, "MELO: eigenbasis has no usable column");
  if (diag != nullptr && d_effective < basis.requested)
    diag->fallback("ordering",
                   strprintf("degraded d from %zu to %zu (unconverged "
                             "trailing eigenpairs)",
                             basis.requested, d_effective));
  if (diag != nullptr && !basis.converged)
    diag->warn("eigensolve",
               strprintf("eigenbasis not fully converged (%zu of %zu "
                         "pair(s) met tolerance)",
                         basis.converged_pairs, d_effective));

  const double h0 =
      opts.h_override > 0.0 ? opts.h_override : default_h(basis);
  const VectorInstance base_instance =
      build_scaled_instance(basis, opts.scaling, h0);

  std::vector<char> scratch;
  std::vector<MeloOrderingRun> runs;
  const std::size_t starts = std::max<std::size_t>(1, opts.num_starts);
  for (std::size_t start = 0; start < starts; ++start) {
    // Later starts are pure quality improvement: skip them (keeping the
    // result valid) once the budget is gone. The first start always runs.
    if (start > 0 && !budget_ok(budget)) {
      if (diag != nullptr) diag->mark_budget_exhausted("ordering");
      break;
    }
    MeloOrderingRun run;
    run.h_initial = h0;
    run.h_final = h0;
    run.eigen_converged = basis.converged;
    run.eigenvectors_used = d_effective;

    MeloOrderingOptions oopts = opts.ordering_options(start);
    oopts.budget = budget;

    MeloReadjust readjust;
    const bool do_readjust = opts.readjust_h && opts.h_override <= 0.0 &&
                             scaling_uses_h(opts.scaling) &&
                             h.num_nodes() >= 8;
    if (do_readjust) {
      readjust.at = h.num_nodes() / 2;
      readjust.rebuild =
          [&](const std::vector<graph::NodeId>& members) -> VectorInstance {
        // The clique graph is only needed if readjustment actually fires;
        // cm derives it lazily (O(nnz) from the Laplacian when that was
        // built, fused from the pins otherwise).
        const double degree = set_degree(cm.graph(diag), members, scratch);
        run.h_final = readjusted_h(basis, members, degree);
        return build_scaled_instance(basis, opts.scaling, run.h_final);
      };
    }

    Timer order_timer;
    {
      StageTimerScope order_scope(diag, "ordering");
      run.ordering = melo_order_vectors(base_instance, oopts,
                                        do_readjust ? &readjust : nullptr);
    }
    run.ordering_seconds = order_timer.seconds();
    run.eigen_seconds = eigen_seconds;
    run.budget_exhausted = basis.budget_exhausted || !budget_ok(budget);
    if (run.budget_exhausted && diag != nullptr)
      diag->mark_budget_exhausted("ordering");
    runs.push_back(std::move(run));
  }

  if (opts.objective == ObjectiveModel::kNormalizedSymmetric) {
    // Cheeger sweep candidates: the classical normalized-spectral split
    // sweeps vertices sorted by the first nontrivial eigenvector of
    // D^{-1/2} L D^{-1/2}, which carries the Cheeger conductance
    // guarantee the d-dimensional melo orderings do not. Every further
    // eigenvector gets its own sweep too (the higher-order Cheeger
    // orderings — one per column, each an O(n log n) sort). They ride
    // along as extra runs, so the splitter keeps whichever ordering
    // yields the lowest objective. Only the normalized pipeline grows
    // these runs — default-objective results stay bit-identical.
    const std::size_t first = eopts.skip_trivial ? 0 : 1;
    for (std::size_t col = std::min(first, d_effective - 1);
         col < d_effective; ++col) {
      MeloOrderingRun run;
      run.h_initial = h0;
      run.h_final = h0;
      run.eigen_converged = basis.converged;
      run.eigenvectors_used = d_effective;
      run.eigen_seconds = eigen_seconds;
      run.budget_exhausted = basis.budget_exhausted || !budget_ok(budget);
      const linalg::Vec f = basis.vectors.col(col);
      Timer order_timer;
      run.ordering.resize(h.num_nodes());
      std::iota(run.ordering.begin(), run.ordering.end(), graph::NodeId{0});
      std::stable_sort(run.ordering.begin(), run.ordering.end(),
                       [&f](graph::NodeId a, graph::NodeId b) {
                         return f[a] < f[b];
                       });
      run.ordering_seconds = order_timer.seconds();
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

MeloBipartitionResult melo_bipartition(const graph::Hypergraph& h,
                                       const MeloOptions& opts,
                                       double min_fraction) {
  const std::vector<MeloOrderingRun> runs = melo_orderings(h, opts);
  StageTimerScope split_scope(opts.diagnostics, "split");
  // The splitter follows the objective model: the unnormalized pipeline
  // keeps the paper's min-cut / ratio-cut splits, the normalized pipeline
  // takes the conductance sweep cut over the same orderings. Both pick the
  // best run by their own objective value.
  const bool sweep_cut =
      opts.objective == ObjectiveModel::kNormalizedSymmetric;
  MeloBipartitionResult best;
  double best_objective = std::numeric_limits<double>::infinity();
  bool have = false;
  for (const MeloOrderingRun& run : runs) {
    const part::SplitResult split =
        sweep_cut
            ? part::best_conductance_split(h, run.ordering, min_fraction)
            : (min_fraction > 0.0
                   ? part::best_min_cut_split(h, run.ordering, min_fraction)
                   : part::best_ratio_cut_split(h, run.ordering));
    best.ordering_seconds += run.ordering_seconds;
    best.eigen_seconds = run.eigen_seconds;
    best.eigen_converged = run.eigen_converged;
    best.eigenvectors_used = run.eigenvectors_used;
    best.budget_exhausted = best.budget_exhausted || run.budget_exhausted;
    if (!split.feasible) continue;
    if (!have || split.objective < best_objective) {
      have = true;
      best_objective = split.objective;
      best.partition = part::split_to_partition(run.ordering, split.split);
      best.ordering = run.ordering;
      best.split = split.split;
      best.cut = split.cut;
    }
  }
  SP_CHECK_INPUT(have, "MELO bipartition: no feasible split");
  best.ratio_cut = part::ratio_cut(h, best.partition);
  best.conductance = part::conductance(h, best.partition);
  return best;
}

MeloMultiwayResult melo_multiway(const graph::Hypergraph& h, std::uint32_t k,
                                 const MeloOptions& opts,
                                 std::size_t min_cluster_size,
                                 std::size_t max_cluster_size) {
  const std::vector<MeloOrderingRun> runs = melo_orderings(h, opts);
  StageTimerScope split_scope(opts.diagnostics, "split");
  spectral::DprpOptions dopts;
  dopts.k = k;
  dopts.min_cluster_size = min_cluster_size;
  dopts.max_cluster_size = max_cluster_size;
  dopts.parallel = opts.parallel;

  MeloMultiwayResult best;
  bool have = false;
  for (const MeloOrderingRun& run : runs) {
    const spectral::DprpResult dp = spectral::dprp_split(h, run.ordering, dopts);
    best.ordering_seconds += run.ordering_seconds;
    best.eigen_seconds = run.eigen_seconds;
    best.eigen_converged = run.eigen_converged;
    best.eigenvectors_used = run.eigenvectors_used;
    best.budget_exhausted = best.budget_exhausted || run.budget_exhausted;
    if (!have || dp.scaled_cost < best.scaled_cost) {
      have = true;
      best.partition = dp.partition;
      best.ordering = run.ordering;
      best.scaled_cost = dp.scaled_cost;
    }
  }
  SP_ASSERT(have);
  return best;
}

}  // namespace specpart::core
