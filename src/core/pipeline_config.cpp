#include "core/pipeline_config.h"

#include "util/error.h"

namespace specpart::core {

spectral::EmbeddingOptions PipelineConfig::embedding_options() const {
  spectral::EmbeddingOptions eopts;
  eopts.count = num_eigenvectors;
  eopts.skip_trivial = !include_trivial;
  eopts.solver = solver;
  eopts.seed = seed;
  eopts.parallel = parallel;
  return eopts;
}

MeloOrderingOptions PipelineConfig::ordering_options(
    std::size_t start_rank) const {
  MeloOrderingOptions oopts;
  oopts.selection = selection;
  oopts.lazy_ranking = lazy_ranking;
  oopts.lazy_window = lazy_window;
  oopts.lazy_rerank_interval = lazy_rerank_interval;
  oopts.start_rank = start_rank;
  oopts.parallel = parallel;
  return oopts;
}

std::string_view coord_scaling_token(CoordScaling s) {
  switch (s) {
    case CoordScaling::kSqrtGap:
      return "sqrt_gap";
    case CoordScaling::kGap:
      return "gap";
    case CoordScaling::kInvSqrtLambda:
      return "inv_sqrt_lambda";
    case CoordScaling::kUnit:
      return "unit";
  }
  return "?";
}

std::string_view net_model_token(model::NetModel m) {
  switch (m) {
    case model::NetModel::kStandard:
      return "standard";
    case model::NetModel::kPartitioningSpecific:
      return "partitioning_specific";
    case model::NetModel::kFrankle:
      return "frankle";
  }
  return "?";
}

std::string_view selection_rule_token(SelectionRule s) {
  switch (s) {
    case SelectionRule::kMagnitude:
      return "magnitude";
    case SelectionRule::kProjection:
      return "projection";
    case SelectionRule::kCosine:
      return "cosine";
  }
  return "?";
}

std::string_view solver_backend_token(SolverBackend b) {
  switch (b) {
    case SolverBackend::kScalar:
      return "scalar";
    case SolverBackend::kBlock:
      return "block";
  }
  return "?";
}

std::string_view solver_strategy_token(SolverStrategy s) {
  switch (s) {
    case SolverStrategy::kFlat:
      return "flat";
    case SolverStrategy::kMultilevel:
      return "multilevel";
  }
  return "?";
}

CoordScaling parse_coord_scaling(std::string_view token) {
  if (token == "sqrt_gap") return CoordScaling::kSqrtGap;
  if (token == "gap") return CoordScaling::kGap;
  if (token == "inv_sqrt_lambda") return CoordScaling::kInvSqrtLambda;
  if (token == "unit") return CoordScaling::kUnit;
  throw Error("unknown scaling '" + std::string(token) +
              "' (expected sqrt_gap | gap | inv_sqrt_lambda | unit)");
}

model::NetModel parse_net_model(std::string_view token) {
  if (token == "standard") return model::NetModel::kStandard;
  if (token == "partitioning_specific")
    return model::NetModel::kPartitioningSpecific;
  if (token == "frankle") return model::NetModel::kFrankle;
  throw Error("unknown net model '" + std::string(token) +
              "' (expected standard | partitioning_specific | frankle)");
}

SelectionRule parse_selection_rule(std::string_view token) {
  if (token == "magnitude") return SelectionRule::kMagnitude;
  if (token == "projection") return SelectionRule::kProjection;
  if (token == "cosine") return SelectionRule::kCosine;
  throw Error("unknown selection rule '" + std::string(token) +
              "' (expected magnitude | projection | cosine)");
}

SolverBackend parse_solver_backend(std::string_view token) {
  if (token == "scalar") return SolverBackend::kScalar;
  if (token == "block") return SolverBackend::kBlock;
  throw Error("unknown solver backend '" + std::string(token) +
              "' (expected scalar | block)");
}

SolverStrategy parse_solver_strategy(std::string_view token) {
  if (token == "flat") return SolverStrategy::kFlat;
  if (token == "multilevel") return SolverStrategy::kMultilevel;
  throw Error("unknown solver strategy '" + std::string(token) +
              "' (expected flat | multilevel)");
}

}  // namespace specpart::core
