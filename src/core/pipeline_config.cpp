#include "core/pipeline_config.h"

#include <utility>

#include "util/error.h"

namespace specpart::core {

spectral::EmbeddingOptions PipelineConfig::embedding_options() const {
  spectral::EmbeddingOptions eopts;
  eopts.count = num_eigenvectors;
  eopts.skip_trivial = !include_trivial;
  eopts.solver = solver;
  eopts.seed = seed;
  eopts.parallel = parallel;
  eopts.objective = objective;
  return eopts;
}

MeloOrderingOptions PipelineConfig::ordering_options(
    std::size_t start_rank) const {
  MeloOrderingOptions oopts;
  oopts.selection = selection;
  oopts.lazy_ranking = lazy_ranking;
  oopts.lazy_window = lazy_window;
  oopts.lazy_rerank_interval = lazy_rerank_interval;
  oopts.start_rank = start_rank;
  oopts.parallel = parallel;
  return oopts;
}

namespace {

// One token table per enum knob: the single source every spelling-consumer
// reads. token() prints from it, parse() scans it, and the *_tokens()
// " | "-joined lists — quoted by both the parse error messages and the CLI
// binaries' --help text — are generated from it, so none of them can drift.
template <typename E>
struct TokenEntry {
  std::string_view token;
  E value;
};

constexpr TokenEntry<CoordScaling> kCoordScalingTable[] = {
    {"sqrt_gap", CoordScaling::kSqrtGap},
    {"gap", CoordScaling::kGap},
    {"inv_sqrt_lambda", CoordScaling::kInvSqrtLambda},
    {"unit", CoordScaling::kUnit},
};

constexpr TokenEntry<model::NetModel> kNetModelTable[] = {
    {"standard", model::NetModel::kStandard},
    {"partitioning_specific", model::NetModel::kPartitioningSpecific},
    {"frankle", model::NetModel::kFrankle},
};

constexpr TokenEntry<SelectionRule> kSelectionRuleTable[] = {
    {"magnitude", SelectionRule::kMagnitude},
    {"projection", SelectionRule::kProjection},
    {"cosine", SelectionRule::kCosine},
};

constexpr TokenEntry<SolverBackend> kSolverBackendTable[] = {
    {"scalar", SolverBackend::kScalar},
    {"block", SolverBackend::kBlock},
};

constexpr TokenEntry<SolverStrategy> kSolverStrategyTable[] = {
    {"flat", SolverStrategy::kFlat},
    {"multilevel", SolverStrategy::kMultilevel},
};

constexpr TokenEntry<ObjectiveModel> kObjectiveModelTable[] = {
    {"unnormalized", ObjectiveModel::kUnnormalized},
    {"normalized", ObjectiveModel::kNormalizedSymmetric},
};

template <typename E, std::size_t N>
std::string_view token_of(const TokenEntry<E> (&table)[N], E value) {
  for (const TokenEntry<E>& entry : table)
    if (entry.value == value) return entry.token;
  return "?";
}

template <typename E, std::size_t N>
std::string join_tokens(const TokenEntry<E> (&table)[N]) {
  std::string joined;
  for (std::size_t i = 0; i < N; ++i) {
    if (i > 0) joined += " | ";
    joined += table[i].token;
  }
  return joined;
}

template <typename E, std::size_t N>
E parse_token(const TokenEntry<E> (&table)[N], std::string_view token,
              const char* what, const std::string& accepted) {
  for (const TokenEntry<E>& entry : table)
    if (entry.token == token) return entry.value;
  throw Error("unknown " + std::string(what) + " '" + std::string(token) +
              "' (expected " + accepted + ")");
}

}  // namespace

std::string_view coord_scaling_token(CoordScaling s) {
  return token_of(kCoordScalingTable, s);
}

std::string_view net_model_token(model::NetModel m) {
  return token_of(kNetModelTable, m);
}

std::string_view selection_rule_token(SelectionRule s) {
  return token_of(kSelectionRuleTable, s);
}

std::string_view solver_backend_token(SolverBackend b) {
  return token_of(kSolverBackendTable, b);
}

std::string_view solver_strategy_token(SolverStrategy s) {
  return token_of(kSolverStrategyTable, s);
}

std::string_view objective_model_token(ObjectiveModel m) {
  return token_of(kObjectiveModelTable, m);
}

const std::string& coord_scaling_tokens() {
  static const std::string joined = join_tokens(kCoordScalingTable);
  return joined;
}

const std::string& net_model_tokens() {
  static const std::string joined = join_tokens(kNetModelTable);
  return joined;
}

const std::string& selection_rule_tokens() {
  static const std::string joined = join_tokens(kSelectionRuleTable);
  return joined;
}

const std::string& solver_backend_tokens() {
  static const std::string joined = join_tokens(kSolverBackendTable);
  return joined;
}

const std::string& solver_strategy_tokens() {
  static const std::string joined = join_tokens(kSolverStrategyTable);
  return joined;
}

const std::string& objective_model_tokens() {
  static const std::string joined = join_tokens(kObjectiveModelTable);
  return joined;
}

CoordScaling parse_coord_scaling(std::string_view token) {
  return parse_token(kCoordScalingTable, token, "scaling",
                     coord_scaling_tokens());
}

model::NetModel parse_net_model(std::string_view token) {
  return parse_token(kNetModelTable, token, "net model", net_model_tokens());
}

SelectionRule parse_selection_rule(std::string_view token) {
  return parse_token(kSelectionRuleTable, token, "selection rule",
                     selection_rule_tokens());
}

SolverBackend parse_solver_backend(std::string_view token) {
  return parse_token(kSolverBackendTable, token, "solver backend",
                     solver_backend_tokens());
}

SolverStrategy parse_solver_strategy(std::string_view token) {
  return parse_token(kSolverStrategyTable, token, "solver strategy",
                     solver_strategy_tokens());
}

ObjectiveModel parse_objective_model(std::string_view token) {
  return parse_token(kObjectiveModelTable, token, "objective model",
                     objective_model_tokens());
}

}  // namespace specpart::core
