// End-to-end MELO pipelines on netlists.
//
// These drivers wire the full paper pipeline together:
//   netlist --clique model--> graph --Lanczos--> eigenbasis
//           --reduction(H)--> vectors --MELO greedy--> ordering
//           --split / DP-RP--> partitioning
// and expose the experiment-facing knobs (d, weighting scheme, net model,
// H readjustment, multi-start, lazy ranking).
#pragma once

#include <cstdint>
#include <functional>

#include "core/melo.h"
#include "core/pipeline_config.h"
#include "core/reduction.h"
#include "graph/hypergraph.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "part/partition.h"
#include "spectral/dprp.h"
#include "spectral/embedding.h"
#include "util/budget.h"
#include "util/status.h"

namespace specpart::core {

/// Pluggable eigensolve: given the (lazy) clique model and the embedding
/// options implied by the pipeline config, produce the eigenbasis. The
/// default (an unset provider) solves model.operator_matrix(objective)
/// directly — the Laplacian built fused from the pins (or its
/// degree-normalized rescale), no intermediate Graph; the serving layer
/// installs
/// a content-addressed cache here, keyed on the hypergraph itself, so
/// repeated requests skip both clique expansion and Lanczos. A provider
/// MUST return the same basis the direct call would (or a deterministic
/// function of the request), or the serving determinism contract breaks.
using EmbeddingProvider = std::function<spectral::EigenBasis(
    const model::CliqueModel&, const spectral::EmbeddingOptions&,
    Diagnostics*, ComputeBudget*)>;

/// PipelineConfig (the value-semantic knobs, shared with the service's
/// PartitionRequest) plus the per-run attachments that only make sense for
/// one concrete invocation.
struct MeloOptions : PipelineConfig {
  /// Optional diagnostics sink (non-owning): per-stage timings, warnings
  /// and fallback records for this run. nullptr = no recording.
  Diagnostics* diagnostics = nullptr;
  /// Optional shared compute budget (non-owning): deadline and/or max
  /// iterations across eigensolve, ordering and splitting. On exhaustion
  /// the pipeline returns the best valid partition found so far with
  /// `budget_exhausted` set instead of running unboundedly.
  ComputeBudget* budget = nullptr;
  /// Optional eigensolve interceptor (see EmbeddingProvider). Unset =
  /// direct spectral::compute_eigenbasis call.
  EmbeddingProvider embedding_provider;
};

/// One constructed ordering with its H bookkeeping and timings.
struct MeloOrderingRun {
  part::Ordering ordering;
  double h_initial = 0.0;
  double h_final = 0.0;
  double eigen_seconds = 0.0;     // shared eigensolve (same for all runs)
  double ordering_seconds = 0.0;  // this run's greedy construction
  /// True when every eigenvector actually used met the solver tolerance.
  bool eigen_converged = true;
  /// Eigenvectors the run was built from; less than
  /// MeloOptions.num_eigenvectors when the fallback chain degraded d.
  std::size_t eigenvectors_used = 0;
  /// True when the compute budget ran out during this run.
  bool budget_exhausted = false;
};

/// Builds the eigenbasis once and constructs `opts.num_starts` orderings.
std::vector<MeloOrderingRun> melo_orderings(const graph::Hypergraph& h,
                                            const MeloOptions& opts);

struct MeloBipartitionResult {
  part::Partition partition;
  part::Ordering ordering;     // the winning ordering
  std::size_t split = 0;       // prefix length of the winning split
  double cut = 0.0;            // net cut
  double ratio_cut = 0.0;      // cut / (|C1| |C2|)
  /// Conductance phi = cut / min(vol, vol-complement) of the winning
  /// partition (part/sweep_cut.h) — the optimized objective under the
  /// normalized model, reported for comparison under the default too.
  double conductance = 0.0;
  double eigen_seconds = 0.0;
  double ordering_seconds = 0.0;  // sum over starts
  /// Eigensolver outcome actually consumed by the run (see MeloOrderingRun).
  bool eigen_converged = true;
  std::size_t eigenvectors_used = 0;
  /// True when the result is best-so-far under an exhausted ComputeBudget.
  bool budget_exhausted = false;
};

/// MELO bipartitioning. min_fraction = 0 selects the best ratio-cut split
/// over all prefixes; min_fraction > 0 (e.g. 0.45) selects the minimum-cut
/// split with both sides >= min_fraction * n — the Table 5 protocol.
/// Under objective = normalized the splitter is the conductance sweep cut
/// (part/sweep_cut.h) instead, with min_fraction as the same side floor.
MeloBipartitionResult melo_bipartition(const graph::Hypergraph& h,
                                       const MeloOptions& opts,
                                       double min_fraction = 0.0);

struct MeloMultiwayResult {
  part::Partition partition;
  part::Ordering ordering;
  double scaled_cost = 0.0;
  double eigen_seconds = 0.0;
  double ordering_seconds = 0.0;
  bool eigen_converged = true;
  std::size_t eigenvectors_used = 0;
  bool budget_exhausted = false;
};

/// MELO k-way partitioning: the best ordering is split by DP-RP under the
/// Scaled Cost objective (the Table 4 protocol). Size bounds of 0 keep
/// DP-RP unconstrained.
MeloMultiwayResult melo_multiway(const graph::Hypergraph& h, std::uint32_t k,
                                 const MeloOptions& opts,
                                 std::size_t min_cluster_size = 1,
                                 std::size_t max_cluster_size = 0);

}  // namespace specpart::core
