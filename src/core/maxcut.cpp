#include "core/maxcut.h"

#include <algorithm>
#include <cmath>

#include "core/melo.h"
#include "graph/hypergraph.h"
#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::core {

double max_cut_value(const graph::Graph& g, const part::Partition& p) {
  return part::cut_weight(g, p);
}

namespace {

/// z-vectors from the top `d` Laplacian eigenpairs:
/// z_i[j] = sqrt(lambda_j) mu_j(i).
VectorInstance top_spectrum_vectors(const graph::Graph& g, std::size_t d,
                                    std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  d = std::min(d, n);
  const linalg::SymCsrMatrix q = graph::build_laplacian(g);

  linalg::Vec values;           // descending
  linalg::DenseMatrix vectors;  // columns matching `values`
  if (n <= 320) {
    const linalg::EigenDecomposition dec =
        linalg::solve_symmetric_eigen(q.to_dense());
    values.resize(d);
    vectors = linalg::DenseMatrix(n, d);
    for (std::size_t j = 0; j < d; ++j) {
      values[j] = dec.values[n - 1 - j];
      vectors.set_col(j, dec.vectors.col(n - 1 - j));
    }
  } else {
    linalg::LanczosOptions opts;
    opts.num_eigenpairs = d;
    opts.seed = seed;
    auto apply = [&q](const linalg::Vec& x, linalg::Vec& y) {
      q.matvec(x, y);
    };
    const linalg::LanczosResult r =
        linalg::lanczos_largest_op(n, apply, q.gershgorin_upper(), opts);
    values = r.values;  // already descending
    vectors = r.vectors;
  }

  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(n, values.size());
  for (std::size_t j = 0; j < values.size(); ++j) {
    const double w = std::sqrt(std::max(0.0, values[j]));
    for (std::size_t i = 0; i < n; ++i)
      inst.vectors.at(i, j) = w * vectors.at(i, j);
  }
  return inst;
}

}  // namespace

MaxCutResult max_cut_melo(const graph::Graph& g, const MaxCutOptions& opts) {
  const std::size_t n = g.num_nodes();
  SP_CHECK_INPUT(n >= 2, "max_cut_melo: need at least 2 vertices");
  const VectorInstance inst =
      top_spectrum_vectors(g, opts.num_eigenvectors, opts.seed);
  const part::Ordering order =
      melo_order_vectors(inst, MeloOrderingOptions{});

  // Sweep all prefix splits, keep the MAXIMUM cut.
  const graph::Hypergraph h = graph::to_hypergraph(g);
  const std::vector<double> cuts = part::prefix_cuts(h, order);
  std::size_t best_split = 1;
  for (std::size_t i = 2; i < n; ++i)
    if (cuts[i] > cuts[best_split]) best_split = i;

  MaxCutResult result;
  result.partition = part::split_to_partition(order, best_split);
  result.cut = max_cut_value(g, result.partition);
  return result;
}

MaxCutResult max_cut_hyperplane(const graph::Graph& g,
                                const MaxCutOptions& opts) {
  const std::size_t n = g.num_nodes();
  SP_CHECK_INPUT(n >= 2, "max_cut_hyperplane: need at least 2 vertices");
  const VectorInstance inst =
      top_spectrum_vectors(g, opts.num_eigenvectors, opts.seed);
  const std::size_t d = inst.dimension();

  Rng rng(opts.seed);
  MaxCutResult best;
  bool have = false;
  for (std::size_t probe = 0;
       probe < std::max<std::size_t>(1, opts.num_probes); ++probe) {
    linalg::Vec r(d);
    for (double& x : r) x = rng.next_normal();
    std::vector<std::uint32_t> side(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      side[i] = linalg::dot(inst.vectors.row(i), r) >= 0.0 ? 0 : 1;
    part::Partition p(side, 2);
    if (p.cluster_size(0) == 0 || p.cluster_size(1) == 0) continue;
    const double cut = max_cut_value(g, p);
    if (!have || cut > best.cut) {
      best.partition = std::move(p);
      best.cut = cut;
      have = true;
    }
  }
  SP_CHECK_INPUT(have, "max_cut_hyperplane: no probe produced a bipartition");
  return best;
}

MaxCutResult max_cut_exact(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  SP_CHECK_INPUT(n >= 2 && n <= 24, "max_cut_exact: n must be in [2, 24]");
  MaxCutResult best;
  // Vertex 0 fixed to side 0 (complement symmetry).
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    std::vector<std::uint32_t> side(n, 0);
    for (std::size_t i = 1; i < n; ++i) side[i] = (mask >> (i - 1)) & 1u;
    part::Partition p(side, 2);
    const double cut = max_cut_value(g, p);
    if (cut > best.cut) {
      best.partition = std::move(p);
      best.cut = cut;
    }
  }
  return best;
}

}  // namespace specpart::core
