// Bottom-up cluster extraction via MELO orderings — the paper's closing
// direction ("it should be possible to identify such subsets of vectors and
// thereby construct high-quality clusterings") made concrete.
//
// Repeatedly: build the MELO ordering of the remaining sub-netlist, peel
// off the prefix with the best ratio cut (within size bounds) as a new
// cluster, and recurse on the remainder. Unlike DP-RP this does not fix k
// in advance — the netlist's own structure decides how many clusters come
// out.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/partition.h"

namespace specpart::core {

struct ClusteringOptions {
  std::size_t num_eigenvectors = 8;
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Size bounds for one extracted cluster, as fractions of the REMAINING
  /// vertices.
  double min_cluster_fraction = 0.10;
  double max_cluster_fraction = 0.50;
  /// Stop extracting once this many clusters exist (0 = keep going until
  /// the remainder is a single cluster's worth).
  std::uint32_t max_clusters = 0;
  std::uint64_t seed = 0xC1D5ULL;
};

struct ClusteringResult {
  part::Partition partition;
  std::uint32_t num_clusters = 0;
};

/// Extracts clusters until the remainder is small or max_clusters is
/// reached; the remainder becomes the final cluster. Every vertex is
/// assigned. Requires at least 2 vertices.
ClusteringResult extract_clusters(const graph::Hypergraph& h,
                                  const ClusteringOptions& opts);

}  // namespace specpart::core
