#include "core/reduction.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace specpart::core {

double default_h(const spectral::EigenBasis& basis) {
  const std::size_t d = basis.dimension();
  SP_REQUIRE(d >= 1, "default_h: empty basis");
  const double lambda_d = basis.values[d - 1];
  if (d >= basis.n) return lambda_d;
  double used = 0.0;
  for (double v : basis.values) used += v;
  const double unused_mean = (basis.laplacian_trace - used) /
                             static_cast<double>(basis.n - d);
  return std::max(unused_mean, lambda_d);
}

double readjusted_h(const spectral::EigenBasis& basis,
                    const std::vector<graph::NodeId>& members,
                    double cluster_degree) {
  const std::size_t d = basis.dimension();
  SP_REQUIRE(d >= 1, "readjusted_h: empty basis");
  const double lambda_d = basis.values[d - 1];
  if (d >= basis.n) return lambda_d;

  // alpha_j = mu_j^T X_C for the first d eigenvectors.
  double alpha_sq_used = 0.0;
  double lambda_alpha_sq_used = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    double alpha = 0.0;
    for (graph::NodeId v : members) alpha += basis.vectors.at(v, j);
    alpha_sq_used += alpha * alpha;
    lambda_alpha_sq_used += basis.values[j] * alpha * alpha;
  }
  // sum_j alpha_j^2 = |C|  and  sum_j lambda_j alpha_j^2 = E(C).
  const double alpha_sq_unused =
      static_cast<double>(members.size()) - alpha_sq_used;
  const double lambda_alpha_sq_unused =
      cluster_degree - lambda_alpha_sq_used;
  if (alpha_sq_unused <= 1e-9) return default_h(basis);
  return std::max(lambda_alpha_sq_unused / alpha_sq_unused, lambda_d);
}

VectorInstance build_max_sum_instance(const spectral::EigenBasis& basis,
                                      double h) {
  const std::size_t d = basis.dimension();
  const std::size_t n = basis.n;
  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(n, d);
  for (std::size_t j = 0; j < d; ++j) {
    const double w = std::sqrt(std::max(0.0, h - basis.values[j]));
    for (std::size_t i = 0; i < n; ++i)
      inst.vectors.at(i, j) = w * basis.vectors.at(i, j);
  }
  return inst;
}

const char* coord_scaling_name(CoordScaling s) {
  switch (s) {
    case CoordScaling::kSqrtGap:
      return "#1 sqrt(H-l)";
    case CoordScaling::kGap:
      return "#2 (H-l)";
    case CoordScaling::kInvSqrtLambda:
      return "#3 1/sqrt(l)";
    case CoordScaling::kUnit:
      return "#4 unit";
  }
  return "?";
}

bool scaling_uses_h(CoordScaling s) {
  return s == CoordScaling::kSqrtGap || s == CoordScaling::kGap;
}

VectorInstance build_scaled_instance(const spectral::EigenBasis& basis,
                                     CoordScaling scaling, double h) {
  const std::size_t d = basis.dimension();
  const std::size_t n = basis.n;
  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(n, d);
  for (std::size_t j = 0; j < d; ++j) {
    const double lambda = basis.values[j];
    double w = 1.0;
    switch (scaling) {
      case CoordScaling::kSqrtGap:
        w = std::sqrt(std::max(0.0, h - lambda));
        break;
      case CoordScaling::kGap:
        w = std::max(0.0, h - lambda);
        break;
      case CoordScaling::kInvSqrtLambda:
        w = lambda > 1e-9 ? 1.0 / std::sqrt(lambda) : 0.0;
        break;
      case CoordScaling::kUnit:
        w = 1.0;
        break;
    }
    for (std::size_t i = 0; i < n; ++i)
      inst.vectors.at(i, j) = w * basis.vectors.at(i, j);
  }
  return inst;
}

VectorInstance build_min_sum_instance(const spectral::EigenBasis& basis) {
  const std::size_t d = basis.dimension();
  const std::size_t n = basis.n;
  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(n, d);
  for (std::size_t j = 0; j < d; ++j) {
    const double w = std::sqrt(std::max(0.0, basis.values[j]));
    for (std::size_t i = 0; i < n; ++i)
      inst.vectors.at(i, j) = w * basis.vectors.at(i, j);
  }
  return inst;
}

}  // namespace specpart::core
