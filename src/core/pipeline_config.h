// Shared pipeline configuration: the knobs of the netlist -> clique model
// -> eigensolve -> MELO -> split pipeline, in one value-semantic struct.
//
// Before this header existed the same knobs were duplicated across
// MeloOptions, MeloOrderingOptions and every driver call site; the serving
// layer (src/service) would have added a fourth copy. Instead, everything
// that *configures* a pipeline run lives here — MeloOptions is now
// PipelineConfig plus the per-run attachments (diagnostics sink, compute
// budget, embedding provider), and the service's PartitionRequest carries a
// PipelineConfig verbatim, so the CLI and the service cannot drift apart.
//
// The enum token helpers give every enum knob a stable machine-readable
// spelling (lower_snake tokens) used by the wire protocol, the --json CLI
// output and the loadgen; they are parsed case-sensitively and round-trip
// exactly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/melo.h"
#include "core/reduction.h"
#include "model/clique_models.h"
#include "spectral/embedding.h"
#include "util/parallel.h"

namespace specpart::core {

/// The single solver-configuration struct (defined in linalg so the
/// spectral layer can consume it without depending on core). PipelineConfig
/// owns the instance every layer passes through.
using SolverOptions = linalg::SolverOptions;
using SolverBackend = linalg::SolverBackend;
using SolverStrategy = linalg::SolverStrategy;
using ObjectiveModel = linalg::ObjectiveModel;

/// Value-semantic pipeline knobs shared by the CLI drivers, the experiment
/// runners and the partitioning service. See MeloOptions (core/drivers.h)
/// for the per-run attachments layered on top.
struct PipelineConfig {
  /// Number of eigenvectors d used to build the vertex vectors. When
  /// include_trivial is true this count includes the trivial
  /// (lambda = 0, constant) eigenvector, as in the reduction theory; the
  /// paper's "MELO with two eigenvectors" = trivial + Fiedler.
  /// 0 = automatic: solve a fixed 16-pair slice of the low spectrum and
  /// keep the prefix ending at the largest relative eigenvalue gap
  /// lambda_{i+1}/lambda_i (the higher-order Cheeger heuristic).
  std::size_t num_eigenvectors = 10;
  bool include_trivial = true;
  /// Weighting scheme #1-#4: how eigenvector coordinates are scaled.
  CoordScaling scaling = CoordScaling::kSqrtGap;
  /// Greedy selection rule (kept at magnitude for the paper's pipeline).
  SelectionRule selection = SelectionRule::kMagnitude;
  /// Recompute H from the first half-ordering and rescale coordinates
  /// (the paper's readjustment step; only affects H-based scalings).
  bool readjust_h = true;
  /// Override H (> 0); 0 = automatic (default_h / readjusted_h).
  double h_override = 0.0;
  bool lazy_ranking = false;
  std::size_t lazy_window = 32;
  std::size_t lazy_rerank_interval = 64;
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Diversified orderings: run r uses the (r+1)-th longest vector as the
  /// seed vertex; the best split across runs wins.
  std::size_t num_starts = 1;
  /// Eigensolve configuration: backend (scalar | block), tolerance, dense
  /// threshold / fallback limit, iteration caps. The former top-level
  /// dense_threshold / dense_fallback_limit knobs live inside.
  SolverOptions solver;
  /// Which symmetric operator the spectral pipeline optimizes
  /// (linalg/objective.h): the paper's unnormalized min-cut Laplacian
  /// (default — the byte-identity anchor for cache keys, wire frames and
  /// stored bases) or the degree-normalized operator whose splits minimize
  /// conductance through the sweep-cut splitter (part/sweep_cut.h).
  ObjectiveModel objective = ObjectiveModel::kUnnormalized;
  std::uint64_t seed = 0x3E10ULL;
  /// Clique-pair admission budget for the net model: when > 0 and the
  /// exact expansion size sum p(p-1)/2 exceeds it, the pipeline fails fast
  /// with a structured `model_too_large` Error instead of attempting the
  /// allocation (see model::ModelBuildOptions::max_clique_pairs).
  /// 0 = unlimited.
  std::size_t max_clique_pairs = 0;
  /// Compute-kernel threading (see util/parallel.h), forwarded to the
  /// eigensolver, the MELO greedy scan and the DP-RP split. The serial
  /// default is byte-identical to the pre-parallel implementation.
  ParallelConfig parallel;

  /// Eigensolve options implied by this config (count, trivial-pair
  /// accounting, thresholds, seed, threading).
  spectral::EmbeddingOptions embedding_options() const;

  /// Greedy-ordering options implied by this config for multi-start run
  /// `start_rank` (budget attachment is the caller's job).
  MeloOrderingOptions ordering_options(std::size_t start_rank = 0) const;
};

/// Stable machine-readable token for each enum knob ("sqrt_gap",
/// "partitioning_specific", "magnitude", ...). Distinct from the pretty
/// display names (coord_scaling_name etc.), which keep their table-header
/// spellings.
std::string_view coord_scaling_token(CoordScaling s);
std::string_view net_model_token(model::NetModel m);
std::string_view selection_rule_token(SelectionRule s);
std::string_view solver_backend_token(SolverBackend b);
std::string_view solver_strategy_token(SolverStrategy s);
std::string_view objective_model_token(ObjectiveModel m);

/// Parse a token back. Throws specpart::Error on an unknown token, naming
/// the accepted spellings.
CoordScaling parse_coord_scaling(std::string_view token);
model::NetModel parse_net_model(std::string_view token);
SelectionRule parse_selection_rule(std::string_view token);
SolverBackend parse_solver_backend(std::string_view token);
SolverStrategy parse_solver_strategy(std::string_view token);
ObjectiveModel parse_objective_model(std::string_view token);

/// Accepted spellings of each enum knob, " | "-joined ("scalar | block"),
/// generated from the same token tables the parse_* functions read — the
/// single source of truth the CLI binaries' --help text and the parse
/// error messages both quote, so they cannot drift.
const std::string& coord_scaling_tokens();
const std::string& net_model_tokens();
const std::string& selection_rule_tokens();
const std::string& solver_backend_tokens();
const std::string& solver_strategy_tokens();
const std::string& objective_model_tokens();

}  // namespace specpart::core
