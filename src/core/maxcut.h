// Max-cut via the vector partitioning lens (paper section "Max Cut").
//
// The paper observes that the same mapping that reduces min-cut to min-sum
// vector partitioning — vertex i -> row i of Lambda^{1/2} M^T, i.e.
// z_i[j] = sqrt(lambda_j) mu_j(i) — reduces MAX-cut to MAX-sum vector
// partitioning, because sum_h ||Z_h||^2 = f(P_k) identically at d = n.
//
// This module makes that executable: the max-cut objective, the reduction,
// a MELO-style greedy that *maximizes* the cut by splitting an ordering of
// the z-vectors, and a Goemans-Williamson-flavoured random-hyperplane
// rounding on the truncated spectral embedding (the paper cites [22]'s
// probe/rounding view of the same geometry).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "part/partition.h"

namespace specpart::core {

/// Total weight of cut edges of a bipartition (each edge once): the
/// max-cut objective.
double max_cut_value(const graph::Graph& g, const part::Partition& p);

struct MaxCutOptions {
  /// Eigenvectors used (counted from the LARGEST eigenvalues — for max-cut
  /// the top of the spectrum carries the signal).
  std::size_t num_eigenvectors = 8;
  /// Random hyperplane probes for the rounding heuristic.
  std::size_t num_probes = 64;
  std::uint64_t seed = 0xAC5ULL;
};

struct MaxCutResult {
  part::Partition partition;
  double cut = 0.0;
};

/// Max-cut bipartitioning via MELO-on-z-vectors: build z_i from the top
/// `num_eigenvectors` eigenpairs, construct the magnitude-greedy ordering,
/// and take the prefix split of MAXIMUM cut.
MaxCutResult max_cut_melo(const graph::Graph& g, const MaxCutOptions& opts);

/// Max-cut bipartitioning via random-hyperplane rounding of the spectral
/// embedding: each probe direction r assigns v by sign(z_v . r); the best
/// probe wins.
MaxCutResult max_cut_hyperplane(const graph::Graph& g,
                                const MaxCutOptions& opts);

/// Exhaustive optimum for tests (n <= 24).
MaxCutResult max_cut_exact(const graph::Graph& g);

}  // namespace specpart::core
