// Vector partitioning — the problem the paper reduces graph partitioning to.
//
// An instance is a set of n vectors in d-space (rows of a matrix). A k-way
// partition S_k groups them into subsets S_1..S_k with subset vectors
// Y_h = sum_{y in S_h} y; the objective is the sum of squared subset-vector
// magnitudes g(S_k) = sum_h ||Y_h||^2, either maximized (max-sum, the form
// min-cut reduces to) or minimized (min-sum, via a different vector
// construction — see reduction.h). Corollary 5: min-sum vector partitioning
// is NP-hard; the exact solvers here are exponential and exist as oracles
// for small-instance tests and for studying the reduction.
#pragma once

#include <cstdint>

#include "linalg/dense.h"
#include "part/partition.h"

namespace specpart::core {

/// A vector partitioning instance: row i of `vectors` is the vector of
/// element i.
struct VectorInstance {
  linalg::DenseMatrix vectors;  // n x d

  std::size_t size() const { return vectors.rows(); }
  std::size_t dimension() const { return vectors.cols(); }
};

/// Subset vectors Y_h = sum of rows assigned to cluster h.
std::vector<linalg::Vec> subset_vectors(const VectorInstance& inst,
                                        const part::Partition& p);

/// g(S_k) = sum_h ||Y_h||^2.
double sum_of_squared_magnitudes(const VectorInstance& inst,
                                 const part::Partition& p);

/// Exhaustive max-sum solver: best of all k^n assignments whose cluster
/// sizes lie in [min_size, max_size] (0 = no upper bound). Only for tiny
/// instances (k^n enumerations); guarded by an input check.
part::Partition solve_max_sum_exact(const VectorInstance& inst,
                                    std::uint32_t k, std::size_t min_size = 0,
                                    std::size_t max_size = 0);

/// Exhaustive min-sum solver with the same constraints.
part::Partition solve_min_sum_exact(const VectorInstance& inst,
                                    std::uint32_t k, std::size_t min_size = 0,
                                    std::size_t max_size = 0);

/// Greedy local search on the max-sum objective — the paper's closing
/// suggestion that "more sophisticated vector partitioning heuristics hold
/// much promise", in its simplest form: repeatedly relocate the vector
/// whose move raises sum_h ||Y_h||^2 the most, subject to cluster size
/// bounds, until no improving move exists (or max_moves is hit). The move
/// gain is evaluated in O(d): delta = 2 (Y_b - Y_a) . y + 2 ||y||^2. When
/// no single move improves (e.g. exact size bounds block all relocations),
/// size-preserving pair swaps are tried as well.
/// Returns the improved partition; the objective never decreases.
part::Partition vp_local_search_max_sum(const VectorInstance& inst,
                                        part::Partition initial,
                                        std::size_t min_size = 0,
                                        std::size_t max_size = 0,
                                        std::size_t max_moves = 0);

}  // namespace specpart::core
