#include "core/melo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace specpart::core {

const char* selection_rule_name(SelectionRule s) {
  switch (s) {
    case SelectionRule::kMagnitude:
      return "magnitude";
    case SelectionRule::kProjection:
      return "projection";
    case SelectionRule::kCosine:
      return "cosine";
  }
  return "?";
}

namespace {

/// Greedy state: rows of the instance, running subset sum, and the scheme
/// evaluation. Kept separate from the selection policy (exact vs lazy).
class MeloState {
 public:
  MeloState(const VectorInstance& inst, SelectionRule scheme)
      : scheme_(scheme), d_(inst.dimension()) {
    load(inst);
    sum_.assign(d_, 0.0);
  }

  std::size_t size() const { return rows_.size(); }

  /// Replaces coordinates (H readjustment) and recomputes the subset sum
  /// over `chosen`.
  void reload(const VectorInstance& inst,
              const std::vector<graph::NodeId>& chosen) {
    SP_ASSERT(inst.size() == rows_.size() && inst.dimension() == d_);
    load(inst);
    sum_.assign(d_, 0.0);
    for (graph::NodeId v : chosen)
      for (std::size_t j = 0; j < d_; ++j) sum_[j] += rows_[v][j];
    sum_norm_sq_ = linalg::norm_sq(sum_);
  }

  /// Selection-rule value of appending vertex v to the current subset.
  double key(graph::NodeId v) const {
    const linalg::Vec& y = rows_[v];
    const double s_dot_y = linalg::dot(sum_, y);
    const double y_sq = norms_sq_[v];
    switch (scheme_) {
      case SelectionRule::kMagnitude:
        return sum_norm_sq_ + 2.0 * s_dot_y + y_sq;
      case SelectionRule::kProjection: {
        if (sum_norm_sq_ <= 1e-300) return y_sq;  // empty: longest first
        return s_dot_y;
      }
      case SelectionRule::kCosine: {
        if (sum_norm_sq_ <= 1e-300) return y_sq;
        const double y_norm = std::sqrt(y_sq);
        if (y_norm <= 1e-300) return -std::numeric_limits<double>::infinity();
        return s_dot_y / y_norm;
      }
    }
    return 0.0;
  }

  void select(graph::NodeId v) {
    for (std::size_t j = 0; j < d_; ++j) sum_[j] += rows_[v][j];
    sum_norm_sq_ = linalg::norm_sq(sum_);
  }

  double row_norm_sq(graph::NodeId v) const { return norms_sq_[v]; }

 private:
  void load(const VectorInstance& inst) {
    const std::size_t n = inst.size();
    rows_.resize(n);
    norms_sq_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      rows_[i] = inst.vectors.row(i);
      norms_sq_[i] = linalg::norm_sq(rows_[i]);
    }
  }

  SelectionRule scheme_;
  std::size_t d_;
  std::vector<linalg::Vec> rows_;
  std::vector<double> norms_sq_;
  linalg::Vec sum_;
  double sum_norm_sq_ = 0.0;
};

graph::NodeId pick_start(const MeloState& state, std::size_t start_rank,
                         std::size_t n) {
  // (start_rank+1)-th longest vector; ties by vertex id.
  std::vector<graph::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t rank = std::min(start_rank, n - 1);
  std::nth_element(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(rank),
                   ids.end(), [&](graph::NodeId a, graph::NodeId b) {
                     const double na = state.row_norm_sq(a);
                     const double nb = state.row_norm_sq(b);
                     if (na != nb) return na > nb;
                     return a < b;
                   });
  return ids[rank];
}

}  // namespace

part::Ordering melo_order_vectors(const VectorInstance& inst,
                                  const MeloOrderingOptions& opts,
                                  const MeloReadjust* readjust) {
  const std::size_t n = inst.size();
  SP_CHECK_INPUT(n >= 1, "MELO: empty instance");
  MeloState state(inst, opts.selection);

  std::vector<char> chosen(n, 0);
  part::Ordering order;
  order.reserve(n);

  auto take = [&](graph::NodeId v) {
    chosen[v] = 1;
    state.select(v);
    order.push_back(v);
    if (readjust != nullptr && readjust->at != 0 &&
        order.size() == readjust->at && order.size() < n) {
      const VectorInstance rebuilt = readjust->rebuild(order);
      state.reload(rebuilt, order);
    }
  };

  // Budget exhaustion mid-construction: the ordering must still be a full
  // permutation for the split sweeps, so the remaining vertices are
  // appended in id order (cheap, deterministic) instead of aborting.
  auto complete_cheaply = [&]() {
    for (graph::NodeId v = 0; v < n; ++v)
      if (!chosen[v]) {
        chosen[v] = 1;
        order.push_back(v);
      }
  };

  take(pick_start(state, opts.start_rank, n));

  if (!opts.lazy_ranking) {
    // Exact O(d n^2): evaluate every unchosen vector each step.
    while (order.size() < n) {
      if (!budget_charge(opts.budget)) {
        complete_cheaply();
        break;
      }
      graph::NodeId best = UINT32_MAX;
      double best_key = -std::numeric_limits<double>::infinity();
      for (graph::NodeId v = 0; v < n; ++v) {
        if (chosen[v]) continue;
        const double key = state.key(v);
        if (best == UINT32_MAX || key > best_key) {
          best_key = key;
          best = v;
        }
      }
      SP_ASSERT(best != UINT32_MAX);
      take(best);
    }
    return order;
  }

  // Lazy ranking: keep a window T of the top-ranked unchosen vectors under
  // a periodically refreshed key snapshot; evaluate only T exactly.
  std::vector<graph::NodeId> ranked;   // unchosen, ordered by snapshot key
  std::size_t ranked_next = 0;         // next snapshot vertex to feed into T
  std::vector<graph::NodeId> window;
  std::size_t since_rerank = 0;

  auto rerank = [&]() {
    ranked.clear();
    for (graph::NodeId v = 0; v < n; ++v)
      if (!chosen[v]) ranked.push_back(v);
    std::vector<double> snapshot(n, 0.0);
    for (graph::NodeId v : ranked) snapshot[v] = state.key(v);
    std::sort(ranked.begin(), ranked.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                if (snapshot[a] != snapshot[b])
                  return snapshot[a] > snapshot[b];
                return a < b;
              });
    window.clear();
    ranked_next = 0;
    while (window.size() < std::max<std::size_t>(1, opts.lazy_window) &&
           ranked_next < ranked.size())
      window.push_back(ranked[ranked_next++]);
    since_rerank = 0;
  };

  rerank();
  while (order.size() < n) {
    if (!budget_charge(opts.budget)) {
      complete_cheaply();
      break;
    }
    if (window.empty() ||
        since_rerank >= std::max<std::size_t>(1, opts.lazy_rerank_interval)) {
      rerank();
    }
    SP_ASSERT(!window.empty());
    // Exact evaluation inside the window only.
    std::size_t best_slot = 0;
    double best_key = -std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < window.size(); ++s) {
      const double key = state.key(window[s]);
      if (key > best_key) {
        best_key = key;
        best_slot = s;
      }
    }
    const graph::NodeId v = window[best_slot];
    window.erase(window.begin() + static_cast<std::ptrdiff_t>(best_slot));
    take(v);
    ++since_rerank;
    // Grow T with the next snapshot-ranked unchosen vector.
    while (ranked_next < ranked.size()) {
      const graph::NodeId cand = ranked[ranked_next++];
      if (!chosen[cand]) {
        window.push_back(cand);
        break;
      }
    }
  }
  return order;
}

}  // namespace specpart::core
