#include "core/melo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.h"

namespace specpart::core {

const char* selection_rule_name(SelectionRule s) {
  switch (s) {
    case SelectionRule::kMagnitude:
      return "magnitude";
    case SelectionRule::kProjection:
      return "projection";
    case SelectionRule::kCosine:
      return "cosine";
  }
  return "?";
}

namespace {

/// Block size for the parallel key scans. Fixed per call site (part of the
/// determinism contract): small enough that mid-size instances still fan
/// out across threads, large enough to amortize dispatch.
constexpr std::size_t kScanGrain = 256;

/// Greedy state: rows of the instance, running subset sum, and the scheme
/// evaluation. Kept separate from the selection policy (exact vs lazy).
///
/// Rows live in one contiguous row-major buffer (n x d doubles) instead of
/// n separate heap vectors: the per-step scan walks it linearly, which is
/// what lets the blocked parallel argmax run at memory bandwidth.
class MeloState {
 public:
  MeloState(const VectorInstance& inst, SelectionRule scheme)
      : scheme_(scheme), d_(inst.dimension()) {
    load(inst);
    sum_.assign(d_, 0.0);
  }

  std::size_t size() const { return norms_sq_.size(); }

  /// Replaces coordinates (H readjustment) and recomputes the subset sum
  /// over `chosen`.
  void reload(const VectorInstance& inst,
              const std::vector<graph::NodeId>& chosen) {
    SP_ASSERT(inst.size() == size() && inst.dimension() == d_);
    load(inst);
    sum_.assign(d_, 0.0);
    for (graph::NodeId v : chosen) {
      const double* y = row(v);
      for (std::size_t j = 0; j < d_; ++j) sum_[j] += y[j];
    }
    sum_norm_sq_ = linalg::norm_sq(sum_);
  }

  /// Selection-rule value of appending vertex v to the current subset.
  double key(graph::NodeId v) const {
    const double* y = row(v);
    double s_dot_y = 0.0;
    for (std::size_t j = 0; j < d_; ++j) s_dot_y += sum_[j] * y[j];
    const double y_sq = norms_sq_[v];
    switch (scheme_) {
      case SelectionRule::kMagnitude:
        return sum_norm_sq_ + 2.0 * s_dot_y + y_sq;
      case SelectionRule::kProjection: {
        if (sum_norm_sq_ <= 1e-300) return y_sq;  // empty: longest first
        return s_dot_y;
      }
      case SelectionRule::kCosine: {
        if (sum_norm_sq_ <= 1e-300) return y_sq;
        const double y_norm = std::sqrt(y_sq);
        if (y_norm <= 1e-300) return -std::numeric_limits<double>::infinity();
        return s_dot_y / y_norm;
      }
    }
    return 0.0;
  }

  void select(graph::NodeId v) {
    const double* y = row(v);
    for (std::size_t j = 0; j < d_; ++j) sum_[j] += y[j];
    sum_norm_sq_ = linalg::norm_sq(sum_);
  }

  double row_norm_sq(graph::NodeId v) const { return norms_sq_[v]; }

 private:
  const double* row(graph::NodeId v) const { return flat_.data() + v * d_; }

  void load(const VectorInstance& inst) {
    const std::size_t n = inst.size();
    const double* data = inst.vectors.data();
    flat_.assign(data, data + n * d_);
    norms_sq_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double* y = flat_.data() + i * d_;
      double s = 0.0;
      for (std::size_t j = 0; j < d_; ++j) s += y[j] * y[j];
      norms_sq_[i] = s;
    }
  }

  SelectionRule scheme_;
  std::size_t d_;
  std::vector<double> flat_;  // n x d, row-major
  std::vector<double> norms_sq_;
  linalg::Vec sum_;
  double sum_norm_sq_ = 0.0;
};

graph::NodeId pick_start(const MeloState& state, std::size_t start_rank,
                         std::size_t n) {
  // (start_rank+1)-th longest vector; ties by vertex id.
  std::vector<graph::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t rank = std::min(start_rank, n - 1);
  std::nth_element(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(rank),
                   ids.end(), [&](graph::NodeId a, graph::NodeId b) {
                     const double na = state.row_norm_sq(a);
                     const double nb = state.row_norm_sq(b);
                     if (na != nb) return na > nb;
                     return a < b;
                   });
  return ids[rank];
}

}  // namespace

part::Ordering melo_order_vectors(const VectorInstance& inst,
                                  const MeloOrderingOptions& opts,
                                  const MeloReadjust* readjust) {
  const std::size_t n = inst.size();
  SP_CHECK_INPUT(n >= 1, "MELO: empty instance");
  MeloState state(inst, opts.selection);
  ParallelConfig scan = opts.parallel;
  scan.grain = kScanGrain;

  std::vector<char> chosen(n, 0);
  part::Ordering order;
  order.reserve(n);

  // Returns true when the selection triggered an H-readjust reload (every
  // snapshot key is stale afterwards).
  auto take = [&](graph::NodeId v) -> bool {
    chosen[v] = 1;
    state.select(v);
    order.push_back(v);
    if (readjust != nullptr && readjust->at != 0 &&
        order.size() == readjust->at && order.size() < n) {
      const VectorInstance rebuilt = readjust->rebuild(order);
      state.reload(rebuilt, order);
      return true;
    }
    return false;
  };

  // Budget exhaustion mid-construction: the ordering must still be a full
  // permutation for the split sweeps, so the remaining vertices are
  // appended in id order (cheap, deterministic) instead of aborting.
  auto complete_cheaply = [&]() {
    for (graph::NodeId v = 0; v < n; ++v)
      if (!chosen[v]) {
        chosen[v] = 1;
        order.push_back(v);
      }
  };

  take(pick_start(state, opts.start_rank, n));

  if (!opts.lazy_ranking) {
    // Exact O(d n^2 / p): every unchosen vector is evaluated each step by a
    // blocked argmax. The (key, smallest-id) combine reproduces the serial
    // ascending scan exactly, so the ordering does not depend on the
    // thread count.
    while (order.size() < n) {
      if (!budget_charge(opts.budget)) {
        complete_cheaply();
        break;
      }
      const std::size_t best = parallel_argmax(
          scan, n,
          [&](std::size_t v) {
            return state.key(static_cast<graph::NodeId>(v));
          },
          [&](std::size_t v) { return chosen[v] == 0; });
      SP_ASSERT(best < n);
      take(static_cast<graph::NodeId>(best));
    }
    return order;
  }

  // Lazy ranking: keep a window T of the top-ranked unchosen vectors under
  // a periodically refreshed key snapshot; evaluate only T exactly.
  std::vector<graph::NodeId> ranked;   // unchosen, ordered by snapshot key
  std::size_t ranked_next = 0;         // next snapshot vertex to feed into T
  std::vector<graph::NodeId> window;
  std::size_t since_rerank = 0;

  auto rerank = [&]() {
    ranked.clear();
    for (graph::NodeId v = 0; v < n; ++v)
      if (!chosen[v]) ranked.push_back(v);
    std::vector<double> snapshot(n, 0.0);
    parallel_for(scan, 0, ranked.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r)
        snapshot[ranked[r]] = state.key(ranked[r]);
    });
    std::sort(ranked.begin(), ranked.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                if (snapshot[a] != snapshot[b])
                  return snapshot[a] > snapshot[b];
                return a < b;
              });
    window.clear();
    ranked_next = 0;
    while (window.size() < std::max<std::size_t>(1, opts.lazy_window) &&
           ranked_next < ranked.size())
      window.push_back(ranked[ranked_next++]);
    since_rerank = 0;
  };

  rerank();
  while (order.size() < n) {
    if (!budget_charge(opts.budget)) {
      complete_cheaply();
      break;
    }
    if (window.empty() ||
        since_rerank >= std::max<std::size_t>(1, opts.lazy_rerank_interval)) {
      rerank();
    }
    SP_ASSERT(!window.empty());
    // Exact evaluation inside the window only. Ties break toward the
    // smaller window slot, which keeps the choice deterministic for any
    // thread count.
    const std::size_t best_slot = parallel_argmax(
        scan, window.size(),
        [&](std::size_t s) { return state.key(window[s]); },
        [](std::size_t) { return true; });
    const graph::NodeId v = window[best_slot];
    // Swap-with-back removal: O(1) instead of erase()'s O(T) shift.
    window[best_slot] = window.back();
    window.pop_back();
    if (take(v)) {
      // H-readjust reload: every snapshot key (and the ranked order built
      // from them) is stale under the new coordinates — re-rank instead of
      // continuing to feed the window from the outdated list.
      rerank();
      continue;
    }
    ++since_rerank;
    // Grow T with the next snapshot-ranked unchosen vector.
    while (ranked_next < ranked.size()) {
      const graph::NodeId cand = ranked[ranked_next++];
      if (!chosen[cand]) {
        window.push_back(cand);
        break;
      }
    }
  }
  return order;
}

}  // namespace specpart::core
