#include "core/clustering.h"

#include <algorithm>
#include <numeric>

#include "core/drivers.h"
#include "part/ordering.h"
#include "util/error.h"

namespace specpart::core {

ClusteringResult extract_clusters(const graph::Hypergraph& h,
                                  const ClusteringOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(n >= 2, "extract_clusters: need at least 2 vertices");
  SP_CHECK_INPUT(opts.min_cluster_fraction > 0.0 &&
                     opts.min_cluster_fraction <= opts.max_cluster_fraction &&
                     opts.max_cluster_fraction < 1.0,
                 "extract_clusters: need 0 < min <= max < 1 fractions");

  // Size window in vertices, relative to the ORIGINAL netlist, so late
  // extractions cannot shred the tail into slivers.
  const std::size_t lo = std::max<std::size_t>(
      2, static_cast<std::size_t>(opts.min_cluster_fraction *
                                  static_cast<double>(n)));
  const std::size_t hi = std::max(
      lo, static_cast<std::size_t>(opts.max_cluster_fraction *
                                   static_cast<double>(n)));

  std::vector<std::uint32_t> assignment(n, 0);
  std::vector<graph::NodeId> remaining(n);
  std::iota(remaining.begin(), remaining.end(), 0u);

  std::uint32_t next_cluster = 0;
  MeloOptions melo;
  melo.num_eigenvectors = opts.num_eigenvectors;
  melo.net_model = opts.net_model;
  melo.seed = opts.seed;

  // Extract while both the candidate cluster and the remainder can stay
  // within the window.
  while (remaining.size() >= 2 * lo &&
         (opts.max_clusters == 0 || next_cluster + 1 < opts.max_clusters)) {
    const graph::Hypergraph sub = h.induced(remaining);
    if (sub.num_nets() == 0) break;  // no structure left to read

    melo.seed += 1;
    const std::vector<MeloOrderingRun> runs = melo_orderings(sub, melo);
    const part::Ordering& order = runs.front().ordering;
    const std::vector<double> cuts = part::prefix_cuts(sub, order);

    // Best prefix by external density E(C)/|C| within the size window.
    const std::size_t window_hi =
        std::min(hi, remaining.size() - lo);
    if (window_hi < lo) break;
    std::size_t take = lo;
    double best_density = cuts[lo] / static_cast<double>(lo);
    for (std::size_t i = lo + 1; i <= window_hi; ++i) {
      const double density = cuts[i] / static_cast<double>(i);
      if (density < best_density) {
        best_density = density;
        take = i;
      }
    }

    // The prefix becomes a cluster; the rest stays in play.
    std::vector<graph::NodeId> rest;
    rest.reserve(remaining.size() - take);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const graph::NodeId original = remaining[order[pos]];
      if (pos < take)
        assignment[original] = next_cluster;
      else
        rest.push_back(original);
    }
    ++next_cluster;
    remaining = std::move(rest);
  }

  // Remainder is the final cluster.
  for (graph::NodeId v : remaining) assignment[v] = next_cluster;
  ++next_cluster;

  ClusteringResult result;
  result.partition = part::Partition(std::move(assignment), next_cluster);
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace specpart::core
