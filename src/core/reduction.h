// The graph-partitioning -> vector-partitioning reduction (paper section 3).
//
// Given d Laplacian eigenpairs (lambda_j, mu_j) and a constant H, vertex v_i
// maps to the d-vector
//
//     y_i[j] = sqrt(H - lambda_j) * mu_j(i).
//
// With all n eigenvectors, sum_h ||Y_h||^2 = nH - f(P_k) identically, so
// min-cut == max-sum vector partitioning (Theorem/Corollaries 2-5); with
// d < n the identity becomes an approximation whose missing mass lives in
// the unused eigenvectors — the reason "more eigenvectors" is better.
//
// H selection: exactness needs only H >= lambda_d (real square roots). To
// minimize the truncation error the paper chooses H so the expected
// contribution of the unused eigenvectors vanishes: H = the alpha^2-weighted
// mean of the unused eigenvalues. Before any cluster is known we estimate
// it with the *plain* mean of the unused eigenvalues, which is exactly
// computable from trace(Q) = sum of all eigenvalues. Once a cluster C is
// available, readjusted_h() solves sum_{j>d} (H - lambda_j) alpha_j^2 = 0
// using the identities sum_j alpha_j^2 = |C| and
// sum_j lambda_j alpha_j^2 = E(C) (cluster degree in the graph), both known
// without computing any extra eigenvector.
#pragma once

#include "core/vecpart.h"
#include "spectral/embedding.h"

namespace specpart::core {

/// H from the no-cluster-information estimate: mean of the unused
/// eigenvalues (exact via trace(Q)), clamped to lambda_d so the square
/// roots stay real. With d = n, returns lambda_n.
double default_h(const spectral::EigenBasis& basis);

/// H re-estimated from a concrete cluster (see file comment).
/// `members` are the vertex ids of the cluster and `cluster_degree` its
/// E(C) in the graph (sum of weights of edges leaving C). Clamped to
/// lambda_d. Falls back to default_h when the denominator vanishes
/// (cluster fully captured by the first d eigenvectors).
double readjusted_h(const spectral::EigenBasis& basis,
                    const std::vector<graph::NodeId>& members,
                    double cluster_degree);

/// Builds the max-sum instance: row i = y_i^d with the given H.
VectorInstance build_max_sum_instance(const spectral::EigenBasis& basis,
                                      double h);

/// The paper compares several eigenvector "weighting schemes" for the
/// vector construction (section 4; formulas reconstructed, see DESIGN.md).
/// Coordinate j of vertex vector y_i is w(lambda_j) * mu_j(i) with:
///   #1 kSqrtGap        w = sqrt(H - lambda)   (the reduction-derived form)
///   #2 kGap            w = H - lambda         (quadratic low-pass emphasis)
///   #3 kInvSqrtLambda  w = 1/sqrt(lambda)     (quadratic-placement flavor;
///                                              the trivial lambda=0 pair
///                                              gets weight 0)
///   #4 kUnit           w = 1                  (unweighted eigenvectors)
enum class CoordScaling {
  kSqrtGap = 1,
  kGap = 2,
  kInvSqrtLambda = 3,
  kUnit = 4,
};

const char* coord_scaling_name(CoordScaling s);

/// True when the scaling's weights depend on H (and hence benefit from the
/// mid-construction H readjustment).
bool scaling_uses_h(CoordScaling s);

/// Builds the vertex-vector instance under the chosen weighting scheme.
/// `h` is ignored by schemes that do not use it.
VectorInstance build_scaled_instance(const spectral::EigenBasis& basis,
                                     CoordScaling scaling, double h);

/// Builds the min-sum instance z_i[j] = sqrt(lambda_j) * mu_j(i), for which
/// sum_h ||Z_h||^2 = f(P_k) exactly when d = n (the dual reduction).
VectorInstance build_min_sum_instance(const spectral::EigenBasis& basis);

}  // namespace specpart::core
