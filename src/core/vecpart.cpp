#include "core/vecpart.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace specpart::core {

std::vector<linalg::Vec> subset_vectors(const VectorInstance& inst,
                                        const part::Partition& p) {
  SP_ASSERT(p.num_nodes() == inst.size());
  std::vector<linalg::Vec> sums(p.k(), linalg::Vec(inst.dimension(), 0.0));
  for (std::size_t i = 0; i < inst.size(); ++i) {
    linalg::Vec& target = sums[p.cluster_of(static_cast<graph::NodeId>(i))];
    for (std::size_t j = 0; j < inst.dimension(); ++j)
      target[j] += inst.vectors.at(i, j);
  }
  return sums;
}

double sum_of_squared_magnitudes(const VectorInstance& inst,
                                 const part::Partition& p) {
  double total = 0.0;
  for (const linalg::Vec& y : subset_vectors(inst, p))
    total += linalg::norm_sq(y);
  return total;
}

namespace {

part::Partition solve_exact(const VectorInstance& inst, std::uint32_t k,
                            std::size_t min_size, std::size_t max_size,
                            bool maximize) {
  const std::size_t n = inst.size();
  SP_CHECK_INPUT(k >= 1, "exact vector partitioning: k >= 1");
  SP_CHECK_INPUT(n <= 16 && std::pow(static_cast<double>(k),
                                     static_cast<double>(n)) <= 2e7,
                 "exact vector partitioning: instance too large");
  if (max_size == 0) max_size = n;

  std::vector<std::uint32_t> assignment(n, 0);
  std::vector<std::uint32_t> best_assignment;
  double best = maximize ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity();
  for (;;) {
    // Evaluate the current assignment if its sizes are feasible.
    std::vector<std::size_t> sizes(k, 0);
    for (std::uint32_t c : assignment) ++sizes[c];
    bool ok = true;
    for (std::size_t s : sizes)
      if (s < min_size || s > max_size) ok = false;
    if (ok) {
      const part::Partition p(assignment, k);
      const double value = sum_of_squared_magnitudes(inst, p);
      if ((maximize && value > best) || (!maximize && value < best)) {
        best = value;
        best_assignment = assignment;
      }
    }
    // Odometer increment over k^n assignments.
    std::size_t pos = 0;
    while (pos < n && ++assignment[pos] == k) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  SP_CHECK_INPUT(!best_assignment.empty(),
                 "exact vector partitioning: constraints infeasible");
  return part::Partition(std::move(best_assignment), k);
}

}  // namespace

part::Partition solve_max_sum_exact(const VectorInstance& inst,
                                    std::uint32_t k, std::size_t min_size,
                                    std::size_t max_size) {
  return solve_exact(inst, k, min_size, max_size, /*maximize=*/true);
}

part::Partition solve_min_sum_exact(const VectorInstance& inst,
                                    std::uint32_t k, std::size_t min_size,
                                    std::size_t max_size) {
  return solve_exact(inst, k, min_size, max_size, /*maximize=*/false);
}

part::Partition vp_local_search_max_sum(const VectorInstance& inst,
                                        part::Partition initial,
                                        std::size_t min_size,
                                        std::size_t max_size,
                                        std::size_t max_moves) {
  const std::size_t n = inst.size();
  const std::size_t d = inst.dimension();
  const std::uint32_t k = initial.k();
  SP_ASSERT(initial.num_nodes() == n);
  if (max_size == 0) max_size = n;
  if (max_moves == 0) max_moves = 8 * n + 64;

  // Cluster sum vectors, maintained incrementally.
  std::vector<linalg::Vec> sums = subset_vectors(inst, initial);
  part::Partition p = std::move(initial);

  for (std::size_t move = 0; move < max_moves; ++move) {
    double best_gain = 1e-9;
    graph::NodeId best_v = 0;
    std::uint32_t best_to = 0;
    bool found = false;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint32_t from = p.cluster_of(v);
      if (p.cluster_size(from) <= min_size) continue;
      const linalg::Vec y = inst.vectors.row(v);
      const double y_sq = linalg::norm_sq(y);
      const double from_dot = linalg::dot(sums[from], y);
      for (std::uint32_t to = 0; to < k; ++to) {
        if (to == from || p.cluster_size(to) >= max_size) continue;
        const double gain =
            2.0 * (linalg::dot(sums[to], y) - from_dot) + 2.0 * y_sq;
        if (gain > best_gain) {
          best_gain = gain;
          best_v = v;
          best_to = to;
          found = true;
        }
      }
    }
    if (found) {
      const std::uint32_t from = p.cluster_of(best_v);
      for (std::size_t j = 0; j < d; ++j) {
        const double y_j = inst.vectors.at(best_v, j);
        sums[from][j] -= y_j;
        sums[best_to][j] += y_j;
      }
      p.assign(best_v, best_to);
      continue;
    }

    // No improving single move (tight size bounds block them entirely when
    // min == max): try pair swaps. For u in A, v in B with w = y_v - y_u:
    // delta = 2 (Y_A - Y_B) . w + 2 ||w||^2.
    double best_swap_gain = 1e-9;
    graph::NodeId swap_u = 0, swap_v = 0;
    bool swap_found = false;
    for (graph::NodeId u = 0; u < n; ++u) {
      const std::uint32_t cu = p.cluster_of(u);
      for (graph::NodeId v = u + 1; v < n; ++v) {
        const std::uint32_t cv = p.cluster_of(v);
        if (cu == cv) continue;
        double gain = 0.0;
        double w_sq = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
          const double w_j =
              inst.vectors.at(v, j) - inst.vectors.at(u, j);
          gain += (sums[cu][j] - sums[cv][j]) * w_j;
          w_sq += w_j * w_j;
        }
        gain = 2.0 * gain + 2.0 * w_sq;
        if (gain > best_swap_gain) {
          best_swap_gain = gain;
          swap_u = u;
          swap_v = v;
          swap_found = true;
        }
      }
    }
    if (!swap_found) break;
    const std::uint32_t cu = p.cluster_of(swap_u);
    const std::uint32_t cv = p.cluster_of(swap_v);
    for (std::size_t j = 0; j < d; ++j) {
      const double w_j =
          inst.vectors.at(swap_v, j) - inst.vectors.at(swap_u, j);
      sums[cu][j] += w_j;
      sums[cv][j] -= w_j;
    }
    p.assign(swap_u, cv);
    p.assign(swap_v, cu);
  }
  return p;
}

}  // namespace specpart::core
