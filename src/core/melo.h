// MELO — Multiple-Eigenvector Linear Ordering (the paper's heuristic).
//
// Instead of solving the (NP-hard) vector partitioning problem directly,
// MELO converts it into a vertex ordering: starting from an empty subset S,
// it repeatedly appends the vector that maximizes a weighting function of
// the growing subset-sum vector ~S = sum_{y in S} y. Because every vector
// carries *global* partitioning information (it is built from d
// eigenvectors), the ordering is qualitatively different from a local graph
// traversal — and splitting it recovers high-quality partitionings.
//
// The greedy's selection rule (how "best next vector" is scored) is a
// design knob separate from the paper's weighting schemes (which scale the
// vector coordinates, see reduction.h):
//   kMagnitude   max ||S + y||^2      — the max-sum objective, greedily
//   kProjection  max S.y              — growth along the subset direction
//   kCosine      max S.y / ||y||      — direction only, magnitude-blind
// (Normalizations that are constant across candidates at a fixed step —
// e.g. dividing by |S|+1 or by ||S|| — do not change the argmax and are
// deliberately not separate rules.)
//
// Complexity O(d n^2) exactly; the lazy-ranking mode implements the paper's
// speedup ("the remaining vectors are re-ranked periodically (e.g., every
// 100 iterations)"): only a small moving window T of top-ranked candidates
// is evaluated exactly each step, and the full ranking is refreshed every
// `lazy_rerank_interval` selections.
#pragma once

#include <cstdint>
#include <functional>

#include "core/vecpart.h"
#include "part/ordering.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace specpart::core {

enum class SelectionRule {
  kMagnitude = 1,
  kProjection = 2,
  kCosine = 3,
};

const char* selection_rule_name(SelectionRule s);

struct MeloOrderingOptions {
  SelectionRule selection = SelectionRule::kMagnitude;
  /// Use the lazy-ranking speedup instead of the exact O(d n^2) scan.
  bool lazy_ranking = false;
  /// Initial size of the candidate window T (grows by 1 per selection).
  std::size_t lazy_window = 32;
  /// Selections between full re-rankings of the unchosen vectors.
  std::size_t lazy_rerank_interval = 64;
  /// Start the ordering from the (start_rank+1)-th longest vector; distinct
  /// ranks give the diversified multi-start orderings Table 5 uses.
  std::size_t start_rank = 0;
  /// Optional shared compute budget (one greedy selection = one unit).
  /// On exhaustion the remaining vertices are appended in a cheap
  /// deterministic order so the result is still a full permutation — a
  /// valid, best-effort ordering rather than an aborted one.
  ComputeBudget* budget = nullptr;
  /// Compute-kernel threading (see util/parallel.h). The per-step argmax
  /// over unchosen vertices is evaluated in fixed blocks with a
  /// (key, smallest-id) combine, so the ordering is bit-identical for
  /// every thread count — including the serial default.
  ParallelConfig parallel;
};

/// Optional mid-construction coordinate readjustment (the paper's
/// H-recomputation): when |S| first reaches `at`, `rebuild` is called with
/// the chosen vertices and must return the re-scaled instance; the subset
/// sum is then recomputed under the new coordinates.
struct MeloReadjust {
  std::size_t at = 0;  // 0 disables
  std::function<VectorInstance(const std::vector<graph::NodeId>&)> rebuild;
};

/// Runs the MELO greedy over an explicit vector instance and returns the
/// selection order (a permutation of 0..n-1).
part::Ordering melo_order_vectors(const VectorInstance& inst,
                                  const MeloOrderingOptions& opts,
                                  const MeloReadjust* readjust = nullptr);

}  // namespace specpart::core
