// Fixed-width table printing for the experiment harness: every bench binary
// emits the same aligned row/column layout the paper's tables use, plus an
// optional CSV sink for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace specpart::exp {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format consistently. Rendering pads every column to its widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  void begin_row();
  void add(const std::string& cell);
  void add_int(long long v);
  /// Fixed-point with `digits` decimals.
  void add_num(double v, int digits = 3);
  /// Scientific-style compact (%.4g).
  void add_sci(double v);

  /// Renders with a header underline to the stream.
  void print(std::ostream& out) const;

  /// CSV rendering (no alignment padding).
  void print_csv(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used between experiment blocks.
void print_banner(std::ostream& out, const std::string& title);

/// Percentage improvement of `ours` over `baseline` (positive = ours is
/// smaller/better for minimization objectives): 100 * (base - ours) / base.
double improvement_pct(double baseline, double ours);

}  // namespace specpart::exp
