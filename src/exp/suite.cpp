#include "exp/suite.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace specpart::exp {

namespace {

Benchmark make(const std::string& name, std::size_t modules, std::size_t nets,
               std::size_t clusters, std::size_t subclusters,
               std::uint64_t seed, double scale) {
  graph::GeneratorConfig cfg;
  cfg.name = name;
  cfg.num_modules = std::max<std::size_t>(
      32, static_cast<std::size_t>(std::lround(modules * scale)));
  cfg.num_nets = std::max<std::size_t>(
      32, static_cast<std::size_t>(std::lround(nets * scale)));
  cfg.num_clusters = clusters;
  cfg.subclusters_per_cluster = subclusters;
  cfg.seed = seed;
  return Benchmark{name, cfg};
}

}  // namespace

std::vector<Benchmark> paper_suite(double scale, std::size_t limit) {
  SP_CHECK_INPUT(scale > 0.0 && scale <= 1.0, "suite scale must be in (0, 1]");
  // Names and module/net counts follow the paper's Table 1; planted
  // structure parameters are chosen per-instance so the suite spans easy
  // (few, well-separated clusters) to hard (many, overlapping) cases.
  std::vector<Benchmark> suite = {
      make("balu", 801, 735, 6, 3, 0x1001, scale),
      make("bm1", 882, 903, 8, 3, 0x1002, scale),
      make("prim1", 833, 902, 7, 4, 0x1003, scale),
      make("prim2", 3014, 3029, 9, 4, 0x1004, scale),
      make("test02", 1663, 1720, 8, 4, 0x1005, scale),
      make("test03", 1607, 1618, 6, 5, 0x1006, scale),
      make("test04", 1515, 1658, 10, 3, 0x1007, scale),
      make("test05", 2595, 2750, 8, 5, 0x1008, scale),
      make("test06", 1752, 1541, 7, 3, 0x1009, scale),
      make("19ks", 2844, 3282, 10, 4, 0x100A, scale),
      make("struct", 1952, 1920, 8, 4, 0x100B, scale),
      make("biomed", 6514, 5742, 12, 4, 0x100C, scale),
  };
  if (limit > 0 && limit < suite.size()) suite.resize(limit);
  return suite;
}

graph::Hypergraph load(const Benchmark& b) {
  return graph::generate_netlist(b.config);
}

Benchmark find_benchmark(const std::vector<Benchmark>& suite,
                         const std::string& name) {
  for (const Benchmark& b : suite)
    if (b.name == name) return b;
  throw Error("unknown benchmark: " + name);
}

}  // namespace specpart::exp
