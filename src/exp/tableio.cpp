#include "exp/tableio.h"

#include <algorithm>
#include <ostream>

#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::exp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add(const std::string& cell) {
  SP_REQUIRE(!rows_.empty(), "Table: begin_row before add");
  rows_.back().push_back(cell);
}

void Table::add_int(long long v) { add(strprintf("%lld", v)); }

void Table::add_num(double v, int digits) {
  add(strprintf("%.*f", digits, v));
}

void Table::add_sci(double v) { add(strprintf("%.4g", v)); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << row[c] << (c + 1 == row.size() ? '\n' : ',');
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n\n";
}

double improvement_pct(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

}  // namespace specpart::exp
