// Experiment runners — one function per table/figure of the paper.
//
// Each runner regenerates its table on the synthetic suite and returns a
// Table ready for printing; the bench/ binaries are thin CLI wrappers
// around these. EXPERIMENTS.md records the paper-vs-measured comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/suite.h"
#include "exp/tableio.h"

namespace specpart::exp {

struct RunnerOptions {
  /// Suite scale factor in (0, 1].
  double scale = 1.0;
  /// Keep only the first `limit` benchmarks (0 = all 12).
  std::size_t limit = 0;
  /// Base seed for all randomized components.
  std::uint64_t seed = 7;
};

/// Table 1: benchmark statistics (modules / nets / pins).
Table run_table1(const RunnerOptions& opts);

/// Table 2: MELO weighting schemes #1-#4 (eigenvector coordinate scalings)
/// compared on balanced (45-55%) bipartitioning net cut with d eigenvectors.
Table run_table2_schemes(const RunnerOptions& opts, std::size_t d = 10);

/// Table 3: MELO balanced-bipartitioning quality as a function of the
/// eigenvector count d.
Table run_table3_dims(const RunnerOptions& opts,
                      const std::vector<std::size_t>& dims);

/// Averages reported under Table 4 (MELO improvement over each baseline).
struct Table4Summary {
  double avg_improvement_vs_rsb = 0.0;
  double avg_improvement_vs_kp = 0.0;
  double avg_improvement_vs_sfc = 0.0;
  std::size_t rows = 0;
};

/// Table 4: multi-way Scaled Cost — RSB vs KP vs SFC vs MELO for the given
/// cluster counts. Scaled Cost x 1e5.
Table run_table4_multiway(const RunnerOptions& opts,
                          const std::vector<std::uint32_t>& ks,
                          Table4Summary* summary);

/// Table 5: balanced (45-55%) bipartitioning net cuts — SB vs multi-start
/// FM (the PARABOLI stand-in) vs MELO — plus MELO ordering-construction
/// runtimes at d = 2 and d = 10.
Table run_table5_bipart(const RunnerOptions& opts);

/// Figure: ratio cut as a function of d on one benchmark (series for
/// plotting), with the SB value as reference.
Table run_fig_quality_vs_d(const RunnerOptions& opts,
                           const std::string& benchmark, std::size_t max_d);

/// Ablation: exact O(dn^2) selection vs the lazy-ranking speedup.
Table run_ablation_lazy(const RunnerOptions& opts);

/// Ablation: net model choice (standard / partitioning-specific / Frankle)
/// for MELO and RSB.
Table run_ablation_net_models(const RunnerOptions& opts);

/// Ablation: H readjustment on vs off.
Table run_ablation_h_readjust(const RunnerOptions& opts);

/// Ablation: greedy selection rule (magnitude / projection / cosine).
Table run_ablation_selection(const RunnerOptions& opts);

/// Extended comparison (beyond the paper's Table 5): balanced 2-way net
/// cut for MELO vs the other spectral families the paper surveys
/// (Frankle-Karp probes, Barnes' transportation method) and the move-based
/// families (multilevel FM, flat FM).
Table run_extended_bipartitioners(const RunnerOptions& opts);

/// Ablation: MELO with and without FM post-refinement (the Hadley et al.
/// [26] iterative-improvement post-processing the paper cites).
Table run_ablation_fm_post(const RunnerOptions& opts);

/// Extended multi-way comparison (beyond Table 4): Scaled Cost of MELO vs
/// RSB vs spectral k-means vs Barnes' transportation method.
Table run_extended_multiway(const RunnerOptions& opts,
                            const std::vector<std::uint32_t>& ks);

}  // namespace specpart::exp
