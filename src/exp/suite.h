// The experiment benchmark suite (stand-in for the paper's Table 1).
//
// The paper's ACM/SIGDA netlists are mirrored by synthetic instances with
// matching names and module/net counts (DESIGN.md §4). A global scale
// factor shrinks every instance proportionally for quick runs; relative
// algorithm rankings are stable under scaling.
#pragma once

#include <string>
#include <vector>

#include "graph/generator.h"
#include "graph/hypergraph.h"

namespace specpart::exp {

struct Benchmark {
  std::string name;
  graph::GeneratorConfig config;
};

/// The 12 benchmarks mirroring the paper's Table 1 (balu .. biomed).
/// `scale` in (0, 1] shrinks module/net counts; `limit` > 0 keeps only the
/// first `limit` benchmarks.
std::vector<Benchmark> paper_suite(double scale = 1.0, std::size_t limit = 0);

/// Generates the netlist of one benchmark.
graph::Hypergraph load(const Benchmark& b);

/// Finds a benchmark by name in the suite (throws specpart::Error if
/// absent).
Benchmark find_benchmark(const std::vector<Benchmark>& suite,
                         const std::string& name);

}  // namespace specpart::exp
