#include "exp/runners.h"

#include <algorithm>
#include <cmath>

#include "core/drivers.h"
#include "part/fm.h"
#include "part/kwayfm.h"
#include "part/multilevel.h"
#include "part/objectives.h"
#include "spectral/barnes.h"
#include "spectral/dprp.h"
#include "spectral/fkprobe.h"
#include "spectral/kmeans.h"
#include "spectral/kp.h"
#include "spectral/rsb.h"
#include "spectral/sb.h"
#include "spectral/sfc.h"
#include "util/stringutil.h"
#include "util/timer.h"

namespace specpart::exp {

namespace {

constexpr double kScaledScale = 1e5;  // Scaled Cost is printed x 1e5
/// Balanced-bipartitioning protocol: both sides hold >= 45% of the modules
/// (the paper's Table 5 setting; Tables 2/3 and the figure use it too —
/// see EXPERIMENTS.md for why unconstrained ratio cut is degenerate on the
/// synthetic suite).
constexpr double kMinFraction = 0.45;

core::MeloOptions base_melo_options(const RunnerOptions& opts) {
  core::MeloOptions m;
  m.seed = opts.seed * 0x9E3779B97F4A7C15ULL + 1;
  return m;
}

}  // namespace

Table run_table1(const RunnerOptions& opts) {
  Table t({"benchmark", "modules", "nets", "pins", "max-net", "avg-net",
           "planted-k"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    t.begin_row();
    t.add(b.name);
    t.add_int(static_cast<long long>(h.num_nodes()));
    t.add_int(static_cast<long long>(h.num_nets()));
    t.add_int(static_cast<long long>(h.num_pins()));
    t.add_int(static_cast<long long>(h.max_net_size()));
    t.add_num(static_cast<double>(h.num_pins()) /
                  static_cast<double>(std::max<std::size_t>(1, h.num_nets())),
              2);
    t.add_int(static_cast<long long>(b.config.num_clusters));
  }
  return t;
}

Table run_table2_schemes(const RunnerOptions& opts, std::size_t d) {
  Table t({"benchmark", "#1 sqrt(H-l)", "#2 (H-l)", "#3 1/sqrt(l)",
           "#4 unit", "best"});
  const core::CoordScaling schemes[] = {
      core::CoordScaling::kSqrtGap, core::CoordScaling::kGap,
      core::CoordScaling::kInvSqrtLambda, core::CoordScaling::kUnit};
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    t.begin_row();
    t.add(b.name);
    double best = 0.0;
    const char* best_name = "";
    bool first = true;
    for (core::CoordScaling scheme : schemes) {
      core::MeloOptions m = base_melo_options(opts);
      m.num_eigenvectors = d;
      m.scaling = scheme;
      const core::MeloBipartitionResult r =
          core::melo_bipartition(h, m, kMinFraction);
      t.add_num(r.cut, 0);
      if (first || r.cut < best) {
        best = r.cut;
        best_name = core::coord_scaling_name(scheme);
        first = false;
      }
    }
    t.add(best_name);
  }
  return t;
}

Table run_table3_dims(const RunnerOptions& opts,
                      const std::vector<std::size_t>& dims) {
  std::vector<std::string> header{"benchmark"};
  for (std::size_t d : dims) header.push_back(strprintf("d=%zu", d));
  header.push_back("best-d");
  Table t(std::move(header));
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    t.begin_row();
    t.add(b.name);
    double best = 0.0;
    std::size_t best_d = 0;
    bool first = true;
    for (std::size_t d : dims) {
      core::MeloOptions m = base_melo_options(opts);
      m.num_eigenvectors = d;
      const core::MeloBipartitionResult r =
          core::melo_bipartition(h, m, kMinFraction);
      t.add_num(r.cut, 0);
      if (first || r.cut < best) {
        best = r.cut;
        best_d = d;
        first = false;
      }
    }
    t.add_int(static_cast<long long>(best_d));
  }
  return t;
}

Table run_table4_multiway(const RunnerOptions& opts,
                          const std::vector<std::uint32_t>& ks,
                          Table4Summary* summary) {
  Table t({"benchmark", "k", "RSB", "KP", "SFC", "MELO", "impr-RSB%",
           "impr-KP%", "impr-SFC%"});
  Table4Summary acc;
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    for (std::uint32_t k : ks) {
      if (k >= h.num_nodes()) continue;

      spectral::RsbOptions rsb_opts;
      rsb_opts.seed = opts.seed + 11;
      const part::Partition rsb = spectral::rsb_partition(h, k, rsb_opts);
      const double rsb_sc = part::scaled_cost(h, rsb);

      spectral::KpOptions kp_opts;
      kp_opts.seed = opts.seed + 13;
      const part::Partition kp = spectral::kp_partition(h, k, kp_opts);
      const double kp_sc = part::scaled_cost(h, kp);

      spectral::SfcOptions sfc_opts;
      sfc_opts.seed = opts.seed + 17;
      const part::Ordering sfc = spectral::sfc_ordering(h, sfc_opts);
      spectral::DprpOptions dp_opts;
      dp_opts.k = k;
      const double sfc_sc = spectral::dprp_split(h, sfc, dp_opts).scaled_cost;

      // As in Table 5, MELO takes the best of several orderings: three
      // weighting schemes x two diversified starts.
      double melo_sc = 0.0;
      bool first = true;
      for (core::CoordScaling scheme :
           {core::CoordScaling::kSqrtGap, core::CoordScaling::kInvSqrtLambda,
            core::CoordScaling::kUnit}) {
        core::MeloOptions m = base_melo_options(opts);
        m.scaling = scheme;
        m.num_starts = 2;
        const core::MeloMultiwayResult melo = core::melo_multiway(h, k, m);
        if (first || melo.scaled_cost < melo_sc) {
          melo_sc = melo.scaled_cost;
          first = false;
        }
      }

      t.begin_row();
      t.add(b.name);
      t.add_int(k);
      t.add_num(rsb_sc * kScaledScale, 3);
      t.add_num(kp_sc * kScaledScale, 3);
      t.add_num(sfc_sc * kScaledScale, 3);
      t.add_num(melo_sc * kScaledScale, 3);
      t.add_num(improvement_pct(rsb_sc, melo_sc), 1);
      t.add_num(improvement_pct(kp_sc, melo_sc), 1);
      t.add_num(improvement_pct(sfc_sc, melo_sc), 1);

      acc.avg_improvement_vs_rsb += improvement_pct(rsb_sc, melo_sc);
      acc.avg_improvement_vs_kp += improvement_pct(kp_sc, melo_sc);
      acc.avg_improvement_vs_sfc += improvement_pct(sfc_sc, melo_sc);
      ++acc.rows;
    }
  }
  if (acc.rows > 0) {
    acc.avg_improvement_vs_rsb /= static_cast<double>(acc.rows);
    acc.avg_improvement_vs_kp /= static_cast<double>(acc.rows);
    acc.avg_improvement_vs_sfc /= static_cast<double>(acc.rows);
  }
  if (summary != nullptr) *summary = acc;
  return t;
}

Table run_table5_bipart(const RunnerOptions& opts) {
  Table t({"benchmark", "SB-cut", "FM-cut", "MELO-cut", "MELO-impr-SB%",
           "t-order(d=2)s", "t-order(d=10)s"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);

    spectral::SbOptions sb_opts;
    sb_opts.min_fraction = kMinFraction;
    sb_opts.seed = opts.seed + 23;
    const spectral::SbResult sb = spectral::spectral_bipartition(h, sb_opts);
    const double sb_cut = part::cut_nets(h, sb.partition);

    part::FmOptions fm_opts;
    fm_opts.seed = opts.seed + 29;
    const part::FmResult fm = part::fm_bipartition(h, fm_opts);

    // The paper picks the best of several orderings built under different
    // weighting schemes; we use three scalings x three diversified starts.
    double melo_cut = 0.0;
    bool first = true;
    for (core::CoordScaling scheme :
         {core::CoordScaling::kSqrtGap, core::CoordScaling::kInvSqrtLambda,
          core::CoordScaling::kUnit}) {
      core::MeloOptions m = base_melo_options(opts);
      m.scaling = scheme;
      m.num_starts = 3;
      const core::MeloBipartitionResult r =
          core::melo_bipartition(h, m, kMinFraction);
      if (first || r.cut < melo_cut) {
        melo_cut = r.cut;
        first = false;
      }
    }

    // Ordering-construction runtimes (Table 5's timing columns).
    double t2 = 0.0, t10 = 0.0;
    for (std::size_t d : {std::size_t{2}, std::size_t{10}}) {
      core::MeloOptions m = base_melo_options(opts);
      m.num_eigenvectors = d;
      const auto runs = core::melo_orderings(h, m);
      (d == 2 ? t2 : t10) = runs.front().ordering_seconds;
    }

    t.begin_row();
    t.add(b.name);
    t.add_num(sb_cut, 0);
    t.add_num(fm.cut, 0);
    t.add_num(melo_cut, 0);
    t.add_num(improvement_pct(sb_cut, melo_cut), 1);
    t.add_num(t2, 3);
    t.add_num(t10, 3);
  }
  return t;
}

Table run_fig_quality_vs_d(const RunnerOptions& opts,
                           const std::string& benchmark, std::size_t max_d) {
  const auto suite = paper_suite(opts.scale, 0);
  const Benchmark b = find_benchmark(suite, benchmark);
  const graph::Hypergraph h = load(b);

  spectral::SbOptions sb_opts;
  sb_opts.min_fraction = kMinFraction;
  sb_opts.seed = opts.seed + 31;
  const spectral::SbResult sb = spectral::spectral_bipartition(h, sb_opts);
  const double sb_cut = part::cut_nets(h, sb.partition);

  Table t({"d", "melo-cut", "sb-cut"});
  for (std::size_t d = 1; d <= max_d; ++d) {
    core::MeloOptions m = base_melo_options(opts);
    m.num_eigenvectors = d;
    const core::MeloBipartitionResult r =
        core::melo_bipartition(h, m, kMinFraction);
    t.begin_row();
    t.add_int(static_cast<long long>(d));
    t.add_num(r.cut, 0);
    t.add_num(sb_cut, 0);
  }
  return t;
}

Table run_ablation_lazy(const RunnerOptions& opts) {
  Table t({"benchmark", "exact-cut", "exact-s", "lazy-cut", "lazy-s",
           "speedup", "cut-delta%"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    double cut[2] = {0, 0};
    double secs[2] = {0, 0};
    for (int lazy = 0; lazy < 2; ++lazy) {
      core::MeloOptions m = base_melo_options(opts);
      m.lazy_ranking = lazy == 1;
      const core::MeloBipartitionResult r =
          core::melo_bipartition(h, m, kMinFraction);
      secs[lazy] = r.ordering_seconds;
      cut[lazy] = r.cut;
    }
    t.begin_row();
    t.add(b.name);
    t.add_num(cut[0], 0);
    t.add_num(secs[0], 4);
    t.add_num(cut[1], 0);
    t.add_num(secs[1], 4);
    t.add_num(secs[1] > 0 ? secs[0] / secs[1] : 0.0, 1);
    t.add_num(improvement_pct(cut[0], cut[1]), 1);
  }
  return t;
}

Table run_ablation_net_models(const RunnerOptions& opts) {
  Table t({"benchmark", "MELO-std", "MELO-ps", "MELO-frankle", "RSB-std",
           "RSB-ps", "RSB-frankle"});
  const model::NetModel models[] = {model::NetModel::kStandard,
                                    model::NetModel::kPartitioningSpecific,
                                    model::NetModel::kFrankle};
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    t.begin_row();
    t.add(b.name);
    for (model::NetModel nm : models) {
      core::MeloOptions m = base_melo_options(opts);
      m.net_model = nm;
      const core::MeloBipartitionResult r =
          core::melo_bipartition(h, m, kMinFraction);
      t.add_num(r.cut, 0);
    }
    for (model::NetModel nm : models) {
      spectral::RsbOptions rsb_opts;
      rsb_opts.net_model = nm;
      rsb_opts.seed = opts.seed + 37;
      const part::Partition p = spectral::rsb_partition(h, 4, rsb_opts);
      t.add_num(part::scaled_cost(h, p) * kScaledScale, 3);
    }
  }
  return t;
}

Table run_ablation_h_readjust(const RunnerOptions& opts) {
  Table t({"benchmark", "2way-cut(off)", "2way-cut(on)", "k4-sc(off)",
           "k4-sc(on)"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    double cut[2] = {0, 0};
    double sc[2] = {0, 0};
    for (int readjust = 0; readjust < 2; ++readjust) {
      core::MeloOptions m = base_melo_options(opts);
      m.readjust_h = readjust == 1;
      cut[readjust] = core::melo_bipartition(h, m, kMinFraction).cut;
      sc[readjust] = core::melo_multiway(h, 4, m).scaled_cost;
    }
    t.begin_row();
    t.add(b.name);
    t.add_num(cut[0], 0);
    t.add_num(cut[1], 0);
    t.add_num(sc[0] * kScaledScale, 3);
    t.add_num(sc[1] * kScaledScale, 3);
  }
  return t;
}

Table run_ablation_selection(const RunnerOptions& opts) {
  Table t({"benchmark", "magnitude", "projection", "cosine", "best"});
  const core::SelectionRule rules[] = {core::SelectionRule::kMagnitude,
                                       core::SelectionRule::kProjection,
                                       core::SelectionRule::kCosine};
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    t.begin_row();
    t.add(b.name);
    double best = 0.0;
    const char* best_name = "";
    bool first = true;
    for (core::SelectionRule rule : rules) {
      core::MeloOptions m = base_melo_options(opts);
      m.selection = rule;
      const core::MeloBipartitionResult r =
          core::melo_bipartition(h, m, kMinFraction);
      t.add_num(r.cut, 0);
      if (first || r.cut < best) {
        best = r.cut;
        best_name = core::selection_rule_name(rule);
        first = false;
      }
    }
    t.add(best_name);
  }
  return t;
}

Table run_extended_bipartitioners(const RunnerOptions& opts) {
  Table t({"benchmark", "MELO", "FK-probe", "Barnes", "multilevel", "FM"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    t.begin_row();
    t.add(b.name);

    core::MeloOptions m = base_melo_options(opts);
    m.num_starts = 3;
    t.add_num(core::melo_bipartition(h, m, kMinFraction).cut, 0);

    spectral::FkProbeOptions fk;
    fk.min_fraction = kMinFraction;
    fk.seed = opts.seed + 41;
    t.add_num(spectral::fk_probe_bipartition(h, fk).cut, 0);

    spectral::BarnesOptions barnes;
    barnes.seed = opts.seed + 43;
    t.add_num(
        part::cut_nets(h, spectral::barnes_partition(h, 2, barnes)), 0);

    part::MultilevelOptions ml;
    ml.seed = opts.seed + 47;
    t.add_num(part::multilevel_bipartition(h, ml).cut, 0);

    part::FmOptions fm;
    fm.seed = opts.seed + 53;
    t.add_num(part::fm_bipartition(h, fm).cut, 0);
  }
  return t;
}

Table run_ablation_fm_post(const RunnerOptions& opts) {
  Table t({"benchmark", "MELO-cut", "MELO+FM-cut", "gain%"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    core::MeloOptions m = base_melo_options(opts);
    m.num_starts = 2;
    const core::MeloBipartitionResult melo =
        core::melo_bipartition(h, m, kMinFraction);
    part::FmOptions fm;
    fm.seed = opts.seed + 59;
    const part::FmResult refined = part::fm_refine(h, melo.partition, fm);
    t.begin_row();
    t.add(b.name);
    t.add_num(melo.cut, 0);
    t.add_num(refined.cut, 0);
    t.add_num(improvement_pct(melo.cut, refined.cut), 1);
  }
  return t;
}

Table run_extended_multiway(const RunnerOptions& opts,
                            const std::vector<std::uint32_t>& ks) {
  Table t({"benchmark", "k", "RSB", "MELO", "MELO+kFM", "kmeans", "Barnes"});
  for (const Benchmark& b : paper_suite(opts.scale, opts.limit)) {
    const graph::Hypergraph h = load(b);
    for (std::uint32_t k : ks) {
      if (k >= h.num_nodes()) continue;
      t.begin_row();
      t.add(b.name);
      t.add_int(k);

      spectral::RsbOptions rsb_opts;
      rsb_opts.seed = opts.seed + 61;
      t.add_num(part::scaled_cost(h, spectral::rsb_partition(h, k, rsb_opts)) *
                    kScaledScale,
                3);

      core::MeloOptions m = base_melo_options(opts);
      m.num_starts = 2;
      const core::MeloMultiwayResult melo = core::melo_multiway(h, k, m);
      t.add_num(melo.scaled_cost * kScaledScale, 3);

      // kway_fm minimizes net cut; accept its result only when the
      // table's metric (Scaled Cost) also improved.
      part::KWayFmOptions kfm;
      kfm.seed = opts.seed + 73;
      const part::KWayFmResult refined =
          part::kway_fm_refine(h, melo.partition, kfm);
      const double refined_sc = part::scaled_cost(h, refined.partition);
      t.add_num(std::min(refined_sc, melo.scaled_cost) * kScaledScale, 3);

      spectral::KmeansOptions km;
      km.seed = opts.seed + 67;
      t.add_num(part::scaled_cost(h, spectral::kmeans_partition(h, k, km)) *
                    kScaledScale,
                3);

      spectral::BarnesOptions barnes;
      barnes.seed = opts.seed + 71;
      t.add_num(
          part::scaled_cost(h, spectral::barnes_partition(h, k, barnes)) *
              kScaledScale,
          3);
    }
  }
  return t;
}

}  // namespace specpart::exp
