// Shared sparse data plane: one CSR structure, assembled once, no
// comparison sorts.
//
// Every matrix in the library used to be assembled through its own private
// path — clique expansion emitted an unmerged edge list, the Graph
// constructor copied + sorted + merged it, build_laplacian re-expanded the
// result into triplets, and the SymCsrMatrix constructor mirrored and
// sorted those all over again. CsrStorage is the single offsets/cols/values
// triple that both graph::Graph (adjacency) and linalg::SymCsrMatrix now
// sit on top of, and CsrAssembler is the one builder that fills it:
//
//  * Two-pass counting sort. Entries are bucketed by column, then by row
//    (both passes stable), which orders them by (row, col) with ties in
//    insertion order — no comparison sort anywhere, O(entries + rows) per
//    pass.
//  * Stable merge. Entries with equal (row, col) are summed in insertion
//    order. This is the library's merge-order contract: the weight of a
//    merged parallel edge is the sum of its contributions in net order,
//    independent of how the assembly is threaded.
//  * Deterministic row-block parallelism. The merge/materialize passes run
//    under util/parallel.h's fixed-block parallel_for; each row is merged
//    by one sequential left-to-right scan, so the output is bit-identical
//    for any thread count.
//  * Reusable workspace. The assembler owns its scratch buffers and is
//    reset with begin(); a steady-state server reuses one instance per
//    worker thread (thread_assembly_workspace()) and performs no
//    per-request allocation once the buffers reach their high-water mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/parallel.h"

namespace specpart::linalg {

/// One CSR structure: row offsets (num_rows + 1), column indices and values
/// ordered by (row, col) with strictly increasing columns within a row.
struct CsrStorage {
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> cols;
  std::vector<double> values;

  std::size_t num_rows() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t nnz() const { return cols.size(); }
  std::size_t row_begin(std::size_t i) const { return offsets[i]; }
  std::size_t row_end(std::size_t i) const { return offsets[i + 1]; }

  void clear() {
    offsets.clear();
    cols.clear();
    values.clear();
  }
};

/// Reusable two-pass counting-sort CSR assembler (see file comment).
///
/// Usage: begin(rows) -> add_edge()/add_entry() -> finish()/
/// finish_laplacian(). Not thread-safe; use one instance per thread
/// (thread_assembly_workspace() hands out exactly that).
class CsrAssembler {
 public:
  /// Starts a new assembly over `num_rows` rows, keeping buffer capacity
  /// from previous assemblies.
  void begin(std::size_t num_rows);

  /// Pre-sizes the entry buffers for `num_entries` directed entries
  /// (add_edge contributes two). Call with the exact count when it is
  /// known — clique expansion computes sum p(p-1)/2 up front — so the
  /// buffers are materialized once instead of growing geometrically.
  void reserve(std::size_t num_entries);

  /// Adds one undirected edge: entry (u, v, w) and its mirror (v, u, w).
  void add_edge(std::uint32_t u, std::uint32_t v, double w) {
    entries_.push_back({u, v, w});
    entries_.push_back({v, u, w});
  }

  /// Adds one directed entry (row, col, w); no mirror.
  void add_entry(std::uint32_t row, std::uint32_t col, double w) {
    entries_.push_back({row, col, w});
  }

  /// Directed entries added since begin().
  std::size_t num_entries() const { return entries_.size(); }

  /// Sorts (two counting passes, stable), merges duplicates (summed in
  /// insertion order) and materializes `out`. The merge/materialize passes
  /// are parallelized over fixed row blocks; the result is bit-identical
  /// for any thread count. The workspace stays valid for the next begin().
  void finish(CsrStorage& out, const ParallelConfig& par = {});

  /// Laplacian variant of finish(): treats the entries as a graph
  /// adjacency, negates every merged off-diagonal entry, and inserts a
  /// diagonal entry per row holding the weighted degree — the sum of the
  /// row's merged weights, accumulated in ascending column order — at its
  /// sorted position. Rows without entries get a zero diagonal. When
  /// `degrees` is non-null it receives the per-row weighted degrees.
  /// Self-entries (row == col) must not be present.
  void finish_laplacian(CsrStorage& out, std::vector<double>* degrees,
                        const ParallelConfig& par = {});

 private:
  struct Entry {
    std::uint32_t row;
    std::uint32_t col;
    double value;
  };

  /// Stable counting sort of entries_ by (row, col) into entries_; fills
  /// row_start_ with the unmerged per-row offsets.
  void sort_entries();

  std::size_t num_rows_ = 0;
  std::vector<Entry> entries_;
  std::vector<Entry> scratch_;
  std::vector<std::size_t> bucket_;     // counting-sort histogram / cursors
  std::vector<std::size_t> row_start_;  // unmerged row offsets (rows + 1)
  std::vector<std::size_t> row_nnz_;    // merged entries per row
};

/// Per-thread assembler instance. Graph construction, clique expansion and
/// the fused Laplacian build all route through this workspace by default,
/// so a service worker thread reuses one set of buffers across requests.
CsrAssembler& thread_assembly_workspace();

}  // namespace specpart::linalg
