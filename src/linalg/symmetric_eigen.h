// Exact dense symmetric eigendecomposition (Householder + QL).
//
// O(n^3); used for small graphs, as the Lanczos validation oracle, and for
// the "all n eigenvectors" exactness experiments where the reduction from
// graph partitioning to vector partitioning is an identity.
#pragma once

#include "linalg/dense.h"

namespace specpart::linalg {

/// Result of a symmetric eigendecomposition: A = V diag(values) V^T.
/// `values` ascending; column j of `vectors` is the unit eigenvector of
/// values[j].
struct EigenDecomposition {
  Vec values;
  DenseMatrix vectors;
};

/// Full eigendecomposition of a symmetric matrix. The strictly lower
/// triangle is taken as authoritative (the matrix is symmetrized first so
/// tiny asymmetries from floating-point assembly cannot perturb results).
EigenDecomposition solve_symmetric_eigen(DenseMatrix a);

/// First `count` eigenpairs (smallest eigenvalues) of a symmetric matrix;
/// simply truncates the full decomposition.
EigenDecomposition solve_symmetric_eigen_smallest(DenseMatrix a,
                                                  std::size_t count);

}  // namespace specpart::linalg
