// Block Lanczos: all d wanted eigendirections advance together through one
// sparse x dense-panel product per step.
//
// The scalar Lanczos chain (lanczos.h) pays one full sweep of the matrix
// per Krylov column; with d ~ 10 wanted pairs the solve is memory-bound on
// re-streaming the Laplacian. Block Lanczos widens the recurrence to a
// b-column panel: one SymCsrMatrix::spmm per step advances b directions for
// a single matrix sweep, cutting Laplacian bytes moved per eigenpair by
// ~b while clustered and repeated eigenvalues (disconnected graphs) fall
// out naturally because the block captures multiplicity <= b per step.
//
// The projected matrix is block tridiagonal (a symmetric band of width b);
// Rayleigh-Ritz extraction reuses the dense Householder + QL machinery
// (symmetric_eigen.h / tridiagonal.h) on that small band. Panel
// orthogonalization is CGS2 — two classical Gram-Schmidt sweeps, the same
// scheme the scalar solver's parallel path uses — built exclusively on the
// fixed-block reductions of util/parallel.h, so results are bit-identical
// for ANY thread count, 1 included (unlike the scalar path, which keeps a
// distinct byte-stable serial reference).
#pragma once

#include <cstdint>

#include "linalg/lanczos.h"
#include "linalg/sparse.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace specpart::linalg {

/// Tuning knobs for the block driver. Shares LanczosResult with the scalar
/// solver so the embedding fallback chain treats both uniformly.
struct BlockLanczosOptions {
  /// How many eigenpairs (smallest eigenvalues) to return.
  std::size_t num_eigenpairs = 2;
  /// Panel width b; 0 = automatic (min(num_eigenpairs, 8), at least 2 when
  /// the dimension allows). Wider blocks move fewer matrix bytes per pair
  /// but grow the band eigenproblem.
  std::size_t block_size = 0;
  /// Hard cap on total Krylov columns; 0 means the scalar solver's formula
  /// (min(n, max(20 * num_eigenpairs + 120, 200))).
  std::size_t max_iterations = 0;
  /// Relative residual tolerance: converged when
  /// ||A x - lambda x|| <= tolerance * sigma.
  double tolerance = 1e-9;
  /// Seed for the random start panel.
  std::uint64_t seed = 0xC0FFEEULL;
  /// Optional shared compute budget (nullptr = unlimited); one block step
  /// costs one unit (it performs one matrix sweep, like one scalar
  /// iteration). The first step always runs.
  ComputeBudget* budget = nullptr;
  /// Compute-kernel threading. Every reduction in the block driver uses the
  /// fixed-block deterministic kernels, so the result is bit-identical
  /// across all thread counts (including 1).
  ParallelConfig parallel;
};

/// Computes the `opts.num_eigenpairs` smallest eigenpairs of the symmetric
/// sparse matrix `a` with block Lanczos on the shifted operator
/// B = sigma I - A. Requests for more pairs than n are clamped to n;
/// rank-deficient panels (invariant subspaces, e.g. disconnected graph
/// Laplacians) restart the dead columns with fresh random directions.
/// LanczosResult::iterations counts Krylov *columns* so budgeting and the
/// enlarge-Krylov fallback behave like the scalar solver.
LanczosResult block_lanczos_smallest(const SymCsrMatrix& a,
                                     BlockLanczosOptions opts);

}  // namespace specpart::linalg
