// Symmetric tridiagonal eigensolver (implicit-shift QL) and Householder
// reduction of dense symmetric matrices to tridiagonal form.
//
// These are ports of the classic EISPACK tred2/tql2 algorithms; together
// they provide an exact O(n^3) symmetric eigensolver used (a) directly for
// small graphs and test oracles, and (b) inside Lanczos to diagonalize the
// projected tridiagonal matrix.
#pragma once

#include "linalg/dense.h"

namespace specpart::linalg {

/// Symmetric tridiagonal matrix: diag has size n, off has size n with
/// off[0] unused (off[i] couples rows i-1 and i, following EISPACK layout).
struct Tridiagonal {
  Vec diag;
  Vec off;
};

/// Reduces symmetric A (n-by-n) to tridiagonal form T = Q^T A Q.
/// On return `accumulated` holds Q (orthogonal, columns are the transform).
/// A is passed by value and consumed as workspace.
Tridiagonal householder_tridiagonalize(DenseMatrix a, DenseMatrix* accumulated);

/// Diagonalizes a symmetric tridiagonal matrix in place using the QL
/// algorithm with implicit shifts.
///
/// On entry `z` must be either the identity (eigenvectors of T itself) or
/// the orthogonal matrix accumulated by householder_tridiagonalize
/// (eigenvectors of the original dense matrix). On return t.diag holds the
/// eigenvalues sorted ascending and the columns of z the matching
/// orthonormal eigenvectors. Throws specpart::Error if QL fails to converge
/// (pathological input; does not occur for finite well-scaled matrices).
void tridiagonal_eigen(Tridiagonal& t, DenseMatrix& z);

/// Convenience: eigenvalues only (ascending) of a symmetric tridiagonal.
Vec tridiagonal_eigenvalues(Tridiagonal t);

}  // namespace specpart::linalg
