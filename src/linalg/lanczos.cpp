#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "linalg/tridiagonal.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"

namespace specpart::linalg {

namespace {

/// dot(a, b) with the configured threading. Serial keeps the plain
/// left-to-right sum (byte-identical to the original implementation);
/// parallel uses the fixed-block deterministic reduction, so every thread
/// count >= 2 produces the same bits.
double pdot(const Vec& a, const Vec& b, const ParallelConfig& par) {
  if (par.serial()) return dot(a, b);
  return parallel_reduce<double>(
      par, 0, a.size(), 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t r = lo; r < hi; ++r) s += a[r] * b[r];
        return s;
      },
      [](double acc, double s) { return acc + s; });
}

/// y += alpha * x by disjoint row blocks (exact for any blocking).
void paxpy(double alpha, const Vec& x, Vec& y, const ParallelConfig& par) {
  if (par.serial()) {
    axpy(alpha, x, y);
    return;
  }
  parallel_for(par, 0, x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) y[r] += alpha * x[r];
  });
}

/// Makes `w` orthogonal to every vector in `basis` (two Gram-Schmidt
/// sweeps: one is not enough once the basis grows).
///
/// Serial: modified Gram-Schmidt, one dot+axpy per basis vector — the
/// original (reference) implementation. Parallel: classical Gram-Schmidt
/// with two sweeps (CGS2), each sweep a blocked multi-vector panel — one
/// pass computing every coefficient c_i = w . v_i per row block, one pass
/// applying w -= sum_i c_i v_i. The panels stream the whole basis through
/// each row block, which is memory-bandwidth-bound instead of
/// latency-bound, and the fixed-block reduction keeps the coefficients
/// bit-identical for any thread count >= 2.
void reorthogonalize(const std::vector<Vec>& basis, Vec& w,
                     const ParallelConfig& par) {
  if (par.serial() || basis.empty()) {
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (const Vec& v : basis) {
        const double c = dot(w, v);
        if (c != 0.0) axpy(-c, v, w);
      }
    }
    return;
  }
  const std::size_t m = basis.size();
  const std::size_t n = w.size();
  for (int sweep = 0; sweep < 2; ++sweep) {
    // Panel dot: c = V^T w, partials per row block combined in block order.
    const Vec c = parallel_reduce<Vec>(
        par, 0, n, Vec(m, 0.0),
        [&](std::size_t lo, std::size_t hi) {
          Vec partial(m, 0.0);
          for (std::size_t i = 0; i < m; ++i) {
            const double* v = basis[i].data();
            double s = 0.0;
            for (std::size_t r = lo; r < hi; ++r) s += w[r] * v[r];
            partial[i] = s;
          }
          return partial;
        },
        [m](Vec acc, Vec partial) {
          for (std::size_t i = 0; i < m; ++i) acc[i] += partial[i];
          return acc;
        });
    // Panel axpy: w -= V c over disjoint row blocks (exact per element).
    parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = 0; i < m; ++i) {
        const double ci = c[i];
        if (ci == 0.0) continue;
        const double* v = basis[i].data();
        for (std::size_t r = lo; r < hi; ++r) w[r] -= ci * v[r];
      }
    });
  }
}

Vec random_unit_vector(std::size_t n, Rng& rng) {
  Vec v(n);
  for (double& x : v) x = rng.next_normal();
  normalize(v);
  return v;
}

}  // namespace

LanczosResult lanczos_largest_op(
    std::size_t n, const std::function<void(const Vec&, Vec&)>& apply,
    double op_norm_estimate, LanczosOptions opts) {
  LanczosResult result;
  const std::size_t want = std::min(opts.num_eigenpairs, n);
  if (want == 0 || n == 0) return result;

  std::size_t max_iter = opts.max_iterations != 0
                             ? opts.max_iterations
                             : std::min(n, std::max<std::size_t>(
                                               20 * want + 120, 200));
  max_iter = std::min(max_iter, n);
  max_iter = std::max(max_iter, want);

  const double op_scale = std::max(op_norm_estimate, 1e-30);
  const double breakdown_tol = 1e-13 * op_scale;
  const ParallelConfig& par = opts.parallel;

  Rng rng(opts.seed);
  std::vector<Vec> basis;  // Lanczos vectors v_0 .. v_{m-1}
  basis.reserve(max_iter);
  Vec alphas;  // T diagonal
  Vec betas;   // betas[j] couples v_j and v_{j+1}
  Vec v = random_unit_vector(n, rng);
  Vec w(n);

  Tridiagonal t_conv;                 // scratch for convergence checks
  DenseMatrix z_conv;                 // eigenvectors of T
  bool ritz_valid = false;

  // Test hook: an armed "lanczos.force_nonconverge" fault makes this whole
  // call report non-convergence (as a clustered spectrum would), driving
  // callers into their fallback chains. One armed count = one failed call.
  const bool forced_nonconverge = SP_FAULT("lanczos.force_nonconverge");

  auto check_converged = [&]() -> bool {
    const std::size_t m = basis.size();
    if (m == 0) return false;
    // Always (re)compute the Ritz decomposition so a truncated run — budget
    // exhaustion, early breakdown — can still extract its best-so-far pairs.
    t_conv.diag = alphas;
    t_conv.off.assign(m, 0.0);
    for (std::size_t i = 1; i < m; ++i) t_conv.off[i] = betas[i - 1];
    z_conv = DenseMatrix::identity(m);
    tridiagonal_eigen(t_conv, z_conv);
    ritz_valid = true;
    if (m < want || forced_nonconverge) return false;
    if (m == n) return true;  // exhausted the space: exact
    const double beta_next = betas.size() >= m ? betas[m - 1] : 0.0;
    for (std::size_t i = 0; i < want; ++i) {
      const std::size_t col = m - 1 - i;  // largest eigenvalues are last
      const double residual = std::fabs(beta_next * z_conv.at(m - 1, col));
      if (residual > opts.tolerance * op_scale) return false;
    }
    return true;
  };

  // Selective-reorthogonalization state (Simon's omega recurrence):
  // omega_cur[i] estimates |v_j . v_i|, omega_prev[i] the same for j-1.
  const bool selective =
      opts.reorthogonalization == Reorthogonalization::kSelective;
  const double eps_unit = 2.2e-16;
  const double omega_threshold = std::sqrt(eps_unit);
  std::vector<double> omega_prev, omega_cur, omega_next;
  bool force_reorth = false;  // sweep two consecutive iterations

  // FLOP counter (leading-order, integer bookkeeping only): 8n per
  // iteration for the three BLAS-1 ops plus the beta norm, 16 n m per
  // full-reorthogonalization sweep pair (CGS2/MGS2 over an m-vector basis).
  std::uint64_t flops = 0;
  const auto count_reorth = [&flops, n](std::size_t basis_size) {
    flops += 16ull * n * basis_size;
  };

  bool converged = false;
  for (std::size_t j = 0; j < max_iter; ++j) {
    basis.push_back(v);
    apply(basis.back(), w);
    flops += 8ull * n;
    if (j > 0 && betas[j - 1] != 0.0)
      paxpy(-betas[j - 1], basis[j - 1], w, par);
    const double alpha = pdot(w, basis[j], par);
    paxpy(-alpha, basis[j], w, par);
    if (!selective) {
      reorthogonalize(basis, w, par);
      count_reorth(basis.size());
    }
    alphas.push_back(alpha);

    double beta = std::sqrt(pdot(w, w, par));
    if (selective && beta > breakdown_tol) {
      if (j == 0) omega_cur.assign(1, 1.0);
      // Advance the omega recurrence: omega_next[i] ~ |v_{j+1} . v_i|.
      // B(t) couples v_{t-1} and v_t; with our storage B(t) = betas[t-1].
      omega_next.assign(j + 2, 0.0);
      const double noise = eps_unit * (op_scale / beta) * 2.0;
      for (std::size_t i = 0; i < j; ++i) {
        double num = betas[i] * omega_cur[i + 1] +
                     (alphas[i] - alphas[j]) * omega_cur[i];
        if (i > 0) num += betas[i - 1] * omega_cur[i - 1];
        if (j > 0 && i < omega_prev.size()) num -= betas[j - 1] * omega_prev[i];
        omega_next[i] = num / beta + noise;
      }
      if (j >= 1)
        omega_next[j] =
            eps_unit * std::sqrt(static_cast<double>(n)) * (op_scale / beta);
      omega_next[j + 1] = 1.0;

      double worst = 0.0;
      for (std::size_t i = 0; i <= j; ++i)
        worst = std::max(worst, std::fabs(omega_next[i]));
      const bool trigger = worst > omega_threshold;
      if (trigger || force_reorth) {
        reorthogonalize(basis, w, par);
        count_reorth(basis.size());
        beta = std::sqrt(pdot(w, w, par));
        for (std::size_t i = 0; i <= j; ++i) omega_next[i] = eps_unit;
        force_reorth = trigger;  // sweep once more after a fresh trigger
      }
      omega_prev = std::move(omega_cur);
      omega_cur = std::move(omega_next);
      omega_next.clear();
    }
    if (SP_FAULT("lanczos.force_breakdown")) beta = 0.0;
    if (beta <= breakdown_tol) {
      // Invariant subspace found. Restart with a fresh random direction
      // orthogonal to the current basis (T gets a zero coupling, which the
      // QL solver handles as a block split).
      betas.push_back(0.0);
      if (basis.size() >= n) {
        converged = check_converged();
        break;
      }
      Vec fresh = random_unit_vector(n, rng);
      reorthogonalize(basis, fresh, par);
      count_reorth(basis.size());
      if (normalize(fresh) <= 1e-12) {
        converged = check_converged();
        break;
      }
      ++result.breakdown_restarts;
      v = std::move(fresh);
      if (selective) {
        // The restart direction is explicitly orthogonalized.
        omega_prev = omega_cur;
        omega_cur.assign(j + 2, eps_unit);
        omega_cur.back() = 1.0;
      }
    } else {
      betas.push_back(beta);
      scale(w, 1.0 / beta);
      v = w;
    }

    const std::size_t m = basis.size();
    const bool time_to_check =
        m >= want + 2 && (m % 10 == 0 || m == max_iter || m == n);
    if (time_to_check && check_converged()) {
      converged = true;
      break;
    }
    // The first iteration always completes, so even an already-expired
    // budget yields a usable (if poor) one-pair result.
    if (!budget_charge(opts.budget)) {
      result.budget_exhausted = true;
      break;
    }
  }
  if (!converged) converged = check_converged();

  const std::size_t m = basis.size();
  SP_ASSERT(ritz_valid && m >= 1);
  const std::size_t take = std::min(want, m);

  result.values.resize(take);
  result.vectors = DenseMatrix(n, take);
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t col = m - 1 - i;  // descending eigenvalues of B
    result.values[i] = t_conv.diag[col];
    Vec x(n, 0.0);
    // x = sum_k z(k, col) basis_k; the per-element accumulation order over
    // k is fixed, so row-blocking is exact for any thread count.
    parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = 0; k < m; ++k) {
        const double z = z_conv.at(k, col);
        const double* b = basis[k].data();
        for (std::size_t r = lo; r < hi; ++r) x[r] += z * b[r];
      }
    });
    normalize(x);
    result.vectors.set_col(i, x);
  }
  // Per-pair convergence: the longest leading prefix whose residuals meet
  // the tolerance. Callers truncate to this prefix when the tail fails.
  const double beta_tail = (m < n && betas.size() >= m) ? betas[m - 1] : 0.0;
  result.num_converged = 0;
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t col = m - 1 - i;
    const double residual = std::fabs(beta_tail * z_conv.at(m - 1, col));
    if (residual > opts.tolerance * op_scale) break;
    ++result.num_converged;
  }
  if (forced_nonconverge && want > 0)
    result.num_converged = std::min(result.num_converged, want - 1);

  result.iterations = m;
  result.converged = converged && take == want;
  result.operator_applies = m;  // one apply per iteration
  result.flops = flops + 2ull * n * m * take;  // + Ritz vector assembly
  return result;
}

LanczosResult lanczos_smallest(const SymCsrMatrix& a, LanczosOptions opts) {
  const std::size_t n = a.size();
  // Shift so the smallest eigenvalues of A become the largest of
  // B = sigma*I - A; sigma >= lambda_max(A) keeps B positive semidefinite.
  const double sigma = a.gershgorin_upper() * (1.0 + 1e-12) + 1e-12;
  auto apply = [&](const Vec& x, Vec& y) {
    a.matvec(x, y, opts.parallel);
    parallel_for(opts.parallel, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) y[i] = sigma * x[i] - y[i];
    });
  };
  LanczosResult r = lanczos_largest_op(n, apply, sigma, opts);
  // Convert eigenvalues of B back to eigenvalues of A. B's values are
  // descending, so A's come out ascending — exactly what callers expect.
  for (double& v : r.values) v = sigma - v;
  // The generic driver counted the basis work; add what each operator
  // application costs against this concrete matrix: one CSR sweep (2 nnz
  // flops + the n-element shift) per apply.
  r.flops +=
      static_cast<std::uint64_t>(r.operator_applies) * (2ull * a.nnz() + 2 * n);
  r.matrix_bytes_moved =
      static_cast<std::uint64_t>(r.operator_applies) * a.stream_bytes();
  return r;
}

}  // namespace specpart::linalg
