#include "linalg/symmetric_eigen.h"

#include <algorithm>

#include "linalg/tridiagonal.h"
#include "util/error.h"

namespace specpart::linalg {

EigenDecomposition solve_symmetric_eigen(DenseMatrix a) {
  const std::size_t n = a.rows();
  SP_ASSERT(a.cols() == n);
  if (n == 0) return {Vec{}, DenseMatrix{}};
  // Symmetrize defensively.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (a.at(i, j) + a.at(j, i));
      a.at(i, j) = avg;
      a.at(j, i) = avg;
    }
  if (n == 1) {
    DenseMatrix v(1, 1);
    v.at(0, 0) = 1.0;
    return {Vec{a.at(0, 0)}, std::move(v)};
  }
  DenseMatrix q;
  Tridiagonal t = householder_tridiagonalize(std::move(a), &q);
  tridiagonal_eigen(t, q);
  return {std::move(t.diag), std::move(q)};
}

EigenDecomposition solve_symmetric_eigen_smallest(DenseMatrix a,
                                                  std::size_t count) {
  EigenDecomposition full = solve_symmetric_eigen(std::move(a));
  const std::size_t n = full.values.size();
  count = std::min(count, n);
  EigenDecomposition out;
  out.values.assign(full.values.begin(),
                    full.values.begin() + static_cast<std::ptrdiff_t>(count));
  out.vectors = DenseMatrix(n, count);
  for (std::size_t j = 0; j < count; ++j)
    out.vectors.set_col(j, full.vectors.col(j));
  return out;
}

}  // namespace specpart::linalg
