#include "linalg/band_eigen.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace specpart::linalg {

namespace {

/// Number of eigenvalues of `a` strictly below tau, via the inertia of the
/// LDL^T factorization of (a - tau I). Pivots are not permuted; a vanishing
/// pivot is nudged to a tiny negative value, which perturbs the count by at
/// most the bisection resolution — the classic spectrum-slicing trick.
std::size_t count_below(const BandMatrix& a, double tau, double anorm,
                        Vec& l, Vec& d) {
  const std::size_t n = a.n, bw = a.bw;
  const double safe = std::max(anorm, 1.0) * 1e-290;
  l.assign(n * (bw + 1), 0.0);
  d.assign(n, 0.0);
  std::size_t neg = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t k0 = j > bw ? j - bw : 0;
    double dj = a.at(j, 0) - tau;
    for (std::size_t k = k0; k < j; ++k) {
      const double ljk = l[j * (bw + 1) + (j - k)];
      dj -= ljk * ljk * d[k];
    }
    if (std::abs(dj) < safe) dj = -safe;
    d[j] = dj;
    if (dj < 0.0) ++neg;
    const std::size_t iend = std::min(n - 1, j + bw);
    for (std::size_t i = j + 1; i <= iend; ++i) {
      // a(i, j) stored when i - j <= bw
      double s = a.at(i, i - j);
      const std::size_t kk0 = i > bw ? i - bw : 0;
      for (std::size_t k = std::max(kk0, k0); k < j; ++k)
        s -= l[i * (bw + 1) + (i - k)] * l[j * (bw + 1) + (j - k)] * d[k];
      l[i * (bw + 1) + (i - j)] = s / dj;
    }
  }
  return neg;
}

/// Banded LU with partial pivoting of (a - tau I), LAPACK-style column
/// storage with kl fill rows: ab[r * n + j] = element (i, j) with
/// i = j + r - 2 * bw, r in [0, 3 * bw].
struct BandLu {
  std::size_t n = 0, bw = 0;
  Vec ab;
  std::vector<std::uint32_t> piv;

  void factor(const BandMatrix& a, double tau, double anorm) {
    n = a.n;
    bw = a.bw;
    const std::size_t rows = 3 * bw + 1;
    ab.assign(rows * n, 0.0);
    piv.assign(n, 0);
    auto at = [&](std::size_t i, std::size_t j) -> double& {
      return ab[(2 * bw + i - j) * n + j];
    };
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i0 = j > bw ? j - bw : 0;
      const std::size_t i1 = std::min(n - 1, j + bw);
      for (std::size_t i = i0; i <= i1; ++i) {
        const double v = i >= j ? a.at(i, i - j) : a.at(j, j - i);
        at(i, j) = v - (i == j ? tau : 0.0);
      }
    }
    const double tiny = std::max(anorm, 1.0) * 1e-290;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t ilast = std::min(n - 1, j + bw);
      std::size_t p = j;
      double best = std::abs(at(j, j));
      for (std::size_t i = j + 1; i <= ilast; ++i)
        if (std::abs(at(i, j)) > best) {
          best = std::abs(at(i, j));
          p = i;
        }
      piv[j] = static_cast<std::uint32_t>(p);
      const std::size_t clast = std::min(n - 1, j + 2 * bw);
      if (p != j)
        for (std::size_t c = j; c <= clast; ++c) std::swap(at(j, c), at(p, c));
      double pv = at(j, j);
      if (std::abs(pv) < tiny) pv = at(j, j) = (pv < 0.0 ? -tiny : tiny);
      for (std::size_t i = j + 1; i <= ilast; ++i) {
        const double lij = at(i, j) / pv;
        at(i, j) = lij;
        if (lij != 0.0)
          for (std::size_t c = j + 1; c <= clast; ++c)
            at(i, c) -= lij * at(j, c);
      }
    }
  }

  void solve(Vec& b) const {
    auto at = [&](std::size_t i, std::size_t j) -> double {
      return ab[(2 * bw + i - j) * n + j];
    };
    for (std::size_t j = 0; j < n; ++j) {
      if (piv[j] != j) std::swap(b[j], b[piv[j]]);
      const std::size_t ilast = std::min(n - 1, j + bw);
      const double bj = b[j];
      if (bj != 0.0)
        for (std::size_t i = j + 1; i <= ilast; ++i) b[i] -= at(i, j) * bj;
    }
    for (std::size_t jj = n; jj-- > 0;) {
      const std::size_t clast = std::min(n - 1, jj + 2 * bw);
      double s = b[jj];
      for (std::size_t c = jj + 1; c <= clast; ++c) s -= at(jj, c) * b[c];
      b[jj] = s / at(jj, jj);
    }
  }
};

/// y = a * x for the symmetric band matrix.
void band_matvec(const BandMatrix& a, const Vec& x, Vec& y) {
  const std::size_t n = a.n, bw = a.bw;
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a.at(i, 0) * x[i];
    const std::size_t k1 = std::min(i, bw);
    for (std::size_t k = 1; k <= k1; ++k) {
      const double v = a.at(i, k);
      y[i] += v * x[i - k];
      y[i - k] += v * x[i];
    }
  }
}

double norm2(const Vec& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

BandEigenPairs band_eigen_largest(const BandMatrix& a, std::size_t count) {
  BandEigenPairs out;
  const std::size_t n = a.n;
  count = std::min(count, n);
  if (n == 0 || count == 0) {
    out.ok = true;
    return out;
  }

  // Gershgorin interval and scale.
  double glo = a.at(0, 0), ghi = a.at(0, 0), anorm = 0.0;
  {
    Vec radius(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t k1 = std::min(i, a.bw);
      for (std::size_t k = 1; k <= k1; ++k) {
        const double v = std::abs(a.at(i, k));
        radius[i] += v;
        radius[i - k] += v;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      glo = std::min(glo, a.at(i, 0) - radius[i]);
      ghi = std::max(ghi, a.at(i, 0) + radius[i]);
      anorm = std::max(anorm, std::abs(a.at(i, 0)) + radius[i]);
    }
  }
  const double span = std::max(ghi - glo, 1e-30);
  const double bis_tol = std::max(1e-14 * std::max(anorm, 1.0), 1e-300);

  Vec work_l, work_d;
  out.values.assign(count, 0.0);

  // k-th largest eigenvalue (k = 0 first) has ascending index n-1-k:
  // bracket [lo, hi] such that count_below(lo) <= n-1-k < count_below(hi).
  double hi_bound = ghi + bis_tol;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t idx = n - 1 - k;
    double lo = glo - bis_tol, hi = hi_bound;
    while (hi - lo > bis_tol + 1e-15 * std::max(std::abs(lo), std::abs(hi))) {
      const double mid = 0.5 * (lo + hi);
      if (count_below(a, mid, anorm, work_l, work_d) <= idx)
        lo = mid;
      else
        hi = mid;
    }
    out.values[k] = 0.5 * (lo + hi);
    hi_bound = hi;  // descending: the next eigenvalue is no larger
  }

  // Inverse iteration per eigenvalue, orthogonalizing inside clusters.
  out.vectors = DenseMatrix(n, count);
  const double cluster_tol = std::max(1e-7 * anorm, 100.0 * bis_tol);
  const double accept_tol = 1e-10 * std::max(anorm, 1.0);
  Rng rng(0x5EEDBA9DULL);
  BandLu lu;
  Vec x(n), y(n);
  for (std::size_t k = 0; k < count; ++k) {
    // Separate coincident shifts so repeated eigenvalues get independent
    // directions (in-cluster orthogonalization does the real work).
    std::size_t cluster_rank = 0;
    for (std::size_t j = 0; j < k; ++j)
      if (std::abs(out.values[j] - out.values[k]) <= cluster_tol)
        ++cluster_rank;
    const double tau =
        out.values[k] + static_cast<double>(cluster_rank) * 2.0 * bis_tol;
    lu.factor(a, tau, anorm);
    for (std::size_t r = 0; r < n; ++r) x[r] = rng.next_normal();
    bool accepted = false;
    for (int iter = 0; iter < 6 && !accepted; ++iter) {
      lu.solve(x);
      // Orthogonalize against accepted members of the same cluster.
      for (int sweep = 0; sweep < 2; ++sweep)
        for (std::size_t j = 0; j < k; ++j) {
          if (std::abs(out.values[j] - out.values[k]) > cluster_tol) continue;
          double c = 0.0;
          for (std::size_t r = 0; r < n; ++r)
            c += out.vectors.at(r, j) * x[r];
          for (std::size_t r = 0; r < n; ++r)
            x[r] -= c * out.vectors.at(r, j);
        }
      const double nrm = norm2(x);
      if (!(nrm > 0.0) || !std::isfinite(nrm)) {
        for (std::size_t r = 0; r < n; ++r) x[r] = rng.next_normal();
        continue;
      }
      for (std::size_t r = 0; r < n; ++r) x[r] /= nrm;
      band_matvec(a, x, y);
      double sq = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double dres = y[r] - out.values[k] * x[r];
        sq += dres * dres;
      }
      accepted = std::sqrt(sq) <= accept_tol;
    }
    if (!accepted) return out;  // ok stays false: caller falls back to dense
    for (std::size_t r = 0; r < n; ++r) out.vectors.at(r, k) = x[r];
  }
  out.ok = true;
  return out;
}

}  // namespace specpart::linalg
