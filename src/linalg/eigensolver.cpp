#include "linalg/eigensolver.h"

namespace specpart::linalg {

namespace {

// The scalar backend maps SolverOptions onto LanczosOptions field-for-field
// so its numerics are byte-identical to the pre-interface direct calls.
class ScalarSolver final : public EigenSolver {
 public:
  std::string_view name() const override { return "scalar"; }

  LanczosResult solve_smallest(const SymCsrMatrix& a, std::size_t want,
                               std::uint64_t seed, const SolverOptions& opts,
                               const ParallelConfig& parallel,
                               ComputeBudget* budget) const override {
    LanczosOptions lopts;
    lopts.num_eigenpairs = want;
    lopts.max_iterations = opts.max_iterations;
    lopts.tolerance = opts.tolerance;
    lopts.seed = seed;
    lopts.reorthogonalization = opts.reorthogonalization;
    lopts.budget = budget;
    lopts.parallel = parallel;
    return lanczos_smallest(a, lopts);
  }
};

class BlockSolver final : public EigenSolver {
 public:
  std::string_view name() const override { return "block"; }

  LanczosResult solve_smallest(const SymCsrMatrix& a, std::size_t want,
                               std::uint64_t seed, const SolverOptions& opts,
                               const ParallelConfig& parallel,
                               ComputeBudget* budget) const override {
    BlockLanczosOptions bopts;
    bopts.num_eigenpairs = want;
    bopts.block_size = opts.block_size;
    bopts.max_iterations = opts.max_iterations;
    bopts.tolerance = opts.tolerance;
    bopts.seed = seed;
    bopts.budget = budget;
    bopts.parallel = parallel;
    return block_lanczos_smallest(a, bopts);
  }
};

}  // namespace

const EigenSolver& eigen_solver(SolverBackend backend) {
  static const ScalarSolver scalar;
  static const BlockSolver block;
  return backend == SolverBackend::kBlock
             ? static_cast<const EigenSolver&>(block)
             : static_cast<const EigenSolver&>(scalar);
}

}  // namespace specpart::linalg
