#ifndef SPECPART_LINALG_PANEL_OPS_H_
#define SPECPART_LINALG_PANEL_OPS_H_

#include <cstdint>
#include <vector>

#include "linalg/dense.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace specpart::linalg {

// Deterministic panel kernels shared by the block-Lanczos driver and the
// multilevel V-cycle refinement. Every floating-point reduction goes
// through the fixed-block primitives of util/parallel.h, whose block
// structure depends only on n and the grain — never on the thread count —
// so 1, 2 and 8 threads produce the same bits.

/// dot of column `ca` of `p` with column `cb` of `q` (strided rows).
double panel_col_dot(const Panel& p, std::size_t ca, const Panel& q,
                     std::size_t cb, const ParallelConfig& par);

/// Column cb of q += alpha * column ca of p (disjoint rows: exact).
void panel_col_axpy(double alpha, const Panel& p, std::size_t ca, Panel& q,
                    std::size_t cb, const ParallelConfig& par);

/// Column c of p *= alpha.
void panel_col_scale(Panel& p, std::size_t c, double alpha,
                     const ParallelConfig& par);

/// C = P^T W (p.cols x w.cols), partials per row block combined in block
/// order — the panel generalization of the scalar solver's CGS2 panel dot.
DenseMatrix panel_dots(const Panel& p, const Panel& w,
                       const ParallelConfig& par);

/// W -= P C over disjoint row blocks (exact per element).
void panel_subtract(Panel& w, const Panel& p, const DenseMatrix& c,
                    const ParallelConfig& par);

/// Two CGS sweeps of every column of `w` against all of `blocks` — the
/// block orthogonalizer (same CGS2 scheme as the scalar solver's parallel
/// reorthogonalization, lifted from one vector to a panel).
void panel_reorthogonalize(const std::vector<Panel>& blocks, Panel& w,
                           const ParallelConfig& par, std::uint64_t& flops);

/// In-place CGS2 QR of all columns of `x`. A column whose norm falls below
/// `breakdown_tol` is refilled with a fresh random direction from `rng`,
/// orthogonalized against the preceding columns (the V-cycle uses this to
/// survive a rank-deficient interpolated panel; the draw order is fixed,
/// so the result is deterministic for any thread count). Returns the
/// number of columns that needed a restart.
std::size_t panel_qr_cgs2(Panel& x, double breakdown_tol,
                          const ParallelConfig& par, Rng& rng,
                          std::uint64_t& flops);

/// B = A * U where A is n x k (panel) and U is k x k2 — the Rayleigh-Ritz
/// panel rotation, row-blocked (exact per element for any thread count).
void panel_rotate(const Panel& a, const DenseMatrix& u, Panel& out,
                  const ParallelConfig& par);

}  // namespace specpart::linalg

#endif  // SPECPART_LINALG_PANEL_OPS_H_
