#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/error.h"

namespace specpart::linalg {

SymCsrMatrix::SymCsrMatrix(std::size_t n,
                           const std::vector<Triplet>& triplets) {
  SP_ASSERT(n <= std::numeric_limits<std::uint32_t>::max());
  CsrAssembler& ws = thread_assembly_workspace();
  ws.begin(n);
  ws.reserve(triplets.size() * 2);
  for (const Triplet& t : triplets) {
    SP_ASSERT(t.row < n && t.col < n);
    ws.add_entry(static_cast<std::uint32_t>(t.row),
                 static_cast<std::uint32_t>(t.col), t.value);
    if (t.row != t.col)
      ws.add_entry(static_cast<std::uint32_t>(t.col),
                   static_cast<std::uint32_t>(t.row), t.value);
  }
  ws.finish(storage_);
}

void SymCsrMatrix::matvec(const Vec& x, Vec& y) const {
  matvec(x, y, ParallelConfig{});
}

void SymCsrMatrix::matvec(const Vec& x, Vec& y,
                          const ParallelConfig& par) const {
  const std::size_t n = storage_.num_rows();
  SP_ASSERT(x.size() == n);
  y.resize(n);  // no zero-fill: every y[i] is overwritten below
  parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double s = 0.0;
      for (std::size_t k = storage_.offsets[i]; k < storage_.offsets[i + 1];
           ++k)
        s += storage_.values[k] * x[storage_.cols[k]];
      y[i] = s;
    }
  });
}

Vec SymCsrMatrix::matvec(const Vec& x) const {
  Vec y;
  matvec(x, y);
  return y;
}

void SymCsrMatrix::spmm(const Panel& x, Panel& y,
                        const ParallelConfig& par) const {
  const std::size_t n = storage_.num_rows();
  const std::size_t b = x.cols();
  SP_ASSERT(x.rows() == n && y.rows() == n && y.cols() == b);
  parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double* yi = y.row(i);
      for (std::size_t c = 0; c < b; ++c) yi[c] = 0.0;
      for (std::size_t k = storage_.offsets[i]; k < storage_.offsets[i + 1];
           ++k) {
        const double a = storage_.values[k];
        const double* xk = x.row(storage_.cols[k]);
        for (std::size_t c = 0; c < b; ++c) yi[c] += a * xk[c];
      }
    }
  });
}

std::size_t SymCsrMatrix::stream_bytes() const {
  return storage_.values.size() * sizeof(double) +
         storage_.cols.size() * sizeof(std::uint32_t) +
         storage_.offsets.size() * sizeof(std::size_t);
}

double SymCsrMatrix::at(std::size_t i, std::size_t j) const {
  SP_ASSERT(i < size() && j < size());
  for (std::size_t k = storage_.offsets[i]; k < storage_.offsets[i + 1]; ++k)
    if (storage_.cols[k] == j) return storage_.values[k];
  return 0.0;
}

double SymCsrMatrix::trace() const {
  // Walk each row once for its diagonal entry (columns are sorted, so the
  // scan can stop early) instead of paying at(i, i)'s full-row rescan.
  double t = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t k = storage_.offsets[i]; k < storage_.offsets[i + 1];
         ++k) {
      if (storage_.cols[k] < i) continue;
      if (storage_.cols[k] == i) t += storage_.values[k];
      break;
    }
  }
  return t;
}

double SymCsrMatrix::gershgorin_upper() const {
  double bound = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    double radius = 0.0;
    double diag = 0.0;
    for (std::size_t k = storage_.offsets[i]; k < storage_.offsets[i + 1];
         ++k) {
      if (storage_.cols[k] == i)
        diag = storage_.values[k];
      else
        radius += std::fabs(storage_.values[k]);
    }
    bound = std::max(bound, diag + radius);
  }
  return bound;
}

DenseMatrix SymCsrMatrix::to_dense() const {
  DenseMatrix m(size(), size());
  for (std::size_t i = 0; i < size(); ++i)
    for (std::size_t k = storage_.offsets[i]; k < storage_.offsets[i + 1]; ++k)
      m.at(i, storage_.cols[k]) = storage_.values[k];
  return m;
}

}  // namespace specpart::linalg
