#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace specpart::linalg {

SymCsrMatrix::SymCsrMatrix(std::size_t n, const std::vector<Triplet>& triplets)
    : n_(n), row_ptr_(n + 1, 0) {
  // Expand: mirror off-diagonal entries so both triangles are stored.
  std::vector<Triplet> full;
  full.reserve(triplets.size() * 2);
  for (const Triplet& t : triplets) {
    SP_ASSERT(t.row < n && t.col < n);
    full.push_back(t);
    if (t.row != t.col) full.push_back({t.col, t.row, t.value});
  }
  std::sort(full.begin(), full.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // Merge duplicates and fill CSR arrays.
  col_idx_.reserve(full.size());
  values_.reserve(full.size());
  for (std::size_t i = 0; i < full.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < full.size() && full[j].row == full[i].row &&
           full[j].col == full[i].col) {
      sum += full[j].value;
      ++j;
    }
    col_idx_.push_back(full[i].col);
    values_.push_back(sum);
    ++row_ptr_[full[i].row + 1];
    i = j;
  }
  for (std::size_t i = 0; i < n; ++i) row_ptr_[i + 1] += row_ptr_[i];
}

void SymCsrMatrix::matvec(const Vec& x, Vec& y) const {
  matvec(x, y, ParallelConfig{});
}

void SymCsrMatrix::matvec(const Vec& x, Vec& y,
                          const ParallelConfig& par) const {
  SP_ASSERT(x.size() == n_);
  y.resize(n_);  // no zero-fill: every y[i] is overwritten below
  parallel_for(par, 0, n_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      double s = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        s += values_[k] * x[col_idx_[k]];
      y[i] = s;
    }
  });
}

Vec SymCsrMatrix::matvec(const Vec& x) const {
  Vec y;
  matvec(x, y);
  return y;
}

double SymCsrMatrix::at(std::size_t i, std::size_t j) const {
  SP_ASSERT(i < n_ && j < n_);
  for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
    if (col_idx_[k] == j) return values_[k];
  return 0.0;
}

double SymCsrMatrix::trace() const {
  // Walk each row once for its diagonal entry (columns are sorted, so the
  // scan can stop early) instead of paying at(i, i)'s full-row rescan.
  double t = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] < i) continue;
      if (col_idx_[k] == i) t += values_[k];
      break;
    }
  }
  return t;
}

double SymCsrMatrix::gershgorin_upper() const {
  double bound = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    double radius = 0.0;
    double diag = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] == i)
        diag = values_[k];
      else
        radius += std::fabs(values_[k]);
    }
    bound = std::max(bound, diag + radius);
  }
  return bound;
}

DenseMatrix SymCsrMatrix::to_dense() const {
  DenseMatrix m(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      m.at(i, col_idx_[k]) = values_[k];
  return m;
}

}  // namespace specpart::linalg
