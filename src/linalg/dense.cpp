#include "linalg/dense.h"

#include <cmath>

#include "util/error.h"

namespace specpart::linalg {

double dot(const Vec& a, const Vec& b) {
  SP_ASSERT(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vec& a) { return std::sqrt(norm_sq(a)); }

double norm_sq(const Vec& a) { return dot(a, a); }

void axpy(double alpha, const Vec& x, Vec& y) {
  SP_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vec& x, double alpha) {
  for (double& v : x) v *= alpha;
}

double normalize(Vec& x) {
  const double n = norm(x);
  if (n > 0.0) scale(x, 1.0 / n);
  return n;
}

Vec sub(const Vec& a, const Vec& b) {
  SP_ASSERT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec add(const Vec& a, const Vec& b) {
  SP_ASSERT(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Panel::col(std::size_t j) const {
  SP_ASSERT(j < cols_);
  Vec v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = data_[i * cols_ + j];
  return v;
}

void Panel::set_col(std::size_t j, const Vec& v) {
  SP_ASSERT(j < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + j] = v[i];
}

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double& DenseMatrix::at(std::size_t i, std::size_t j) {
  SP_ASSERT(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

double DenseMatrix::at(std::size_t i, std::size_t j) const {
  SP_ASSERT(i < rows_ && j < cols_);
  return data_[i * cols_ + j];
}

Vec DenseMatrix::matvec(const Vec& x) const {
  SP_ASSERT(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

Vec DenseMatrix::matvec_transposed(const Vec& x) const {
  SP_ASSERT(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) y[j] += row[j] * x[i];
  }
  return y;
}

Vec DenseMatrix::col(std::size_t j) const {
  SP_ASSERT(j < cols_);
  Vec v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = data_[i * cols_ + j];
  return v;
}

Vec DenseMatrix::row(std::size_t i) const {
  SP_ASSERT(i < rows_);
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_));
}

void DenseMatrix::set_col(std::size_t j, const Vec& v) {
  SP_ASSERT(j < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + j] = v[i];
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  SP_ASSERT(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = data_[i * cols_ + k];
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

double DenseMatrix::frobenius() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  SP_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

}  // namespace specpart::linalg
