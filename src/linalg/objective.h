// Objective model: which symmetric operator the spectral pipeline solves.
//
// The paper's f(P_k) objective is the unnormalized min-cut, whose operator
// is the plain clique-model Laplacian L = D - A. Community-detection-style
// traffic wants the conductance family instead, whose operator is the
// degree-normalized symmetric Laplacian
//
//     N = D^{-1/2} L D^{-1/2},   N_ij = L_ij / sqrt(d_i d_j),
//
// with the convention D^{-1/2} = 0 on zero-degree rows (an isolated vertex
// keeps its all-zero row and a zero diagonal, so trace(N) = count of
// non-isolated vertices and no solve ever divides by zero). The enum lives
// here in linalg — like SolverBackend — so the spectral and model layers
// can consume it without depending on core; the stable string tokens
// ("unnormalized" | "normalized") are parsed and printed in exactly one
// place, core/pipeline_config.{h,cpp}.
//
// The scaling is an O(nnz) in-place rescale of an already-assembled
// Laplacian CSR — same offsets/cols layout, only the values change — so
// the normalized operator costs one values-array copy, never a rebuild.
#pragma once

#include "linalg/sparse.h"

namespace specpart::linalg {

/// Which symmetric operator the eigensolve runs on.
///  * kUnnormalized — the plain Laplacian L = D - A (the paper's model;
///    default, and the byte-identity anchor for cached bases, stored
///    files and recorded wire traffic).
///  * kNormalizedSymmetric — N = D^{-1/2} L D^{-1/2}, the operator of the
///    normalized-cut / conductance objective family.
enum class ObjectiveModel { kUnnormalized, kNormalizedSymmetric };

/// Per-row scale s_i = 1/sqrt(q_ii) of a Laplacian's degree diagonal, with
/// s_i = 0 where q_ii <= 0 (isolated vertices — zero rows stay zero under
/// the symmetric scaling instead of dividing by zero).
Vec inv_sqrt_degree_scale(const SymCsrMatrix& laplacian);

/// In-place symmetric scaling values[k] *= s[row] * s[col] over every
/// stored entry. With s = inv_sqrt_degree_scale this turns a Laplacian's
/// value array into the normalized operator's, preserving the pattern.
void scale_symmetric(CsrStorage& storage, const Vec& s);

/// N = D^{-1/2} L D^{-1/2}: copies the Laplacian's CSR arrays once and
/// rescales the values in place. Zero-degree rows keep a zero diagonal.
SymCsrMatrix normalized_laplacian(const SymCsrMatrix& laplacian);

}  // namespace specpart::linalg
