// Lanczos iteration for the extreme eigenpairs of large sparse symmetric
// matrices.
//
// The paper computes Laplacian eigenvectors with the LASO2 Lanczos package
// [39]; this module is the from-scratch substitute. We use full
// reorthogonalization (robust and plenty fast at the d <= ~25 eigenvectors
// the experiments need) and the standard spectral-shift trick: to obtain the
// *smallest* eigenpairs of A we run Lanczos on B = sigma*I - A with sigma an
// upper bound on lambda_max(A) (Gershgorin), so the wanted pairs become the
// dominant ones and converge first — mirroring the paper's remark that
// eigenvector i always converges before eigenvector j for i < j.
#pragma once

#include <cstdint>
#include <functional>

#include "linalg/dense.h"
#include "linalg/sparse.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace specpart::linalg {

/// Reorthogonalization policy.
///  * kFull — w is orthogonalized against the whole basis every iteration
///    (robust; O(n m^2) total).
///  * kSelective — Simon's omega recurrence estimates the loss of
///    orthogonality and triggers a full sweep only when the estimate
///    crosses sqrt(machine epsilon); this is the strategy family LASO2
///    [39] used, and is noticeably faster at large Krylov dimensions.
enum class Reorthogonalization { kFull, kSelective };

/// Tuning knobs for the Lanczos solver. Defaults are good for clique-model
/// Laplacians of circuits with up to ~10^5 vertices.
struct LanczosOptions {
  /// How many eigenpairs (smallest eigenvalues) to return.
  std::size_t num_eigenpairs = 2;
  /// Hard cap on Krylov dimension; 0 means automatic
  /// (min(n, max(20 * num_eigenpairs + 120, 200))).
  std::size_t max_iterations = 0;
  /// Relative residual tolerance: converged when
  /// ||A x - lambda x|| <= tolerance * sigma.
  double tolerance = 1e-9;
  /// Seed for the random start vector.
  std::uint64_t seed = 0xC0FFEEULL;
  Reorthogonalization reorthogonalization = Reorthogonalization::kFull;
  /// Optional shared compute budget (nullptr = unlimited). One Lanczos
  /// iteration costs one budget unit; on exhaustion the solver stops and
  /// returns the best Ritz pairs of the basis built so far (at least one
  /// iteration always runs so the result is usable).
  ComputeBudget* budget = nullptr;
  /// Compute-kernel threading (see util/parallel.h). The serial default is
  /// byte-identical to the original implementation. With > 1 thread the
  /// SpMV is split by row blocks and the Gram-Schmidt sweeps become blocked
  /// multi-vector dot/axpy panels (classical GS with two sweeps instead of
  /// modified GS); results are then bit-identical across every thread
  /// count >= 2, and agree with the serial path to solver tolerance.
  ParallelConfig parallel;
};

/// Eigenpairs: values[j] ascending, column j of `vectors` the matching
/// orthonormal eigenvector.
struct LanczosResult {
  Vec values;
  DenseMatrix vectors;
  /// Krylov dimension actually used.
  std::size_t iterations = 0;
  /// True if all requested pairs met the residual tolerance.
  bool converged = false;
  /// Length of the leading prefix of returned pairs that individually met
  /// the residual tolerance (eigenpair i converges before j for i < j, so
  /// a prefix is the natural unit of partial success).
  std::size_t num_converged = 0;
  /// Invariant-subspace restarts taken (fresh random directions).
  std::size_t breakdown_restarts = 0;
  /// True when the iteration stopped because the compute budget ran out.
  bool budget_exhausted = false;
  /// Operator applications, counted in single-column (matvec) equivalents:
  /// one per iteration for the scalar chain, the block width per SpMM for
  /// the block driver.
  std::size_t operator_applies = 0;
  /// Leading-order floating-point operations spent (operator applies plus
  /// orthogonalization); per-eigenpair cost = flops / num_converged.
  std::uint64_t flops = 0;
  /// Matrix CSR bytes streamed (SymCsrMatrix::stream_bytes per sweep). The
  /// headline block-vs-scalar metric: a d-pair scalar solve sweeps the
  /// matrix once per iteration, the block solver once per block step.
  std::uint64_t matrix_bytes_moved = 0;
};

/// Computes the `opts.num_eigenpairs` smallest eigenpairs of the symmetric
/// sparse matrix `a`. Handles invariant subspaces (e.g. disconnected graph
/// Laplacians: multiple zero eigenvalues) by restarting with fresh random
/// directions. Requests for more pairs than n are clamped to n.
LanczosResult lanczos_smallest(const SymCsrMatrix& a, LanczosOptions opts);

/// Generic operator version: `apply(x, y)` must compute y = B x for a
/// symmetric positive operator B of dimension n whose *largest* eigenpairs
/// are wanted. Returned values are eigenvalues of B, descending.
LanczosResult lanczos_largest_op(
    std::size_t n, const std::function<void(const Vec&, Vec&)>& apply,
    double op_norm_estimate, LanczosOptions opts);

}  // namespace specpart::linalg
