#include "linalg/block_lanczos.h"

#include <algorithm>
#include <cmath>

#include "linalg/band_eigen.h"
#include "linalg/panel_ops.h"
#include "linalg/symmetric_eigen.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"

namespace specpart::linalg {

// The panel kernels (CGS2 dots, subtracts, reorthogonalization) live in
// linalg/panel_ops.h, shared with the multilevel V-cycle refinement. They
// use the fixed-block primitives of util/parallel.h, whose block structure
// depends only on n and the grain — never on the thread count. The block
// driver therefore has no separate serial reference: 1, 2 and 8 threads
// produce the same bits, which is the contract test_block_lanczos_mt pins.


LanczosResult block_lanczos_smallest(const SymCsrMatrix& a,
                                     BlockLanczosOptions opts) {
  LanczosResult result;
  const std::size_t n = a.size();
  const std::size_t want = std::min(opts.num_eigenpairs, n);
  if (want == 0 || n == 0) return result;

  std::size_t b = opts.block_size != 0
                      ? opts.block_size
                      : std::min<std::size_t>(8, std::max<std::size_t>(2,
                                                                       want));
  b = std::min(b, n);
  b = std::max<std::size_t>(b, 1);

  // Krylov-column cap. A block step advances every column by one
  // polynomial degree, so a b-wide iteration reaches degree cap/b — the
  // scalar column formula would starve a wide block of depth. Scale it by
  // (b+2)/2: the block's gap-boosted rate (each pair sees the gap to
  // lambda_{i+b}, not lambda_{i+1}) empirically needs about a third of the
  // scalar degree, so this keeps a comfortable margin at every width.
  std::size_t cap =
      opts.max_iterations != 0
          ? opts.max_iterations
          : std::max<std::size_t>((20 * want + 120) * (b + 2) / 2, 200);
  cap = std::min(cap, n);
  cap = std::max(cap, want);
  b = std::min(b, cap);

  const double sigma = a.gershgorin_upper() * (1.0 + 1e-12) + 1e-12;
  const double op_scale = std::max(sigma, 1e-30);
  const double breakdown_tol = 1e-13 * op_scale;
  const ParallelConfig& par = opts.parallel;
  const std::size_t nnz = a.nnz();

  const bool forced_nonconverge = SP_FAULT("lanczos.force_nonconverge");

  Rng rng(opts.seed);
  std::uint64_t flops = 0;

  // Y = (sigma I - A) X: one matrix sweep advances every panel column.
  Panel w_panel;
  auto apply_block = [&](const Panel& x, Panel& y) {
    a.spmm(x, y, par);
    const std::size_t cols = x.cols();
    parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        const double* xr = x.row(r);
        double* yr = y.row(r);
        for (std::size_t c = 0; c < cols; ++c) yr[c] = sigma * xr[c] - yr[c];
      }
    });
    result.operator_applies += cols;
    result.matrix_bytes_moved += a.stream_bytes();
    flops += static_cast<std::uint64_t>(cols) * (2ull * nnz + 2ull * n);
  };

  std::vector<Panel> blocks;       // V_0 .. V_j, widths may shrink at cap
  std::vector<DenseMatrix> diag_blocks;  // A_j = V_j^T B V_j
  std::vector<DenseMatrix> off_blocks;   // B_j couples V_j and V_{j+1}

  /// In-place CGS2 QR of `w`, normalizing the leading `keep` columns.
  /// Every column — including ones past `keep` that the caller will
  /// discard — gets its R entries against the kept columns accumulated,
  /// because those entries are the coupling V_{j+1}^T B V_j: dropping a
  /// column must not drop its (O(1)) coupling from the band matrix.
  /// Dead columns (norm below breakdown_tol: an invariant subspace was
  /// captured) get a zero R row; with `allow_restart` they are refilled
  /// with fresh random directions orthogonal to everything so the
  /// iteration can continue past eigenvalue multiplicities. Returns false
  /// when the whole space is exhausted and no fresh direction exists.
  auto qr_panel = [&](Panel& w, std::size_t keep, DenseMatrix& r_out,
                      bool allow_restart) -> bool {
    const std::size_t width = w.cols();
    r_out = DenseMatrix(width, width);
    for (std::size_t k = 0; k < width; ++k) {
      // Columns past `keep` only see the normalized (kept) columns; their
      // own normalization never happens, so R rows >= keep stay zero.
      const std::size_t limit = std::min(k, keep);
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (std::size_t j = 0; j < limit; ++j) {
          const double c = panel_col_dot(w, j, w, k, par);
          if (c != 0.0) panel_col_axpy(-c, w, j, w, k, par);
          r_out.at(j, k) += c;
        }
      }
      flops += 8ull * n * limit;
      if (k >= keep) continue;
      double nrm = std::sqrt(panel_col_dot(w, k, w, k, par));
      if (nrm > breakdown_tol) {
        r_out.at(k, k) = nrm;
        panel_col_scale(w, k, 1.0 / nrm, par);
        continue;
      }
      // Dead column: R row stays zero (the coupling through an invariant
      // subspace is exactly zero, the band solver sees a block split).
      r_out.at(k, k) = 0.0;
      if (!allow_restart) {
        panel_col_scale(w, k, 0.0, par);
        continue;
      }
      Panel fresh(n, 1);
      for (std::size_t r = 0; r < n; ++r) fresh.at(r, 0) = rng.next_normal();
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (const Panel& p : blocks) {
          const DenseMatrix c = panel_dots(p, fresh, par);
          panel_subtract(fresh, p, c, par);
        }
        for (std::size_t j = 0; j < k; ++j) {
          const double c = panel_col_dot(w, j, fresh, 0, par);
          if (c != 0.0) panel_col_axpy(-c, w, j, fresh, 0, par);
        }
      }
      nrm = std::sqrt(panel_col_dot(fresh, 0, fresh, 0, par));
      if (nrm <= 1e-12) return false;  // basis spans the whole space
      panel_col_scale(fresh, 0, 1.0 / nrm, par);
      const double* src = fresh.data();
      double* dst = w.data();
      parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) dst[r * width + k] = src[r];
      });
      ++result.breakdown_restarts;
    }
    return true;
  };

  // Start panel: random normals, orthonormalized.
  {
    Panel v0(n, std::min(b, cap));
    for (std::size_t c = 0; c < v0.cols(); ++c)
      for (std::size_t r = 0; r < n; ++r) v0.at(r, c) = rng.next_normal();
    DenseMatrix r0;
    SP_ASSERT(qr_panel(v0, v0.cols(), r0, /*allow_restart=*/true));
    blocks.push_back(std::move(v0));
  }
  std::size_t used = blocks.back().cols();

  // Band Rayleigh-Ritz state, recomputed by check() and reused for the
  // final extraction: the top `take` Ritz values (descending) and their
  // band-matrix eigenvectors (m x take, column i pairs with top_values[i]).
  Vec top_values;
  DenseMatrix top_vectors;
  std::size_t ritz_m = 0;
  Vec residuals;  // per wanted pair, aligned with descending theta

  /// Rayleigh-Ritz on the projected band matrix; computes the wanted
  /// pairs' residuals ||b_tail y_bot||. Returns true when all converged.
  ///
  /// The projected matrix is band with bandwidth <= the block width, so
  /// the wanted extreme pairs come from the O(m b^2)-per-pair spectrum
  /// slicer in linalg/band_eigen.h rather than a dense O(m^3) solve — the
  /// dense path at every geometric checkpoint used to dominate the whole
  /// iteration (about 3/4 of serial time at n=2000, d=10). The dense
  /// solver remains as a fallback when inverse iteration cannot certify
  /// the band eigenvectors; both paths are serial and deterministic.
  auto check = [&](const DenseMatrix* b_tail) -> bool {
    const std::size_t m = used;
    const std::size_t take = std::min(want, m);
    std::size_t bw = 0;
    for (const Panel& p : blocks) bw = std::max(bw, p.cols());
    bool band_ok = false;
    if (m >= 64 && bw + 1 < m) {
      BandMatrix t(m, bw);
      std::size_t row0 = 0;
      for (std::size_t j = 0; j < diag_blocks.size(); ++j) {
        const DenseMatrix& d = diag_blocks[j];
        for (std::size_t r = 0; r < d.rows(); ++r)
          for (std::size_t c = 0; c <= r; ++c)
            t.at(row0 + r, r - c) = d.at(r, c);
        if (j < off_blocks.size()) {
          const DenseMatrix& o = off_blocks[j];  // rows: block j+1, cols: j
          for (std::size_t r = 0; r < o.rows(); ++r)
            for (std::size_t c = 0; c < d.cols(); ++c) {
              // R-factor rows r > c are exactly zero and would fall
              // outside the band; skip them.
              const std::size_t dist = d.rows() + r - c;
              if (dist <= bw) t.at(row0 + d.rows() + r, dist) = o.at(r, c);
            }
        }
        row0 += d.rows();
      }
      BandEigenPairs pairs = band_eigen_largest(t, take);
      if (pairs.ok) {
        top_values = std::move(pairs.values);
        top_vectors = std::move(pairs.vectors);
        band_ok = true;
      }
    }
    if (!band_ok) {
      DenseMatrix t(m, m);
      std::size_t row0 = 0;
      for (std::size_t j = 0; j < diag_blocks.size(); ++j) {
        const DenseMatrix& d = diag_blocks[j];
        for (std::size_t r = 0; r < d.rows(); ++r)
          for (std::size_t c = 0; c < d.cols(); ++c)
            t.at(row0 + r, row0 + c) = d.at(r, c);
        if (j < off_blocks.size()) {
          const DenseMatrix& o = off_blocks[j];
          for (std::size_t r = 0; r < o.rows(); ++r)
            for (std::size_t c = 0; c < d.cols(); ++c) {
              t.at(row0 + d.rows() + r, row0 + c) = o.at(r, c);
              t.at(row0 + c, row0 + d.rows() + r) = o.at(r, c);
            }
        }
        row0 += d.rows();
      }
      const EigenDecomposition ritz = solve_symmetric_eigen(std::move(t));
      top_values.assign(take, 0.0);
      top_vectors = DenseMatrix(m, take);
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t col = m - 1 - i;  // largest thetas are last
        top_values[i] = ritz.values[col];
        for (std::size_t r = 0; r < m; ++r)
          top_vectors.at(r, i) = ritz.vectors.at(r, col);
      }
    }
    ritz_m = m;
    const std::size_t wlast = blocks.back().cols();
    residuals.assign(take, 0.0);
    for (std::size_t i = 0; i < take; ++i) {
      if (b_tail == nullptr) continue;  // residual exactly representable: 0
      double sq = 0.0;
      for (std::size_t r = 0; r < b_tail->rows(); ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < wlast; ++c)
          s += b_tail->at(r, c) * top_vectors.at(m - wlast + c, i);
        sq += s * s;
      }
      residuals[i] = std::sqrt(sq);
    }
    if (m < want || forced_nonconverge) return false;
    for (std::size_t i = 0; i < take; ++i)
      if (residuals[i] > opts.tolerance * op_scale) return false;
    return true;
  };

  bool converged = false;
  // Geometric check spacing bounds the total Rayleigh-Ritz cost by a small
  // constant times the final check's. With the band slicer a check costs
  // O(m b^2) per pair instead of O(m^3), so the schedule is denser than
  // the dense-solve era's 1.25x (1.125x now): convergence is caught
  // earlier and the full-reorthogonalization cost — which grows with
  // every surplus column — shrinks with it. The schedule depends only on
  // column counts, never on thread count, preserving bit-identical
  // results across thread counts.
  std::size_t next_check = 0;
  while (true) {
    const Panel& v = blocks.back();
    const std::size_t w = v.cols();
    w_panel = Panel(n, w);
    apply_block(v, w_panel);
    if (!off_blocks.empty()) {
      // W -= V_{j-1} B_{j-1}^T: the three-term block recurrence.
      const DenseMatrix& bj = off_blocks.back();
      const Panel& prev = blocks[blocks.size() - 2];
      DenseMatrix bt(prev.cols(), w);
      for (std::size_t r = 0; r < bt.rows(); ++r)
        for (std::size_t c = 0; c < w; ++c) bt.at(r, c) = bj.at(c, r);
      panel_subtract(w_panel, prev, bt, par);
      flops += 2ull * n * prev.cols() * w;
    }
    DenseMatrix aj = panel_dots(v, w_panel, par);
    panel_subtract(w_panel, v, aj, par);
    flops += 4ull * n * w * w;
    diag_blocks.push_back(std::move(aj));
    // Full reorthogonalization against the whole basis (CGS2 panels).
    panel_reorthogonalize(blocks, w_panel, par, flops);

    const std::size_t remaining = cap - used;
    const std::size_t w_next = std::min(w, remaining);
    // At the cap there is no next panel to keep, but the residual check
    // still needs the couplings to the directions we are about to drop —
    // QR the full panel (no restarts: dead columns mean the basis already
    // captured an invariant subspace, so their couplings really are zero).
    const std::size_t keep = w_next > 0 ? w_next : w;
    DenseMatrix r_factor;
    const bool have_fresh =
        qr_panel(w_panel, keep, r_factor, /*allow_restart=*/w_next > 0);
    // Coupling block B_j = V_{j+1}^T B V_j: the first `keep` rows of R,
    // across ALL `w` columns (a truncated panel still couples through the
    // columns it discards — see qr_panel).
    DenseMatrix bj(keep, w);
    for (std::size_t r = 0; r < keep; ++r)
      for (std::size_t c = 0; c < w; ++c) bj.at(r, c) = r_factor.at(r, c);

    const bool terminal = w_next == 0 || !have_fresh;
    const bool do_check = terminal || used >= next_check;
    if (do_check) {
      converged = check(&bj);
      next_check = used + std::max<std::size_t>(b, used / 8);
    }
    if (converged || terminal) break;
    if (!budget_charge(opts.budget)) {
      // The extraction below reads the last Rayleigh-Ritz state; make sure
      // it reflects every column the budget paid for.
      if (!do_check) converged = check(&bj);
      result.budget_exhausted = true;
      break;
    }
    Panel next(n, w_next);
    parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r)
        for (std::size_t c = 0; c < w_next; ++c)
          next.at(r, c) = w_panel.at(r, c);
    });
    off_blocks.push_back(std::move(bj));
    blocks.push_back(std::move(next));
    used += w_next;
  }

  SP_ASSERT(ritz_m == used && used >= 1);
  const std::size_t m = used;
  const std::size_t take = std::min(want, m);

  result.values.resize(take);
  result.vectors = DenseMatrix(n, take);
  Vec x(n);
  for (std::size_t i = 0; i < take; ++i) {
    result.values[i] = sigma - top_values[i];  // descending eigenvalues of B
    // x = sum_j V_j y_j; per row the block/column order is fixed, so the
    // row-blocked accumulation is exact for any thread count.
    parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        double s = 0.0;
        std::size_t row0 = 0;
        for (const Panel& p : blocks) {
          const double* pr = p.row(r);
          for (std::size_t c = 0; c < p.cols(); ++c)
            s += pr[c] * top_vectors.at(row0 + c, i);
          row0 += p.cols();
        }
        x[r] = s;
      }
    });
    const double nrm = std::sqrt(parallel_reduce<double>(
        par, 0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t r = lo; r < hi; ++r) s += x[r] * x[r];
          return s;
        },
        [](double acc, double s) { return acc + s; }));
    if (nrm > 0.0)
      for (std::size_t r = 0; r < n; ++r) x[r] /= nrm;
    result.vectors.set_col(i, x);
    flops += 2ull * n * m;
  }

  result.num_converged = 0;
  for (std::size_t i = 0; i < take; ++i) {
    if (i < residuals.size() && residuals[i] > opts.tolerance * op_scale)
      break;
    ++result.num_converged;
  }
  if (forced_nonconverge && want > 0)
    result.num_converged = std::min(result.num_converged, want - 1);

  result.iterations = m;  // Krylov columns, comparable with the scalar chain
  result.converged = converged && take == want;
  result.flops = flops;
  return result;
}

}  // namespace specpart::linalg
