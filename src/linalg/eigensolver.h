// Unified eigensolver backend API.
//
// The embedding stage historically talked to lanczos_smallest directly and
// every caller re-plumbed its own LanczosOptions / EmbeddingOptions knobs.
// This header collapses that into one seam: SolverOptions is the single
// solver-configuration struct (owned by core::PipelineConfig and threaded
// through MeloOptions, the service and the tools), and EigenSolver is the
// stable interface behind which the scalar Lanczos chain and the block
// Lanczos driver are interchangeable.
//
// Backend contract:
//  * kScalar — the existing single-vector Lanczos chain (lanczos.h). Given
//    the same inputs it is byte-identical to the pre-interface code path;
//    this is the default and the compatibility anchor for cached bases and
//    recorded wire traffic.
//  * kBlock — block Lanczos (block_lanczos.h): all wanted directions
//    advance through one sparse x panel product per step, moving ~b x fewer
//    Laplacian bytes per eigenpair; bit-identical across thread counts.
//
// Stable string tokens for the two backends ("scalar", "block") are parsed
// and printed in exactly one place: core/pipeline_config.{h,cpp}.
#pragma once

#include <cstdint>
#include <string_view>

#include "linalg/block_lanczos.h"
#include "linalg/lanczos.h"
#include "linalg/sparse.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace specpart::linalg {

/// Which eigensolver implementation runs the eigensolve stage.
enum class SolverBackend { kScalar, kBlock };

/// How the eigensolve is orchestrated. kFlat runs the selected backend
/// directly on the full-size Laplacian. kMultilevel runs the coarsen /
/// solve / refine V-cycle (multilevel/vcycle.h): heavy-edge matching
/// contracts the matrix level by level, the coarsest level is solved
/// exactly, and the basis is interpolated back up with Chebyshev-filtered
/// Rayleigh-Ritz refinement sweeps — typically several times faster than a
/// flat Krylov solve at large n. When refinement cannot certify the
/// requested pairs the embedding layer falls back to the flat chain, so
/// the strategy is an accelerator, never a correctness risk.
enum class SolverStrategy { kFlat, kMultilevel };

/// The one solver-configuration struct. Replaces the ad-hoc spread of
/// LanczosOptions / EmbeddingOptions fields; PipelineConfig owns an
/// instance (aliased as core::SolverOptions) and every layer passes it
/// through unchanged. Fields that only one backend consumes are documented
/// as such and ignored by the other.
struct SolverOptions {
  SolverBackend backend = SolverBackend::kScalar;
  /// Relative residual tolerance for the iterative solvers, and the
  /// convergence contract recorded in EigenBasis.
  double tolerance = 1e-8;
  /// Problems with n <= dense_threshold skip Krylov entirely and use the
  /// exact dense decomposition (cheaper and unconditionally robust).
  std::size_t dense_threshold = 320;
  /// Largest n for which the embedding fallback chain may escalate a
  /// non-converged iterative solve to the dense solver (0 disables).
  std::size_t dense_fallback_limit = 2048;
  /// Krylov-column cap; 0 = the solvers' automatic formula. The embedding
  /// fallback chain enlarges this per attempt, so it is per-call state as
  /// much as configuration.
  std::size_t max_iterations = 0;
  /// kBlock only: panel width b (0 = automatic).
  std::size_t block_size = 0;
  /// kScalar only: reorthogonalization policy.
  Reorthogonalization reorthogonalization = Reorthogonalization::kFull;
  /// Orchestration strategy: flat backend solve (default) or the
  /// multilevel V-cycle. The ml_* knobs below configure the latter and are
  /// ignored under kFlat.
  SolverStrategy strategy = SolverStrategy::kFlat;
  /// kMultilevel: stop coarsening once this few vertices remain (the
  /// coarsest level is then solved exactly).
  std::size_t ml_coarsest_size = 400;
  /// kMultilevel: Chebyshev filter degree applied between Rayleigh-Ritz
  /// refinement sweeps.
  std::size_t ml_refine_degree = 50;
  /// kMultilevel: refinement sweep cap per level (0 = automatic: 20 on the
  /// finest level, 10 on intermediate levels).
  std::size_t ml_refine_sweeps = 0;
  /// kMultilevel: relative Ritz-residual acceptance threshold (times the
  /// Gershgorin scale) that governs the result's `converged` flag. The
  /// sweeps aspire to `tolerance` but a clustered quasi-continuum spectrum
  /// bounds what polynomial filtering can certify; pairs within this
  /// looser bound are accepted, anything worse triggers the embedding
  /// layer's flat-solve fallback.
  double ml_refine_tolerance = 1e-4;
};

/// Stateless eigensolve backend: computes the `want` smallest eigenpairs of
/// a symmetric sparse matrix. Implementations are singletons returned by
/// eigen_solver(); they hold no per-call state, so one instance serves
/// concurrent pipelines.
class EigenSolver {
 public:
  virtual ~EigenSolver() = default;

  /// Stable backend token ("scalar" | "block"); used in cache keys, wire
  /// fields, diagnostics and bench rows.
  virtual std::string_view name() const = 0;

  /// Runs the backend. `seed` is per-call (the embedding fallback chain
  /// reseeds between attempts); `opts` supplies tolerance / iteration caps;
  /// threading and budget ride alongside because they are pipeline state,
  /// not solver configuration.
  virtual LanczosResult solve_smallest(const SymCsrMatrix& a,
                                       std::size_t want, std::uint64_t seed,
                                       const SolverOptions& opts,
                                       const ParallelConfig& parallel,
                                       ComputeBudget* budget) const = 0;
};

/// The process-wide backend instance for `backend`.
const EigenSolver& eigen_solver(SolverBackend backend);

}  // namespace specpart::linalg
