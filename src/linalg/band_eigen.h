#ifndef SPECPART_LINALG_BAND_EIGEN_H_
#define SPECPART_LINALG_BAND_EIGEN_H_

#include <cstddef>

#include "linalg/dense.h"

namespace specpart::linalg {

/// Symmetric band matrix, lower band storage: element (i, i-k) for
/// k in [0, bw] lives at data[i * (bw + 1) + k] (entries with k > i are
/// unused). The upper triangle is implicit by symmetry.
struct BandMatrix {
  std::size_t n = 0;
  std::size_t bw = 0;
  Vec data;

  BandMatrix() = default;
  BandMatrix(std::size_t n_, std::size_t bw_)
      : n(n_), bw(bw_), data(n_ * (bw_ + 1), 0.0) {}

  double& at(std::size_t i, std::size_t k) { return data[i * (bw + 1) + k]; }
  double at(std::size_t i, std::size_t k) const {
    return data[i * (bw + 1) + k];
  }
};

/// Extreme eigenpairs of a symmetric band matrix.
struct BandEigenPairs {
  /// False when inverse iteration failed to produce residual-certified
  /// eigenvectors (pathological clustering); the caller should fall back
  /// to the dense path. The failure test is serial and data-dependent
  /// only, so the fallback decision is deterministic.
  bool ok = false;
  /// The `count` largest eigenvalues, DESCENDING. values[j] pairs with
  /// column j of vectors.
  Vec values;
  /// n x count; unit eigenvectors.
  DenseMatrix vectors;
};

/// Computes the `count` largest eigenpairs of `a` by spectrum slicing:
/// bisection on the LDL^T inertia count (O(n bw^2) per probe) brackets
/// each eigenvalue to ~1e-14 * ||a||, then banded-LU inverse iteration
/// with in-cluster orthogonalization recovers the eigenvectors. Total
/// cost O(count * n * bw^2) — replacing the O(n^3) dense solve the block
/// Lanczos Rayleigh-Ritz check would otherwise pay at every checkpoint.
/// Entirely serial and deterministic.
BandEigenPairs band_eigen_largest(const BandMatrix& a, std::size_t count);

}  // namespace specpart::linalg

#endif  // SPECPART_LINALG_BAND_EIGEN_H_
