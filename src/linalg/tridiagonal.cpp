#include "linalg/tridiagonal.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace specpart::linalg {

namespace {
inline double sign_of(double a, double b) {
  return b >= 0.0 ? std::fabs(a) : -std::fabs(a);
}
}  // namespace

Tridiagonal householder_tridiagonalize(DenseMatrix a, DenseMatrix* accumulated) {
  const std::size_t n = a.rows();
  SP_ASSERT(a.cols() == n);
  Vec d(n, 0.0);
  Vec e(n, 0.0);

  // Householder reduction (EISPACK tred2, 0-based).
  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(a.at(i, k));
      if (scale == 0.0) {
        e[i] = a.at(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a.at(i, k) /= scale;
          h += a.at(i, k) * a.at(i, k);
        }
        double f = a.at(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a.at(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a.at(j, i) = a.at(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a.at(j, k) * a.at(i, k);
          for (std::size_t k = j + 1; k <= l; ++k)
            g += a.at(k, j) * a.at(i, k);
          e[j] = g / h;
          f += e[j] * a.at(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a.at(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k)
            a.at(j, k) -= f * e[k] + g * a.at(i, k);
        }
      }
    } else {
      e[i] = a.at(i, l);
    }
    d[i] = h;
    if (i == 1) break;  // avoid size_t underflow
  }
  d[0] = 0.0;
  e[0] = 0.0;

  // Accumulate the transformation.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += a.at(i, k) * a.at(k, j);
        for (std::size_t k = 0; k < i; ++k) a.at(k, j) -= g * a.at(k, i);
      }
    }
    d[i] = a.at(i, i);
    a.at(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      a.at(j, i) = 0.0;
      a.at(i, j) = 0.0;
    }
  }

  if (accumulated != nullptr) *accumulated = std::move(a);
  return Tridiagonal{std::move(d), std::move(e)};
}

void tridiagonal_eigen(Tridiagonal& t, DenseMatrix& z) {
  Vec& d = t.diag;
  Vec& e = t.off;
  const std::size_t n = d.size();
  SP_ASSERT(e.size() == n);
  SP_ASSERT(z.rows() == n && z.cols() == n);
  if (n == 0) return;

  // Shift the off-diagonal so e[i] couples rows i and i+1 (tql2 layout).
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  constexpr double kEps = 1e-15;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= kEps * dd) break;
      }
      if (m != l) {
        SP_CHECK_INPUT(iter++ < 64, "tql2: QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z.at(k, i + 1);
            z.at(k, i + 1) = s * z.at(k, i) + c * f;
            z.at(k, i) = c * z.at(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort eigenpairs ascending by eigenvalue (selection sort on columns).
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::size_t k = i;
    double p = d[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      std::swap(d[k], d[i]);
      for (std::size_t row = 0; row < n; ++row)
        std::swap(z.at(row, i), z.at(row, k));
    }
  }
}

Vec tridiagonal_eigenvalues(Tridiagonal t) {
  const std::size_t n = t.diag.size();
  DenseMatrix z = DenseMatrix::identity(n);
  tridiagonal_eigen(t, z);
  return t.diag;
}

}  // namespace specpart::linalg
