#include "linalg/panel_ops.h"

#include <cmath>

#include "util/error.h"

namespace specpart::linalg {

double panel_col_dot(const Panel& p, std::size_t ca, const Panel& q,
                     std::size_t cb, const ParallelConfig& par) {
  const std::size_t pw = p.cols(), qw = q.cols();
  const double* pd = p.data();
  const double* qd = q.data();
  return parallel_reduce<double>(
      par, 0, p.rows(), 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t r = lo; r < hi; ++r)
          s += pd[r * pw + ca] * qd[r * qw + cb];
        return s;
      },
      [](double acc, double s) { return acc + s; });
}

void panel_col_axpy(double alpha, const Panel& p, std::size_t ca, Panel& q,
                    std::size_t cb, const ParallelConfig& par) {
  const std::size_t pw = p.cols(), qw = q.cols();
  const double* pd = p.data();
  double* qd = q.data();
  parallel_for(par, 0, p.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r)
      qd[r * qw + cb] += alpha * pd[r * pw + ca];
  });
}

void panel_col_scale(Panel& p, std::size_t c, double alpha,
                     const ParallelConfig& par) {
  const std::size_t pw = p.cols();
  double* pd = p.data();
  parallel_for(par, 0, p.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) pd[r * pw + c] *= alpha;
  });
}

DenseMatrix panel_dots(const Panel& p, const Panel& w,
                       const ParallelConfig& par) {
  const std::size_t pc = p.cols(), wc = w.cols();
  const Vec flat = parallel_reduce<Vec>(
      par, 0, p.rows(), Vec(pc * wc, 0.0),
      [&](std::size_t lo, std::size_t hi) {
        Vec partial(pc * wc, 0.0);
        for (std::size_t r = lo; r < hi; ++r) {
          const double* pr = p.row(r);
          const double* wr = w.row(r);
          for (std::size_t a = 0; a < pc; ++a) {
            const double pa = pr[a];
            if (pa == 0.0) continue;
            double* out = partial.data() + a * wc;
            for (std::size_t c = 0; c < wc; ++c) out[c] += pa * wr[c];
          }
        }
        return partial;
      },
      [pc, wc](Vec acc, Vec partial) {
        for (std::size_t i = 0; i < pc * wc; ++i) acc[i] += partial[i];
        return acc;
      });
  DenseMatrix c(pc, wc);
  for (std::size_t a = 0; a < pc; ++a)
    for (std::size_t b = 0; b < wc; ++b) c.at(a, b) = flat[a * wc + b];
  return c;
}

void panel_subtract(Panel& w, const Panel& p, const DenseMatrix& c,
                    const ParallelConfig& par) {
  const std::size_t pc = p.cols(), wc = w.cols();
  SP_ASSERT(c.rows() == pc && c.cols() == wc);
  parallel_for(par, 0, w.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const double* pr = p.row(r);
      double* wr = w.row(r);
      for (std::size_t a = 0; a < pc; ++a) {
        const double pa = pr[a];
        if (pa == 0.0) continue;
        for (std::size_t col = 0; col < wc; ++col)
          wr[col] -= pa * c.at(a, col);
      }
    }
  });
}

void panel_reorthogonalize(const std::vector<Panel>& blocks, Panel& w,
                           const ParallelConfig& par, std::uint64_t& flops) {
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const Panel& p : blocks) {
      const DenseMatrix c = panel_dots(p, w, par);
      panel_subtract(w, p, c, par);
      flops += 4ull * w.rows() * p.cols() * w.cols();
    }
  }
}

std::size_t panel_qr_cgs2(Panel& x, double breakdown_tol,
                          const ParallelConfig& par, Rng& rng,
                          std::uint64_t& flops) {
  const std::size_t n = x.rows(), width = x.cols();
  std::size_t restarts = 0;
  for (std::size_t k = 0; k < width; ++k) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      for (int sweep = 0; sweep < 2; ++sweep)
        for (std::size_t j = 0; j < k; ++j) {
          const double c = panel_col_dot(x, j, x, k, par);
          if (c != 0.0) panel_col_axpy(-c, x, j, x, k, par);
        }
      flops += 8ull * n * k;
      const double nrm = std::sqrt(panel_col_dot(x, k, x, k, par));
      if (nrm > breakdown_tol) {
        panel_col_scale(x, k, 1.0 / nrm, par);
        break;
      }
      // Dead column: refill with a fresh random direction and retry once.
      // If the retry also dies, the space is exhausted — leave the zero
      // column (its Rayleigh-Ritz weight will be ~0).
      if (attempt == 1) {
        panel_col_scale(x, k, 0.0, par);
        break;
      }
      for (std::size_t r = 0; r < n; ++r) x.at(r, k) = rng.next_normal();
      ++restarts;
    }
  }
  return restarts;
}

void panel_rotate(const Panel& a, const DenseMatrix& u, Panel& out,
                  const ParallelConfig& par) {
  const std::size_t k = a.cols(), k2 = u.cols();
  SP_ASSERT(u.rows() == k && out.rows() == a.rows() && out.cols() == k2);
  parallel_for(par, 0, a.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const double* ar = a.row(r);
      double* orow = out.row(r);
      for (std::size_t c = 0; c < k2; ++c) {
        double s = 0.0;
        for (std::size_t j = 0; j < k; ++j) s += ar[j] * u.at(j, c);
        orow[c] = s;
      }
    }
  });
}

}  // namespace specpart::linalg
