// Symmetric sparse matrices in compressed-sparse-row form.
//
// Graph Laplacians of clique-expanded netlists are symmetric with a few
// dozen nonzeros per row; CSR with both triangles stored gives the fastest
// matvec, which dominates the Lanczos runtime. The storage itself is the
// shared linalg::CsrStorage data plane (see linalg/csr.h): the adjacency in
// graph::Graph and the Laplacian here are the same offsets/cols/values
// layout, so converting between them is an O(nnz) copy, never a rebuild.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr.h"
#include "linalg/dense.h"
#include "util/parallel.h"

namespace specpart::linalg {

/// One (i, j, value) entry of a matrix under construction.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Symmetric sparse matrix, CSR storage of the *full* pattern.
///
/// Built from triplets (duplicates summed in insertion order) or adopted
/// directly from a CsrStorage assembled elsewhere. Symmetry is by
/// construction: each off-diagonal triplet (i, j, v) inserts both (i,j)
/// and (j,i); adopted storage must already hold both triangles.
class SymCsrMatrix {
 public:
  SymCsrMatrix() = default;

  /// Builds an n-by-n symmetric matrix. Off-diagonal triplets are mirrored;
  /// diagonal triplets inserted once. Duplicate coordinates are summed in
  /// insertion order (the assembler's stable-merge contract).
  SymCsrMatrix(std::size_t n, const std::vector<Triplet>& triplets);

  /// Adopts an already-assembled CSR structure without copying. The caller
  /// guarantees the pattern is symmetric (both triangles stored) with
  /// sorted columns per row — what CsrAssembler produces for mirrored
  /// entries, and what build_laplacian / build_clique_laplacian emit.
  explicit SymCsrMatrix(CsrStorage storage) : storage_(std::move(storage)) {}

  std::size_t size() const { return storage_.num_rows(); }

  /// Number of stored nonzeros (both triangles).
  std::size_t nnz() const { return storage_.nnz(); }

  /// y = A x. The ParallelConfig overload splits the rows into fixed
  /// blocks; every y[i] is an independent per-row sum, so the result is
  /// bit-identical for any thread count (including the serial default).
  void matvec(const Vec& x, Vec& y) const;
  void matvec(const Vec& x, Vec& y, const ParallelConfig& par) const;
  Vec matvec(const Vec& x) const;

  /// Y = A X for an n x b panel (see linalg::Panel): the blocked SpMM that
  /// advances all b Krylov directions through one sweep of the matrix. Rows
  /// are split into fixed blocks like matvec; every output row is an
  /// independent left-to-right accumulation over the row's nonzeros, so the
  /// result is bit-identical for any thread count. The contiguous row-major
  /// panel makes the inner b-wide update y_i += a_ik * x_k vectorizable and
  /// loads each CSR entry once for all b columns (a matvec chain loads the
  /// matrix b times for the same work).
  void spmm(const Panel& x, Panel& y, const ParallelConfig& par = {}) const;

  /// Bytes one full sweep of the CSR arrays streams (values + column
  /// indices + row offsets): the unit of the eigensolver bytes-moved
  /// counters. One matvec moves stream_bytes(); one spmm over a b-wide
  /// panel also moves stream_bytes(), amortized over b columns.
  std::size_t stream_bytes() const;

  /// Entry lookup (linear scan within the row; intended for tests).
  double at(std::size_t i, std::size_t j) const;

  /// Sum of diagonal entries.
  double trace() const;

  /// Gershgorin upper bound on the largest eigenvalue:
  /// max_i (a_ii + sum_{j != i} |a_ij|).
  double gershgorin_upper() const;

  /// Dense copy (tests / small-n exact eigensolves).
  DenseMatrix to_dense() const;

  /// Row access for algorithms that iterate neighbours.
  std::size_t row_begin(std::size_t i) const { return storage_.offsets[i]; }
  std::size_t row_end(std::size_t i) const { return storage_.offsets[i + 1]; }
  std::size_t col_index(std::size_t k) const { return storage_.cols[k]; }
  double value(std::size_t k) const { return storage_.values[k]; }

  /// The underlying shared-layout storage (read-only).
  const CsrStorage& csr() const { return storage_; }

 private:
  CsrStorage storage_;
};

}  // namespace specpart::linalg
