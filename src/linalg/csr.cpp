#include "linalg/csr.h"

#include "util/error.h"

namespace specpart::linalg {

void CsrAssembler::begin(std::size_t num_rows) {
  num_rows_ = num_rows;
  entries_.clear();
}

void CsrAssembler::reserve(std::size_t num_entries) {
  entries_.reserve(num_entries);
}

void CsrAssembler::sort_entries() {
  const std::size_t n = num_rows_;
  scratch_.resize(entries_.size());

  // Stable counting sort by column into scratch_.
  bucket_.assign(n + 1, 0);
  for (const Entry& e : entries_) {
    SP_ASSERT(e.row < n && e.col < n);
    ++bucket_[e.col + 1];
  }
  for (std::size_t c = 1; c <= n; ++c) bucket_[c] += bucket_[c - 1];
  for (const Entry& e : entries_) scratch_[bucket_[e.col]++] = e;

  // Stable counting sort by row back into entries_. After both passes the
  // entries are ordered by (row, col) with ties in insertion order.
  bucket_.assign(n + 1, 0);
  for (const Entry& e : scratch_) ++bucket_[e.row + 1];
  for (std::size_t r = 1; r <= n; ++r) bucket_[r] += bucket_[r - 1];
  row_start_.assign(bucket_.begin(), bucket_.end());
  for (const Entry& e : scratch_) entries_[bucket_[e.row]++] = e;
}

void CsrAssembler::finish(CsrStorage& out, const ParallelConfig& par) {
  sort_entries();
  const std::size_t n = num_rows_;

  // Merged entry count per row (each row scanned independently).
  row_nnz_.assign(n, 0);
  parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t count = 0;
      for (std::size_t k = row_start_[i]; k < row_start_[i + 1];) {
        const std::uint32_t c = entries_[k].col;
        ++count;
        do ++k;
        while (k < row_start_[i + 1] && entries_[k].col == c);
      }
      row_nnz_[i] = count;
    }
  });

  out.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    out.offsets[i + 1] = out.offsets[i] + row_nnz_[i];
  out.cols.resize(out.offsets[n]);
  out.values.resize(out.offsets[n]);

  // Merge + materialize. Duplicates are summed left-to-right (insertion
  // order); each row writes a disjoint slice, so any thread count produces
  // the same bits.
  parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t w = out.offsets[i];
      for (std::size_t k = row_start_[i]; k < row_start_[i + 1];) {
        const std::uint32_t c = entries_[k].col;
        double sum = 0.0;
        do {
          sum += entries_[k].value;
          ++k;
        } while (k < row_start_[i + 1] && entries_[k].col == c);
        out.cols[w] = c;
        out.values[w] = sum;
        ++w;
      }
    }
  });
}

void CsrAssembler::finish_laplacian(CsrStorage& out,
                                    std::vector<double>* degrees,
                                    const ParallelConfig& par) {
  sort_entries();
  const std::size_t n = num_rows_;
  if (degrees != nullptr) degrees->assign(n, 0.0);

  row_nnz_.assign(n, 0);
  parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t count = 0;
      for (std::size_t k = row_start_[i]; k < row_start_[i + 1];) {
        const std::uint32_t c = entries_[k].col;
        SP_ASSERT(c != i);  // self-entries never arise from net models
        ++count;
        do ++k;
        while (k < row_start_[i + 1] && entries_[k].col == c);
      }
      row_nnz_[i] = count;
    }
  });

  out.offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    out.offsets[i + 1] = out.offsets[i] + row_nnz_[i] + 1;  // + diagonal
  out.cols.resize(out.offsets[n]);
  out.values.resize(out.offsets[n]);

  // Merge + materialize Q = D - A: off-diagonals negated, the weighted
  // degree (merged row weights summed in ascending column order, matching
  // what a CSR row scan of the adjacency produces) inserted at the
  // diagonal's sorted slot.
  parallel_for(par, 0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      std::size_t w = out.offsets[i];
      std::size_t diag_slot = SIZE_MAX;
      double degree = 0.0;
      for (std::size_t k = row_start_[i]; k < row_start_[i + 1];) {
        const std::uint32_t c = entries_[k].col;
        double sum = 0.0;
        do {
          sum += entries_[k].value;
          ++k;
        } while (k < row_start_[i + 1] && entries_[k].col == c);
        degree += sum;
        if (diag_slot == SIZE_MAX && c > i) diag_slot = w++;
        out.cols[w] = c;
        out.values[w] = -sum;
        ++w;
      }
      if (diag_slot == SIZE_MAX) diag_slot = w;
      out.cols[diag_slot] = static_cast<std::uint32_t>(i);
      out.values[diag_slot] = degree;
      if (degrees != nullptr) (*degrees)[i] = degree;
    }
  });
}

CsrAssembler& thread_assembly_workspace() {
  thread_local CsrAssembler workspace;
  return workspace;
}

}  // namespace specpart::linalg
