// Dense vectors and matrices.
//
// The library's numerical kernels are deliberately dependency-free: a thin
// row-major dense matrix plus free-function BLAS-1 style vector operations
// cover everything the spectral code needs (the heavy lifting is done by the
// sparse Lanczos solver in lanczos.h).
#pragma once

#include <cstddef>
#include <vector>

namespace specpart::linalg {

/// Dense real vector.
using Vec = std::vector<double>;

/// Dot product. Sizes must match.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm(const Vec& a);

/// Squared Euclidean norm.
double norm_sq(const Vec& a);

/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void scale(Vec& x, double alpha);

/// Normalizes x to unit length; returns the original norm. If the norm is
/// (near) zero the vector is left untouched and 0 is returned.
double normalize(Vec& x);

/// Elementwise a - b.
Vec sub(const Vec& a, const Vec& b);

/// Elementwise a + b.
Vec add(const Vec& a, const Vec& b);

/// Contiguous row-major n x b panel: the multi-vector operand of the
/// blocked sparse kernels (SymCsrMatrix::spmm, block Lanczos).
///
/// Row-major is the SIMD-friendly layout for sparse x dense-panel products:
/// the inner update y[i][:] += a_ij * x[j][:] streams one contiguous b-wide
/// row per nonzero, so the compiler can vectorize over the panel width and
/// each CSR value is loaded once for all b columns instead of once per
/// column. Kept separate from DenseMatrix so kernel signatures say "panel"
/// (tall, narrow, row-contiguous) rather than "any matrix".
class Panel {
 public:
  Panel() = default;
  Panel(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Contiguous b-wide row i.
  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double at(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Column j as a vector (strided gather; for tests and extraction).
  Vec col(std::size_t j) const;
  void set_col(std::size_t j, const Vec& v);

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// y = A x.
  Vec matvec(const Vec& x) const;

  /// y = A^T x.
  Vec matvec_transposed(const Vec& x) const;

  /// Returns column j as a vector.
  Vec col(std::size_t j) const;

  /// Returns row i as a vector.
  Vec row(std::size_t i) const;

  void set_col(std::size_t j, const Vec& v);

  /// C = A * B.
  DenseMatrix multiply(const DenseMatrix& other) const;

  /// A^T.
  DenseMatrix transposed() const;

  /// Frobenius norm.
  double frobenius() const;

  /// Max |A_ij - B_ij|; matrices must have identical shape.
  double max_abs_diff(const DenseMatrix& other) const;

  /// Raw storage access (row-major) for the eigensolver kernels.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace specpart::linalg
