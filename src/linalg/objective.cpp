#include "linalg/objective.h"

#include <cmath>

#include "util/error.h"

namespace specpart::linalg {

Vec inv_sqrt_degree_scale(const SymCsrMatrix& laplacian) {
  const std::size_t n = laplacian.size();
  Vec s(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.0;
    for (std::size_t k = laplacian.row_begin(i); k < laplacian.row_end(i); ++k)
      if (laplacian.col_index(k) == i) {
        diag = laplacian.value(k);
        break;
      }
    // Isolated vertices (and degenerate non-positive diagonals) scale to
    // zero: their row stays identically zero under the symmetric scaling.
    if (diag > 0.0) s[i] = 1.0 / std::sqrt(diag);
  }
  return s;
}

void scale_symmetric(CsrStorage& storage, const Vec& s) {
  SP_ASSERT(s.size() == storage.num_rows());
  for (std::size_t i = 0; i < storage.num_rows(); ++i) {
    const double si = s[i];
    for (std::size_t k = storage.offsets[i]; k < storage.offsets[i + 1]; ++k)
      storage.values[k] *= si * s[storage.cols[k]];
  }
}

SymCsrMatrix normalized_laplacian(const SymCsrMatrix& laplacian) {
  const Vec s = inv_sqrt_degree_scale(laplacian);
  CsrStorage scaled = laplacian.csr();  // one O(nnz) copy, same pattern
  scale_symmetric(scaled, s);
  return SymCsrMatrix(std::move(scaled));
}

}  // namespace specpart::linalg
