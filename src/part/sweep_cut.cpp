#include "part/sweep_cut.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace specpart::part {

std::vector<double> vertex_volumes(const graph::Hypergraph& h) {
  std::vector<double> vol(h.num_nodes(), 0.0);
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    if (h.net(e).size() < 2) continue;
    const double w = h.net_weight(e);
    for (graph::NodeId v : h.net(e)) vol[v] += w;
  }
  return vol;
}

SplitResult best_conductance_split(const graph::Hypergraph& h,
                                   const Ordering& o, double min_fraction) {
  const std::size_t n = h.num_nodes();
  SP_REQUIRE(is_permutation(o, n),
             "best_conductance_split: ordering is not a permutation");
  const std::vector<double> cuts = prefix_cuts(h, o);
  const std::vector<double> vol = vertex_volumes(h);
  double vol_total = 0.0;
  for (double v : vol) vol_total += v;
  const std::size_t min_side = static_cast<std::size_t>(std::max(
      1.0, std::ceil(min_fraction * static_cast<double>(n) - 1e-9)));
  SplitResult best;
  double vol_left = 0.0;
  for (std::size_t i = 1; i + min_side <= n && i < n; ++i) {
    vol_left += vol[o[i - 1]];
    if (i < min_side) continue;
    const double vol_small = std::min(vol_left, vol_total - vol_left);
    if (!(vol_small > 0.0)) continue;  // phi undefined on a zero-volume side
    const double phi = cuts[i] / vol_small;
    if (!best.feasible || phi < best.objective) {
      best.feasible = true;
      best.split = i;
      best.cut = cuts[i];
      best.objective = phi;
    }
  }
  return best;
}

double conductance(const graph::Hypergraph& h, const Partition& p) {
  SP_REQUIRE(p.num_nodes() == h.num_nodes() && p.k() == 2,
             "conductance: expects a bipartition of h");
  const std::vector<double> vol = vertex_volumes(h);
  double vol_side[2] = {0.0, 0.0};
  for (graph::NodeId v = 0; v < h.num_nodes(); ++v)
    vol_side[p.cluster_of(v)] += vol[v];
  double cut = 0.0;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    if (h.net(e).size() < 2) continue;
    const std::uint32_t first = p.cluster_of(h.net(e)[0]);
    for (graph::NodeId v : h.net(e))
      if (p.cluster_of(v) != first) {
        cut += h.net_weight(e);
        break;
      }
  }
  const double vol_small = std::min(vol_side[0], vol_side[1]);
  if (vol_small > 0.0) return cut / vol_small;
  return cut == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
}

}  // namespace specpart::part
