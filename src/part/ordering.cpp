#include "part/ordering.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace specpart::part {

bool is_permutation(const Ordering& o, std::size_t n) {
  if (o.size() != n) return false;
  std::vector<char> seen(n, 0);
  for (graph::NodeId v : o) {
    if (v >= n || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

std::vector<std::uint32_t> positions_of(const Ordering& o) {
  std::vector<std::uint32_t> pos(o.size());
  for (std::uint32_t i = 0; i < o.size(); ++i) pos[o[i]] = i;
  return pos;
}

std::vector<double> prefix_cuts(const graph::Hypergraph& h,
                                const Ordering& o) {
  const std::size_t n = h.num_nodes();
  SP_REQUIRE(is_permutation(o, n), "prefix_cuts: ordering is not a permutation");
  std::vector<double> cuts(n + 1, 0.0);
  std::vector<std::uint32_t> left_pins(h.num_nets(), 0);
  double cut = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const graph::NodeId v = o[i];
    for (graph::NetId e : h.nets_of(v)) {
      const std::size_t size = h.net(e).size();
      if (size < 2) continue;
      const std::uint32_t before = left_pins[e]++;
      if (before == 0) cut += h.net_weight(e);            // net opens
      if (before + 1 == size) cut -= h.net_weight(e);     // net closes
    }
    cuts[i + 1] = cut;
  }
  return cuts;
}

namespace {

template <typename ObjectiveFn>
SplitResult best_split(const graph::Hypergraph& h, const Ordering& o,
                       double min_fraction, ObjectiveFn objective) {
  const std::size_t n = h.num_nodes();
  const std::vector<double> cuts = prefix_cuts(h, o);
  const std::size_t min_side = static_cast<std::size_t>(std::max(
      1.0, std::ceil(min_fraction * static_cast<double>(n) - 1e-9)));
  SplitResult best;
  for (std::size_t i = min_side; i + min_side <= n && i < n; ++i) {
    const double value = objective(cuts[i], i, n - i);
    if (!best.feasible || value < best.objective) {
      best.feasible = true;
      best.split = i;
      best.cut = cuts[i];
      best.objective = value;
    }
  }
  return best;
}

}  // namespace

SplitResult best_ratio_cut_split(const graph::Hypergraph& h, const Ordering& o,
                                 double min_fraction) {
  return best_split(h, o, min_fraction,
                    [](double cut, std::size_t a, std::size_t b) {
                      return cut / (static_cast<double>(a) *
                                    static_cast<double>(b));
                    });
}

SplitResult best_min_cut_split(const graph::Hypergraph& h, const Ordering& o,
                               double min_fraction) {
  return best_split(h, o, min_fraction,
                    [](double cut, std::size_t, std::size_t) { return cut; });
}

Partition split_to_partition(const Ordering& o, std::size_t split) {
  SP_ASSERT(split <= o.size());
  std::vector<std::uint32_t> assignment(o.size(), 1);
  for (std::size_t i = 0; i < split; ++i) assignment[o[i]] = 0;
  return Partition(std::move(assignment), 2);
}

}  // namespace specpart::part
