// Kernighan-Lin graph bipartitioning: the classic swap-based local search
// (the ancestor of FM). Works directly on weighted graphs and maintains
// exact balance by swapping pairs; provided both as a historical baseline
// and as a refinement step for graph-level users.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "part/partition.h"

namespace specpart::part {

struct KlOptions {
  /// Maximum improvement passes (a pass with no positive prefix stops).
  std::size_t max_passes = 16;
  /// Candidate pairs examined per swap: the top `candidate_window` D-values
  /// on each side (the standard KL speedup; 0 = all pairs, exact).
  std::size_t candidate_window = 8;
  /// Independent random starts (best result wins).
  std::size_t num_starts = 4;
  std::uint64_t seed = 0x4B1ULL;
};

struct KlResult {
  Partition partition;
  double cut = 0.0;
  std::size_t passes = 0;
};

/// Refines a bipartition by KL swap passes; cluster sizes never change.
KlResult kl_refine(const graph::Graph& g, const Partition& initial,
                   const KlOptions& opts);

/// Multi-start KL from random exactly-half initial bipartitions.
KlResult kl_bipartition(const graph::Graph& g, const KlOptions& opts);

}  // namespace specpart::part
