// Fiduccia–Mattheyses bipartitioning.
//
// A classic move-based hypergraph bipartitioner: repeatedly move the
// highest-gain unlocked vertex whose move keeps the balance feasible, lock
// it, and at the end of the pass rewind to the best prefix. Multi-start FM
// is this library's stand-in for PARABOLI in the Table 5 comparison (see
// DESIGN.md §4) and a general-purpose refinement step.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "part/partition.h"
#include "util/budget.h"

namespace specpart::part {

struct FmOptions {
  /// Cluster size bounds, as fractions of the total vertex weight.
  BalanceConstraint balance{0.45, 0.55};
  /// Maximum improvement passes per start (a pass with no gain stops early).
  std::size_t max_passes = 16;
  /// Independent random starts; the best result wins.
  std::size_t num_starts = 8;
  /// Seed for initial partitions and tie-breaking.
  std::uint64_t seed = 0xFEEDFACEULL;
  /// Optional per-vertex weights (empty = unit). Multilevel partitioning
  /// passes the coarse-vertex weights here so balance is measured on the
  /// original vertices.
  std::vector<double> vertex_weights;
  /// Optional shared compute budget (one FM move = one unit). On
  /// exhaustion the current pass stops, rewinds to its best prefix as
  /// usual, and the best balanced partition found so far is returned.
  ComputeBudget* budget = nullptr;
};

struct FmResult {
  Partition partition;
  double cut = 0.0;
  std::size_t passes = 0;
  /// True when refinement stopped early on an exhausted ComputeBudget.
  bool budget_exhausted = false;
};

/// Refines `initial` (must be a bipartition) with FM passes until no pass
/// improves the cut. The balance of the result is at least as good as
/// required by opts.balance provided `initial` already satisfies it.
FmResult fm_refine(const graph::Hypergraph& h, const Partition& initial,
                   const FmOptions& opts);

/// Multi-start FM from random balanced initial bipartitions.
FmResult fm_bipartition(const graph::Hypergraph& h, const FmOptions& opts);

}  // namespace specpart::part
