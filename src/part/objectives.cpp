#include "part/objectives.h"

#include <limits>
#include <set>

#include "util/error.h"

namespace specpart::part {

double cut_weight(const graph::Graph& g, const Partition& p) {
  SP_ASSERT(p.num_nodes() == g.num_nodes());
  double cut = 0.0;
  for (const graph::Edge& e : g.edges())
    if (p.cluster_of(e.u) != p.cluster_of(e.v)) cut += e.weight;
  return cut;
}

double paper_f(const graph::Graph& g, const Partition& p) {
  return 2.0 * cut_weight(g, p);
}

std::vector<double> cluster_degrees(const graph::Graph& g,
                                    const Partition& p) {
  SP_ASSERT(p.num_nodes() == g.num_nodes());
  std::vector<double> degrees(p.k(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    const std::uint32_t cu = p.cluster_of(e.u);
    const std::uint32_t cv = p.cluster_of(e.v);
    if (cu != cv) {
      degrees[cu] += e.weight;
      degrees[cv] += e.weight;
    }
  }
  return degrees;
}

namespace {

double scaled_cost_from_degrees(const std::vector<double>& degrees,
                                const Partition& p) {
  const std::size_t n = p.num_nodes();
  const std::uint32_t k = p.k();
  SP_REQUIRE(k >= 2, "scaled cost needs k >= 2");
  double sum = 0.0;
  for (std::uint32_t h = 0; h < k; ++h) {
    if (p.cluster_size(h) == 0) {
      // Empty clusters make Scaled Cost ill-defined (the paper divides by
      // |C_h|); treat any k-way solution with an empty cluster as
      // infeasible.
      return std::numeric_limits<double>::infinity();
    }
    sum += degrees[h] / static_cast<double>(p.cluster_size(h));
  }
  return sum / (static_cast<double>(n) * static_cast<double>(k - 1));
}

double ratio_cut_from(double cut, const Partition& p) {
  SP_REQUIRE(p.k() == 2, "ratio cut is a bipartitioning objective");
  const double s0 = static_cast<double>(p.cluster_size(0));
  const double s1 = static_cast<double>(p.cluster_size(1));
  if (s0 == 0.0 || s1 == 0.0)
    return std::numeric_limits<double>::infinity();
  return cut / (s0 * s1);
}

}  // namespace

double scaled_cost(const graph::Graph& g, const Partition& p) {
  return scaled_cost_from_degrees(cluster_degrees(g, p), p);
}

double ratio_cut(const graph::Graph& g, const Partition& p) {
  return ratio_cut_from(cut_weight(g, p), p);
}

double cut_nets(const graph::Hypergraph& h, const Partition& p) {
  SP_ASSERT(p.num_nodes() == h.num_nodes());
  double cut = 0.0;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    const std::uint32_t first = p.cluster_of(pins[0]);
    for (std::size_t i = 1; i < pins.size(); ++i) {
      if (p.cluster_of(pins[i]) != first) {
        cut += h.net_weight(e);
        break;
      }
    }
  }
  return cut;
}

std::vector<double> cluster_degrees(const graph::Hypergraph& h,
                                    const Partition& p) {
  SP_ASSERT(p.num_nodes() == h.num_nodes());
  std::vector<double> degrees(p.k(), 0.0);
  std::set<std::uint32_t> touched;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    touched.clear();
    for (graph::NodeId v : pins) touched.insert(p.cluster_of(v));
    if (touched.size() < 2) continue;
    for (std::uint32_t c : touched) degrees[c] += h.net_weight(e);
  }
  return degrees;
}

double scaled_cost(const graph::Hypergraph& h, const Partition& p) {
  return scaled_cost_from_degrees(cluster_degrees(h, p), p);
}

double ratio_cut(const graph::Hypergraph& h, const Partition& p) {
  return ratio_cut_from(cut_nets(h, p), p);
}

namespace {

/// Number of distinct clusters a net's pins span.
std::size_t span_of(const graph::Hypergraph& h, const Partition& p,
                    graph::NetId e, std::vector<char>& scratch,
                    std::vector<std::uint32_t>& touched) {
  touched.clear();
  for (graph::NodeId v : h.net(e)) {
    const std::uint32_t c = p.cluster_of(v);
    if (!scratch[c]) {
      scratch[c] = 1;
      touched.push_back(c);
    }
  }
  for (std::uint32_t c : touched) scratch[c] = 0;
  return touched.size();
}

}  // namespace

double sum_of_external_degrees(const graph::Hypergraph& h,
                               const Partition& p) {
  std::vector<char> scratch(p.k(), 0);
  std::vector<std::uint32_t> touched;
  double total = 0.0;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    if (h.net(e).size() < 2) continue;
    const std::size_t span = span_of(h, p, e, scratch, touched);
    if (span >= 2) total += h.net_weight(e) * static_cast<double>(span);
  }
  return total;
}

double k_minus_one_cost(const graph::Hypergraph& h, const Partition& p) {
  std::vector<char> scratch(p.k(), 0);
  std::vector<std::uint32_t> touched;
  double total = 0.0;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    if (h.net(e).size() < 2) continue;
    const std::size_t span = span_of(h, p, e, scratch, touched);
    total += h.net_weight(e) * static_cast<double>(span - 1);
  }
  return total;
}

double absorption(const graph::Hypergraph& h, const Partition& p) {
  std::vector<std::size_t> count(p.k(), 0);
  double total = 0.0;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    std::fill(count.begin(), count.end(), 0);
    for (graph::NodeId v : pins) ++count[p.cluster_of(v)];
    std::size_t majority = 0;
    for (std::size_t c : count) majority = std::max(majority, c);
    total += h.net_weight(e) * static_cast<double>(majority - 1) /
             static_cast<double>(pins.size() - 1);
  }
  return total;
}

}  // namespace specpart::part
