#include "part/multilevel.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "model/clique_models.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "spectral/sb.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::part {

namespace {

/// Nets larger than this are ignored when scoring matches (their clique
/// connectivity is diffuse and scanning them dominates runtime).
constexpr std::size_t kMatchingNetCap = 32;

}  // namespace

graph::Hypergraph coarsen_once(const graph::Hypergraph& h,
                               const std::vector<double>& fine_weight,
                               std::uint64_t seed,
                               std::vector<std::uint32_t>* coarse_of,
                               std::vector<double>* coarse_weight) {
  const std::size_t n = h.num_nodes();
  SP_ASSERT(fine_weight.size() == n);
  SP_ASSERT(coarse_of != nullptr && coarse_weight != nullptr);

  Rng rng(seed);
  std::vector<graph::NodeId> visit(n);
  std::iota(visit.begin(), visit.end(), 0u);
  rng.shuffle(visit);

  // Heavy-edge matching with standard-clique connectivity w(e)/(|e|-1).
  std::vector<std::uint32_t> match(n, UINT32_MAX);
  std::vector<double> score(n, 0.0);
  std::vector<graph::NodeId> touched;
  for (graph::NodeId v : visit) {
    if (match[v] != UINT32_MAX) continue;
    touched.clear();
    for (graph::NetId e : h.nets_of(v)) {
      const auto& pins = h.net(e);
      if (pins.size() < 2 || pins.size() > kMatchingNetCap) continue;
      const double w =
          h.net_weight(e) / static_cast<double>(pins.size() - 1);
      for (graph::NodeId u : pins) {
        if (u == v || match[u] != UINT32_MAX) continue;
        if (score[u] == 0.0) touched.push_back(u);
        score[u] += w;
      }
    }
    graph::NodeId best = UINT32_MAX;
    double best_score = 0.0;
    for (graph::NodeId u : touched) {
      if (score[u] > best_score ||
          (score[u] == best_score && best != UINT32_MAX && u < best)) {
        best_score = score[u];
        best = u;
      }
      score[u] = 0.0;
    }
    if (best != UINT32_MAX) {
      match[v] = best;
      match[best] = v;
    }
  }

  // Assign coarse ids (matched pair -> one coarse vertex).
  coarse_of->assign(n, UINT32_MAX);
  coarse_weight->clear();
  std::uint32_t next = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    if ((*coarse_of)[v] != UINT32_MAX) continue;
    (*coarse_of)[v] = next;
    double w = fine_weight[v];
    if (match[v] != UINT32_MAX) {
      (*coarse_of)[match[v]] = next;
      w += fine_weight[match[v]];
    }
    coarse_weight->push_back(w);
    ++next;
  }

  // Project nets, merging duplicates by summed weight.
  std::map<std::vector<graph::NodeId>, double> merged;
  std::vector<graph::NodeId> pins;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    pins.clear();
    for (graph::NodeId v : h.net(e)) pins.push_back((*coarse_of)[v]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;  // net collapsed inside a coarse vertex
    merged[pins] += h.net_weight(e);
  }
  std::vector<std::vector<graph::NodeId>> nets;
  std::vector<double> weights;
  nets.reserve(merged.size());
  for (auto& [key, w] : merged) {
    nets.push_back(key);
    weights.push_back(w);
  }
  return graph::Hypergraph(next, std::move(nets), std::move(weights));
}

namespace {

/// Weighted balanced min-cut split of an ordering: both sides must hold at
/// least min_fraction of the total weight.
Partition weighted_best_split(const graph::Hypergraph& h, const Ordering& o,
                              const std::vector<double>& weight,
                              double min_fraction) {
  const std::size_t n = h.num_nodes();
  const std::vector<double> cuts = prefix_cuts(h, o);
  double total = 0.0;
  for (double w : weight) total += w;
  const double lower = min_fraction * total - 1e-9;

  double prefix_weight = 0.0;
  double best_cut = 0.0;
  std::size_t best_split = 0;
  bool have = false;
  for (std::size_t i = 1; i < n; ++i) {
    prefix_weight += weight[o[i - 1]];
    if (prefix_weight < lower || total - prefix_weight < lower) continue;
    if (!have || cuts[i] < best_cut) {
      have = true;
      best_cut = cuts[i];
      best_split = i;
    }
  }
  // Fall back to the half split when the weights make every split
  // infeasible (single dominant coarse vertex).
  if (!have) best_split = n / 2;
  return split_to_partition(o, best_split);
}

}  // namespace

MultilevelResult multilevel_bipartition(const graph::Hypergraph& h,
                                        const MultilevelOptions& opts) {
  SP_CHECK_INPUT(h.num_nodes() >= 2, "multilevel: need at least 2 vertices");

  struct Level {
    graph::Hypergraph hypergraph;
    std::vector<double> weight;          // per vertex of this level
    std::vector<std::uint32_t> coarse_of;  // this level -> next level
  };
  std::vector<Level> levels;
  levels.push_back({h, std::vector<double>(h.num_nodes(), 1.0), {}});

  // Coarsening phase.
  Rng rng(opts.seed);
  while (levels.back().hypergraph.num_nodes() > opts.coarsest_size) {
    Level& fine = levels.back();
    std::vector<std::uint32_t> coarse_of;
    std::vector<double> coarse_weight;
    graph::Hypergraph coarse =
        coarsen_once(fine.hypergraph, fine.weight, rng.next_u64(),
                     &coarse_of, &coarse_weight);
    if (static_cast<double>(coarse.num_nodes()) >
        opts.min_shrink_factor *
            static_cast<double>(fine.hypergraph.num_nodes()))
      break;  // matching stalled
    fine.coarse_of = std::move(coarse_of);
    levels.push_back({std::move(coarse), std::move(coarse_weight), {}});
  }

  // Initial partition at the coarsest level.
  const Level& coarsest = levels.back();
  FmOptions fm_opts;
  fm_opts.balance = opts.balance;
  fm_opts.max_passes = opts.refine_passes;
  fm_opts.num_starts = opts.initial_starts;
  fm_opts.seed = opts.seed ^ 0x5EEDULL;
  fm_opts.vertex_weights = coarsest.weight;

  Partition current(coarsest.hypergraph.num_nodes(), 2);
  if (opts.spectral_initial && coarsest.hypergraph.num_nets() > 0 &&
      coarsest.hypergraph.num_nodes() >= 4) {
    const graph::Graph g = model::clique_expand(
        coarsest.hypergraph, model::NetModel::kPartitioningSpecific);
    const Ordering order =
        spectral::fiedler_ordering(g, opts.seed ^ 0xF1EDULL);
    current = weighted_best_split(coarsest.hypergraph, order,
                                  coarsest.weight, opts.balance.min_fraction);
    current = fm_refine(coarsest.hypergraph, current, fm_opts).partition;
  } else {
    current = fm_bipartition(coarsest.hypergraph, fm_opts).partition;
  }

  // Uncoarsening + refinement phase.
  for (std::size_t level = levels.size() - 1; level-- > 0;) {
    const Level& fine = levels[level];
    std::vector<std::uint32_t> projected(fine.hypergraph.num_nodes());
    for (graph::NodeId v = 0; v < fine.hypergraph.num_nodes(); ++v)
      projected[v] = current.cluster_of(fine.coarse_of[v]);
    Partition fine_partition(std::move(projected), 2);

    FmOptions refine_opts = fm_opts;
    refine_opts.vertex_weights = fine.weight;
    refine_opts.seed = opts.seed ^ (level * 0x9E3779B97F4A7C15ULL);
    current = fm_refine(fine.hypergraph, fine_partition, refine_opts)
                  .partition;
  }

  MultilevelResult result;
  result.partition = std::move(current);
  result.cut = cut_nets(h, result.partition);
  result.levels = levels.size() - 1;
  return result;
}

}  // namespace specpart::part
