// Partitioning objectives.
//
// Conventions (matching the paper, section 2):
//  * On a Graph, E_h = total weight of edges with exactly one endpoint in
//    cluster h; the paper's f(P_k) = sum_h E_h counts each cut edge twice.
//    cut_weight() below reports each edge ONCE (the value a designer cares
//    about); f(P_k) = 2 * cut_weight().
//  * On a Hypergraph, a net is cut when its pins span >= 2 clusters; E_h
//    counts every cut net incident to cluster h (a 3-cluster net adds to
//    three E_h's).
//  * Ratio cut (k = 2):  cut / (|C_1| * |C_2|).
//  * Scaled Cost [10]:   (1 / (n (k-1))) * sum_h E_h / |C_h|.
#pragma once

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "part/partition.h"

namespace specpart::part {

// --- Graph objectives -------------------------------------------------

/// Total weight of cut edges, each counted once.
double cut_weight(const graph::Graph& g, const Partition& p);

/// The paper's f(P_k) = trace(X^T Q X) = 2 * cut_weight.
double paper_f(const graph::Graph& g, const Partition& p);

/// E_h for every cluster: weight of edges leaving cluster h.
std::vector<double> cluster_degrees(const graph::Graph& g, const Partition& p);

/// Scaled Cost on the graph.
double scaled_cost(const graph::Graph& g, const Partition& p);

/// Ratio cut for a bipartition (k must be 2; degenerate single-side
/// partitions return +inf).
double ratio_cut(const graph::Graph& g, const Partition& p);

// --- Hypergraph objectives --------------------------------------------

/// Total weight of cut nets (pins in >= 2 clusters), each counted once.
double cut_nets(const graph::Hypergraph& h, const Partition& p);

/// E_h for every cluster: weight of cut nets incident to cluster h.
std::vector<double> cluster_degrees(const graph::Hypergraph& h,
                                    const Partition& p);

/// Scaled Cost on the hypergraph (the Table 4 metric).
double scaled_cost(const graph::Hypergraph& h, const Partition& p);

/// Ratio cut on the hypergraph for a bipartition.
double ratio_cut(const graph::Hypergraph& h, const Partition& p);

/// Sum of external degrees (SOED): every cut net contributes its weight
/// once per cluster it touches (= sum of the hypergraph cluster degrees).
/// A standard alternative VLSI metric; equals (spans) * weight summed.
double sum_of_external_degrees(const graph::Hypergraph& h,
                               const Partition& p);

/// (K-1) metric: every net contributes (number of clusters it spans - 1)
/// times its weight — the standard multi-way generalization of net cut
/// (each extra spanned cluster costs one more "wire crossing").
double k_minus_one_cost(const graph::Hypergraph& h, const Partition& p);

/// Absorption [4]: sum over nets of w(e) * (pins_in_majority_cluster - 1)
/// / (|e| - 1); 1.0 per net when fully absorbed by one cluster. Higher is
/// better. Single-pin nets are skipped.
double absorption(const graph::Hypergraph& h, const Partition& p);

}  // namespace specpart::part
