// K-way refinement by pairwise FM.
//
// Refines a k-way partition by running 2-way FM between every pair of
// clusters on the strictly-induced sub-netlist (nets entirely inside the
// pair — nets touching a third cluster are cut regardless of how the pair's
// vertices move, so they are excluded from the local objective). The global
// net cut never increases; rounds repeat until a full sweep yields no
// improvement. This generalizes the Hadley et al. [26] post-processing the
// paper cites to the multi-way setting.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "part/partition.h"

namespace specpart::part {

struct KWayFmOptions {
  /// Global per-cluster size bounds in vertices; 0 = derived from
  /// balance_fraction around n/k.
  std::size_t min_cluster_size = 0;
  std::size_t max_cluster_size = 0;
  /// Used only when the explicit bounds above are 0: cluster sizes may
  /// range in [(1 - balance_fraction), (1 + balance_fraction)] * n/k.
  double balance_fraction = 0.5;
  /// Maximum pair-sweep rounds.
  std::size_t max_rounds = 4;
  /// FM passes per pair.
  std::size_t fm_passes = 8;
  std::uint64_t seed = 0x4FACE5ULL;
};

struct KWayFmResult {
  Partition partition;
  double cut = 0.0;
  std::size_t rounds = 0;
  /// Total cut improvement achieved.
  double improvement = 0.0;
};

/// Refines `initial` (any k >= 2). Cluster sizes stay within the bounds
/// provided the initial sizes already satisfy them.
KWayFmResult kway_fm_refine(const graph::Hypergraph& h,
                            const Partition& initial,
                            const KWayFmOptions& opts);

}  // namespace specpart::part
