#include "part/kwayfm.h"

#include <algorithm>
#include <cmath>

#include "part/fm.h"
#include "part/objectives.h"
#include "util/error.h"

namespace specpart::part {

KWayFmResult kway_fm_refine(const graph::Hypergraph& h,
                            const Partition& initial,
                            const KWayFmOptions& opts) {
  const std::size_t n = h.num_nodes();
  const std::uint32_t k = initial.k();
  SP_REQUIRE(initial.num_nodes() == n, "kway_fm: size mismatch");
  SP_CHECK_INPUT(k >= 2, "kway_fm: need k >= 2");

  std::size_t lo = opts.min_cluster_size;
  std::size_t hi = opts.max_cluster_size;
  if (lo == 0 && hi == 0) {
    const double avg = static_cast<double>(n) / static_cast<double>(k);
    lo = static_cast<std::size_t>(
        std::floor((1.0 - opts.balance_fraction) * avg));
    hi = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil((1.0 + opts.balance_fraction) * avg)));
  }
  if (hi == 0) hi = n;
  lo = std::max<std::size_t>(1, lo);

  KWayFmResult result;
  result.partition = initial;
  const double initial_cut = cut_nets(h, result.partition);
  result.cut = initial_cut;

  for (std::size_t round = 0; round < opts.max_rounds; ++round) {
    bool any_improvement = false;
    ++result.rounds;
    for (std::uint32_t a = 0; a < k; ++a) {
      for (std::uint32_t b = a + 1; b < k; ++b) {
        // Sub-problem on the pair's vertices; nets touching other
        // clusters are excluded (their cut status is fixed).
        std::vector<graph::NodeId> nodes = result.partition.members(a);
        const std::size_t size_a = nodes.size();
        const std::vector<graph::NodeId> members_b =
            result.partition.members(b);
        nodes.insert(nodes.end(), members_b.begin(), members_b.end());
        if (nodes.size() < 2) continue;
        const graph::Hypergraph sub = h.induced_strict(nodes);
        if (sub.num_nets() == 0) continue;

        // Pair-local bounds: both sides must keep their global bounds.
        const std::size_t total = nodes.size();
        const std::size_t side_lo =
            std::max(lo, total > hi ? total - hi : std::size_t{0});
        const std::size_t side_hi = std::min(hi, total - lo);
        if (side_lo > side_hi) continue;

        std::vector<std::uint32_t> sub_assignment(total, 1);
        for (std::size_t i = 0; i < size_a; ++i) sub_assignment[i] = 0;
        const Partition sub_initial(std::move(sub_assignment), 2);
        const double before = cut_nets(sub, sub_initial);

        FmOptions fm;
        fm.balance = {static_cast<double>(side_lo) /
                          static_cast<double>(total),
                      static_cast<double>(side_hi) /
                          static_cast<double>(total)};
        fm.max_passes = opts.fm_passes;
        fm.seed = opts.seed ^ (a * 0x9E3779B97F4A7C15ULL + b);
        const FmResult refined = fm_refine(sub, sub_initial, fm);
        if (refined.cut >= before - 1e-12) continue;

        any_improvement = true;
        for (std::size_t i = 0; i < total; ++i) {
          result.partition.assign(
              nodes[i], refined.partition.cluster_of(
                            static_cast<graph::NodeId>(i)) == 0
                            ? a
                            : b);
        }
      }
    }
    if (!any_improvement) break;
  }

  result.cut = cut_nets(h, result.partition);
  result.improvement = initial_cut - result.cut;
  return result;
}

}  // namespace specpart::part
