// Conductance sweep cut: the splitter of the normalized objective family.
//
// Under the normalized-symmetric operator (linalg/objective.h) the natural
// split quality is conductance
//
//     phi(S) = cut(S) / min(vol(S), vol(V \ S)),
//
// where vol(S) sums the hypergraph degrees (weights of incident eligible
// nets) of the vertices in S. Cheeger's inequality ties the best sweep cut
// of the normalized Fiedler vector to sqrt(2 lambda_2), so the splitter
// here evaluates phi at every prefix of the spectral ordering — the same
// single O(n + pins) incremental pass best_min_cut_split uses, with the
// volume accumulated alongside the net cut — and returns the minimizer.
// It rides alongside the FM/min-cut path, not instead of it: drivers pick
// it when PipelineConfig.objective is normalized.
#pragma once

#include "graph/hypergraph.h"
#include "part/ordering.h"
#include "part/partition.h"

namespace specpart::part {

/// Hypergraph vertex volumes: vol(v) = sum of weights of incident nets
/// with >= 2 pins (the same eligibility rule as the cut sweep, so a 0/1-pin
/// net contributes to neither numerator nor denominator). Isolated vertices
/// get volume 0.
std::vector<double> vertex_volumes(const graph::Hypergraph& h);

/// Minimizes conductance phi = cut / min(vol(S), vol(V \ S)) over all
/// prefix splits of `o` with both sides holding at least
/// `min_fraction * n` vertices (0 = the unconstrained Cheeger sweep).
/// Prefixes whose smaller side has zero volume are skipped (phi undefined);
/// SplitResult.objective holds the winning phi.
SplitResult best_conductance_split(const graph::Hypergraph& h,
                                   const Ordering& o,
                                   double min_fraction = 0.0);

/// Conductance of an existing bipartition (bench / report comparison of
/// the sweep cut against the FM split). Returns +infinity when either side
/// has zero volume and the cut is nonzero, 0 for a zero cut.
double conductance(const graph::Hypergraph& h, const Partition& p);

}  // namespace specpart::part
