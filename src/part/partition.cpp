#include "part/partition.h"

#include <cmath>

#include "util/error.h"

namespace specpart::part {

Partition::Partition(std::size_t num_nodes, std::uint32_t k)
    : assignment_(num_nodes, 0), sizes_(k, 0), k_(k) {
  SP_ASSERT(k >= 1);
  sizes_[0] = num_nodes;
}

Partition::Partition(std::vector<std::uint32_t> assignment, std::uint32_t k)
    : assignment_(std::move(assignment)), sizes_(k, 0), k_(k) {
  SP_ASSERT(k >= 1);
  for (std::uint32_t c : assignment_) {
    SP_ASSERT(c < k);
    ++sizes_[c];
  }
}

void Partition::assign(graph::NodeId v, std::uint32_t c) {
  SP_ASSERT(v < assignment_.size() && c < k_);
  const std::uint32_t old = assignment_[v];
  if (old == c) return;
  --sizes_[old];
  ++sizes_[c];
  assignment_[v] = c;
}

std::vector<graph::NodeId> Partition::members(std::uint32_t c) const {
  std::vector<graph::NodeId> out;
  out.reserve(sizes_[c]);
  for (graph::NodeId v = 0; v < assignment_.size(); ++v)
    if (assignment_[v] == c) out.push_back(v);
  return out;
}

std::uint32_t Partition::num_nonempty() const {
  std::uint32_t count = 0;
  for (std::size_t s : sizes_)
    if (s > 0) ++count;
  return count;
}

std::size_t BalanceConstraint::lower(std::size_t n) const {
  return static_cast<std::size_t>(
      std::ceil(min_fraction * static_cast<double>(n) - 1e-9));
}

std::size_t BalanceConstraint::upper(std::size_t n) const {
  return static_cast<std::size_t>(
      std::floor(max_fraction * static_cast<double>(n) + 1e-9));
}

bool BalanceConstraint::satisfied(const Partition& p) const {
  const std::size_t n = p.num_nodes();
  for (std::uint32_t c = 0; c < p.k(); ++c) {
    if (p.cluster_size(c) < lower(n) || p.cluster_size(c) > upper(n))
      return false;
  }
  return true;
}

}  // namespace specpart::part
