// Partition representation and balance constraints.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace specpart::part {

/// A k-way partition of n vertices: assignment[v] in [0, k).
/// Cluster sizes are maintained incrementally.
class Partition {
 public:
  Partition() = default;

  /// All vertices initially in cluster 0.
  Partition(std::size_t num_nodes, std::uint32_t k);

  /// Adopts an explicit assignment; every entry must be < k.
  Partition(std::vector<std::uint32_t> assignment, std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::size_t num_nodes() const { return assignment_.size(); }

  std::uint32_t cluster_of(graph::NodeId v) const { return assignment_[v]; }

  /// Moves v to cluster c, updating sizes.
  void assign(graph::NodeId v, std::uint32_t c);

  std::size_t cluster_size(std::uint32_t c) const { return sizes_[c]; }
  const std::vector<std::size_t>& sizes() const { return sizes_; }
  const std::vector<std::uint32_t>& assignment() const { return assignment_; }

  /// Vertex ids of cluster c (computed on demand).
  std::vector<graph::NodeId> members(std::uint32_t c) const;

  /// Number of non-empty clusters.
  std::uint32_t num_nonempty() const;

 private:
  std::vector<std::uint32_t> assignment_;
  std::vector<std::size_t> sizes_;
  std::uint32_t k_ = 0;
};

/// Relative size bounds: every cluster must hold between min_fraction and
/// max_fraction of the vertices. The paper's "balanced bipartitioning"
/// experiments use [0.45, 0.55].
struct BalanceConstraint {
  double min_fraction = 0.0;
  double max_fraction = 1.0;

  /// Lower bound on cluster size, in vertices (ceil).
  std::size_t lower(std::size_t n) const;
  /// Upper bound on cluster size, in vertices (floor).
  std::size_t upper(std::size_t n) const;
  /// True when every cluster of p satisfies the bounds.
  bool satisfied(const Partition& p) const;
};

}  // namespace specpart::part
