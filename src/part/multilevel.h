// Multilevel bipartitioning: coarsen -> initial partition -> uncoarsen +
// refine. The paper's survey cites multilevel implementations of spectral
// bisection [6]; this module provides the general V-cycle with heavy-edge
// matching coarsening and weighted-FM refinement, usable with either an FM
// or a spectral initial partitioner at the coarsest level.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "part/fm.h"
#include "part/partition.h"

namespace specpart::part {

struct MultilevelOptions {
  /// Stop coarsening once this few vertices remain.
  std::size_t coarsest_size = 64;
  /// Stop coarsening when a level shrinks by less than this factor
  /// (protects against matching stalls on star-heavy netlists).
  double min_shrink_factor = 0.9;
  /// Balance constraint on the ORIGINAL vertices.
  BalanceConstraint balance{0.45, 0.55};
  /// Use the spectral (SB) initial partitioner at the coarsest level
  /// instead of multi-start FM — the Barnard-Simon "multilevel spectral
  /// bisection" configuration.
  bool spectral_initial = false;
  /// FM settings for the refinement sweeps (balance/vertex_weights fields
  /// are overridden internally per level).
  std::size_t refine_passes = 8;
  std::size_t initial_starts = 8;
  std::uint64_t seed = 0x9137EDULL;
};

struct MultilevelResult {
  Partition partition;
  double cut = 0.0;
  /// Number of coarsening levels used (0 = the instance was already small).
  std::size_t levels = 0;
};

/// Multilevel 2-way partitioning of a netlist.
MultilevelResult multilevel_bipartition(const graph::Hypergraph& h,
                                        const MultilevelOptions& opts);

/// One heavy-edge-matching coarsening step, exposed for tests: returns the
/// coarse hypergraph, fills `coarse_of` (fine vertex -> coarse vertex) and
/// `coarse_weight` (coarse vertex -> total fine weight).
graph::Hypergraph coarsen_once(const graph::Hypergraph& h,
                               const std::vector<double>& fine_weight,
                               std::uint64_t seed,
                               std::vector<std::uint32_t>* coarse_of,
                               std::vector<double>* coarse_weight);

}  // namespace specpart::part
