#include "part/kl.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "part/objectives.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::part {

namespace {

/// One KL pass: tentative pair swaps with locking, then rewind to the best
/// prefix. Returns the kept improvement.
double kl_pass(const graph::Graph& g, Partition& p,
               std::size_t candidate_window) {
  const std::size_t n = g.num_nodes();
  // D_v = external - internal connection weight.
  std::vector<double> d(n, 0.0);
  for (const graph::Edge& e : g.edges()) {
    const bool cut = p.cluster_of(e.u) != p.cluster_of(e.v);
    const double delta = cut ? e.weight : -e.weight;
    d[e.u] += delta;
    d[e.v] += delta;
  }
  // Direct edge-weight lookup for the pair correction term.
  auto edge_weight = [&](graph::NodeId a, graph::NodeId b) {
    for (std::size_t s = g.adjacency_begin(a); s < g.adjacency_end(a); ++s)
      if (g.neighbour(s).node == b) return g.neighbour(s).weight;
    return 0.0;
  };

  std::vector<char> locked(n, 0);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> swaps;
  std::vector<double> gains;
  const std::size_t max_swaps =
      std::min(p.cluster_size(0), p.cluster_size(1));

  for (std::size_t round = 0; round < max_swaps; ++round) {
    // Top-D candidates on each side.
    std::vector<graph::NodeId> side[2];
    for (graph::NodeId v = 0; v < n; ++v)
      if (!locked[v]) side[p.cluster_of(v)].push_back(v);
    if (side[0].empty() || side[1].empty()) break;
    const std::size_t window =
        candidate_window == 0 ? n : candidate_window;
    for (auto& list : side) {
      std::sort(list.begin(), list.end(),
                [&](graph::NodeId a, graph::NodeId b) {
                  if (d[a] != d[b]) return d[a] > d[b];
                  return a < b;
                });
      if (list.size() > window) list.resize(window);
    }

    graph::NodeId best_a = side[0][0], best_b = side[1][0];
    double best_gain = -std::numeric_limits<double>::infinity();
    for (graph::NodeId a : side[0]) {
      for (graph::NodeId b : side[1]) {
        const double gain = d[a] + d[b] - 2.0 * edge_weight(a, b);
        if (gain > best_gain) {
          best_gain = gain;
          best_a = a;
          best_b = b;
        }
      }
    }

    // Tentatively swap and update D values of unlocked vertices.
    locked[best_a] = 1;
    locked[best_b] = 1;
    const std::uint32_t ca = p.cluster_of(best_a);
    p.assign(best_a, p.cluster_of(best_b));
    p.assign(best_b, ca);
    swaps.emplace_back(best_a, best_b);
    gains.push_back(best_gain);
    for (graph::NodeId moved : {best_a, best_b}) {
      for (std::size_t s = g.adjacency_begin(moved);
           s < g.adjacency_end(moved); ++s) {
        const auto [u, w] = g.neighbour(s);
        if (locked[u]) continue;
        // Edge (moved, u) flipped its cut state for u's D value.
        const bool now_cut = p.cluster_of(u) != p.cluster_of(moved);
        d[u] += now_cut ? 2.0 * w : -2.0 * w;
      }
    }
  }

  // Best prefix of the tentative swap sequence.
  double cumulative = 0.0, best = 0.0;
  std::size_t best_prefix = 0;
  for (std::size_t i = 0; i < gains.size(); ++i) {
    cumulative += gains[i];
    if (cumulative > best + 1e-12) {
      best = cumulative;
      best_prefix = i + 1;
    }
  }
  for (std::size_t i = swaps.size(); i > best_prefix; --i) {
    const auto [a, b] = swaps[i - 1];
    const std::uint32_t ca = p.cluster_of(a);
    p.assign(a, p.cluster_of(b));
    p.assign(b, ca);
  }
  return best;
}

}  // namespace

KlResult kl_refine(const graph::Graph& g, const Partition& initial,
                   const KlOptions& opts) {
  SP_REQUIRE(initial.k() == 2, "KL refines bipartitions only");
  SP_ASSERT(initial.num_nodes() == g.num_nodes());
  KlResult result;
  result.partition = initial;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    const double improvement =
        kl_pass(g, result.partition, opts.candidate_window);
    ++result.passes;
    if (improvement <= 1e-12) break;
  }
  result.cut = cut_weight(g, result.partition);
  return result;
}

KlResult kl_bipartition(const graph::Graph& g, const KlOptions& opts) {
  const std::size_t n = g.num_nodes();
  SP_CHECK_INPUT(n >= 2, "KL needs at least 2 vertices");
  Rng rng(opts.seed);
  KlResult best;
  bool have = false;
  for (std::size_t start = 0;
       start < std::max<std::size_t>(1, opts.num_starts); ++start) {
    std::vector<graph::NodeId> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    std::vector<std::uint32_t> assignment(n, 1);
    for (std::size_t i = 0; i < n / 2; ++i) assignment[order[i]] = 0;
    KlOptions start_opts = opts;
    start_opts.seed = opts.seed + start + 1;
    KlResult r = kl_refine(g, Partition(std::move(assignment), 2),
                           start_opts);
    if (!have || r.cut < best.cut) {
      best = std::move(r);
      have = true;
    }
  }
  return best;
}

}  // namespace specpart::part
