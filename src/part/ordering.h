// Linear vertex orderings and ordering -> bipartition splitting.
//
// "Construct an ordering, then split it" is the backbone of SB, RSB and
// MELO. The sweep below evaluates every prefix split of an ordering in a
// single O(n + pins) pass per objective, maintaining the net cut
// incrementally as vertices cross from right to left.
#pragma once

#include <limits>
#include <vector>

#include "graph/hypergraph.h"
#include "part/partition.h"

namespace specpart::part {

/// A linear ordering: ordering[pos] = vertex at position pos.
using Ordering = std::vector<graph::NodeId>;

/// True when `o` is a permutation of 0..n-1.
bool is_permutation(const Ordering& o, std::size_t n);

/// Inverse permutation: result[vertex] = position.
std::vector<std::uint32_t> positions_of(const Ordering& o);

/// Result of the best prefix split of an ordering.
struct SplitResult {
  /// Prefix length (vertices ordering[0..split) form cluster 0).
  std::size_t split = 0;
  /// Net cut at the split (each cut net once).
  double cut = std::numeric_limits<double>::infinity();
  /// Value of the objective that was optimized (ratio cut or cut).
  double objective = std::numeric_limits<double>::infinity();
  /// True if any feasible split existed.
  bool feasible = false;
};

/// Minimizes ratio cut = cut / (i * (n-i)) over all splits i in [1, n-1]
/// with both sides at least `min_fraction * n` (0 = unconstrained, the
/// RSB setting: "choosing the best of all splits of the Fiedler vector").
SplitResult best_ratio_cut_split(const graph::Hypergraph& h,
                                 const Ordering& o,
                                 double min_fraction = 0.0);

/// Minimizes the net cut subject to both sides holding at least
/// `min_fraction * n` vertices (the paper's Table 5 uses 0.45).
SplitResult best_min_cut_split(const graph::Hypergraph& h, const Ordering& o,
                               double min_fraction);

/// Materializes the bipartition for a split of `o` at prefix length
/// `split`.
Partition split_to_partition(const Ordering& o, std::size_t split);

/// Net cut of every prefix split: result[i] = cut when the first i vertices
/// form one side (result[0] = result[n] = 0). Building block for the
/// splitters above and for DP-RP tests.
std::vector<double> prefix_cuts(const graph::Hypergraph& h, const Ordering& o);

}  // namespace specpart::part
