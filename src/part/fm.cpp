#include "part/fm.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "part/objectives.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::part {

namespace {

/// One lazily-invalidated heap entry: (gain, tie-break, vertex, stamp).
struct HeapEntry {
  double gain;
  std::uint64_t tiebreak;
  graph::NodeId vertex;
  std::uint32_t stamp;
  bool operator<(const HeapEntry& other) const {
    if (gain != other.gain) return gain < other.gain;
    return tiebreak < other.tiebreak;
  }
};

/// State of one FM pass over a bipartition.
class FmPass {
 public:
  FmPass(const graph::Hypergraph& h, Partition& p,
         const BalanceConstraint& balance,
         const std::vector<double>& vertex_weights, Rng& rng)
      : h_(h), p_(p), rng_(rng) {
    const std::size_t n = h.num_nodes();
    weights_.assign(n, 1.0);
    if (!vertex_weights.empty()) {
      SP_REQUIRE(vertex_weights.size() == n,
                 "FM: vertex weight count mismatch");
      weights_ = vertex_weights;
    }
    double total = 0.0;
    for (double w : weights_) total += w;
    side_weight_[0] = side_weight_[1] = 0.0;
    for (graph::NodeId v = 0; v < n; ++v)
      side_weight_[p.cluster_of(v)] += weights_[v];
    lower_weight_ = balance.min_fraction * total - 1e-9;
    upper_weight_ = balance.max_fraction * total + 1e-9;
    locked_.assign(n, 0);
    stamp_.assign(n, 0);
    gain_.assign(n, 0.0);
    pins_[0].assign(h.num_nets(), 0);
    pins_[1].assign(h.num_nets(), 0);
    for (graph::NetId e = 0; e < h.num_nets(); ++e)
      for (graph::NodeId v : h.net(e)) ++pins_[p.cluster_of(v)][e];
    for (graph::NodeId v = 0; v < n; ++v) {
      gain_[v] = initial_gain(v);
      push(v);
    }
  }

  /// Runs the pass; returns the total cut improvement kept (>= 0).
  /// `budget` (nullable) is polled per move; exhaustion ends the pass
  /// early — the rewind below still restores the best balanced prefix.
  double run(ComputeBudget* budget) {
    double cumulative = 0.0;
    double best = 0.0;
    std::size_t best_prefix = 0;
    std::vector<graph::NodeId> moves;
    std::vector<HeapEntry> deferred;

    for (;;) {
      // Find the best feasible, unlocked, up-to-date vertex.
      bool found = false;
      graph::NodeId chosen = 0;
      deferred.clear();
      while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        heap_.pop();
        if (locked_[top.vertex] || top.stamp != stamp_[top.vertex]) continue;
        if (!move_feasible(top.vertex)) {
          deferred.push_back(top);
          continue;
        }
        chosen = top.vertex;
        found = true;
        break;
      }
      for (const HeapEntry& e : deferred) heap_.push(e);
      if (!found) break;
      if (!budget_charge(budget)) break;

      cumulative += gain_[chosen];
      apply_move(chosen);
      locked_[chosen] = 1;
      moves.push_back(chosen);
      if (cumulative > best + 1e-12) {
        best = cumulative;
        best_prefix = moves.size();
      }
    }

    // Rewind moves past the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const graph::NodeId v = moves[i - 1];
      const std::uint32_t from = p_.cluster_of(v);
      side_weight_[from] -= weights_[v];
      side_weight_[1 - from] += weights_[v];
      p_.assign(v, 1 - from);
    }
    return best;
  }

 private:
  double initial_gain(graph::NodeId v) const {
    const std::uint32_t s = p_.cluster_of(v);
    double g = 0.0;
    for (graph::NetId e : h_.nets_of(v)) {
      if (h_.net(e).size() < 2) continue;
      const double w = h_.net_weight(e);
      if (pins_[s][e] == 1) g += w;          // moving v uncuts the net
      if (pins_[1 - s][e] == 0) g -= w;      // moving v cuts the net
    }
    return g;
  }

  bool move_feasible(graph::NodeId v) const {
    const std::uint32_t s = p_.cluster_of(v);
    return side_weight_[s] - weights_[v] >= lower_weight_ &&
           side_weight_[1 - s] + weights_[v] <= upper_weight_;
  }

  void push(graph::NodeId v) {
    heap_.push({gain_[v], rng_.next_u64(), v, stamp_[v]});
  }

  void bump(graph::NodeId v, double delta) {
    gain_[v] += delta;
    if (!locked_[v]) {
      ++stamp_[v];
      push(v);
    }
  }

  void apply_move(graph::NodeId v) {
    const std::uint32_t from = p_.cluster_of(v);
    const std::uint32_t to = 1 - from;
    for (graph::NetId e : h_.nets_of(v)) {
      const auto& net = h_.net(e);
      if (net.size() < 2) continue;
      const double w = h_.net_weight(e);
      // Before the move (Fiduccia–Mattheyses update rules).
      if (pins_[to][e] == 0) {
        for (graph::NodeId u : net)
          if (u != v && !locked_[u]) bump(u, w);
      } else if (pins_[to][e] == 1) {
        for (graph::NodeId u : net)
          if (u != v && !locked_[u] && p_.cluster_of(u) == to) bump(u, -w);
      }
      --pins_[from][e];
      ++pins_[to][e];
      // After the move.
      if (pins_[from][e] == 0) {
        for (graph::NodeId u : net)
          if (u != v && !locked_[u]) bump(u, -w);
      } else if (pins_[from][e] == 1) {
        for (graph::NodeId u : net)
          if (u != v && !locked_[u] && p_.cluster_of(u) == from) bump(u, w);
      }
    }
    side_weight_[from] -= weights_[v];
    side_weight_[to] += weights_[v];
    p_.assign(v, to);
  }

  const graph::Hypergraph& h_;
  Partition& p_;
  Rng& rng_;
  std::vector<double> weights_;
  double side_weight_[2] = {0.0, 0.0};
  double lower_weight_ = 0.0;
  double upper_weight_ = 0.0;
  std::vector<char> locked_;
  std::vector<std::uint32_t> stamp_;
  std::vector<double> gain_;
  std::vector<std::uint32_t> pins_[2];
  std::priority_queue<HeapEntry> heap_;
};

}  // namespace

FmResult fm_refine(const graph::Hypergraph& h, const Partition& initial,
                   const FmOptions& opts) {
  SP_REQUIRE(initial.k() == 2, "FM refines bipartitions only");
  SP_ASSERT(initial.num_nodes() == h.num_nodes());
  Rng rng(opts.seed);
  FmResult result;
  result.partition = initial;
  for (std::size_t pass = 0; pass < opts.max_passes; ++pass) {
    if (!budget_ok(opts.budget)) {
      result.budget_exhausted = true;
      break;
    }
    FmPass engine(h, result.partition, opts.balance, opts.vertex_weights,
                  rng);
    const double improvement = engine.run(opts.budget);
    ++result.passes;
    if (!budget_ok(opts.budget)) result.budget_exhausted = true;
    if (improvement <= 1e-12) break;
  }
  result.cut = cut_nets(h, result.partition);
  return result;
}

FmResult fm_bipartition(const graph::Hypergraph& h, const FmOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(n >= 2, "FM needs at least 2 vertices");
  Rng rng(opts.seed);
  FmResult best;
  bool have_best = false;
  for (std::size_t start = 0; start < std::max<std::size_t>(1, opts.num_starts);
       ++start) {
    // Random weight-balanced initial bipartition: shuffle, then greedily
    // assign each vertex to the lighter side.
    std::vector<graph::NodeId> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    std::vector<std::uint32_t> assignment(n, 1);
    double weight[2] = {0.0, 0.0};
    for (graph::NodeId v : order) {
      const double w = opts.vertex_weights.empty()
                           ? 1.0
                           : opts.vertex_weights[v];
      const std::uint32_t side = weight[0] <= weight[1] ? 0 : 1;
      assignment[v] = side;
      weight[side] += w;
    }
    Partition init(std::move(assignment), 2);

    FmOptions start_opts = opts;
    start_opts.seed = opts.seed ^ (0x9E3779B97F4A7C15ULL * (start + 1));
    FmResult r = fm_refine(h, init, start_opts);
    if (!have_best || r.cut < best.cut) {
      const bool exhausted = best.budget_exhausted || r.budget_exhausted;
      best = std::move(r);
      best.budget_exhausted = exhausted;
      have_best = true;
    } else {
      best.budget_exhausted = best.budget_exhausted || r.budget_exhausted;
    }
    // Additional starts are quality-only; stop once the budget is gone
    // (the first start always completes, so the result stays valid).
    if (!budget_ok(opts.budget)) {
      best.budget_exhausted = true;
      break;
    }
  }
  return best;
}

}  // namespace specpart::part
