#include "part/report.h"

#include <ostream>
#include <sstream>

#include "part/objectives.h"
#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::part {

QualityReport evaluate(const graph::Hypergraph& h, const Partition& p) {
  SP_REQUIRE(p.num_nodes() == h.num_nodes(), "evaluate: size mismatch");
  QualityReport r;
  r.k = p.k();
  r.num_nodes = h.num_nodes();
  r.num_nets = h.num_nets();
  r.cut_nets = cut_nets(h, p);
  r.k_minus_one = k_minus_one_cost(h, p);
  r.soed = sum_of_external_degrees(h, p);
  r.absorption = absorption(h, p);
  r.scaled_cost = p.k() >= 2 ? scaled_cost(h, p) : 0.0;
  r.ratio_cut = p.k() == 2 ? ratio_cut(h, p) : 0.0;

  r.clusters.resize(p.k());
  const std::vector<double> degrees = cluster_degrees(h, p);
  std::size_t max_size = 0;
  for (std::uint32_t c = 0; c < p.k(); ++c) {
    r.clusters[c].size = p.cluster_size(c);
    r.clusters[c].external_degree = degrees[c];
    max_size = std::max(max_size, p.cluster_size(c));
  }
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.empty()) continue;
    const std::uint32_t first = p.cluster_of(pins[0]);
    bool internal = true;
    for (graph::NodeId v : pins) internal = internal && p.cluster_of(v) == first;
    if (internal) r.clusters[first].internal_nets += h.net_weight(e);
  }
  const double avg =
      static_cast<double>(r.num_nodes) / static_cast<double>(r.k);
  r.imbalance = avg > 0.0 ? static_cast<double>(max_size) / avg : 0.0;
  return r;
}

void print_report(const QualityReport& r, std::ostream& out) {
  out << strprintf("partition: k=%u over %zu modules, %zu nets\n", r.k,
                   r.num_nodes, r.num_nets);
  out << strprintf("  cut nets    : %.6g\n", r.cut_nets);
  out << strprintf("  (K-1) cost  : %.6g\n", r.k_minus_one);
  out << strprintf("  SOED        : %.6g\n", r.soed);
  out << strprintf("  absorption  : %.6g (of %zu nets)\n", r.absorption,
                   r.num_nets);
  if (r.k >= 2) out << strprintf("  scaled cost : %.6g\n", r.scaled_cost);
  if (r.k == 2) out << strprintf("  ratio cut   : %.6g\n", r.ratio_cut);
  out << strprintf("  imbalance   : %.3f (max cluster / ideal)\n",
                   r.imbalance);
  if (r.solver.present) {
    out << strprintf(
        "  eigensolver : %s (%zu of %zu eigenvector(s), %zu fallback(s))\n",
        r.solver.eigen_converged ? "converged" : "NOT converged",
        r.solver.eigenvectors_used, r.solver.eigenvectors_requested,
        r.solver.fallbacks);
    if (r.solver.threads > 0)
      out << strprintf("  threads     : %zu%s\n", r.solver.threads,
                       r.solver.threads == 1 ? " (serial reference)" : "");
    if (r.solver.budget_exhausted)
      out << "  budget      : EXHAUSTED (best-so-far result)\n";
  }
  for (std::size_t c = 0; c < r.clusters.size(); ++c) {
    out << strprintf(
        "  cluster %-3zu : %6zu modules, E_h = %-8.6g internal nets = %.6g\n",
        c, r.clusters[c].size, r.clusters[c].external_degree,
        r.clusters[c].internal_nets);
  }
}

std::string report_string(const graph::Hypergraph& h, const Partition& p) {
  std::ostringstream out;
  print_report(evaluate(h, p), out);
  return out.str();
}

}  // namespace specpart::part
