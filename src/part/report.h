// Partition quality reports: every metric the library knows, computed in
// one pass-friendly struct, plus a human-readable rendering. This is what
// a tool should print after partitioning a netlist (examples/netlist_tool
// uses it with --report).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/hypergraph.h"
#include "part/partition.h"

namespace specpart::part {

/// Per-cluster statistics.
struct ClusterStats {
  std::size_t size = 0;
  /// Weight of cut nets incident to this cluster (E_h).
  double external_degree = 0.0;
  /// Weight of nets entirely inside this cluster.
  double internal_nets = 0.0;
};

/// Eigensolver / budget outcome of the run that produced the partition.
/// Partition quality alone cannot reveal a silently degraded solve, so the
/// drivers' convergence flags are carried into the printed report. Fill it
/// from a MeloBipartitionResult / MeloMultiwayResult (or leave `present`
/// false for partitions with no solver provenance).
struct SolverInfo {
  bool present = false;
  /// True when every eigenvector used met the solver tolerance.
  bool eigen_converged = true;
  std::size_t eigenvectors_requested = 0;
  std::size_t eigenvectors_used = 0;
  /// True when the run returned best-so-far under an exhausted budget.
  bool budget_exhausted = false;
  /// Recovery actions (retries, fallbacks, truncations) taken.
  std::size_t fallbacks = 0;
  /// Compute-kernel threads the run used (0 = unknown/not recorded;
  /// 1 = the serial reference path).
  std::size_t threads = 0;
};

/// Full quality report of a k-way partition of a netlist.
struct QualityReport {
  std::uint32_t k = 0;
  std::size_t num_nodes = 0;
  std::size_t num_nets = 0;
  double cut_nets = 0.0;
  double k_minus_one = 0.0;
  double soed = 0.0;
  double absorption = 0.0;
  /// Scaled Cost; +inf when a cluster is empty.
  double scaled_cost = 0.0;
  /// Ratio cut for k = 2 (0 otherwise).
  double ratio_cut = 0.0;
  /// max cluster size / (n / k): 1.0 = perfectly balanced.
  double imbalance = 0.0;
  std::vector<ClusterStats> clusters;
  /// Solver provenance (printed when solver.present).
  SolverInfo solver;
};

/// Computes every metric for the partition.
QualityReport evaluate(const graph::Hypergraph& h, const Partition& p);

/// Renders the report as aligned human-readable text.
void print_report(const QualityReport& report, std::ostream& out);

/// Convenience: evaluate + render to a string.
std::string report_string(const graph::Hypergraph& h, const Partition& p);

}  // namespace specpart::part
