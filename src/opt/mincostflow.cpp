#include "opt/mincostflow.h"

#include <limits>
#include <queue>

#include "util/error.h"

namespace specpart::opt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
}  // namespace

MinCostFlow::MinCostFlow(std::size_t num_nodes) : arcs_(num_nodes) {}

std::size_t MinCostFlow::add_arc(std::uint32_t from, std::uint32_t to,
                                 double capacity, double cost) {
  SP_ASSERT(from < arcs_.size() && to < arcs_.size());
  SP_REQUIRE(capacity >= 0.0, "arc capacity must be non-negative");
  SP_REQUIRE(!solved_, "add_arc after solve");
  const auto fwd = static_cast<std::uint32_t>(arcs_[from].size());
  const auto rev = static_cast<std::uint32_t>(arcs_[to].size()) +
                   (from == to ? 1u : 0u);
  arcs_[from].push_back({to, rev, capacity, cost});
  arcs_[to].push_back({from, fwd, 0.0, -cost});
  arc_handles_.emplace_back(from, fwd);
  original_capacity_.push_back(capacity);
  return arc_handles_.size() - 1;
}

MinCostFlow::Result MinCostFlow::solve(std::uint32_t source,
                                       std::uint32_t sink) {
  SP_ASSERT(source < arcs_.size() && sink < arcs_.size());
  SP_REQUIRE(!solved_, "solve may only be called once");
  solved_ = true;
  const std::size_t n = arcs_.size();

  // Initial potentials via Bellman-Ford (handles negative arc costs).
  std::vector<double> potential(n, 0.0);
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (potential[u] == kInf) continue;
      for (const Arc& a : arcs_[u]) {
        if (a.capacity <= kEps) continue;
        const double candidate = potential[u] + a.cost;
        if (candidate < potential[a.to] - kEps) {
          potential[a.to] = candidate;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  Result result;
  std::vector<double> dist(n);
  std::vector<std::uint32_t> prev_node(n), prev_arc(n);
  for (;;) {
    // Dijkstra on reduced costs.
    dist.assign(n, kInf);
    dist[source] = 0.0;
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.push({0.0, source});
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + kEps) continue;
      for (std::uint32_t slot = 0; slot < arcs_[u].size(); ++slot) {
        const Arc& a = arcs_[u][slot];
        if (a.capacity <= kEps) continue;
        // Potentials keep reduced costs non-negative for nodes that stayed
        // reachable; clamp guards nodes whose potential went stale after
        // they became unreachable mid-run.
        const double reduced = a.cost + potential[u] - potential[a.to];
        const double candidate = dist[u] + std::max(0.0, reduced);
        if (candidate < dist[a.to] - kEps) {
          dist[a.to] = candidate;
          prev_node[a.to] = u;
          prev_arc[a.to] = slot;
          heap.push({candidate, a.to});
        }
      }
    }
    if (dist[sink] == kInf) break;

    for (std::uint32_t u = 0; u < n; ++u)
      if (dist[u] < kInf) potential[u] += dist[u];

    // Bottleneck along the path.
    double push = kInf;
    for (std::uint32_t v = sink; v != source; v = prev_node[v])
      push = std::min(push, arcs_[prev_node[v]][prev_arc[v]].capacity);
    for (std::uint32_t v = sink; v != source; v = prev_node[v]) {
      Arc& a = arcs_[prev_node[v]][prev_arc[v]];
      a.capacity -= push;
      arcs_[a.to][a.reverse].capacity += push;
      result.cost += push * a.cost;
    }
    result.flow += push;
  }
  return result;
}

double MinCostFlow::flow_on(std::size_t arc_id) const {
  SP_ASSERT(arc_id < arc_handles_.size());
  const auto [node, slot] = arc_handles_[arc_id];
  return original_capacity_[arc_id] - arcs_[node][slot].capacity;
}

}  // namespace specpart::opt
