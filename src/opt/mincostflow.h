// Minimum-cost maximum-flow, the optimization substrate behind Barnes'
// transportation formulation of spectral k-way partitioning [7] (and any
// other assignment-shaped subproblem).
//
// Successive shortest augmenting paths with Johnson potentials: Bellman-
// Ford once to absorb negative arc costs, then Dijkstra per augmentation.
// Integral capacities give integral optimal flows — exactly what the
// transportation relaxation needs to round to a partition.
#pragma once

#include <cstdint>
#include <vector>

namespace specpart::opt {

/// Min-cost max-flow solver on a directed graph with per-arc capacity and
/// cost. Nodes are dense 0-based ids.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes);

  /// Adds a directed arc; returns its id (for flow_on()). Costs may be
  /// negative; capacities must be non-negative.
  std::size_t add_arc(std::uint32_t from, std::uint32_t to, double capacity,
                      double cost);

  struct Result {
    double flow = 0.0;
    double cost = 0.0;
  };

  /// Sends as much flow as possible from `source` to `sink` at minimum
  /// total cost. May be called once per instance.
  Result solve(std::uint32_t source, std::uint32_t sink);

  /// Flow routed on the arc returned by add_arc.
  double flow_on(std::size_t arc_id) const;

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t reverse;  // index of the reverse arc in arcs_[to]
    double capacity;
    double cost;
  };
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> arc_handles_;
  std::vector<double> original_capacity_;
  bool solved_ = false;
};

}  // namespace specpart::opt
