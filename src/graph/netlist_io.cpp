#include "graph/netlist_io.h"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::graph {

namespace {

/// Upper bound on header-declared counts. A count above this is either a
/// corrupted file or an allocation-scale attack (the parser pre-sizes its
/// net table from the header); real netlists are orders of magnitude
/// smaller.
constexpr std::size_t kMaxDeclaredCount = std::size_t{1} << 30;

/// Reads the next non-empty, non-comment line; returns false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const std::string_view t = trim(line);
    if (t.empty() || t.front() == '%' || t.front() == '#') continue;
    line = std::string(t);
    return true;
  }
  return false;
}

}  // namespace

Hypergraph read_hgr(std::istream& in, Diagnostics* diag) {
  std::string line;
  SP_CHECK_INPUT(next_content_line(in, line), ".hgr: missing header line");
  const auto header = split_ws(line);
  SP_CHECK_INPUT(header.size() >= 2 && header.size() <= 3,
                 ".hgr: header must be '<#nets> <#vertices> [fmt]'");
  const std::size_t num_nets = parse_size(header[0], ".hgr #nets");
  const std::size_t num_nodes = parse_size(header[1], ".hgr #vertices");
  SP_CHECK_INPUT(num_nets <= kMaxDeclaredCount,
                 ".hgr: declared net count is implausibly large");
  SP_CHECK_INPUT(num_nodes <= kMaxDeclaredCount,
                 ".hgr: declared vertex count is implausibly large");
  std::size_t fmt = header.size() == 3 ? parse_size(header[2], ".hgr fmt") : 0;
  SP_CHECK_INPUT(fmt == 0 || fmt == 1 || fmt == 10 || fmt == 11,
                 ".hgr: fmt must be one of 0, 1, 10, 11");
  const bool has_net_weights = fmt == 1 || fmt == 11;
  const bool has_node_weights = fmt == 10 || fmt == 11;

  std::vector<std::vector<NodeId>> nets(num_nets);
  std::vector<double> weights(num_nets, 1.0);
  std::size_t nets_with_duplicates = 0;
  std::vector<char> pin_seen(num_nodes, 0);
  for (std::size_t e = 0; e < num_nets; ++e) {
    SP_CHECK_INPUT(next_content_line(in, line),
                   ".hgr: fewer net lines than the header promises");
    const auto tokens = split_ws(line);
    std::size_t first_pin = 0;
    if (has_net_weights) {
      SP_CHECK_INPUT(!tokens.empty(), ".hgr: weighted net line is empty");
      weights[e] = parse_double(tokens[0], ".hgr net weight");
      first_pin = 1;
    }
    SP_CHECK_INPUT(tokens.size() > first_pin, ".hgr: net with no pins");
    bool duplicate = false;
    for (std::size_t i = first_pin; i < tokens.size(); ++i) {
      const std::size_t v = parse_size(tokens[i], ".hgr pin");
      SP_CHECK_INPUT(v >= 1 && v <= num_nodes,
                     ".hgr: pin id out of range (ids are 1-based)");
      duplicate = duplicate || pin_seen[v - 1] != 0;
      pin_seen[v - 1] = 1;
      nets[e].push_back(static_cast<NodeId>(v - 1));
    }
    for (NodeId v : nets[e]) pin_seen[v] = 0;
    nets_with_duplicates += duplicate ? 1 : 0;
  }
  if (nets_with_duplicates > 0 && diag != nullptr)
    diag->warn("parse", strprintf(".hgr: %zu net(s) list a pin more than "
                                  "once; duplicates merged",
                                  nets_with_duplicates));
  if (has_node_weights) {
    // Vertex weights are parsed for format fidelity but the partitioners in
    // this library treat modules as unit-size (as the paper does); a future
    // weighted-module extension would store them on the Hypergraph.
    for (std::size_t v = 0; v < num_nodes; ++v)
      SP_CHECK_INPUT(next_content_line(in, line),
                     ".hgr: missing vertex weight lines");
  }
  SP_CHECK_INPUT(!next_content_line(in, line),
                 ".hgr: trailing garbage after the declared net count");
  return Hypergraph(num_nodes, std::move(nets), std::move(weights));
}

Hypergraph read_hgr_file(const std::string& path, Diagnostics* diag) {
  std::ifstream in(path);
  SP_CHECK_INPUT(in.good(), "cannot open .hgr file: " + path);
  return read_hgr(in, diag);
}

void write_hgr(const Hypergraph& h, std::ostream& out) {
  bool weighted = false;
  for (NetId e = 0; e < h.num_nets(); ++e)
    if (h.net_weight(e) != 1.0) weighted = true;
  out << h.num_nets() << ' ' << h.num_nodes();
  if (weighted) out << " 1";
  out << '\n';
  for (NetId e = 0; e < h.num_nets(); ++e) {
    if (weighted) out << h.net_weight(e) << ' ';
    const auto& pins = h.net(e);
    for (std::size_t i = 0; i < pins.size(); ++i)
      out << (pins[i] + 1) << (i + 1 == pins.size() ? '\n' : ' ');
    if (pins.empty()) out << '\n';
  }
}

void write_hgr_file(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path);
  SP_CHECK_INPUT(out.good(), "cannot open output file: " + path);
  write_hgr(h, out);
}

Hypergraph read_netd(std::istream& in) {
  std::string line;
  // Header: five integer lines (legacy fields: an unused 0, #pins, #nets,
  // #modules, pad offset). Only #pins/#nets/#modules are used, for
  // cross-checking the pin list.
  std::size_t header[5] = {0, 0, 0, 0, 0};
  for (auto& field : header) {
    SP_CHECK_INPUT(next_content_line(in, line), ".netD: truncated header");
    field = parse_size(split_ws(line).at(0), ".netD header");
  }
  const std::size_t declared_pins = header[1];
  const std::size_t declared_nets = header[2];

  std::map<std::string, NodeId> ids;
  std::vector<std::string> names;
  auto intern = [&](const std::string& name) -> NodeId {
    auto [it, inserted] = ids.try_emplace(
        name, static_cast<NodeId>(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  };

  std::vector<std::vector<NodeId>> nets;
  std::size_t pins_seen = 0;
  while (next_content_line(in, line)) {
    const auto tokens = split_ws(line);
    SP_CHECK_INPUT(tokens.size() >= 2,
                   ".netD: pin line needs '<module> <s|l> [dir]'");
    const NodeId v = intern(tokens[0]);
    const std::string& kind = tokens[1];
    SP_CHECK_INPUT(kind == "s" || kind == "l",
                   ".netD: pin kind must be 's' or 'l', got '" + kind + "'");
    if (kind == "s") nets.emplace_back();
    SP_CHECK_INPUT(!nets.empty(), ".netD: pin list must start with an 's' pin");
    nets.back().push_back(v);
    ++pins_seen;
  }
  SP_CHECK_INPUT(declared_pins == 0 || pins_seen == declared_pins,
                 ".netD: pin count does not match header");
  SP_CHECK_INPUT(declared_nets == 0 || nets.size() == declared_nets,
                 ".netD: net count does not match header");
  Hypergraph h(names.size(), std::move(nets));
  h.set_node_names(std::move(names));
  return h;
}

Hypergraph read_netd_file(const std::string& path) {
  std::ifstream in(path);
  SP_CHECK_INPUT(in.good(), "cannot open .netD file: " + path);
  return read_netd(in);
}

void write_netd(const Hypergraph& h, std::ostream& out) {
  out << 0 << '\n'
      << h.num_pins() << '\n'
      << h.num_nets() << '\n'
      << h.num_nodes() << '\n'
      << 0 << '\n';
  const auto& names = h.node_names();
  auto name_of = [&](NodeId v) -> std::string {
    if (!names.empty()) return names[v];
    std::string name("a");
    name += std::to_string(v);
    return name;
  };
  for (NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    SP_REQUIRE(!pins.empty(), ".netD writer: empty net");
    for (std::size_t i = 0; i < pins.size(); ++i)
      out << name_of(pins[i]) << (i == 0 ? " s I" : " l O") << '\n';
  }
}

void write_netd_file(const Hypergraph& h, const std::string& path) {
  std::ofstream out(path);
  SP_CHECK_INPUT(out.good(), "cannot open output file: " + path);
  write_netd(h, out);
}

void write_partition(const std::vector<std::uint32_t>& assignment,
                     std::ostream& out) {
  for (std::uint32_t c : assignment) out << c << '\n';
}

void write_partition_file(const std::vector<std::uint32_t>& assignment,
                          const std::string& path) {
  std::ofstream out(path);
  SP_CHECK_INPUT(out.good(), "cannot open output file: " + path);
  write_partition(assignment, out);
}

}  // namespace specpart::graph
