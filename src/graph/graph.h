// Weighted undirected graphs.
//
// This is the representation spectral algorithms operate on: netlists
// (hypergraphs) are first expanded through a clique/star model (src/model)
// into a Graph, whose Laplacian eigenvectors drive every heuristic in the
// paper.
#pragma once

#include <cstdint>
#include <vector>

namespace specpart::graph {

using NodeId = std::uint32_t;

/// One weighted undirected edge; endpoints are unordered.
struct Edge {
  NodeId u;
  NodeId v;
  double weight;
};

/// Immutable weighted undirected graph with CSR adjacency.
///
/// Construction merges parallel edges (weights summed) and rejects
/// self-loops (they never arise from net models and have no effect on cuts).
class Graph {
 public:
  Graph() = default;

  /// Builds a graph on `num_nodes` vertices. Edges with u == v are dropped.
  /// Parallel edges are merged by summing weights.
  Graph(std::size_t num_nodes, const std::vector<Edge>& edges);

  std::size_t num_nodes() const { return degree_offset_.empty() ? 0 : degree_offset_.size() - 1; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Weighted degree: sum of incident edge weights.
  double degree(NodeId v) const;

  /// Sum of all edge weights.
  double total_edge_weight() const { return total_weight_; }

  /// Unique edge list (u < v).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbour iteration: for vertex v, neighbours() spans
  /// [adjacency_begin(v), adjacency_end(v)) of (neighbour, weight) pairs.
  struct Neighbour {
    NodeId node;
    double weight;
  };
  std::size_t adjacency_begin(NodeId v) const { return degree_offset_[v]; }
  std::size_t adjacency_end(NodeId v) const { return degree_offset_[v + 1]; }
  const Neighbour& neighbour(std::size_t slot) const { return adjacency_[slot]; }

  /// Number of connected components.
  std::size_t num_components() const;

  /// Component label per vertex (labels are 0-based, contiguous).
  std::vector<std::uint32_t> component_labels() const;

  /// True if the graph has one component (or is empty).
  bool connected() const { return num_components() <= 1; }

  /// Induced subgraph on `nodes`; `nodes` must contain distinct vertex ids.
  /// Vertex i of the result corresponds to nodes[i].
  Graph induced_subgraph(const std::vector<NodeId>& nodes) const;

 private:
  std::vector<Edge> edges_;            // unique, u < v
  std::vector<std::size_t> degree_offset_;
  std::vector<Neighbour> adjacency_;
  double total_weight_ = 0.0;
};

}  // namespace specpart::graph
