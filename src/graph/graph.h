// Weighted undirected graphs.
//
// This is the representation spectral algorithms operate on: netlists
// (hypergraphs) are first expanded through a clique/star model (src/model)
// into a Graph, whose Laplacian eigenvectors drive every heuristic in the
// paper. The adjacency lives in the shared linalg::CsrStorage layout
// (linalg/csr.h), assembled by the counting-sort CsrAssembler — the same
// structure the Laplacian uses, so graph -> matrix conversion is an O(nnz)
// copy.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/csr.h"

namespace specpart::graph {

using NodeId = std::uint32_t;

/// One weighted undirected edge; endpoints are unordered.
struct Edge {
  NodeId u;
  NodeId v;
  double weight;
};

/// Immutable weighted undirected graph with CSR adjacency.
///
/// Construction merges parallel edges (weights summed in input order — the
/// assembler's stable-merge contract) and rejects self-loops (they never
/// arise from net models and have no effect on cuts).
class Graph {
 public:
  Graph() = default;

  /// Builds a graph on `num_nodes` vertices. Edges with u == v are dropped.
  /// Parallel edges are merged by summing weights.
  Graph(std::size_t num_nodes, const std::vector<Edge>& edges);

  /// Builds a graph from an assembler already loaded with this graph's
  /// edges (both directions, no self-loops). Finishes the assembly; the
  /// workspace stays reusable. This is the zero-copy entry point clique
  /// expansion and induced_subgraph stream into.
  Graph(std::size_t num_nodes, linalg::CsrAssembler& pending,
        const ParallelConfig& par = {});

  /// Adopts an already-assembled adjacency (sorted merged rows, both
  /// directions, no self-entries) — how a graph is recovered from a fused
  /// Laplacian without redoing the expansion.
  explicit Graph(linalg::CsrStorage adjacency);

  std::size_t num_nodes() const { return adjacency_.num_rows(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Weighted degree: sum of incident edge weights. O(1) — degrees are
  /// accumulated once at construction (in ascending neighbour order, the
  /// same order a row re-scan would use).
  double degree(NodeId v) const { return degree_[v]; }

  /// All weighted degrees, indexed by vertex.
  const std::vector<double>& degrees() const { return degree_; }

  /// Sum of all edge weights.
  double total_edge_weight() const { return total_weight_; }

  /// Unique edge list (u < v).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbour iteration: for vertex v, neighbours() spans
  /// [adjacency_begin(v), adjacency_end(v)) of (neighbour, weight) pairs.
  struct Neighbour {
    NodeId node;
    double weight;
  };
  std::size_t adjacency_begin(NodeId v) const {
    return adjacency_.offsets[v];
  }
  std::size_t adjacency_end(NodeId v) const {
    return adjacency_.offsets[v + 1];
  }
  Neighbour neighbour(std::size_t slot) const {
    return {adjacency_.cols[slot], adjacency_.values[slot]};
  }

  /// The adjacency in the shared CSR layout (columns sorted per row).
  const linalg::CsrStorage& adjacency_csr() const { return adjacency_; }

  /// Number of connected components.
  std::size_t num_components() const;

  /// Component label per vertex (labels are 0-based, contiguous).
  std::vector<std::uint32_t> component_labels() const;

  /// True if the graph has one component (or is empty).
  bool connected() const { return num_components() <= 1; }

  /// Induced subgraph on `nodes`; `nodes` must contain distinct vertex ids.
  /// Vertex i of the result corresponds to nodes[i].
  Graph induced_subgraph(const std::vector<NodeId>& nodes) const;

 private:
  /// Rebuilds edges_, degree_ and total_weight_ from adjacency_.
  void derive_from_adjacency();

  std::vector<Edge> edges_;  // unique, u < v, ascending (u, v)
  linalg::CsrStorage adjacency_;
  std::vector<double> degree_;
  double total_weight_ = 0.0;
};

}  // namespace specpart::graph
