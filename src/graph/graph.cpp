#include "graph/graph.h"

#include <algorithm>

#include "util/error.h"

namespace specpart::graph {

Graph::Graph(std::size_t num_nodes, const std::vector<Edge>& edges) {
  // Canonicalize into the shared assembler: drop self-loops, add both
  // directions. The counting sort orders rows, the stable merge sums
  // parallel edges in input order.
  linalg::CsrAssembler& ws = linalg::thread_assembly_workspace();
  ws.begin(num_nodes);
  ws.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    SP_ASSERT(e.u < num_nodes && e.v < num_nodes);
    if (e.u == e.v) continue;
    ws.add_edge(e.u, e.v, e.weight);
  }
  ws.finish(adjacency_);
  derive_from_adjacency();
}

Graph::Graph(std::size_t num_nodes, linalg::CsrAssembler& pending,
             const ParallelConfig& par) {
  pending.finish(adjacency_, par);
  SP_ASSERT(adjacency_.num_rows() == num_nodes);
  derive_from_adjacency();
}

Graph::Graph(linalg::CsrStorage adjacency) : adjacency_(std::move(adjacency)) {
  derive_from_adjacency();
}

void Graph::derive_from_adjacency() {
  const std::size_t n = adjacency_.num_rows();
  degree_.assign(n, 0.0);
  edges_.clear();
  edges_.reserve(adjacency_.nnz() / 2);
  total_weight_ = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    double d = 0.0;
    for (std::size_t s = adjacency_.offsets[v]; s < adjacency_.offsets[v + 1];
         ++s) {
      d += adjacency_.values[s];
      if (adjacency_.cols[s] > v) {
        edges_.push_back({static_cast<NodeId>(v), adjacency_.cols[s],
                          adjacency_.values[s]});
        total_weight_ += adjacency_.values[s];
      }
    }
    degree_[v] = d;
  }
}

std::vector<std::uint32_t> Graph::component_labels() const {
  const std::size_t n = num_nodes();
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::vector<NodeId> stack;
  std::uint32_t next = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (label[root] != UINT32_MAX) continue;
    label[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (std::size_t s = adjacency_begin(v); s < adjacency_end(v); ++s) {
        const NodeId u = adjacency_.cols[s];
        if (label[u] == UINT32_MAX) {
          label[u] = next;
          stack.push_back(u);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t Graph::num_components() const {
  const auto labels = component_labels();
  std::uint32_t max_label = 0;
  for (auto l : labels) max_label = std::max(max_label, l);
  return labels.empty() ? 0 : static_cast<std::size_t>(max_label) + 1;
}

Graph Graph::induced_subgraph(const std::vector<NodeId>& nodes) const {
  std::vector<std::uint32_t> remap(num_nodes(), UINT32_MAX);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    SP_ASSERT(nodes[i] < num_nodes());
    SP_REQUIRE(remap[nodes[i]] == UINT32_MAX,
               "induced_subgraph: duplicate vertex id");
    remap[nodes[i]] = static_cast<std::uint32_t>(i);
  }
  // Stream surviving edges straight into the workspace — no intermediate
  // edge vector.
  linalg::CsrAssembler& ws = linalg::thread_assembly_workspace();
  ws.begin(nodes.size());
  for (const Edge& e : edges_) {
    const std::uint32_t u = remap[e.u];
    const std::uint32_t v = remap[e.v];
    if (u != UINT32_MAX && v != UINT32_MAX) ws.add_edge(u, v, e.weight);
  }
  return Graph(nodes.size(), ws);
}

}  // namespace specpart::graph
