#include "graph/graph.h"

#include <algorithm>

#include "util/error.h"

namespace specpart::graph {

Graph::Graph(std::size_t num_nodes, const std::vector<Edge>& edges) {
  // Canonicalize: u < v, drop self-loops, then merge parallels.
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (Edge e : edges) {
    SP_ASSERT(e.u < num_nodes && e.v < num_nodes);
    if (e.u == e.v) continue;
    if (e.u > e.v) std::swap(e.u, e.v);
    canon.push_back(e);
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges_.reserve(canon.size());
  for (std::size_t i = 0; i < canon.size();) {
    std::size_t j = i;
    double w = 0.0;
    while (j < canon.size() && canon[j].u == canon[i].u &&
           canon[j].v == canon[i].v) {
      w += canon[j].weight;
      ++j;
    }
    edges_.push_back({canon[i].u, canon[i].v, w});
    total_weight_ += w;
    i = j;
  }

  // CSR adjacency over the merged edges (both directions).
  degree_offset_.assign(num_nodes + 1, 0);
  for (const Edge& e : edges_) {
    ++degree_offset_[e.u + 1];
    ++degree_offset_[e.v + 1];
  }
  for (std::size_t i = 0; i < num_nodes; ++i)
    degree_offset_[i + 1] += degree_offset_[i];
  adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(degree_offset_.begin(),
                                  degree_offset_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[cursor[e.u]++] = {e.v, e.weight};
    adjacency_[cursor[e.v]++] = {e.u, e.weight};
  }
}

double Graph::degree(NodeId v) const {
  double d = 0.0;
  for (std::size_t s = adjacency_begin(v); s < adjacency_end(v); ++s)
    d += adjacency_[s].weight;
  return d;
}

std::vector<std::uint32_t> Graph::component_labels() const {
  const std::size_t n = num_nodes();
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::vector<NodeId> stack;
  std::uint32_t next = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (label[root] != UINT32_MAX) continue;
    label[root] = next;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (std::size_t s = adjacency_begin(v); s < adjacency_end(v); ++s) {
        const NodeId u = adjacency_[s].node;
        if (label[u] == UINT32_MAX) {
          label[u] = next;
          stack.push_back(u);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t Graph::num_components() const {
  const auto labels = component_labels();
  std::uint32_t max_label = 0;
  for (auto l : labels) max_label = std::max(max_label, l);
  return labels.empty() ? 0 : static_cast<std::size_t>(max_label) + 1;
}

Graph Graph::induced_subgraph(const std::vector<NodeId>& nodes) const {
  std::vector<std::uint32_t> remap(num_nodes(), UINT32_MAX);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    SP_ASSERT(nodes[i] < num_nodes());
    SP_REQUIRE(remap[nodes[i]] == UINT32_MAX,
               "induced_subgraph: duplicate vertex id");
    remap[nodes[i]] = static_cast<std::uint32_t>(i);
  }
  std::vector<Edge> sub_edges;
  for (const Edge& e : edges_) {
    const std::uint32_t u = remap[e.u];
    const std::uint32_t v = remap[e.v];
    if (u != UINT32_MAX && v != UINT32_MAX)
      sub_edges.push_back({u, v, e.weight});
  }
  return Graph(nodes.size(), sub_edges);
}

}  // namespace specpart::graph
