// Hypergraphs (circuit netlists).
//
// A VLSI netlist is naturally a hypergraph: modules are vertices, signal
// nets are hyperedges over the modules they connect. All paper objectives
// that matter to a circuit designer (net cut, Scaled Cost) are evaluated on
// the hypergraph; the spectral machinery runs on a clique-model Graph
// derived from it (src/model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace specpart::graph {

using NetId = std::uint32_t;

/// Immutable hypergraph with pin lists and an inverse vertex -> nets index.
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Builds a hypergraph on `num_nodes` vertices from a list of nets
  /// (each net = list of pins = vertex ids). Duplicate pins within a net are
  /// merged; nets with fewer than 2 distinct pins are kept but never count
  /// as cut. `net_weights` is optional (empty = all 1.0).
  Hypergraph(std::size_t num_nodes, std::vector<std::vector<NodeId>> nets,
             std::vector<double> net_weights = {});

  std::size_t num_nodes() const { return node_nets_.size(); }
  std::size_t num_nets() const { return nets_.size(); }

  /// Total pin count (after duplicate-pin merging).
  std::size_t num_pins() const { return num_pins_; }

  const std::vector<NodeId>& net(NetId e) const { return nets_[e]; }
  double net_weight(NetId e) const { return net_weights_[e]; }

  /// Nets incident to vertex v.
  const std::vector<NetId>& nets_of(NodeId v) const { return node_nets_[v]; }

  /// Number of nets incident to vertex v.
  std::size_t node_degree(NodeId v) const { return node_nets_[v].size(); }

  /// Largest net size.
  std::size_t max_net_size() const;

  /// True when the hypergraph is connected (via shared nets).
  bool connected() const;

  /// Induced sub-hypergraph on `nodes` (distinct ids). Vertex i of the
  /// result corresponds to nodes[i]; only net fragments with >= 2 pins
  /// inside `nodes` survive. Used by recursive partitioners (RSB).
  Hypergraph induced(const std::vector<NodeId>& nodes) const;

  /// Strict variant: keeps only nets whose pins ALL lie inside `nodes`.
  /// This is the right sub-problem for pairwise k-way refinement — a net
  /// with pins in a third cluster is cut no matter how the pair's vertices
  /// move, so it must not bias the local optimizer.
  Hypergraph induced_strict(const std::vector<NodeId>& nodes) const;

  /// Optional vertex names (from netlist files); empty if unnamed.
  const std::vector<std::string>& node_names() const { return node_names_; }
  void set_node_names(std::vector<std::string> names);

 private:
  std::vector<std::vector<NodeId>> nets_;
  std::vector<double> net_weights_;
  std::vector<std::vector<NetId>> node_nets_;
  std::vector<std::string> node_names_;
  std::size_t num_pins_ = 0;
};

/// Views a plain graph as a hypergraph of 2-pin nets (weights preserved).
/// Lets graph-level users drive the netlist-oriented pipelines directly.
Hypergraph to_hypergraph(const Graph& g);

}  // namespace specpart::graph
