#include "graph/hypergraph.h"

#include <algorithm>

#include "util/error.h"

namespace specpart::graph {

Hypergraph::Hypergraph(std::size_t num_nodes,
                       std::vector<std::vector<NodeId>> nets,
                       std::vector<double> net_weights)
    : nets_(std::move(nets)), net_weights_(std::move(net_weights)) {
  if (net_weights_.empty()) net_weights_.assign(nets_.size(), 1.0);
  SP_REQUIRE(net_weights_.size() == nets_.size(),
             "hypergraph: net weight count mismatch");
  node_nets_.resize(num_nodes);
  for (NetId e = 0; e < nets_.size(); ++e) {
    auto& pins = nets_[e];
    for (NodeId v : pins) SP_ASSERT(v < num_nodes);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    num_pins_ += pins.size();
    for (NodeId v : pins) node_nets_[v].push_back(e);
  }
}

std::size_t Hypergraph::max_net_size() const {
  std::size_t m = 0;
  for (const auto& pins : nets_) m = std::max(m, pins.size());
  return m;
}

bool Hypergraph::connected() const {
  const std::size_t n = num_nodes();
  if (n <= 1) return true;
  std::vector<char> node_seen(n, 0);
  std::vector<char> net_seen(num_nets(), 0);
  std::vector<NodeId> stack{0};
  node_seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NetId e : node_nets_[v]) {
      if (net_seen[e]) continue;
      net_seen[e] = 1;
      for (NodeId u : nets_[e]) {
        if (!node_seen[u]) {
          node_seen[u] = 1;
          ++visited;
          stack.push_back(u);
        }
      }
    }
  }
  return visited == n;
}

namespace {

graph::Hypergraph induced_impl(const Hypergraph& h,
                               const std::vector<NodeId>& nodes,
                               bool strict) {
  std::vector<std::uint32_t> remap(h.num_nodes(), UINT32_MAX);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    SP_ASSERT(nodes[i] < h.num_nodes());
    SP_REQUIRE(remap[nodes[i]] == UINT32_MAX,
               "Hypergraph::induced: duplicate vertex id");
    remap[nodes[i]] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::vector<NodeId>> sub_nets;
  std::vector<double> sub_weights;
  std::vector<NodeId> fragment;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    fragment.clear();
    bool complete = true;
    for (NodeId v : h.net(e)) {
      if (remap[v] != UINT32_MAX)
        fragment.push_back(remap[v]);
      else
        complete = false;
    }
    if (strict && !complete) continue;
    if (fragment.size() >= 2) {
      sub_nets.push_back(fragment);
      sub_weights.push_back(h.net_weight(e));
    }
  }
  return Hypergraph(nodes.size(), std::move(sub_nets),
                    std::move(sub_weights));
}

}  // namespace

Hypergraph Hypergraph::induced(const std::vector<NodeId>& nodes) const {
  return induced_impl(*this, nodes, /*strict=*/false);
}

Hypergraph Hypergraph::induced_strict(const std::vector<NodeId>& nodes) const {
  return induced_impl(*this, nodes, /*strict=*/true);
}

void Hypergraph::set_node_names(std::vector<std::string> names) {
  SP_REQUIRE(names.empty() || names.size() == num_nodes(),
             "hypergraph: node name count mismatch");
  node_names_ = std::move(names);
}

Hypergraph to_hypergraph(const Graph& g) {
  std::vector<std::vector<NodeId>> nets;
  std::vector<double> weights;
  nets.reserve(g.num_edges());
  weights.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    nets.push_back({e.u, e.v});
    weights.push_back(e.weight);
  }
  return Hypergraph(g.num_nodes(), std::move(nets), std::move(weights));
}

}  // namespace specpart::graph
