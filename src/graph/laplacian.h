// Laplacian and adjacency matrices of weighted graphs.
//
// The Laplacian Q = D - A is the central object of the paper: its
// eigenvectors drive SB, RSB, KP, SFC and MELO, and trace(X^T Q X) equals
// the (doubled) cut of the partition encoded by assignment matrix X
// (Theorem 1). Graph and matrix share the CsrStorage layout, so every
// conversion here is a single O(nnz) copy pass — no triplets, no sorting.
#pragma once

#include "graph/graph.h"
#include "linalg/sparse.h"

namespace specpart::graph {

/// Builds the Laplacian Q = D - A as a symmetric sparse matrix. O(nnz):
/// copies the adjacency rows with negated values and splices the stored
/// weighted degree in at each diagonal's sorted position.
linalg::SymCsrMatrix build_laplacian(const Graph& g);

/// Builds the weighted adjacency matrix A. O(nnz) storage copy.
linalg::SymCsrMatrix build_adjacency(const Graph& g);

/// Recovers the graph underlying a Laplacian built by build_laplacian or
/// model::build_clique_laplacian: strips each row's diagonal and negates
/// the off-diagonals (exact in floating point), then re-derives edges and
/// degrees. O(nnz); requires every row to hold its diagonal entry.
Graph adjacency_graph(const linalg::SymCsrMatrix& laplacian);

}  // namespace specpart::graph
