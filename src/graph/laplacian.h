// Laplacian and adjacency matrices of weighted graphs.
//
// The Laplacian Q = D - A is the central object of the paper: its
// eigenvectors drive SB, RSB, KP, SFC and MELO, and trace(X^T Q X) equals
// the (doubled) cut of the partition encoded by assignment matrix X
// (Theorem 1).
#pragma once

#include "graph/graph.h"
#include "linalg/sparse.h"

namespace specpart::graph {

/// Builds the Laplacian Q = D - A as a symmetric sparse matrix.
linalg::SymCsrMatrix build_laplacian(const Graph& g);

/// Builds the weighted adjacency matrix A.
linalg::SymCsrMatrix build_adjacency(const Graph& g);

}  // namespace specpart::graph
