#include "graph/generator.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/rng.h"

namespace specpart::graph {

namespace {

/// Deterministic module -> (cluster, subcluster) layout shared by
/// generate_netlist and planted_clusters. Modules are dealt into clusters
/// contiguously with mildly jittered sizes.
struct Layout {
  std::vector<std::uint32_t> cluster_of;
  std::vector<std::uint32_t> subcluster_of;   // global subcluster index
  std::vector<std::vector<NodeId>> cluster_members;
  std::vector<std::vector<NodeId>> subcluster_members;
};

Layout make_layout(const GeneratorConfig& cfg, Rng& rng) {
  const std::size_t n = cfg.num_modules;
  // Clamp so every cluster can hold at least one module.
  const std::size_t c =
      std::max<std::size_t>(1, std::min(cfg.num_clusters, n));
  const std::size_t s = std::max<std::size_t>(1, cfg.subclusters_per_cluster);

  // Jittered proportional cluster sizes that sum to n.
  std::vector<double> jitter(c);
  double total = 0.0;
  for (double& j : jitter) {
    j = 0.8 + 0.4 * rng.next_double();
    total += j;
  }
  std::vector<std::size_t> cluster_size(c, 0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < c; ++i) {
    cluster_size[i] = std::max<std::size_t>(
        1, static_cast<std::size_t>(jitter[i] / total * static_cast<double>(n)));
    assigned += cluster_size[i];
  }
  // Fix rounding drift onto the largest clusters.
  while (assigned < n) {
    ++cluster_size[rng.next_below(c)];
    ++assigned;
  }
  while (assigned > n) {
    const std::size_t i = rng.next_below(c);
    if (cluster_size[i] > 1) {
      --cluster_size[i];
      --assigned;
    }
  }

  Layout layout;
  layout.cluster_of.resize(n);
  layout.subcluster_of.resize(n);
  layout.cluster_members.resize(c);
  layout.subcluster_members.resize(c * s);
  NodeId next = 0;
  for (std::size_t ci = 0; ci < c; ++ci) {
    const std::size_t size = cluster_size[ci];
    for (std::size_t j = 0; j < size; ++j) {
      const NodeId v = next++;
      layout.cluster_of[v] = static_cast<std::uint32_t>(ci);
      // Deal members into subclusters round-robin so subcluster sizes are
      // balanced inside the cluster.
      const std::size_t sub = ci * s + j % s;
      layout.subcluster_of[v] = static_cast<std::uint32_t>(sub);
      layout.cluster_members[ci].push_back(v);
      layout.subcluster_members[sub].push_back(v);
    }
  }
  SP_ASSERT(next == n);
  return layout;
}

/// Samples `count` distinct vertices from `pool` (uniform, rejection-based;
/// count is at most a small fanout so this is fast).
void sample_distinct(const std::vector<NodeId>& pool, std::size_t count,
                     Rng& rng, std::vector<NodeId>& out) {
  out.clear();
  SP_ASSERT(count <= pool.size());
  if (count > pool.size() / 2) {
    // Dense draw: shuffle a copy and take a prefix.
    std::vector<NodeId> copy = pool;
    rng.shuffle(copy);
    out.assign(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(count));
    return;
  }
  while (out.size() < count) {
    const NodeId v = pool[rng.next_below(pool.size())];
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
}

std::size_t draw_net_size(const GeneratorConfig& cfg, Rng& rng) {
  std::size_t size = 2;
  while (size < cfg.max_net_size && rng.next_double() > cfg.net_size_tail)
    ++size;
  return size;
}

/// Union-find for the connectivity repair pass.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

Hypergraph generate_netlist(const GeneratorConfig& cfg) {
  SP_CHECK_INPUT(cfg.num_modules >= 2, "generator: need at least 2 modules");
  SP_CHECK_INPUT(cfg.p_subcluster >= 0.0 && cfg.p_cluster >= 0.0 &&
                     cfg.p_subcluster + cfg.p_cluster <= 1.0,
                 "generator: scope probabilities must be a sub-distribution");
  Rng rng(cfg.seed);
  const Layout layout = make_layout(cfg, rng);
  const std::size_t n = cfg.num_modules;

  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), 0u);

  std::vector<std::vector<NodeId>> nets;
  nets.reserve(cfg.num_nets + 16);
  std::vector<NodeId> pins;
  for (std::size_t e = 0; e < cfg.num_nets; ++e) {
    const double scope_draw = rng.next_double();
    const std::vector<NodeId>* pool = &all;
    if (scope_draw < cfg.p_subcluster) {
      const auto& sub = layout.subcluster_members[rng.next_below(
          layout.subcluster_members.size())];
      if (sub.size() >= 2) pool = &sub;
    } else if (scope_draw < cfg.p_subcluster + cfg.p_cluster) {
      const auto& cl =
          layout.cluster_members[rng.next_below(layout.cluster_members.size())];
      if (cl.size() >= 2) pool = &cl;
    }
    const std::size_t size = std::min(draw_net_size(cfg, rng), pool->size());
    sample_distinct(*pool, std::max<std::size_t>(2, size), rng, pins);
    nets.push_back(pins);
  }

  // Repair connectivity: link every stray component to component 0 with a
  // 2-pin net between random representatives.
  UnionFind uf(n);
  for (const auto& net : nets)
    for (std::size_t i = 1; i < net.size(); ++i) uf.unite(net[0], net[i]);
  std::vector<NodeId> representative;
  std::vector<char> seen_root(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t root = uf.find(v);
    if (!seen_root[root]) {
      seen_root[root] = 1;
      representative.push_back(v);
    }
  }
  for (std::size_t i = 1; i < representative.size(); ++i) {
    nets.push_back({representative[0], representative[i]});
    uf.unite(representative[0], representative[i]);
  }

  return Hypergraph(n, std::move(nets));
}

std::vector<std::uint32_t> planted_clusters(const GeneratorConfig& cfg) {
  Rng rng(cfg.seed);
  return make_layout(cfg, rng).cluster_of;
}

}  // namespace specpart::graph
