// Synthetic circuit netlist generator.
//
// The ACM/SIGDA benchmarks the paper evaluates on are no longer obtainable,
// so the experiment suite substitutes deterministic synthetic netlists with
// the properties spectral partitioners respond to (see DESIGN.md §4):
//
//  * a two-level planted cluster hierarchy (top clusters made of
//    subclusters), so there are "natural" partitions at several k;
//  * mostly-local nets (drawn inside a subcluster or cluster) plus a global
//    fraction, mirroring real Rent-style locality;
//  * a realistic net-size distribution: most nets have 2-3 pins with a
//    geometric tail, capped at a maximum fanout.
//
// Identical configs generate identical hypergraphs on every platform.
#pragma once

#include <cstdint>
#include <string>

#include "graph/hypergraph.h"

namespace specpart::graph {

/// Parameters of one synthetic netlist.
struct GeneratorConfig {
  std::string name = "synthetic";
  std::size_t num_modules = 1000;
  std::size_t num_nets = 1100;
  /// Top-level planted clusters (the "natural" k-way structure).
  std::size_t num_clusters = 8;
  /// Subclusters inside each top-level cluster (structure at larger k).
  std::size_t subclusters_per_cluster = 4;
  /// Probability a net is drawn inside a single subcluster.
  double p_subcluster = 0.45;
  /// Probability a net is drawn inside a single top-level cluster
  /// (possibly spanning its subclusters). The remainder is global.
  double p_cluster = 0.35;
  /// Net size = 2 + Geometric(net_size_tail); larger tail = smaller nets.
  double net_size_tail = 0.55;
  std::size_t max_net_size = 16;
  std::uint64_t seed = 1;
};

/// Generates the netlist. The result is always connected (extra 2-pin nets
/// are appended if the random draw leaves components; this preserves the
/// configured net count only approximately, matching real benchmarks where
/// pin/net counts are idiosyncratic anyway).
Hypergraph generate_netlist(const GeneratorConfig& config);

/// The planted top-level cluster of every module, for tests that check
/// partitioners recover planted structure. Same assignment the generator
/// used for `config`.
std::vector<std::uint32_t> planted_clusters(const GeneratorConfig& config);

}  // namespace specpart::graph
