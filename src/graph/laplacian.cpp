#include "graph/laplacian.h"

namespace specpart::graph {

linalg::SymCsrMatrix build_laplacian(const Graph& g) {
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(g.num_edges() + g.num_nodes());
  for (const Edge& e : g.edges())
    triplets.push_back({e.u, e.v, -e.weight});
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    triplets.push_back({v, v, g.degree(v)});
  return linalg::SymCsrMatrix(g.num_nodes(), triplets);
}

linalg::SymCsrMatrix build_adjacency(const Graph& g) {
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(g.num_edges());
  for (const Edge& e : g.edges()) triplets.push_back({e.u, e.v, e.weight});
  return linalg::SymCsrMatrix(g.num_nodes(), triplets);
}

}  // namespace specpart::graph
