#include "graph/laplacian.h"

#include <utility>

#include "util/error.h"

namespace specpart::graph {

linalg::SymCsrMatrix build_laplacian(const Graph& g) {
  const linalg::CsrStorage& adj = g.adjacency_csr();
  const std::size_t n = g.num_nodes();
  linalg::CsrStorage q;
  q.offsets.resize(n + 1);
  q.offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i)
    q.offsets[i + 1] = q.offsets[i] + (adj.row_end(i) - adj.row_begin(i)) + 1;
  q.cols.resize(q.offsets[n]);
  q.values.resize(q.offsets[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t w = q.offsets[i];
    std::size_t k = adj.row_begin(i);
    for (; k < adj.row_end(i) && adj.cols[k] < i; ++k) {
      q.cols[w] = adj.cols[k];
      q.values[w] = -adj.values[k];
      ++w;
    }
    q.cols[w] = static_cast<std::uint32_t>(i);
    q.values[w] = g.degree(static_cast<NodeId>(i));
    ++w;
    for (; k < adj.row_end(i); ++k) {
      q.cols[w] = adj.cols[k];
      q.values[w] = -adj.values[k];
      ++w;
    }
  }
  return linalg::SymCsrMatrix(std::move(q));
}

linalg::SymCsrMatrix build_adjacency(const Graph& g) {
  return linalg::SymCsrMatrix(linalg::CsrStorage(g.adjacency_csr()));
}

Graph adjacency_graph(const linalg::SymCsrMatrix& laplacian) {
  const linalg::CsrStorage& q = laplacian.csr();
  const std::size_t n = q.num_rows();
  linalg::CsrStorage adj;
  adj.offsets.resize(n + 1);
  adj.offsets[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = q.row_end(i) - q.row_begin(i);
    SP_ASSERT(len >= 1);  // every Laplacian row stores its diagonal
    adj.offsets[i + 1] = adj.offsets[i] + len - 1;
  }
  adj.cols.resize(adj.offsets[n]);
  adj.values.resize(adj.offsets[n]);
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = q.row_begin(i); k < q.row_end(i); ++k) {
      if (q.cols[k] == i) continue;
      adj.cols[w] = q.cols[k];
      adj.values[w] = -q.values[k];  // negation is exact: same bits as A
      ++w;
    }
  }
  return Graph(std::move(adj));
}

}  // namespace specpart::graph
