// Netlist file I/O.
//
// The paper's experiments run on the ACM/SIGDA benchmark netlists. Those
// files are no longer distributable, so the default experiment suite is
// synthetic (generator.h) — but these parsers let real benchmarks drop in:
//
//  * hMETIS `.hgr` — the de-facto standard hypergraph exchange format.
//    First line: "<#nets> <#vertices> [fmt]"; one net per line of 1-based
//    vertex ids; fmt 1 / 10 / 11 toggle net / vertex weights.
//  * ACM/SIGDA `.netD`/`.net` — the original benchmark pin-list format.
//    Header: five lines (ignored pad offset etc.); then one line per pin:
//    "<module> <s|l|...> <I|O|B>" where 's' opens a new net. Module names
//    `a<k>` are cells and `p<k>` are pads; both become vertices.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/hypergraph.h"
#include "util/status.h"

namespace specpart::graph {

/// Parses hMETIS .hgr text. Throws specpart::Error on malformed input:
/// overflowing or allocation-scale header counts, out-of-range pins, nets
/// missing relative to the header, and trailing garbage after the declared
/// net (and vertex-weight) lines are all rejected with precise messages.
/// Recovered anomalies — duplicate pins within a net (merged) — are
/// reported through the optional `diag` sink.
Hypergraph read_hgr(std::istream& in, Diagnostics* diag = nullptr);
Hypergraph read_hgr_file(const std::string& path, Diagnostics* diag = nullptr);

/// Serializes to hMETIS .hgr (with net weights iff any differ from 1).
void write_hgr(const Hypergraph& h, std::ostream& out);
void write_hgr_file(const Hypergraph& h, const std::string& path);

/// Parses ACM/SIGDA .netD/.net pin-list text. Vertex names are preserved
/// (query via Hypergraph::node_names()). Throws specpart::Error on
/// malformed input.
Hypergraph read_netd(std::istream& in);
Hypergraph read_netd_file(const std::string& path);

/// Serializes to ACM/SIGDA .netD pin-list form. Vertices without stored
/// names are emitted as a<index>. Round-trips through read_netd.
void write_netd(const Hypergraph& h, std::ostream& out);
void write_netd_file(const Hypergraph& h, const std::string& path);

/// Writes a partition as one cluster id per line (vertex order), the format
/// understood by hMETIS/KaHyPar evaluation tools.
void write_partition(const std::vector<std::uint32_t>& assignment,
                     std::ostream& out);
void write_partition_file(const std::vector<std::uint32_t>& assignment,
                          const std::string& path);

}  // namespace specpart::graph
