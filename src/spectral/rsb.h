// Recursive spectral bipartitioning (RSB).
//
// The multi-way baseline from [25] as the paper runs it: "RSB constructs
// ratio cut bipartitionings by choosing the best of all splits of the
// Fiedler vector, and the algorithm is iteratively applied to the largest
// remaining cluster" until k clusters exist. Each recursion re-expands the
// induced sub-netlist through the clique model and recomputes the Fiedler
// vector of the subgraph.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/partition.h"

namespace specpart::spectral {

struct RsbOptions {
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Guard against degenerate one-vertex shavings: each side of every
  /// recursive split must hold at least this fraction of the sub-netlist.
  double min_fraction = 0.0;
  std::uint64_t seed = 0xCAB00D1EULL;
};

/// Partitions `h` into k clusters by recursive spectral bipartitioning.
/// Requires 2 <= k <= num_nodes.
part::Partition rsb_partition(const graph::Hypergraph& h, std::uint32_t k,
                              const RsbOptions& opts);

}  // namespace specpart::spectral
