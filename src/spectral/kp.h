// KP — the spectral k-way ratio-cut heuristic of Chan, Schlag and Zien [10].
//
// Embeds vertex v_i as the i-th row of the n-by-k matrix of the k lowest
// Laplacian eigenvectors and treats each embedded vertex as a *vector*
// (not a point): the similarity between two vertices is the directional
// cosine between their vectors. k "cluster center prototype" vectors are
// selected to be mutually as un-aligned as possible, and every vertex joins
// the prototype with the largest cosine. This is the k-eigenvectors-for-
// k-clusters philosophy the paper argues against — it appears here as the
// Table 4 baseline.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/partition.h"

namespace specpart::spectral {

struct KpOptions {
  /// The paper found KP works best with the Frankle net model; that is the
  /// default used in Table 4.
  model::NetModel net_model = model::NetModel::kFrankle;
  /// Include the trivial (constant) eigenvector as the first coordinate,
  /// as in [10]'s k-lowest-eigenvectors formulation.
  bool include_trivial = true;
  std::uint64_t seed = 0xC5A1ULL;
};

/// Partitions `h` into k clusters with the KP directional-cosine heuristic.
part::Partition kp_partition(const graph::Hypergraph& h, std::uint32_t k,
                             const KpOptions& opts);

}  // namespace specpart::spectral
