#include "spectral/sfc.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace specpart::spectral {

namespace {

/// Skilling's AxesToTranspose: converts lattice coordinates (bits each) to
/// the Hilbert-curve "transpose" representation in place.
void axes_to_transpose(std::vector<std::uint32_t>& x, unsigned bits) {
  const std::size_t d = x.size();
  if (d == 0 || bits == 0) return;
  const std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (std::size_t i = 0; i < d; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < d; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[d - 1] & q) t ^= q - 1;
  for (std::size_t i = 0; i < d; ++i) x[i] ^= t;
}

/// Interleaves d coordinate words of `bits` bits each (MSB first) into a
/// single 128-bit key. The transpose representation interleaved this way IS
/// the Hilbert index.
unsigned __int128 interleave(const std::vector<std::uint32_t>& x,
                             unsigned bits) {
  const std::size_t d = x.size();
  SP_REQUIRE(static_cast<std::size_t>(bits) * d <= 128,
             "spacefilling curve: d * bits exceeds 128-bit key");
  unsigned __int128 key = 0;
  for (unsigned b = bits; b-- > 0;) {
    for (std::size_t i = 0; i < d; ++i) {
      key = (key << 1) | ((x[i] >> b) & 1u);
    }
  }
  return key;
}

}  // namespace

unsigned __int128 hilbert_index(std::vector<std::uint32_t> coords,
                                unsigned bits) {
  axes_to_transpose(coords, bits);
  return interleave(coords, bits);
}

unsigned __int128 morton_index(const std::vector<std::uint32_t>& coords,
                               unsigned bits) {
  return interleave(coords, bits);
}

part::Ordering curve_ordering(const linalg::DenseMatrix& embedding,
                              CurveKind curve) {
  const std::size_t n = embedding.rows();
  const std::size_t d = std::max<std::size_t>(1, embedding.cols());
  const unsigned bits =
      static_cast<unsigned>(std::min<std::size_t>(16, 128 / d));

  // Normalize each coordinate to [0, 2^bits) over its observed range.
  std::vector<double> lo(d, 0.0), hi(d, 0.0);
  for (std::size_t j = 0; j < embedding.cols(); ++j) {
    lo[j] = hi[j] = embedding.at(0, j);
    for (std::size_t i = 1; i < n; ++i) {
      lo[j] = std::min(lo[j], embedding.at(i, j));
      hi[j] = std::max(hi[j], embedding.at(i, j));
    }
  }
  const double max_coord = static_cast<double>((1u << bits) - 1);
  std::vector<unsigned __int128> keys(n);
  std::vector<std::uint32_t> coords(d, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < embedding.cols(); ++j) {
      const double span = hi[j] - lo[j];
      const double unit =
          span > 0.0 ? (embedding.at(i, j) - lo[j]) / span : 0.5;
      coords[j] = static_cast<std::uint32_t>(unit * max_coord + 0.5);
    }
    keys[i] = curve == CurveKind::kHilbert
                  ? hilbert_index(coords, bits)
                  : morton_index(coords, bits);
  }

  part::Ordering order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return a < b;
            });
  return order;
}

part::Ordering sfc_ordering(const graph::Hypergraph& h,
                            const SfcOptions& opts) {
  const graph::Graph g = model::clique_expand(h, opts.net_model);
  EmbeddingOptions eopts;
  eopts.count = opts.dimensions;
  eopts.skip_trivial = true;
  eopts.seed = opts.seed;
  const EigenBasis basis = compute_eigenbasis(g, eopts);
  return curve_ordering(basis.vectors, opts.curve);
}

}  // namespace specpart::spectral
