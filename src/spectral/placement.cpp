#include "spectral/placement.h"

#include "spectral/embedding.h"
#include "util/error.h"

namespace specpart::spectral {

double quadratic_wirelength(const graph::Graph& g,
                            const linalg::DenseMatrix& coords) {
  SP_ASSERT(coords.rows() == g.num_nodes());
  double total = 0.0;
  for (const graph::Edge& e : g.edges()) {
    double dist_sq = 0.0;
    for (std::size_t j = 0; j < coords.cols(); ++j) {
      const double delta = coords.at(e.u, j) - coords.at(e.v, j);
      dist_sq += delta * delta;
    }
    total += e.weight * dist_sq;
  }
  return total;
}

Placement hall_placement(const graph::Graph& g, const PlacementOptions& opts) {
  SP_CHECK_INPUT(g.num_nodes() >= 2, "hall_placement: need >= 2 vertices");
  EmbeddingOptions eopts;
  eopts.count = opts.dimensions;
  eopts.skip_trivial = true;  // the constant vector places everything at 0
  eopts.seed = opts.seed;
  const EigenBasis basis = compute_eigenbasis(g, eopts);
  Placement p;
  p.coords = basis.vectors;
  p.quadratic_wirelength = quadratic_wirelength(g, p.coords);
  return p;
}

Placement hall_placement(const graph::Hypergraph& h,
                         const PlacementOptions& opts) {
  return hall_placement(model::clique_expand(h, opts.net_model), opts);
}

}  // namespace specpart::spectral
