#include "spectral/fkprobe.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "part/objectives.h"
#include "part/ordering.h"
#include "spectral/embedding.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::spectral {

FkProbeResult fk_probe_bipartition(const graph::Hypergraph& h,
                                   const FkProbeOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(n >= 2, "fk_probe: need at least 2 vertices");

  const graph::Graph g = model::clique_expand(h, opts.net_model);
  EmbeddingOptions eopts;
  eopts.count = opts.dimensions;
  eopts.skip_trivial = true;
  eopts.seed = opts.seed;
  const EigenBasis basis = compute_eigenbasis(g, eopts);
  const std::size_t d = basis.dimension();

  Rng rng(opts.seed);
  FkProbeResult best;
  double best_objective = std::numeric_limits<double>::infinity();
  bool have = false;
  for (std::size_t probe = 0;
       probe < std::max<std::size_t>(1, opts.num_probes); ++probe) {
    // Random probe direction; per-vertex scores s_i = y_i . r.
    linalg::Vec r(d);
    for (double& x : r) x = rng.next_normal();
    std::vector<double> score(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < d; ++j)
        score[i] += basis.vectors.at(i, j) * r[j];

    // The maximal-projection indicator for every prefix size is the top-m
    // scorers, so sorting gives all n candidates at once.
    part::Ordering order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                if (score[a] != score[b]) return score[a] > score[b];
                return a < b;
              });

    const part::SplitResult split =
        opts.min_fraction > 0.0
            ? part::best_min_cut_split(h, order, opts.min_fraction)
            : part::best_ratio_cut_split(h, order);
    if (!split.feasible) continue;
    if (!have || split.objective < best_objective) {
      have = true;
      best_objective = split.objective;
      best.partition = part::split_to_partition(order, split.split);
      best.cut = split.cut;
    }
  }
  SP_CHECK_INPUT(have, "fk_probe: no probe produced a feasible split");
  return best;
}

}  // namespace specpart::spectral
