// Spectral bipartitioning (SB) — the classic single-eigenvector heuristic.
//
// Sorts vertices by their Fiedler-vector entry (second-smallest Laplacian
// eigenvector of the clique-model graph) and splits the resulting linear
// ordering, either at the best ratio-cut point over all splits (the RSB
// setting) or at the minimum cut subject to a balance constraint (the
// Table 5 setting). MELO with d = 1 non-trivial eigenvector degenerates to
// exactly this ordering, which is the sense in which MELO extends SB.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/ordering.h"
#include "part/partition.h"

namespace specpart::spectral {

struct SbOptions {
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// 0 = ratio-cut best split over all prefixes; > 0 = min-cut split with
  /// both sides >= min_fraction * n (paper Table 5: 0.45).
  double min_fraction = 0.0;
  std::uint64_t seed = 0xFACADEULL;
};

struct SbResult {
  part::Ordering ordering;
  part::SplitResult split;
  part::Partition partition;
  /// lambda_2 of the clique-model Laplacian (algebraic connectivity).
  double fiedler_value = 0.0;
};

/// The Fiedler ordering of a graph: vertices sorted by their entry in the
/// second-smallest Laplacian eigenvector (ties broken by vertex id).
part::Ordering fiedler_ordering(const graph::Graph& g, std::uint64_t seed,
                                double* fiedler_value = nullptr);

/// Full SB pipeline on a netlist: clique-expand, Fiedler ordering, split.
SbResult spectral_bipartition(const graph::Hypergraph& h,
                              const SbOptions& opts);

}  // namespace specpart::spectral
