#include "spectral/dprp.h"

#include <algorithm>
#include <limits>

#include "part/objectives.h"
#include "util/error.h"

namespace specpart::spectral {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Filled DP state: dp[h][j] = best sum of E/|C| using h clusters over the
/// first j positions of the ordering; parent[h][j] = the split point i
/// achieving it. Valid for every h <= k simultaneously.
struct DpTables {
  std::vector<std::vector<double>> dp;
  std::vector<std::vector<std::uint32_t>> parent;
};

/// Fixed number of start-position blocks per DP level on the parallel
/// path. Independent of the thread count (determinism contract).
constexpr std::size_t kDpBlocks = 16;

/// Sweeps start positions [i_begin, i_end) of one DP level, accumulating
/// the best candidate per end position j into cur/parent (strict
/// improvement, so the earliest i wins ties — the serial semantics).
void sweep_level(const graph::Hypergraph& h, const part::Ordering& o,
                 std::size_t n, std::size_t lo, std::size_t hi,
                 const std::vector<double>& prev, std::size_t i_begin,
                 std::size_t i_end, std::vector<std::uint32_t>& inside,
                 std::vector<graph::NetId>& touched, std::vector<double>& cur,
                 std::vector<std::uint32_t>& parent) {
  for (std::size_t i = i_begin; i < i_end; ++i) {
    if (prev[i] == kInf) continue;
    // Incremental sweep: grow segment [i, j) one vertex at a time.
    touched.clear();
    double cut = 0.0;
    const std::size_t j_end = std::min(n, i + hi);
    for (std::size_t j = i + 1; j <= j_end; ++j) {
      const graph::NodeId v = o[j - 1];
      for (graph::NetId e : h.nets_of(v)) {
        const std::size_t size = h.net(e).size();
        if (size < 2) continue;
        const std::uint32_t before = inside[e]++;
        if (before == 0) {
          cut += h.net_weight(e);
          touched.push_back(e);
        }
        if (before + 1 == size) cut -= h.net_weight(e);
      }
      const std::size_t len = j - i;
      if (len < lo) continue;
      const double candidate = prev[i] + cut / static_cast<double>(len);
      if (candidate < cur[j]) {
        cur[j] = candidate;
        parent[j] = static_cast<std::uint32_t>(i);
      }
    }
    for (graph::NetId e : touched) inside[e] = 0;
  }
}

DpTables fill_tables(const graph::Hypergraph& h, const part::Ordering& o,
                     std::uint32_t k, std::size_t lo, std::size_t hi,
                     const ParallelConfig& par) {
  const std::size_t n = h.num_nodes();
  DpTables t;
  t.dp.assign(k + 1, std::vector<double>(n + 1, kInf));
  t.parent.assign(k + 1, std::vector<std::uint32_t>(n + 1, 0));
  t.dp[0][0] = 0.0;

  std::vector<std::uint32_t> inside(h.num_nets(), 0);
  std::vector<graph::NetId> touched;

  for (std::uint32_t level = 1; level <= k; ++level) {
    auto& cur = t.dp[level];
    auto& parent = t.parent[level];
    const auto& prev = t.dp[level - 1];
    const std::size_t i_begin = (level - 1) * lo;
    const std::size_t i_end = n >= lo ? n - lo + 1 : 0;
    if (i_begin >= i_end) continue;
    const std::size_t range = i_end - i_begin;

    if (par.serial() || range < 2 * kDpBlocks) {
      sweep_level(h, o, n, lo, hi, prev, i_begin, i_end, inside, touched,
                  cur, parent);
      continue;
    }

    // Parallel path: fixed i-blocks with private cur/parent/scratch, merged
    // by strict improvement in ascending block order. A smaller i beats an
    // equal-cost larger i exactly as in the serial sweep, so the tables —
    // values AND parents — are bit-identical for any thread count.
    struct Local {
      std::vector<double> cur;
      std::vector<std::uint32_t> parent;
    };
    ParallelConfig blocks = par;
    blocks.grain = (range + kDpBlocks - 1) / kDpBlocks;
    parallel_reduce<Local>(
        blocks, i_begin, i_end, Local{},
        [&](std::size_t block_lo, std::size_t block_hi) {
          Local local;
          local.cur.assign(n + 1, kInf);
          local.parent.assign(n + 1, 0);
          std::vector<std::uint32_t> local_inside(h.num_nets(), 0);
          std::vector<graph::NetId> local_touched;
          sweep_level(h, o, n, lo, hi, prev, block_lo, block_hi,
                      local_inside, local_touched, local.cur, local.parent);
          return local;
        },
        [&](Local, Local block) {
          for (std::size_t j = 0; j <= n; ++j) {
            if (block.cur[j] < cur[j]) {
              cur[j] = block.cur[j];
              parent[j] = block.parent[j];
            }
          }
          return Local{};
        });
  }
  return t;
}

DprpResult reconstruct(const graph::Hypergraph& h, const part::Ordering& o,
                       const DpTables& t, std::uint32_t k) {
  const std::size_t n = h.num_nodes();
  DprpResult result;
  if (t.dp[k][n] == kInf) return result;  // feasible stays false
  result.feasible = true;
  result.boundaries.assign(k + 1, 0);
  result.boundaries[k] = n;
  for (std::uint32_t level = k; level >= 1; --level)
    result.boundaries[level - 1] = t.parent[level][result.boundaries[level]];
  std::vector<std::uint32_t> assignment(n, 0);
  for (std::uint32_t c = 0; c < k; ++c)
    for (std::size_t pos = result.boundaries[c];
         pos < result.boundaries[c + 1]; ++pos)
      assignment[o[pos]] = c;
  result.partition = part::Partition(std::move(assignment), k);
  result.scaled_cost = part::scaled_cost(h, result.partition);
  return result;
}

void validate(const graph::Hypergraph& h, const part::Ordering& o,
              const DprpOptions& opts, std::size_t* lo, std::size_t* hi) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(opts.k >= 2, "DP-RP: need k >= 2");
  SP_REQUIRE(part::is_permutation(o, n), "DP-RP: ordering not a permutation");
  *lo = std::max<std::size_t>(1, opts.min_cluster_size);
  *hi = opts.max_cluster_size == 0 ? n : opts.max_cluster_size;
  SP_CHECK_INPUT(*lo <= *hi, "DP-RP: min cluster size exceeds max");
}

}  // namespace

DprpResult dprp_split(const graph::Hypergraph& h, const part::Ordering& o,
                      const DprpOptions& opts) {
  std::size_t lo = 0, hi = 0;
  validate(h, o, opts, &lo, &hi);
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(opts.k * lo <= n && opts.k * hi >= n,
                 "DP-RP: size bounds admit no k-way split");
  const DpTables tables = fill_tables(h, o, opts.k, lo, hi, opts.parallel);
  DprpResult result = reconstruct(h, o, tables, opts.k);
  SP_CHECK_INPUT(result.feasible, "DP-RP: no feasible restricted partition");
  return result;
}

std::vector<DprpResult> dprp_all_k(const graph::Hypergraph& h,
                                   const part::Ordering& o,
                                   const DprpOptions& opts) {
  std::size_t lo = 0, hi = 0;
  validate(h, o, opts, &lo, &hi);
  const DpTables tables = fill_tables(h, o, opts.k, lo, hi, opts.parallel);
  std::vector<DprpResult> results;
  results.reserve(opts.k - 1);
  for (std::uint32_t k = 2; k <= opts.k; ++k)
    results.push_back(reconstruct(h, o, tables, k));
  return results;
}

}  // namespace specpart::spectral
