#include "spectral/kp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "spectral/embedding.h"
#include "util/error.h"

namespace specpart::spectral {

namespace {

double cosine(const linalg::Vec& a, const linalg::Vec& b) {
  const double na = linalg::norm(a);
  const double nb = linalg::norm(b);
  if (na <= 1e-300 || nb <= 1e-300) return 0.0;
  return linalg::dot(a, b) / (na * nb);
}

}  // namespace

part::Partition kp_partition(const graph::Hypergraph& h, std::uint32_t k,
                             const KpOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(k >= 2 && k <= n, "KP: need 2 <= k <= n");

  const graph::Graph g = model::clique_expand(h, opts.net_model);
  EmbeddingOptions eopts;
  eopts.count = k;
  eopts.skip_trivial = !opts.include_trivial;
  eopts.seed = opts.seed;
  const EigenBasis basis = compute_eigenbasis(g, eopts);
  const std::size_t d = basis.dimension();
  SP_REQUIRE(d >= 2, "KP: embedding has too few eigenvectors");

  std::vector<linalg::Vec> y(n);
  for (graph::NodeId v = 0; v < n; ++v) y[v] = basis.vectors.row(v);

  // Prototype selection: start from the longest vertex vector, then
  // greedily add the vertex whose vector minimizes the maximum cosine to
  // the prototypes chosen so far (mutually most un-aligned directions).
  std::vector<graph::NodeId> prototypes;
  {
    graph::NodeId first = 0;
    double best_norm = -1.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const double len = linalg::norm(y[v]);
      if (len > best_norm) {
        best_norm = len;
        first = v;
      }
    }
    prototypes.push_back(first);
  }
  while (prototypes.size() < k) {
    graph::NodeId best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (graph::NodeId v = 0; v < n; ++v) {
      if (std::find(prototypes.begin(), prototypes.end(), v) !=
          prototypes.end())
        continue;
      double worst = -std::numeric_limits<double>::infinity();
      for (graph::NodeId p : prototypes)
        worst = std::max(worst, cosine(y[v], y[p]));
      // Prefer longer vectors among equally un-aligned candidates.
      const double score = worst - 1e-9 * linalg::norm(y[v]);
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    prototypes.push_back(best);
  }

  // Assignment: each vertex joins the prototype with the largest cosine.
  part::Partition p(n, k);
  for (graph::NodeId v = 0; v < n; ++v) {
    std::uint32_t best_c = 0;
    double best_cos = -std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < k; ++c) {
      const double cs = cosine(y[v], y[prototypes[c]]);
      if (cs > best_cos) {
        best_cos = cs;
        best_c = c;
      }
    }
    p.assign(v, best_c);
  }
  // Prototypes anchor their own clusters, so none can be empty.
  for (std::uint32_t c = 0; c < k; ++c) p.assign(prototypes[c], c);
  return p;
}

}  // namespace specpart::spectral
