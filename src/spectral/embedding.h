// Spectral embedding driver: Laplacian eigenpairs of a graph.
//
// Chooses between the exact dense solver (small graphs, test oracles) and
// Lanczos (everything else), with automatic retry at a larger Krylov
// dimension if the first attempt does not converge. All spectral heuristics
// (SB, RSB, KP, SFC, MELO) get their eigenvectors from here.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "linalg/dense.h"

namespace specpart::spectral {

struct EmbeddingOptions {
  /// Number of eigenpairs to return, counted from the smallest eigenvalue
  /// (the first pair of a connected graph is the trivial lambda = 0 /
  /// constant-vector pair).
  std::size_t count = 2;
  /// Drop the trivial first pair and return the `count` pairs after it.
  bool skip_trivial = false;
  /// Use the exact dense solver when n <= dense_threshold.
  std::size_t dense_threshold = 320;
  double tolerance = 1e-8;
  std::uint64_t seed = 0xABCDEFULL;
};

/// Eigenpairs of the Laplacian plus the invariants MELO's H-selection needs.
struct EigenBasis {
  /// Eigenvalues, ascending. values[j] pairs with column j of vectors.
  linalg::Vec values;
  /// n x d matrix; column j is a unit eigenvector.
  linalg::DenseMatrix vectors;
  /// trace(Q) = sum of ALL n eigenvalues — known exactly without computing
  /// the unused ones; drives the H estimate (reduction.h).
  double laplacian_trace = 0.0;
  std::size_t n = 0;
  bool converged = false;

  std::size_t dimension() const { return values.size(); }
};

/// Computes the smallest Laplacian eigenpairs of `g` per `opts`.
EigenBasis compute_eigenbasis(const graph::Graph& g,
                              const EmbeddingOptions& opts);

}  // namespace specpart::spectral
