// Spectral embedding driver: Laplacian eigenpairs of a graph.
//
// Chooses between the exact dense solver (small graphs, test oracles) and
// Lanczos (everything else). The Lanczos path is wrapped in a hardened
// fallback chain — reseeded restart, enlarged Krylov space, full
// reorthogonalization, dense solve even above the threshold, and finally
// truncation to the converged eigenpair prefix — so a clustered spectrum
// degrades the basis gracefully instead of aborting the pipeline. Every
// recovery step is recorded in the optional Diagnostics sink. All spectral
// heuristics (SB, RSB, KP, SFC, MELO) get their eigenvectors from here.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "linalg/dense.h"
#include "linalg/eigensolver.h"
#include "linalg/objective.h"
#include "linalg/sparse.h"
#include "util/budget.h"
#include "util/parallel.h"
#include "util/status.h"

namespace specpart::spectral {

struct EmbeddingOptions {
  /// Number of eigenpairs to return, counted from the smallest eigenvalue
  /// (the first pair of a connected graph is the trivial lambda = 0 /
  /// constant-vector pair).
  std::size_t count = 2;
  /// Drop the trivial first pair and return the `count` pairs after it.
  bool skip_trivial = false;
  std::uint64_t seed = 0xABCDEFULL;
  /// The one solver-configuration struct: backend selection (scalar |
  /// block), tolerance, dense threshold / fallback limit, iteration caps.
  /// Replaces the former per-field knobs (dense_threshold, tolerance,
  /// dense_fallback_limit) that every caller re-plumbed separately.
  linalg::SolverOptions solver;
  /// Compute-kernel threading, forwarded to the iterative solvers (the
  /// dense oracle stays serial). See LanczosOptions::parallel.
  ParallelConfig parallel;
  /// Which symmetric operator the eigensolve runs on (linalg/objective.h).
  /// The Graph overload derives the operator itself; the matrix overload
  /// expects the caller to pass the matching operator (the objective here
  /// then only selects the multilevel strategy's general Galerkin
  /// contraction). The default keeps every solve byte-identical to the
  /// pre-objective pipeline.
  linalg::ObjectiveModel objective = linalg::ObjectiveModel::kUnnormalized;
};

/// Eigenpairs of the Laplacian plus the invariants MELO's H-selection needs.
struct EigenBasis {
  /// Eigenvalues, ascending. values[j] pairs with column j of vectors.
  linalg::Vec values;
  /// n x d matrix; column j is a unit eigenvector.
  linalg::DenseMatrix vectors;
  /// trace(Q) = sum of ALL n eigenvalues — known exactly without computing
  /// the unused ones; drives the H estimate (reduction.h).
  double laplacian_trace = 0.0;
  std::size_t n = 0;
  /// True when every *returned* pair met the residual tolerance.
  bool converged = false;
  /// Pairs the caller asked for (after trivial-pair accounting). When
  /// dimension() < requested the basis was truncated by the fallback chain
  /// and downstream d should degrade to dimension().
  std::size_t requested = 0;
  /// Leading returned pairs that individually met the tolerance.
  std::size_t converged_pairs = 0;
  /// True when the fallback chain truncated the basis to its converged
  /// prefix (dimension() < requested).
  bool truncated = false;
  /// True when the eigensolve stopped early on an exhausted ComputeBudget.
  bool budget_exhausted = false;
  /// Leading-order floating-point operations the eigensolve spent, summed
  /// over every fallback attempt (0 for the dense path and cache hits).
  std::uint64_t solve_flops = 0;
  /// Laplacian CSR bytes streamed by the eigensolve, summed over attempts.
  /// The block backend's headline win: ~b x fewer bytes per eigenpair than
  /// the scalar chain.
  std::uint64_t solve_bytes_moved = 0;

  std::size_t dimension() const { return values.size(); }
};

/// Computes the smallest Laplacian eigenpairs of `g` per `opts`.
/// `diag` (optional) receives stage timing, fallback and warning records;
/// `budget` (optional) bounds the eigensolve — on exhaustion the best
/// basis built so far is returned with `budget_exhausted` set. The result
/// always has >= 1 column for a non-empty graph.
EigenBasis compute_eigenbasis(const graph::Graph& g,
                              const EmbeddingOptions& opts,
                              Diagnostics* diag = nullptr,
                              ComputeBudget* budget = nullptr);

/// Same solve on an already-built operator matrix — the entry point for the
/// fused hypergraph -> Laplacian data plane (model::build_clique_laplacian /
/// CliqueModel::operator_matrix), which never materializes a Graph. The
/// matrix must match opts.objective (the plain Laplacian for kUnnormalized,
/// the degree-normalized operator for kNormalizedSymmetric). Produces
/// bit-identical results to the Graph overload on the operator it would
/// derive.
EigenBasis compute_eigenbasis(const linalg::SymCsrMatrix& laplacian,
                              const EmbeddingOptions& opts,
                              Diagnostics* diag = nullptr,
                              ComputeBudget* budget = nullptr);

}  // namespace specpart::spectral
