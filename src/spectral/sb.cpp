#include "spectral/sb.h"

#include <algorithm>
#include <numeric>

#include "spectral/embedding.h"
#include "util/error.h"

namespace specpart::spectral {

part::Ordering fiedler_ordering(const graph::Graph& g, std::uint64_t seed,
                                double* fiedler_value) {
  EmbeddingOptions opts;
  opts.count = 1;
  opts.skip_trivial = true;
  opts.seed = seed;
  const EigenBasis basis = compute_eigenbasis(g, opts);
  SP_REQUIRE(basis.dimension() >= 1, "fiedler_ordering: no Fiedler pair");
  if (fiedler_value != nullptr) *fiedler_value = basis.values[0];
  const linalg::Vec fiedler = basis.vectors.col(0);

  part::Ordering order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (fiedler[a] != fiedler[b]) return fiedler[a] < fiedler[b];
              return a < b;
            });
  return order;
}

SbResult spectral_bipartition(const graph::Hypergraph& h,
                              const SbOptions& opts) {
  const graph::Graph g = model::clique_expand(h, opts.net_model);
  SbResult result;
  result.ordering = fiedler_ordering(g, opts.seed, &result.fiedler_value);
  result.split = opts.min_fraction > 0.0
                     ? part::best_min_cut_split(h, result.ordering,
                                                opts.min_fraction)
                     : part::best_ratio_cut_split(h, result.ordering);
  SP_REQUIRE(result.split.feasible, "SB: no feasible split exists");
  result.partition = part::split_to_partition(result.ordering,
                                              result.split.split);
  return result;
}

}  // namespace specpart::spectral
