#include "spectral/barnes.h"

#include <cmath>
#include <numeric>

#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "opt/mincostflow.h"
#include "util/error.h"

namespace specpart::spectral {

namespace {

/// k dominant eigenvectors of the adjacency matrix (largest eigenvalues —
/// Barnes and Donath/Hoffman [16] work with A, not the Laplacian).
linalg::DenseMatrix dominant_adjacency_eigenvectors(const graph::Graph& g,
                                                    std::uint32_t k,
                                                    std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  const linalg::SymCsrMatrix a = graph::build_adjacency(g);
  if (n <= 320) {
    const linalg::EigenDecomposition dec =
        linalg::solve_symmetric_eigen(a.to_dense());
    linalg::DenseMatrix top(n, k);
    for (std::uint32_t j = 0; j < k; ++j)
      top.set_col(j, dec.vectors.col(n - 1 - j));
    return top;
  }
  // Shift to make the operator positive so the dominant pairs of A are the
  // dominant pairs of A + sigma*I (Gershgorin bounds |lambda_min|).
  const double sigma = a.gershgorin_upper() + 1.0;
  auto apply = [&](const linalg::Vec& x, linalg::Vec& y) {
    a.matvec(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += sigma * x[i];
  };
  linalg::LanczosOptions opts;
  opts.num_eigenpairs = k;
  opts.seed = seed;
  const linalg::LanczosResult r =
      linalg::lanczos_largest_op(n, apply, 2.0 * sigma, opts);
  return r.vectors;
}

}  // namespace

part::Partition barnes_partition(const graph::Hypergraph& h, std::uint32_t k,
                                 const BarnesOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(k >= 2 && k <= n, "Barnes: need 2 <= k <= n");

  std::vector<std::size_t> sizes = opts.cluster_sizes;
  if (sizes.empty()) {
    sizes.assign(k, n / k);
    for (std::size_t r = 0; r < n % k; ++r) ++sizes[r];
  }
  SP_CHECK_INPUT(sizes.size() == k,
                 "Barnes: cluster_sizes must have k entries");
  SP_CHECK_INPUT(std::accumulate(sizes.begin(), sizes.end(),
                                 std::size_t{0}) == n,
                 "Barnes: cluster sizes must sum to n");

  const graph::Graph g = model::clique_expand(h, opts.net_model);
  linalg::DenseMatrix u = dominant_adjacency_eigenvectors(g, k, opts.seed);
  // Eigenvector signs are arbitrary; orient each so its positive mass
  // dominates (a cluster indicator is non-negative).
  for (std::uint32_t c = 0; c < k; ++c) {
    double positive = 0.0, negative = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = u.at(i, c);
      (x >= 0.0 ? positive : negative) += x * x;
    }
    if (negative > positive)
      for (std::size_t i = 0; i < n; ++i) u.at(i, c) = -u.at(i, c);
  }

  // Transportation problem: assign vertex i to cluster hh maximizing
  // u_h(i)/sqrt(m_h) subject to the size constraints. Solved as min-cost
  // flow: source -> cluster (cap m_h) -> vertex (cap 1, cost -u_h(i)/
  // sqrt(m_h)) -> sink (cap 1).
  const std::uint32_t source = 0;
  const std::uint32_t cluster0 = 1;
  const std::uint32_t vertex0 = cluster0 + k;
  const std::uint32_t sink = vertex0 + static_cast<std::uint32_t>(n);
  opt::MinCostFlow flow(sink + 1);
  for (std::uint32_t c = 0; c < k; ++c)
    flow.add_arc(source, cluster0 + c, static_cast<double>(sizes[c]), 0.0);
  std::vector<std::vector<std::size_t>> assign_arc(
      k, std::vector<std::size_t>(n));
  for (std::uint32_t c = 0; c < k; ++c) {
    const double scale = 1.0 / std::sqrt(static_cast<double>(sizes[c]));
    for (std::size_t i = 0; i < n; ++i) {
      assign_arc[c][i] =
          flow.add_arc(cluster0 + c, vertex0 + static_cast<std::uint32_t>(i),
                       1.0, -u.at(i, c) * scale);
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    flow.add_arc(vertex0 + static_cast<std::uint32_t>(i), sink, 1.0, 0.0);

  const opt::MinCostFlow::Result result = flow.solve(source, sink);
  SP_REQUIRE(std::fabs(result.flow - static_cast<double>(n)) < 1e-6,
             "Barnes: transportation problem did not saturate");

  part::Partition p(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint32_t c = 0; c < k; ++c) {
      if (flow.flow_on(assign_arc[c][i]) > 0.5) {
        p.assign(static_cast<graph::NodeId>(i), c);
        break;
      }
    }
  }
  return p;
}

}  // namespace specpart::spectral
