// Spectral k-means — the "points in d-space" family of the paper's survey
// (Hall [27], Alpert-Kahng [1][2]) taken to its natural conclusion: embed
// vertices as points with d eigenvectors, then cluster with Lloyd's
// algorithm. Included as an additional multi-way baseline: unlike KP it
// uses Euclidean distance (magnitude-aware), and unlike MELO it clusters
// points directly instead of ordering vectors.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/partition.h"
#include "util/parallel.h"

namespace specpart::spectral {

struct KmeansOptions {
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Embedding dimensions (non-trivial eigenvectors).
  std::size_t dimensions = 0;  // 0 = use k dimensions
  std::size_t max_iterations = 64;
  /// Independent center initializations (k-means++-style farthest-point
  /// seeding with different random starts); best within-cluster scatter
  /// wins.
  std::size_t num_starts = 4;
  std::uint64_t seed = 0x43EA25ULL;
  /// Compute-kernel threading (see util/parallel.h): the Lloyd assignment
  /// step is evaluated over fixed point blocks. Each point's nearest
  /// center is independent, so assignments are bit-identical for every
  /// thread count. Also forwarded to the eigensolver.
  ParallelConfig parallel;
};

/// k-way spectral k-means partitioning. Empty clusters are re-seeded with
/// the farthest point, so the result always has k non-empty clusters
/// (requires k <= n).
part::Partition kmeans_partition(const graph::Hypergraph& h, std::uint32_t k,
                                 const KmeansOptions& opts);

}  // namespace specpart::spectral
