// Hall's r-dimensional quadratic placement [27] — the origin of spectral
// embeddings in VLSI. The coordinates of the d eigenvectors with the
// smallest non-trivial eigenvalues minimize the quadratic wirelength
// sum_e w_e ||x_u - x_v||^2 over all centered, orthonormal placements, and
// that minimum equals lambda_2 + ... + lambda_{d+1}.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "linalg/dense.h"
#include "model/clique_models.h"

namespace specpart::spectral {

struct PlacementOptions {
  std::size_t dimensions = 2;
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  std::uint64_t seed = 0x9A11ULL;
};

struct Placement {
  /// n x d coordinates; column j is the (j+2)-nd Laplacian eigenvector.
  linalg::DenseMatrix coords;
  /// sum_e w_e ||x_u - x_v||^2 on the clique-model graph
  /// (= lambda_2 + ... + lambda_{d+1}).
  double quadratic_wirelength = 0.0;
};

/// Quadratic wirelength of an arbitrary placement on a graph.
double quadratic_wirelength(const graph::Graph& g,
                            const linalg::DenseMatrix& coords);

/// Hall placement of a netlist (through the clique model).
Placement hall_placement(const graph::Hypergraph& h,
                         const PlacementOptions& opts);

/// Hall placement of a plain graph.
Placement hall_placement(const graph::Graph& g, const PlacementOptions& opts);

}  // namespace specpart::spectral
