#include "spectral/embedding.h"

#include <algorithm>

#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "util/error.h"

namespace specpart::spectral {

EigenBasis compute_eigenbasis(const graph::Graph& g,
                              const EmbeddingOptions& opts) {
  const std::size_t n = g.num_nodes();
  const std::size_t extra = opts.skip_trivial ? 1 : 0;
  const std::size_t want = std::min(n, opts.count + extra);
  const linalg::SymCsrMatrix q = graph::build_laplacian(g);

  EigenBasis basis;
  basis.n = n;
  basis.laplacian_trace = q.trace();

  linalg::Vec values;
  linalg::DenseMatrix vectors;
  bool converged = false;
  if (n <= opts.dense_threshold) {
    linalg::EigenDecomposition dec =
        linalg::solve_symmetric_eigen_smallest(q.to_dense(), want);
    values = std::move(dec.values);
    vectors = std::move(dec.vectors);
    converged = true;
  } else {
    linalg::LanczosOptions lopts;
    lopts.num_eigenpairs = want;
    lopts.tolerance = opts.tolerance;
    lopts.seed = opts.seed;
    linalg::LanczosResult result = linalg::lanczos_smallest(q, lopts);
    // Retry with a larger Krylov space if unconverged (clustered spectra).
    for (int attempt = 0; attempt < 2 && !result.converged; ++attempt) {
      lopts.max_iterations =
          std::min(n, std::max<std::size_t>(result.iterations * 2, 160));
      lopts.seed += 1;
      result = linalg::lanczos_smallest(q, lopts);
    }
    values = std::move(result.values);
    vectors = std::move(result.vectors);
    converged = result.converged;
  }

  const std::size_t have = values.size();
  SP_REQUIRE(have >= extra, "eigensolver returned no usable pairs");
  const std::size_t keep = have - extra;
  basis.values.assign(values.begin() + static_cast<std::ptrdiff_t>(extra),
                      values.end());
  basis.vectors = linalg::DenseMatrix(n, keep);
  for (std::size_t j = 0; j < keep; ++j)
    basis.vectors.set_col(j, vectors.col(j + extra));
  basis.converged = converged;
  return basis;
}

}  // namespace specpart::spectral
