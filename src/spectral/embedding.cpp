#include "spectral/embedding.h"

#include <algorithm>

#include "graph/laplacian.h"
#include "linalg/eigensolver.h"
#include "linalg/symmetric_eigen.h"
#include "multilevel/vcycle.h"
#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::spectral {

namespace {

constexpr const char* kStage = "eigensolve";

void note_fallback(Diagnostics* diag, const std::string& message) {
  if (diag != nullptr) diag->fallback(kStage, message);
}

/// Runs one backend attempt and records its internal recoveries.
linalg::LanczosResult run_attempt(const linalg::SymCsrMatrix& q,
                                  const linalg::EigenSolver& solver,
                                  std::size_t want, std::uint64_t seed,
                                  const linalg::SolverOptions& sopts,
                                  const ParallelConfig& parallel,
                                  ComputeBudget* budget, Diagnostics* diag) {
  linalg::LanczosResult result =
      solver.solve_smallest(q, want, seed, sopts, parallel, budget);
  if (result.breakdown_restarts > 0)
    note_fallback(diag,
                  strprintf("Lanczos breakdown: %zu invariant-subspace "
                            "restart(s) with fresh random directions",
                            result.breakdown_restarts));
  return result;
}

/// The solver core, shared by both public overloads (which differ only in
/// how the Laplacian is obtained and both wrap this in the "eigensolve"
/// stage timer).
EigenBasis eigenbasis_of_laplacian(const linalg::SymCsrMatrix& q,
                                   const EmbeddingOptions& opts,
                                   Diagnostics* diag, ComputeBudget* budget) {
  const std::size_t n = q.size();
  const std::size_t extra = opts.skip_trivial ? 1 : 0;
  const std::size_t want = std::min(n, opts.count + extra);

  EigenBasis basis;
  basis.n = n;
  basis.laplacian_trace = q.trace();
  basis.requested = want >= extra ? want - extra : 0;

  linalg::Vec values;
  linalg::DenseMatrix vectors;
  bool converged = false;
  std::size_t num_converged = 0;
  if (n <= opts.solver.dense_threshold) {
    linalg::EigenDecomposition dec =
        linalg::solve_symmetric_eigen_smallest(q.to_dense(), want);
    values = std::move(dec.values);
    vectors = std::move(dec.vectors);
    converged = true;
    num_converged = values.size();
  } else {
    const linalg::EigenSolver& solver =
        linalg::eigen_solver(opts.solver.backend);
    linalg::SolverOptions sopts = opts.solver;
    std::uint64_t seed = opts.seed;

    linalg::LanczosResult result;
    bool have_result = false;
    if (sopts.strategy == linalg::SolverStrategy::kMultilevel) {
      // The V-cycle replaces the first flat attempt. Its converged flag is
      // governed by ml_refine_tolerance (a quasi-continuum spectrum caps
      // what Chebyshev filtering can certify); when it is unmet the flat
      // chain below runs from scratch — the strategy is an accelerator,
      // never a correctness risk.
      multilevel::MultilevelStats mstats;
      const bool galerkin_general =
          opts.objective != linalg::ObjectiveModel::kUnnormalized;
      result = multilevel::multilevel_solve_smallest(
          q, want, seed, sopts, opts.parallel, budget, &mstats,
          galerkin_general);
      basis.solve_flops += result.flops;
      basis.solve_bytes_moved += result.matrix_bytes_moved;
      if (diag != nullptr) {
        diag->add_counter(kStage, "multilevel_levels", mstats.levels);
        diag->add_counter(kStage, "multilevel_coarsest_n", mstats.coarsest_n);
        diag->add_counter(kStage, "multilevel_refine_sweeps",
                          mstats.total_sweeps());
      }
      have_result = result.converged || result.budget_exhausted;
      if (!have_result)
        note_fallback(diag,
                      strprintf("multilevel refinement certified %zu of %zu "
                                "pair(s); flat solve fallback",
                                result.num_converged, want));
    }
    if (!have_result) {
      result = run_attempt(q, solver, want, seed, sopts, opts.parallel,
                           budget, diag);
      basis.solve_flops += result.flops;
      basis.solve_bytes_moved += result.matrix_bytes_moved;
    }

    // Hardened fallback chain for clustered / pathological spectra. Each
    // escalation is recorded; an exhausted budget short-circuits to the
    // best-so-far basis.
    enum class Step { kReseed, kEnlarge, kFullReorth, kDense, kTruncate };
    Step step = Step::kReseed;
    bool dense_solved = false;
    while (!result.converged && !result.budget_exhausted &&
           budget_ok(budget)) {
      if (step == Step::kReseed) {
        note_fallback(diag, "eigensolver did not converge; reseeded restart");
        seed = seed * 0x9E3779B97F4A7C15ULL + 1;
        result = run_attempt(q, solver, want, seed, sopts, opts.parallel,
                             budget, diag);
        basis.solve_flops += result.flops;
        basis.solve_bytes_moved += result.matrix_bytes_moved;
        step = Step::kEnlarge;
      } else if (step == Step::kEnlarge) {
        sopts.max_iterations =
            std::min(n, std::max<std::size_t>(result.iterations * 2, 160));
        note_fallback(diag, strprintf("enlarged Krylov space to %zu",
                                      sopts.max_iterations));
        result = run_attempt(q, solver, want, seed, sopts, opts.parallel,
                             budget, diag);
        basis.solve_flops += result.flops;
        basis.solve_bytes_moved += result.matrix_bytes_moved;
        step = Step::kFullReorth;
      } else if (step == Step::kFullReorth) {
        if (sopts.reorthogonalization !=
            linalg::Reorthogonalization::kFull) {
          sopts.reorthogonalization = linalg::Reorthogonalization::kFull;
          note_fallback(diag, "switched to full reorthogonalization");
          result = run_attempt(q, solver, want, seed, sopts, opts.parallel,
                               budget, diag);
          basis.solve_flops += result.flops;
          basis.solve_bytes_moved += result.matrix_bytes_moved;
        }
        step = Step::kDense;
      } else if (step == Step::kDense) {
        if (sopts.dense_fallback_limit > 0 &&
            n <= sopts.dense_fallback_limit) {
          note_fallback(
              diag, strprintf("dense eigensolver fallback (n = %zu above "
                              "dense_threshold = %zu)",
                              n, sopts.dense_threshold));
          linalg::EigenDecomposition dec =
              linalg::solve_symmetric_eigen_smallest(q.to_dense(), want);
          values = std::move(dec.values);
          vectors = std::move(dec.vectors);
          converged = true;
          num_converged = values.size();
          dense_solved = true;
          break;
        }
        step = Step::kTruncate;
      } else {  // Step::kTruncate — terminal: degrade, never abort.
        break;
      }
    }

    if (!dense_solved) {
      if (result.budget_exhausted && diag != nullptr)
        diag->mark_budget_exhausted(kStage);
      basis.budget_exhausted = result.budget_exhausted;
      converged = result.converged;
      num_converged = result.num_converged;
      // Truncate to the converged prefix when trailing pairs failed but a
      // usable prefix exists (the paper's own thesis licenses running with
      // fewer eigenvectors). Keep at least one non-trivial column so
      // downstream stages always have a basis to work with.
      const std::size_t floor_cols = std::min(result.values.size(), extra + 1);
      const std::size_t keep_cols =
          std::max(std::min(num_converged, result.values.size()), floor_cols);
      if (!converged && keep_cols < result.values.size() &&
          !result.budget_exhausted) {
        note_fallback(diag,
                      strprintf("truncated eigenbasis to the converged "
                                "prefix: %zu of %zu pair(s)",
                                keep_cols, result.values.size()));
        basis.truncated = true;
        converged = keep_cols <= num_converged;
      }
      values.assign(result.values.begin(),
                    result.values.begin() +
                        static_cast<std::ptrdiff_t>(
                            basis.truncated ? keep_cols
                                            : result.values.size()));
      vectors = linalg::DenseMatrix(n, values.size());
      for (std::size_t j = 0; j < values.size(); ++j)
        vectors.set_col(j, result.vectors.col(j));
    }
  }

  const std::size_t have = values.size();
  SP_REQUIRE(have >= extra, "eigensolver returned no usable pairs");
  const std::size_t keep = have - extra;
  basis.values.assign(values.begin() + static_cast<std::ptrdiff_t>(extra),
                      values.end());
  basis.vectors = linalg::DenseMatrix(n, keep);
  for (std::size_t j = 0; j < keep; ++j)
    basis.vectors.set_col(j, vectors.col(j + extra));
  basis.converged = converged;
  basis.converged_pairs =
      std::min(keep, num_converged >= extra ? num_converged - extra : 0);
  if (converged) basis.converged_pairs = keep;
  if (diag != nullptr && keep < basis.requested)
    diag->warn(kStage, strprintf("eigenbasis degraded: %zu of %zu requested "
                                 "pair(s) available",
                                 keep, basis.requested));
  if (diag != nullptr) {
    // Zero deltas still register the counters, marking the stage as
    // instrumented (the dense path legitimately measures 0 of both).
    diag->add_counter(kStage, "flops", basis.solve_flops);
    diag->add_counter(kStage, "matrix_bytes_moved", basis.solve_bytes_moved);
  }
  return basis;
}

}  // namespace

EigenBasis compute_eigenbasis(const graph::Graph& g,
                              const EmbeddingOptions& opts,
                              Diagnostics* diag, ComputeBudget* budget) {
  StageTimerScope stage_timer(diag, kStage);
  // O(nnz) off the shared CSR adjacency — no triplet round-trip. The
  // normalized objective adds one more O(nnz) value rescale on top.
  linalg::SymCsrMatrix q = graph::build_laplacian(g);
  if (opts.objective == linalg::ObjectiveModel::kNormalizedSymmetric)
    q = linalg::normalized_laplacian(q);
  return eigenbasis_of_laplacian(q, opts, diag, budget);
}

EigenBasis compute_eigenbasis(const linalg::SymCsrMatrix& laplacian,
                              const EmbeddingOptions& opts,
                              Diagnostics* diag, ComputeBudget* budget) {
  StageTimerScope stage_timer(diag, kStage);
  return eigenbasis_of_laplacian(laplacian, opts, diag, budget);
}

}  // namespace specpart::spectral
