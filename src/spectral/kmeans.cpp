#include "spectral/kmeans.h"

#include <algorithm>
#include <limits>

#include "spectral/embedding.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::spectral {

namespace {

/// Block size for the parallel assignment scan (fixed: determinism
/// contract — see util/parallel.h).
constexpr std::size_t kAssignGrain = 512;

/// Squared Euclidean distance between two flat d-vectors.
double dist_sq(const double* a, const double* b, std::size_t d) {
  double s = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double delta = a[j] - b[j];
    s += delta * delta;
  }
  return s;
}

/// Flat view of the point set: row-major n x d with O(1) row pointers (the
/// DenseMatrix at() accessor bounds-checks every element, which the O(nkd)
/// assignment scan cannot afford).
struct FlatPoints {
  const double* data;
  std::size_t n;
  std::size_t d;

  explicit FlatPoints(const linalg::DenseMatrix& m)
      : data(m.data()), n(m.rows()), d(m.cols()) {}

  const double* row(std::size_t i) const { return data + i * d; }
};

/// Farthest-point (k-means++-flavoured) seeding. Centers are stored as one
/// flat k x d buffer.
std::vector<double> seed_centers(const FlatPoints& points, std::uint32_t k,
                                 Rng& rng) {
  const std::size_t n = points.n;
  const std::size_t d = points.d;
  std::vector<double> centers;
  centers.reserve(static_cast<std::size_t>(k) * d);
  const double* first = points.row(rng.next_below(n));
  centers.insert(centers.end(), first, first + d);
  std::vector<double> best_dist(n, std::numeric_limits<double>::infinity());
  while (centers.size() < static_cast<std::size_t>(k) * d) {
    const double* last = centers.data() + centers.size() - d;
    std::size_t farthest = 0;
    double farthest_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      best_dist[i] = std::min(best_dist[i], dist_sq(points.row(i), last, d));
      if (best_dist[i] > farthest_dist) {
        farthest_dist = best_dist[i];
        farthest = i;
      }
    }
    const double* far_row = points.row(farthest);
    centers.insert(centers.end(), far_row, far_row + d);
  }
  return centers;
}

/// One Lloyd run; returns the within-cluster scatter of the result.
double lloyd(const FlatPoints& points, std::uint32_t k,
             std::size_t max_iterations, Rng& rng, const ParallelConfig& par,
             std::vector<std::uint32_t>& assignment) {
  const std::size_t n = points.n;
  const std::size_t d = points.d;
  std::vector<double> centers = seed_centers(points, k, rng);
  assignment.assign(n, 0);
  ParallelConfig scan = par;
  scan.grain = kAssignGrain;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Assignment step — the O(nkd) hot path. Every point's nearest center
    // is independent, so fixed point blocks give bit-identical assignments
    // for any thread count; `changed` flags are OR-combined.
    const char changed_scan = parallel_reduce<char>(
        scan, 0, n, 0,
        [&](std::size_t lo, std::size_t hi) {
          char changed = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const double* p = points.row(i);
            std::uint32_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (std::uint32_t c = 0; c < k; ++c) {
              const double dc = dist_sq(p, centers.data() + c * d, d);
              if (dc < best_d) {
                best_d = dc;
                best = c;
              }
            }
            if (assignment[i] != best) {
              assignment[i] = best;
              changed = 1;
            }
          }
          return changed;
        },
        [](char a, char b) { return static_cast<char>(a | b); });
    if (!(changed_scan || iter == 0)) break;

    // Recompute centers; re-seed empties with the globally farthest point.
    std::vector<std::size_t> count(k, 0);
    std::fill(centers.begin(), centers.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      ++count[assignment[i]];
      const double* p = points.row(i);
      double* c = centers.data() + assignment[i] * d;
      for (std::size_t j = 0; j < d; ++j) c[j] += p[j];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (count[c] == 0) {
        std::size_t farthest = 0;
        double farthest_dist = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dc = dist_sq(points.row(i),
                                    centers.data() + assignment[i] * d, d);
          if (dc > farthest_dist) {
            farthest_dist = dc;
            farthest = i;
          }
        }
        std::copy_n(points.row(farthest), d, centers.data() + c * d);
        continue;
      }
      double* cc = centers.data() + c * d;
      for (std::size_t j = 0; j < d; ++j)
        cc[j] /= static_cast<double>(count[c]);
    }
  }

  // Guarantee non-empty clusters: steal the point farthest from its center
  // for any empty cluster.
  std::vector<std::size_t> count(k, 0);
  for (std::uint32_t a : assignment) ++count[a];
  for (std::uint32_t c = 0; c < k; ++c) {
    if (count[c] > 0) continue;
    std::size_t donor = 0;
    double donor_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (count[assignment[i]] <= 1) continue;
      const double dc =
          dist_sq(points.row(i), centers.data() + assignment[i] * d, d);
      if (dc > donor_dist) {
        donor_dist = dc;
        donor = i;
      }
    }
    --count[assignment[donor]];
    assignment[donor] = c;
    ++count[c];
  }

  double scatter = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    scatter +=
        dist_sq(points.row(i), centers.data() + assignment[i] * d, d);
  return scatter;
}

}  // namespace

part::Partition kmeans_partition(const graph::Hypergraph& h, std::uint32_t k,
                                 const KmeansOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(k >= 2 && k <= n, "kmeans: need 2 <= k <= n");

  const graph::Graph g = model::clique_expand(h, opts.net_model);
  EmbeddingOptions eopts;
  eopts.count = opts.dimensions == 0 ? k : opts.dimensions;
  eopts.skip_trivial = true;
  eopts.seed = opts.seed;
  eopts.parallel = opts.parallel;
  const EigenBasis basis = compute_eigenbasis(g, eopts);
  const FlatPoints points(basis.vectors);

  Rng rng(opts.seed);
  std::vector<std::uint32_t> best_assignment;
  double best_scatter = std::numeric_limits<double>::infinity();
  std::vector<std::uint32_t> assignment;
  for (std::size_t start = 0;
       start < std::max<std::size_t>(1, opts.num_starts); ++start) {
    const double scatter = lloyd(points, k, opts.max_iterations, rng,
                                 opts.parallel, assignment);
    if (scatter < best_scatter) {
      best_scatter = scatter;
      best_assignment = assignment;
    }
  }
  return part::Partition(std::move(best_assignment), k);
}

}  // namespace specpart::spectral
