#include "spectral/kmeans.h"

#include <algorithm>
#include <limits>

#include "spectral/embedding.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::spectral {

namespace {

double dist_sq(const linalg::DenseMatrix& points, std::size_t row,
               const linalg::Vec& center) {
  double s = 0.0;
  for (std::size_t j = 0; j < center.size(); ++j) {
    const double delta = points.at(row, j) - center[j];
    s += delta * delta;
  }
  return s;
}

/// Farthest-point (k-means++-flavoured) seeding.
std::vector<linalg::Vec> seed_centers(const linalg::DenseMatrix& points,
                                      std::uint32_t k, Rng& rng) {
  const std::size_t n = points.rows();
  std::vector<linalg::Vec> centers;
  centers.push_back(points.row(rng.next_below(n)));
  std::vector<double> best_dist(n, std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    std::size_t farthest = 0;
    double farthest_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      best_dist[i] =
          std::min(best_dist[i], dist_sq(points, i, centers.back()));
      if (best_dist[i] > farthest_dist) {
        farthest_dist = best_dist[i];
        farthest = i;
      }
    }
    centers.push_back(points.row(farthest));
  }
  return centers;
}

/// One Lloyd run; returns the within-cluster scatter of the result.
double lloyd(const linalg::DenseMatrix& points, std::uint32_t k,
             std::size_t max_iterations, Rng& rng,
             std::vector<std::uint32_t>& assignment) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  std::vector<linalg::Vec> centers = seed_centers(points, k, rng);
  assignment.assign(n, 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = iter == 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::uint32_t c = 0; c < k; ++c) {
        const double dc = dist_sq(points, i, centers[c]);
        if (dc < best_d) {
          best_d = dc;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed) break;

    // Recompute centers; re-seed empties with the globally farthest point.
    std::vector<std::size_t> count(k, 0);
    for (auto& c : centers) c.assign(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      ++count[assignment[i]];
      for (std::size_t j = 0; j < d; ++j)
        centers[assignment[i]][j] += points.at(i, j);
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (count[c] == 0) {
        std::size_t farthest = 0;
        double farthest_dist = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dc =
              dist_sq(points, i, centers[assignment[i]]);
          if (dc > farthest_dist) {
            farthest_dist = dc;
            farthest = i;
          }
        }
        centers[c] = points.row(farthest);
        continue;
      }
      for (std::size_t j = 0; j < d; ++j)
        centers[c][j] /= static_cast<double>(count[c]);
    }
  }

  // Guarantee non-empty clusters: steal the point farthest from its center
  // for any empty cluster.
  std::vector<std::size_t> count(k, 0);
  for (std::uint32_t a : assignment) ++count[a];
  for (std::uint32_t c = 0; c < k; ++c) {
    if (count[c] > 0) continue;
    std::size_t donor = 0;
    double donor_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (count[assignment[i]] <= 1) continue;
      const double dc = dist_sq(points, i, centers[assignment[i]]);
      if (dc > donor_dist) {
        donor_dist = dc;
        donor = i;
      }
    }
    --count[assignment[donor]];
    assignment[donor] = c;
    ++count[c];
  }

  double scatter = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    scatter += dist_sq(points, i, centers[assignment[i]]);
  return scatter;
}

}  // namespace

part::Partition kmeans_partition(const graph::Hypergraph& h, std::uint32_t k,
                                 const KmeansOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(k >= 2 && k <= n, "kmeans: need 2 <= k <= n");

  const graph::Graph g = model::clique_expand(h, opts.net_model);
  EmbeddingOptions eopts;
  eopts.count = opts.dimensions == 0 ? k : opts.dimensions;
  eopts.skip_trivial = true;
  eopts.seed = opts.seed;
  const EigenBasis basis = compute_eigenbasis(g, eopts);

  Rng rng(opts.seed);
  std::vector<std::uint32_t> best_assignment;
  double best_scatter = std::numeric_limits<double>::infinity();
  std::vector<std::uint32_t> assignment;
  for (std::size_t start = 0;
       start < std::max<std::size_t>(1, opts.num_starts); ++start) {
    const double scatter =
        lloyd(basis.vectors, k, opts.max_iterations, rng, assignment);
    if (scatter < best_scatter) {
      best_scatter = scatter;
      best_assignment = assignment;
    }
  }
  return part::Partition(std::move(best_assignment), k);
}

}  // namespace specpart::spectral
