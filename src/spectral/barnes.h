// Barnes' spectral k-way partitioning [7] — the classic "multiple linear
// orderings" method the paper surveys: approximate the scaled cluster
// indicator vectors X_h / sqrt(m_h) by the k dominant eigenvectors of the
// adjacency matrix, assigning vertices to clusters so the total rounding
// error is minimized. With prescribed cluster sizes m_1..m_k this is a
// transportation problem (here solved exactly with min-cost flow), whose
// LP relaxation has an integral optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/partition.h"

namespace specpart::spectral {

struct BarnesOptions {
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Prescribed cluster sizes; empty = balanced n/k (remainder spread over
  /// the first clusters).
  std::vector<std::size_t> cluster_sizes;
  std::uint64_t seed = 0xBA27E5ULL;
};

/// Barnes' algorithm on a netlist (clique-expanded). Requires
/// 2 <= k <= n; prescribed sizes (if given) must sum to n.
part::Partition barnes_partition(const graph::Hypergraph& h, std::uint32_t k,
                                 const BarnesOptions& opts);

}  // namespace specpart::spectral
