// Frankle-Karp probe bipartitioning [19] — the "probe vectors" family the
// paper surveys: pick a direction r in the d-space spanned by the best
// eigenvectors; among all 0/1 indicator vectors, the one whose (normalized)
// embedding-space image projects maximally onto r is found in O(n log n) by
// sorting vertices on their per-vertex scores s_i = y_i . r and scanning
// prefixes. Each probe yields a candidate bipartition; the best cut over
// many probes wins.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/partition.h"

namespace specpart::spectral {

struct FkProbeOptions {
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Embedding dimensions (non-trivial eigenvectors).
  std::size_t dimensions = 5;
  /// Random probe directions tried.
  std::size_t num_probes = 32;
  /// Both sides must hold at least this fraction of the modules; 0 selects
  /// the best ratio-cut prefix instead of the min-cut one.
  double min_fraction = 0.45;
  std::uint64_t seed = 0xF12AULL;
};

struct FkProbeResult {
  part::Partition partition;
  double cut = 0.0;
};

/// Best-of-probes bipartitioning. Requires n >= 2.
FkProbeResult fk_probe_bipartition(const graph::Hypergraph& h,
                                   const FkProbeOptions& opts);

}  // namespace specpart::spectral
