#include "spectral/rsb.h"

#include <algorithm>
#include <numeric>

#include "spectral/sb.h"
#include "util/error.h"

namespace specpart::spectral {

part::Partition rsb_partition(const graph::Hypergraph& h, std::uint32_t k,
                              const RsbOptions& opts) {
  const std::size_t n = h.num_nodes();
  SP_CHECK_INPUT(k >= 2 && k <= n, "RSB: need 2 <= k <= n");

  // Clusters as explicit vertex lists (in original ids).
  std::vector<std::vector<graph::NodeId>> clusters;
  {
    std::vector<graph::NodeId> all(n);
    std::iota(all.begin(), all.end(), 0u);
    clusters.push_back(std::move(all));
  }

  SbOptions sb_opts;
  sb_opts.net_model = opts.net_model;
  sb_opts.min_fraction = opts.min_fraction;
  sb_opts.seed = opts.seed;

  while (clusters.size() < k) {
    // Largest splittable cluster next (the paper's rule).
    std::size_t target = clusters.size();
    std::size_t target_size = 1;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].size() > target_size) {
        target = c;
        target_size = clusters[c].size();
      }
    }
    SP_CHECK_INPUT(target < clusters.size(),
                   "RSB: no cluster with >= 2 vertices left to split");

    const std::vector<graph::NodeId> nodes = std::move(clusters[target]);
    const graph::Hypergraph sub = h.induced(nodes);

    std::vector<graph::NodeId> left, right;
    if (sub.num_nets() == 0) {
      // No internal nets: any balanced split is free.
      const std::size_t half = nodes.size() / 2;
      left.assign(nodes.begin(), nodes.begin() + static_cast<std::ptrdiff_t>(half));
      right.assign(nodes.begin() + static_cast<std::ptrdiff_t>(half), nodes.end());
    } else {
      sb_opts.seed += 1;  // decorrelate recursive eigensolves
      const SbResult sb = spectral_bipartition(sub, sb_opts);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        (sb.partition.cluster_of(static_cast<graph::NodeId>(i)) == 0
             ? left
             : right)
            .push_back(nodes[i]);
      }
    }
    SP_ASSERT(!left.empty() && !right.empty());
    clusters[target] = std::move(left);
    clusters.push_back(std::move(right));
  }

  std::vector<std::uint32_t> assignment(n, 0);
  for (std::uint32_t c = 0; c < clusters.size(); ++c)
    for (graph::NodeId v : clusters[c]) assignment[v] = c;
  return part::Partition(std::move(assignment), k);
}

}  // namespace specpart::spectral
