// DP-RP — dynamic-programming restricted partitioning (Alpert/Kahng [1]).
//
// Given a vertex ordering, finds the k-way partitioning into *contiguous*
// segments of the ordering that minimizes Scaled Cost, subject to per-
// cluster size bounds. This is how both SFC orderings and MELO orderings
// become multi-way partitionings ("To generate multi-way partitionings from
// MELO orderings, we apply the DP-RP algorithm of [1]").
//
// The DP relaxes dp[h][j] = min_i dp[h-1][i] + E(i,j) / (j-i), where E(i,j)
// is the weight of nets with pins both inside and outside ordering[i..j).
// Segment costs are generated on the fly with an incremental sweep, so no
// O(n^2) table is materialized.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/hypergraph.h"
#include "part/ordering.h"
#include "part/partition.h"
#include "util/parallel.h"

namespace specpart::spectral {

struct DprpOptions {
  std::uint32_t k = 2;
  /// Cluster size bounds in vertices; 0 for max means "no upper bound".
  std::size_t min_cluster_size = 1;
  std::size_t max_cluster_size = 0;
  /// Compute-kernel threading (see util/parallel.h): within each DP level
  /// the start positions i are swept in fixed blocks with private
  /// scratch, and block results merge by strict improvement in ascending
  /// block order — bit-identical to the serial sweep for any thread count.
  ParallelConfig parallel;
};

struct DprpResult {
  part::Partition partition;
  /// Scaled Cost of the result, measured on the hypergraph.
  double scaled_cost = 0.0;
  /// Segment boundaries: cluster h spans positions
  /// [boundaries[h], boundaries[h+1]) of the ordering (size k+1).
  std::vector<std::size_t> boundaries;
  bool feasible = false;
};

/// Optimal restricted (contiguous) k-way partitioning of the ordering under
/// the Scaled Cost objective. Throws specpart::Error when the size bounds
/// admit no k-way split at all.
DprpResult dprp_split(const graph::Hypergraph& h, const part::Ordering& o,
                      const DprpOptions& opts);

/// The DP table already contains the optimum for EVERY cluster count up to
/// opts.k (as in [1], which reports all k simultaneously): returns the
/// best restricted partitioning per k in [2, opts.k]. Entry j corresponds
/// to k = j + 2; infeasible cluster counts yield feasible == false.
std::vector<DprpResult> dprp_all_k(const graph::Hypergraph& h,
                                   const part::Ordering& o,
                                   const DprpOptions& opts);

}  // namespace specpart::spectral
