// SFC — spacefilling-curve orderings of the d-dimensional spectral
// embedding (Alpert/Kahng [1]).
//
// The i-th entries of d Laplacian eigenvectors place vertex v_i in d-space;
// a spacefilling curve through the embedding induces a linear ordering that
// preserves spatial locality, which DP-RP then splits into a k-way
// partitioning. We implement the d-dimensional Hilbert curve (Skilling's
// transpose algorithm) and, as an ablation, the simpler Morton (Z-order)
// curve.
#pragma once

#include <cstdint>

#include "graph/hypergraph.h"
#include "model/clique_models.h"
#include "part/ordering.h"
#include "spectral/embedding.h"

namespace specpart::spectral {

enum class CurveKind { kHilbert, kMorton };

struct SfcOptions {
  model::NetModel net_model = model::NetModel::kPartitioningSpecific;
  /// Embedding dimensions (non-trivial eigenvectors used). [1] reports
  /// d in the 2-4 range works well.
  std::size_t dimensions = 3;
  CurveKind curve = CurveKind::kHilbert;
  std::uint64_t seed = 0x5FC123ULL;
};

/// Maps a point on the integer lattice [0, 2^bits)^d to its index along the
/// d-dimensional Hilbert curve. `coords.size()` = d; requires
/// d * bits <= 128. Exposed for direct use and property tests.
unsigned __int128 hilbert_index(std::vector<std::uint32_t> coords,
                                unsigned bits);

/// Morton (bit-interleave) index of the same lattice point.
unsigned __int128 morton_index(const std::vector<std::uint32_t>& coords,
                               unsigned bits);

/// Orders the rows of an n-by-d embedding along the chosen curve
/// (coordinates are normalized to the lattice internally).
part::Ordering curve_ordering(const linalg::DenseMatrix& embedding,
                              CurveKind curve);

/// Full SFC ordering of a netlist: clique-expand, embed with
/// `opts.dimensions` non-trivial eigenvectors, order along the curve.
part::Ordering sfc_ordering(const graph::Hypergraph& h, const SfcOptions& opts);

}  // namespace specpart::spectral
