// Shared parallel compute-kernel layer: a small reusable thread pool plus
// deterministic parallel_for / parallel_reduce utilities.
//
// Every hot path in the library (the MELO greedy argmax, Lanczos SpMV and
// reorthogonalization panels, the k-means assignment step, the DP-RP table
// fill) funnels through these two primitives. Two contracts matter more
// than raw speed:
//
//  1. *Fixed-block determinism.* A range [begin, end) is always split into
//     the same blocks — block boundaries depend only on the range length
//     and the grain, never on the thread count — and parallel_reduce
//     combines block partials in ascending block order on the calling
//     thread. Floating-point reductions therefore produce bit-identical
//     results for 1, 2 or 64 threads; only the wall-clock changes.
//
//  2. *Serial reference.* ParallelConfig{.num_threads = 1} is the default
//     everywhere. Call sites keep their original serial loops on that path
//     (byte-identical to the pre-parallel implementation) and switch to the
//     blocked kernels only when more than one thread is requested.
//
// The pool is a lazily-created process-wide singleton; workers sleep on a
// condition variable between jobs, and the calling thread always
// participates in draining blocks, so a 1-block job never pays a wake-up.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace specpart {

/// Thread-count knob threaded through the pipeline option structs
/// (MeloOrderingOptions, LanczosOptions, KmeansOptions, DprpOptions, ...).
struct ParallelConfig {
  /// Worker threads to use (including the calling thread).
  ///   1 = serial reference path (the default; byte-identical to the seed
  ///       implementation), 0 = auto: $SPECPART_THREADS if set, otherwise
  ///       std::thread::hardware_concurrency().
  std::size_t num_threads = 1;
  /// Minimum elements per reduction block. Part of the determinism
  /// contract: changing the grain changes block boundaries and hence may
  /// change floating-point rounding, changing the thread count never does.
  std::size_t grain = 1024;

  /// Resolved thread count (>= 1); see num_threads.
  std::size_t threads() const;

  bool serial() const { return threads() <= 1; }

  /// Convenience constructor for "n threads, default grain".
  static ParallelConfig with_threads(std::size_t n) {
    ParallelConfig cfg;
    cfg.num_threads = n;
    return cfg;
  }
};

/// $SPECPART_THREADS as a count (0 when unset/unparsable). The CI uses this
/// to pin the equivalence tests to a >1 thread count.
std::size_t env_threads();

/// Process-wide worker pool. Grows lazily to the largest thread count ever
/// requested (capped); one job runs at a time. Not intended for direct use —
/// go through parallel_for / parallel_reduce.
class ThreadPool {
 public:
  static ThreadPool& instance();

  /// Runs fn(b) for every b in [0, num_blocks) using up to `num_threads`
  /// threads including the caller, then returns. Which thread runs which
  /// block is unspecified (atomic work-stealing counter) — callers must
  /// make per-block work independent and combine results by block index.
  /// Re-entrant calls from inside a worker run inline on the caller.
  void run_blocks(std::size_t num_blocks, std::size_t num_threads,
                  const std::function<void(std::size_t)>& fn);

  ~ThreadPool();

 private:
  ThreadPool();

  struct Impl;  // keeps <thread>/<mutex> out of this widely-included header
  std::unique_ptr<Impl> impl_;
};

namespace detail {

inline std::size_t block_grain(std::size_t n, std::size_t grain) {
  (void)n;
  return grain == 0 ? 1 : grain;
}

/// Number of fixed blocks for a range of n elements. Depends only on n and
/// grain — never on the thread count.
inline std::size_t num_blocks(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  const std::size_t g = block_grain(n, grain);
  return (n + g - 1) / g;
}

}  // namespace detail

/// Runs body(lo, hi) over [begin, end) split into fixed grain-sized blocks,
/// in parallel when cfg asks for more than one thread. body must treat
/// blocks as independent (no ordering between them, disjoint writes).
template <class Body>
void parallel_for(const ParallelConfig& cfg, std::size_t begin,
                  std::size_t end, Body&& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const std::size_t g = detail::block_grain(n, cfg.grain);
  const std::size_t blocks = detail::num_blocks(n, cfg.grain);
  const std::size_t threads = std::min(cfg.threads(), blocks);
  if (threads <= 1) {
    body(begin, end);
    return;
  }
  ThreadPool::instance().run_blocks(blocks, threads, [&](std::size_t b) {
    const std::size_t lo = begin + b * g;
    const std::size_t hi = std::min(end, lo + g);
    body(lo, hi);
  });
}

/// Deterministic reduction: block_fn(lo, hi) -> T computes one fixed
/// block's partial, and partials are folded as
///   acc = combine(std::move(acc), partial_0); acc = combine(..., 1); ...
/// in ascending block order on the calling thread. Because the blocks and
/// the fold order are independent of the thread count, the result is
/// bit-identical for any cfg.num_threads — including 1, where the blocks
/// are simply evaluated inline in order.
template <class T, class BlockFn, class Combine>
T parallel_reduce(const ParallelConfig& cfg, std::size_t begin,
                  std::size_t end, T init, BlockFn&& block_fn,
                  Combine&& combine) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return init;
  const std::size_t g = detail::block_grain(n, cfg.grain);
  const std::size_t blocks = detail::num_blocks(n, cfg.grain);
  if (blocks == 1) return combine(std::move(init), block_fn(begin, end));

  std::vector<T> partials(blocks);
  const std::size_t threads = std::min(cfg.threads(), blocks);
  auto run_block = [&](std::size_t b) {
    const std::size_t lo = begin + b * g;
    const std::size_t hi = std::min(end, lo + g);
    partials[b] = block_fn(lo, hi);
  };
  if (threads <= 1) {
    for (std::size_t b = 0; b < blocks; ++b) run_block(b);
  } else {
    ThreadPool::instance().run_blocks(blocks, threads, run_block);
  }
  T acc = std::move(init);
  for (std::size_t b = 0; b < blocks; ++b)
    acc = combine(std::move(acc), std::move(partials[b]));
  return acc;
}

/// Keyed argmax over [0, count): returns the index with the largest
/// eval(i) among indices where valid(i), ties broken toward the smaller
/// index. The (key, index) ordering makes the result independent of block
/// structure and thread count — and identical to a serial ascending scan
/// that replaces only on strictly-greater keys. Returns `count` when no
/// index is valid.
template <class Eval, class Valid>
std::size_t parallel_argmax(const ParallelConfig& cfg, std::size_t count,
                            Eval&& eval, Valid&& valid) {
  struct Best {
    double key;
    std::size_t index;
  };
  const Best none{0.0, count};
  const Best best = parallel_reduce<Best>(
      cfg, 0, count, none,
      [&](std::size_t lo, std::size_t hi) {
        Best b = none;
        for (std::size_t i = lo; i < hi; ++i) {
          if (!valid(i)) continue;
          const double key = eval(i);
          if (b.index == count || key > b.key) b = Best{key, i};
        }
        return b;
      },
      [count](Best a, Best b) {
        if (a.index == count) return b;
        if (b.index == count) return a;
        return b.key > a.key ? b : a;  // ties: a has the smaller index
      });
  return best.index;
}

}  // namespace specpart
