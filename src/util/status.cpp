#include "util/status.h"

#include <chrono>
#include <ostream>
#include <sstream>

#include "util/stringutil.h"

namespace specpart {

namespace {

double monotonic_seconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kDegraded:
      return "degraded";
    case StatusCode::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "?";
}

StageStats& Diagnostics::stage_entry(const std::string& name) {
  for (StageStats& s : stages_)
    if (s.name == name) return s;
  stages_.push_back(StageStats{name, 0.0, 0, 0});
  return stages_.back();
}

void Diagnostics::record_stage(const std::string& name, double seconds) {
  StageStats& s = stage_entry(name);
  s.seconds += seconds;
  ++s.calls;
}

void Diagnostics::warn(const std::string& stage, const std::string& message) {
  events_.push_back({stage, message, /*is_fallback=*/false});
}

void Diagnostics::fallback(const std::string& stage,
                           const std::string& message) {
  events_.push_back({stage, message, /*is_fallback=*/true});
  ++stage_entry(stage).fallbacks;
  degraded_ = true;
}

void Diagnostics::mark_budget_exhausted(const std::string& stage) {
  if (!budget_exhausted_)
    events_.push_back({stage, "compute budget exhausted; returning best "
                              "result found so far",
                       /*is_fallback=*/false});
  budget_exhausted_ = true;
}

void Diagnostics::add_counter(const std::string& stage,
                              const std::string& name, std::uint64_t delta) {
  for (StageCounter& c : counters_) {
    if (c.stage == stage && c.name == name) {
      c.value += delta;
      return;
    }
  }
  counters_.push_back({stage, name, delta});
}

std::uint64_t Diagnostics::counter(const std::string& stage,
                                   const std::string& name) const {
  for (const StageCounter& c : counters_)
    if (c.stage == stage && c.name == name) return c.value;
  return 0;
}

StatusCode Diagnostics::status() const {
  if (budget_exhausted_) return StatusCode::kBudgetExhausted;
  if (degraded_) return StatusCode::kDegraded;
  return StatusCode::kOk;
}

std::size_t Diagnostics::total_fallbacks() const {
  std::size_t total = 0;
  for (const StageStats& s : stages_) total += s.fallbacks;
  return total;
}

std::size_t Diagnostics::stage_fallbacks(const std::string& stage) const {
  for (const StageStats& s : stages_)
    if (s.name == stage) return s.fallbacks;
  return 0;
}

void Diagnostics::print(std::ostream& out) const {
  out << strprintf("diagnostics: status=%s, %zu fallback(s)\n",
                   status_code_name(status()), total_fallbacks());
  for (const StageStats& s : stages_) {
    out << strprintf("  stage %-12s: %9.3f ms  (%zu call(s), %zu fallback(s))\n",
                     s.name.c_str(), s.seconds * 1e3, s.calls, s.fallbacks);
  }
  for (const StageCounter& c : counters_) {
    out << strprintf("  counter %s.%s = %llu\n", c.stage.c_str(),
                     c.name.c_str(),
                     static_cast<unsigned long long>(c.value));
  }
  for (const DiagnosticEvent& e : events_) {
    out << "  " << (e.is_fallback ? "fallback" : "warning ") << " ["
        << e.stage << "] " << e.message << '\n';
  }
}

std::string Diagnostics::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

StageTimerScope::StageTimerScope(Diagnostics* diag, std::string name)
    : diag_(diag), name_(std::move(name)),
      start_seconds_(diag ? monotonic_seconds() : 0.0) {}

StageTimerScope::~StageTimerScope() {
  if (diag_ != nullptr)
    diag_->record_stage(name_, monotonic_seconds() - start_seconds_);
}

}  // namespace specpart
