#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace specpart {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SP_ASSERT(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SP_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SP_ASSERT(w >= 0.0);
    total += w;
  }
  SP_REQUIRE(total > 0.0, "next_weighted needs a positive total weight");
  double x = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace specpart
