#include "util/error.h"

#include <cstdio>
#include <cstdlib>

namespace specpart::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "%s:%d: assertion failed: %s", file, line, expr);
  if (!msg.empty()) std::fprintf(stderr, " (%s)", msg.c_str());
  std::fprintf(stderr, "\n");
  std::abort();
}

}  // namespace specpart::detail
