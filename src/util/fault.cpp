#include "util/fault.h"

#ifdef SPECPART_FAULT_INJECTION

#include <map>
#include <mutex>
#include <string>

namespace specpart::fault {

namespace {

struct PointState {
  std::size_t armed = 0;      // remaining queries that fire
  std::size_t triggered = 0;  // fires since the last reset()
};

// Single registry behind a mutex: the network fault points (net.*) are
// queried from shard-client and health-check threads concurrently with the
// test thread arming them, so lock-free access would race. Fault injection
// is test-only and off the hot path, so a plain mutex is fine.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, PointState>& registry() {
  static std::map<std::string, PointState> points;
  return points;
}

}  // namespace

void arm(std::string_view point, std::size_t count) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[std::string(point)].armed = count;
}

void reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
}

bool fires(std::string_view point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(std::string(point));
  if (it == registry().end() || it->second.armed == 0) return false;
  --it->second.armed;
  ++it->second.triggered;
  return true;
}

std::size_t triggered(std::string_view point) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto it = registry().find(std::string(point));
  return it == registry().end() ? 0 : it->second.triggered;
}

}  // namespace specpart::fault

#endif  // SPECPART_FAULT_INJECTION
