#include "util/fault.h"

#ifdef SPECPART_FAULT_INJECTION

#include <map>
#include <string>

namespace specpart::fault {

namespace {

struct PointState {
  std::size_t armed = 0;      // remaining queries that fire
  std::size_t triggered = 0;  // fires since the last reset()
};

// Single registry, no locking: fault injection is a test-only facility and
// the test harness drives the pipelines from one thread.
std::map<std::string, PointState>& registry() {
  static std::map<std::string, PointState> points;
  return points;
}

}  // namespace

void arm(std::string_view point, std::size_t count) {
  registry()[std::string(point)].armed = count;
}

void reset() { registry().clear(); }

bool fires(std::string_view point) {
  auto it = registry().find(std::string(point));
  if (it == registry().end() || it->second.armed == 0) return false;
  --it->second.armed;
  ++it->second.triggered;
  return true;
}

std::size_t triggered(std::string_view point) {
  auto it = registry().find(std::string(point));
  return it == registry().end() ? 0 : it->second.triggered;
}

}  // namespace specpart::fault

#endif  // SPECPART_FAULT_INJECTION
