// Minimal command-line flag parsing for the bench/ and examples/ binaries.
//
// Supports `--flag value`, `--flag=value`, and boolean `--flag`. Unknown
// flags raise specpart::Error so typos do not silently change experiments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specpart {

/// Parsed command line: declared flags with defaults, plus positionals.
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declares a flag before parsing. `help` appears in usage output.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Throws specpart::Error on unknown or malformed flags.
  /// Recognizes --help: prints usage and returns false (caller should exit).
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Renders the usage/help text.
  std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positionals_;
};

}  // namespace specpart
