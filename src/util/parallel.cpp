#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace specpart {

namespace {

// Upper bound on pool workers: oversubscription beyond this is never useful
// and a runaway thread request should not exhaust process limits.
constexpr std::size_t kMaxWorkers = 64;

// Re-entrancy guard: a worker (or a caller already inside run_blocks) that
// reaches run_blocks again drains the nested job inline instead of
// deadlocking on the single-job pool.
thread_local bool t_inside_pool = false;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

std::size_t env_threads() {
  const char* s = std::getenv("SPECPART_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::size_t>(v);
}

std::size_t ParallelConfig::threads() const {
  std::size_t t = num_threads;
  if (t == 0) {
    t = env_threads();
    if (t == 0) t = hardware_threads();
  }
  return std::max<std::size_t>(1, std::min(t, kMaxWorkers));
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;  // wakes workers when a job is posted
  std::condition_variable done_cv;  // wakes the caller when a job drains
  std::vector<std::thread> workers;

  // Current job (one at a time; run_blocks holds `serial` for its
  // duration). `epoch` tells sleeping workers a new job was posted.
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t limit = 0;
  std::atomic<std::size_t> next{0};
  std::size_t active = 0;  // workers currently inside the job
  std::exception_ptr error;
  std::uint64_t epoch = 0;
  bool stop = false;

  // Serializes whole jobs: concurrent run_blocks callers (not a supported
  // hot-path pattern, but must not corrupt state) queue here.
  std::mutex job_mutex;

  void drain() {
    // Claims blocks until the job is exhausted; first exception wins.
    for (;;) {
      const std::size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= limit) return;
      try {
        (*fn)(b);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    t_inside_pool = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      work_cv.wait(lock, [&] { return stop || epoch != seen; });
      if (stop) return;
      seen = epoch;
      if (fn == nullptr) continue;
      ++active;
      lock.unlock();
      drain();
      lock.lock();
      if (--active == 0) done_cv.notify_all();
    }
  }

  void ensure_workers(std::size_t count) {
    // Grow lazily to the largest count ever requested (minus the caller).
    while (workers.size() < count)
      workers.emplace_back([this] { worker_loop(); });
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

void ThreadPool::run_blocks(std::size_t num_blocks, std::size_t num_threads,
                            const std::function<void(std::size_t)>& fn) {
  if (num_blocks == 0) return;
  if (num_threads <= 1 || num_blocks == 1 || t_inside_pool) {
    for (std::size_t b = 0; b < num_blocks; ++b) fn(b);
    return;
  }
  Impl& p = *impl_;
  std::lock_guard<std::mutex> job_lock(p.job_mutex);
  const std::size_t helpers =
      std::min(num_threads, std::min(num_blocks, kMaxWorkers)) - 1;
  {
    std::lock_guard<std::mutex> lock(p.mutex);
    p.ensure_workers(helpers);
    p.fn = &fn;
    p.limit = num_blocks;
    p.next.store(0, std::memory_order_relaxed);
    p.error = nullptr;
    ++p.epoch;
  }
  p.work_cv.notify_all();

  // The caller participates; late-waking workers find the counter exhausted
  // and go back to sleep.
  t_inside_pool = true;
  p.drain();
  t_inside_pool = false;

  std::unique_lock<std::mutex> lock(p.mutex);
  p.done_cv.wait(lock, [&] { return p.active == 0; });
  p.fn = nullptr;
  if (p.error) {
    std::exception_ptr e = p.error;
    p.error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace specpart
