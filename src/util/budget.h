// Bounded-compute contract for the partitioning pipelines.
//
// A ComputeBudget caps a run by wall-clock deadline and/or a global
// iteration count. Stages that loop (Lanczos, the MELO greedy, FM passes)
// poll the budget and, when it is exhausted, stop refining and return the
// best *valid* result built so far — never a partial/invalid one. The
// default-constructed budget is unlimited and costs one predictable branch
// per poll.
//
// The budget is shared mutable state for one pipeline run: pass a pointer
// to the same instance into every stage (nullptr = unlimited everywhere).
#pragma once

#include <chrono>
#include <cstddef>

namespace specpart {

class ComputeBudget {
 public:
  /// Unlimited budget.
  ComputeBudget() = default;

  /// Budget limited by a wall-clock deadline measured from construction
  /// (or the last restart()). `seconds <= 0` is an already-expired budget:
  /// every stage degrades to its cheapest valid behavior.
  static ComputeBudget with_deadline(double seconds) {
    ComputeBudget b;
    b.deadline_seconds_ = seconds;
    b.restart();
    return b;
  }

  /// Budget limited by a total iteration count shared across stages (one
  /// Lanczos iteration, one greedy selection and one FM move each cost 1).
  static ComputeBudget with_max_iterations(std::size_t iterations) {
    ComputeBudget b;
    b.max_iterations_ = iterations;
    b.limited_iterations_ = true;
    b.restart();
    return b;
  }

  /// Re-stamps the deadline clock and clears the consumed-iteration count.
  void restart() {
    start_ = Clock::now();
    iterations_used_ = 0;
  }

  void set_deadline_seconds(double seconds) { deadline_seconds_ = seconds; }
  void set_max_iterations(std::size_t iterations) {
    max_iterations_ = iterations;
    limited_iterations_ = true;
  }

  bool unlimited() const {
    return deadline_seconds_ < 0.0 && !limited_iterations_;
  }

  /// Consumes `cost` iterations and reports whether work may continue.
  /// Deadline is checked as well, so a polling loop only needs charge().
  bool charge(std::size_t cost = 1) {
    iterations_used_ += cost;
    return !exhausted();
  }

  bool exhausted() const {
    if (limited_iterations_ && iterations_used_ >= max_iterations_)
      return true;
    if (deadline_seconds_ >= 0.0 && elapsed_seconds() >= deadline_seconds_)
      return true;
    return false;
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::size_t iterations_used() const { return iterations_used_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
  double deadline_seconds_ = -1.0;  // < 0 = no deadline
  std::size_t max_iterations_ = 0;
  bool limited_iterations_ = false;
  std::size_t iterations_used_ = 0;
};

/// Budget poll that tolerates a null budget (the common "unlimited" case).
inline bool budget_ok(ComputeBudget* budget) {
  return budget == nullptr || !budget->exhausted();
}

/// Charges `cost` against a possibly-null budget; true = keep going.
inline bool budget_charge(ComputeBudget* budget, std::size_t cost = 1) {
  return budget == nullptr || budget->charge(cost);
}

}  // namespace specpart
