// Structured pipeline diagnostics: status codes, per-stage wall-clock
// timings, warnings, and retry/fallback counters.
//
// The library's third error-reporting channel (after the Error exception
// and SP_ASSERT, see error.h): conditions that are *recovered from* — an
// eigensolver that needed a restart, a truncated eigenbasis, an exhausted
// compute budget — must not abort the pipeline, but must not be silent
// either. Every driver accepts an optional Diagnostics sink; passing
// nullptr (the default) keeps the hot paths free of bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace specpart {

/// Overall outcome of a pipeline run.
enum class StatusCode {
  /// Everything converged on the first attempt within budget.
  kOk = 0,
  /// A valid result was produced, but only via a fallback (eigensolver
  /// retry, truncated eigenbasis, degraded d, ...).
  kDegraded = 1,
  /// The compute budget ran out; the result is the best found so far.
  kBudgetExhausted = 2,
};

const char* status_code_name(StatusCode code);

/// Accumulated statistics of one named pipeline stage.
struct StageStats {
  std::string name;
  double seconds = 0.0;
  /// Calls into the stage (a stage entered twice accumulates).
  std::size_t calls = 0;
  /// Recovery actions taken inside this stage (see Diagnostics::fallback).
  std::size_t fallbacks = 0;
};

/// One recorded warning: a recovered anomaly worth surfacing to the user.
struct DiagnosticEvent {
  std::string stage;
  std::string message;
  /// True when the event was a fallback (a recovery action), false when it
  /// is an informational warning.
  bool is_fallback = false;
};

/// A named integer counter attached to a stage (e.g. the eigensolve
/// stage's per-run FLOP and Laplacian-bytes-moved totals). Counters are
/// cumulative across calls into the stage, like StageStats::seconds.
struct StageCounter {
  std::string stage;
  std::string name;
  std::uint64_t value = 0;
};

/// Mutable diagnostics sink threaded through the partitioning pipelines.
/// Not thread-safe; one instance per pipeline run.
class Diagnostics {
 public:
  /// Accumulates `seconds` of wall-clock time into stage `name`
  /// (creating the stage on first use).
  void record_stage(const std::string& name, double seconds);

  /// Records an informational warning against a stage.
  void warn(const std::string& stage, const std::string& message);

  /// Records a recovery action (retry, fallback, truncation) against a
  /// stage and downgrades the status to at least kDegraded.
  void fallback(const std::string& stage, const std::string& message);

  /// Marks the run as budget-limited (kBudgetExhausted dominates
  /// kDegraded in the overall status).
  void mark_budget_exhausted(const std::string& stage);

  StatusCode status() const;
  bool budget_exhausted() const { return budget_exhausted_; }

  /// Accumulates `delta` into counter (`stage`, `name`), creating it on
  /// first use. Zero deltas still create the counter so consumers can
  /// distinguish "instrumented, measured 0" from "not instrumented".
  void add_counter(const std::string& stage, const std::string& name,
                   std::uint64_t delta);

  /// Value of counter (`stage`, `name`); 0 if never recorded.
  std::uint64_t counter(const std::string& stage,
                        const std::string& name) const;

  const std::vector<StageStats>& stages() const { return stages_; }
  const std::vector<DiagnosticEvent>& events() const { return events_; }
  const std::vector<StageCounter>& counters() const { return counters_; }

  /// Total fallbacks across all stages.
  std::size_t total_fallbacks() const;

  /// Fallbacks recorded against one stage (0 if the stage is unknown).
  std::size_t stage_fallbacks(const std::string& stage) const;

  /// Human-readable rendering: status, per-stage table, event log.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  StageStats& stage_entry(const std::string& name);

  std::vector<StageStats> stages_;
  std::vector<DiagnosticEvent> events_;
  std::vector<StageCounter> counters_;
  bool degraded_ = false;
  bool budget_exhausted_ = false;
};

/// RAII helper: times a scope and accumulates it into `diag` (may be
/// nullptr, in which case the scope is free).
class StageTimerScope {
 public:
  StageTimerScope(Diagnostics* diag, std::string name);
  ~StageTimerScope();
  StageTimerScope(const StageTimerScope&) = delete;
  StageTimerScope& operator=(const StageTimerScope&) = delete;

 private:
  Diagnostics* diag_;
  std::string name_;
  double start_seconds_;
};

}  // namespace specpart
