// Deterministic pseudo-random number generation.
//
// All randomized components of the library (synthetic benchmark generator,
// multi-start FM, tie-breaking) draw from Rng, a xoshiro256** generator
// seeded through splitmix64. Identical seeds give identical streams on every
// platform, which makes experiments and tests reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace specpart {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal variate (Marsaglia polar method).
  double next_normal();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index from a discrete distribution given non-negative
  /// weights. Requires at least one strictly positive weight.
  std::size_t next_weighted(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// splitmix64 step; used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace specpart
