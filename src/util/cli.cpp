#include "util/cli.h"

#include <cstdio>

#include "util/error.h"
#include "util/stringutil.h"

namespace specpart {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  SP_REQUIRE(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{default_value, default_value, help};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positionals_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    SP_CHECK_INPUT(it != flags_.end(), "unknown flag --" + name);
    if (!have_value) {
      // Boolean flags may omit the value; others consume the next token.
      const bool bool_like = it->second.default_value == "true" ||
                             it->second.default_value == "false";
      if (bool_like && (i + 1 >= argc || starts_with(argv[i + 1], "--"))) {
        value = "true";
      } else {
        SP_CHECK_INPUT(i + 1 < argc, "flag --" + name + " needs a value");
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  SP_REQUIRE(it != flags_.end(), "undeclared flag queried: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return static_cast<std::int64_t>(parse_double(get(name), "--" + name));
}

double Cli::get_double(const std::string& name) const {
  return parse_double(get(name), "--" + name);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  SP_CHECK_INPUT(v == "true" || v == "false",
                 "--" + name + " expects true/false, got '" + v + "'");
  return v == "true";
}

std::string Cli::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += strprintf("  --%-18s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_value.c_str());
  }
  return out;
}

}  // namespace specpart
