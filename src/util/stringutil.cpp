#include "util/stringutil.h"

#include <cctype>
#include <cstdint>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace specpart {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split_char(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::size_t parse_size(std::string_view s, std::string_view what) {
  s = trim(s);
  SP_CHECK_INPUT(!s.empty(), std::string(what) + ": empty integer field");
  std::size_t value = 0;
  for (char c : s) {
    SP_CHECK_INPUT(std::isdigit(static_cast<unsigned char>(c)),
                   std::string(what) + ": bad integer '" + std::string(s) + "'");
    const auto digit = static_cast<std::size_t>(c - '0');
    SP_CHECK_INPUT(value <= (SIZE_MAX - digit) / 10,
                   std::string(what) + ": integer overflow in '" +
                       std::string(s) + "'");
    value = value * 10 + digit;
  }
  return value;
}

double parse_double(std::string_view s, std::string_view what) {
  const std::string buf(trim(s));
  SP_CHECK_INPUT(!buf.empty(), std::string(what) + ": empty numeric field");
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  SP_CHECK_INPUT(end == buf.c_str() + buf.size(),
                 std::string(what) + ": bad number '" + buf + "'");
  return v;
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace specpart
