// Content-addressed fingerprinting built on splitmix64.
//
// The serving layer keys its embedding cache by a fingerprint of everything
// the eigensolve depends on (graph CSR arrays, solver options, seed). The
// hasher is a simple streaming construction: every absorbed word advances a
// splitmix64 state twice (two independent lanes with distinct initial
// states), giving a 128-bit digest. It is *not* cryptographic — it defends
// against accidental collisions across workloads, not adversaries — but it
// is deterministic across platforms and runs, which is what a
// content-addressed cache needs: the same request always maps to the same
// key, on every machine, at every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace specpart {

/// 128-bit content digest. Comparable and hashable (for use as a map key).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits (hi then lo), e.g. for logs and metrics.
  std::string hex() const;
};

/// std::unordered_map adapter: the digest is already uniformly mixed, so
/// folding the two lanes is enough.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Streaming hasher. Absorb words/bytes in a fixed order, then digest().
/// The digest depends on the exact absorb sequence (values *and* order),
/// so callers must absorb length prefixes before variable-length data —
/// the mix_span/mix_string helpers do this for you.
class Hasher {
 public:
  Hasher();

  void mix_u64(std::uint64_t v);
  void mix_i64(std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); }
  void mix_size(std::size_t v) { mix_u64(static_cast<std::uint64_t>(v)); }
  void mix_bool(bool v) { mix_u64(v ? 1 : 0); }

  /// Bit pattern of the double (so -0.0 != +0.0 and NaNs are stable).
  void mix_double(double v);

  /// Length-prefixed byte string.
  void mix_string(std::string_view s);

  /// Length-prefixed spans of trivially-hashable elements.
  void mix_span(const std::vector<double>& v);
  void mix_span(const std::vector<std::uint32_t>& v);
  void mix_span(const std::vector<std::size_t>& v);

  Fingerprint digest() const;

 private:
  std::uint64_t lane0_;
  std::uint64_t lane1_;
};

}  // namespace specpart
