#include "util/hashing.h"

#include <cstring>

#include "util/rng.h"
#include "util/stringutil.h"

namespace specpart {

namespace {

// Distinct lane seeds so the two splitmix64 streams are independent; the
// values are arbitrary odd constants (golden-ratio relatives).
constexpr std::uint64_t kLane0Init = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kLane1Init = 0xC2B2AE3D27D4EB4FULL;

}  // namespace

std::string Fingerprint::hex() const {
  return strprintf("%016llx%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

Hasher::Hasher() : lane0_(kLane0Init), lane1_(kLane1Init) {}

void Hasher::mix_u64(std::uint64_t v) {
  // Absorb-by-perturb: xor the word into each lane state, then advance the
  // lane with a full splitmix64 step. Each absorbed word therefore diffuses
  // through every later digest bit.
  lane0_ ^= v;
  (void)splitmix64(lane0_);
  lane1_ ^= v + 0x632BE59BD9B4E019ULL;
  (void)splitmix64(lane1_);
}

void Hasher::mix_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  mix_u64(bits);
}

void Hasher::mix_string(std::string_view s) {
  mix_size(s.size());
  std::uint64_t word = 0;
  std::size_t fill = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * fill);
    if (++fill == 8) {
      mix_u64(word);
      word = 0;
      fill = 0;
    }
  }
  if (fill > 0) mix_u64(word);
}

void Hasher::mix_span(const std::vector<double>& v) {
  mix_size(v.size());
  for (const double x : v) mix_double(x);
}

void Hasher::mix_span(const std::vector<std::uint32_t>& v) {
  mix_size(v.size());
  // Pack two 32-bit words per absorbed 64-bit word.
  std::size_t i = 0;
  for (; i + 1 < v.size(); i += 2)
    mix_u64(static_cast<std::uint64_t>(v[i]) |
            (static_cast<std::uint64_t>(v[i + 1]) << 32));
  if (i < v.size()) mix_u64(v[i]);
}

void Hasher::mix_span(const std::vector<std::size_t>& v) {
  mix_size(v.size());
  for (const std::size_t x : v) mix_size(x);
}

Fingerprint Hasher::digest() const {
  // Finalize copies of the lanes so digest() can be called mid-stream.
  std::uint64_t a = lane0_;
  std::uint64_t b = lane1_;
  Fingerprint f;
  f.hi = splitmix64(a) ^ splitmix64(b);
  f.lo = splitmix64(a) + splitmix64(b);
  return f;
}

}  // namespace specpart
