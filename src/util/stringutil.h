// Small string helpers shared by the netlist parsers and table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace specpart {

/// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view s);

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> split_char(std::string_view s, char delim);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; throws specpart::Error on junk.
std::size_t parse_size(std::string_view s, std::string_view what);

/// Parses a double; throws specpart::Error on junk.
double parse_double(std::string_view s, std::string_view what);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace specpart
