// Wall-clock timing helper used by the experiment harness (Table 5 reports
// ordering-construction runtimes).
#pragma once

#include <chrono>

namespace specpart {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace specpart
