// Compile-time-gated fault injection for resilience testing.
//
// A fault *point* is a named site in library code that asks "should I fail
// here?" via SP_FAULT("name"). Tests arm points with fault::arm(name, n):
// the next n queries of that point report "fire" and the library exercises
// its recovery path (Lanczos breakdown, non-convergence, ...).
//
// The whole subsystem is gated by the CMake option SPECPART_FAULT_INJECTION
// (compile definition of the same name). When the option is OFF, SP_FAULT
// expands to the literal `false` and every helper is an empty inline — the
// compiler deletes the branches, making the hooks zero-cost in production
// builds. Fault points never change behavior unless explicitly armed.
#pragma once

#include <cstddef>
#include <string_view>

namespace specpart::fault {

#ifdef SPECPART_FAULT_INJECTION

/// Arms `point`: its next `count` queries fire. Re-arming replaces the
/// previous count.
void arm(std::string_view point, std::size_t count = 1);

/// Disarms every point and clears all trigger counts.
void reset();

/// Queries `point`; fires (and consumes one armed count) when armed.
/// Library code should use SP_FAULT instead of calling this directly.
bool fires(std::string_view point);

/// How many times `point` has fired since the last reset().
std::size_t triggered(std::string_view point);

#else  // !SPECPART_FAULT_INJECTION — everything folds away.

inline void arm(std::string_view, std::size_t = 1) {}
inline void reset() {}
inline bool fires(std::string_view) { return false; }
inline std::size_t triggered(std::string_view) { return 0; }

#endif

/// RAII guard for tests: disarms everything on scope exit so one test's
/// armed faults cannot leak into the next.
class ScopedFaults {
 public:
  ScopedFaults() = default;
  ~ScopedFaults() { reset(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace specpart::fault

#ifdef SPECPART_FAULT_INJECTION
#define SP_FAULT(point) (::specpart::fault::fires(point))
#else
#define SP_FAULT(point) (false)
#endif
