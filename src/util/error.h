// Error handling primitives for specpart.
//
// Two categories of failure are distinguished throughout the library:
//  * Recoverable input errors (malformed netlist file, infeasible balance
//    constraint, ...) throw specpart::Error so callers can report and retry.
//  * Contract violations (indices out of range, broken invariants) abort via
//    SP_ASSERT / SP_REQUIRE; they indicate a bug, not bad input.
#pragma once

#include <stdexcept>
#include <string>

namespace specpart {

/// Exception type for all recoverable errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Prints "<file>:<line>: assertion failed: <expr> (<msg>)" and aborts.
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace specpart

/// Always-on contract check (enabled in release builds too: partitioning
/// bugs are silent quality bugs otherwise).
#define SP_ASSERT(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specpart::detail::assert_fail(#cond, __FILE__, __LINE__, "");       \
  } while (0)

/// Contract check with an explanatory message (any streamable expression).
#define SP_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::specpart::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));    \
  } while (0)

/// Throws specpart::Error with the given message when `cond` is false.
/// For validating *input* (files, user-supplied parameters).
#define SP_CHECK_INPUT(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) throw ::specpart::Error(msg);                              \
  } while (0)
