#include "service/service.h"

#include <algorithm>
#include <chrono>

#include "core/drivers.h"
#include "part/objectives.h"
#include "util/budget.h"
#include "util/error.h"
#include "util/status.h"

namespace specpart::service {

PartitionService::PartitionService(ServiceOptions opts)
    : opts_(opts), cache_(opts.cache) {
  const std::size_t workers = std::max<std::size_t>(1, opts_.num_workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PartitionService::~PartitionService() { shutdown(); }

void PartitionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  not_empty_cv_.notify_all();
  not_full_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

PartitionResponse PartitionService::execute(const PartitionRequest& req,
                                            Diagnostics* diag) {
  metrics_.on_submitted();
  const auto start = std::chrono::steady_clock::now();
  PartitionResponse resp = execute_internal(req, diag);
  metrics_.on_completed(
      resp.status,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

std::future<PartitionResponse> PartitionService::enqueue_locked(
    PartitionRequest&& req, std::unique_lock<std::mutex>& lock) {
  Job job;
  job.request = std::move(req);
  job.accepted = std::chrono::steady_clock::now();
  std::future<PartitionResponse> fut = job.promise.get_future();
  queue_.push_back(std::move(job));
  metrics_.on_submitted();
  metrics_.on_enqueued(queue_.size());
  lock.unlock();
  not_empty_cv_.notify_one();
  return fut;
}

std::future<PartitionResponse> PartitionService::submit(PartitionRequest req) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_cv_.wait(lock, [this] {
    return stopping_ || queue_.size() < opts_.queue_capacity;
  });
  SP_CHECK_INPUT(!stopping_, "PartitionService: submit after shutdown");
  return enqueue_locked(std::move(req), lock);
}

bool PartitionService::try_submit(PartitionRequest req,
                                  std::future<PartitionResponse>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  SP_CHECK_INPUT(!stopping_, "PartitionService: submit after shutdown");
  if (queue_.size() >= opts_.queue_capacity) {
    lock.unlock();
    metrics_.on_rejected();
    return false;
  }
  out = enqueue_locked(std::move(req), lock);
  return true;
}

void PartitionService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_cv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      metrics_.on_dequeued(queue_.size());
    }
    not_full_cv_.notify_one();
    PartitionResponse resp = execute_internal(job.request);
    metrics_.on_completed(
        resp.status, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - job.accepted)
                         .count());
    job.promise.set_value(std::move(resp));
  }
}

PartitionResponse PartitionService::execute_internal(
    const PartitionRequest& req, Diagnostics* external_diag) {
  PartitionResponse resp;
  resp.id = req.id;
  resp.k = req.k;
  if (req.pipeline.objective != core::ObjectiveModel::kUnnormalized)
    metrics_.on_normalized_objective();
  try {
    SP_CHECK_INPUT(req.graph.num_nodes() >= 2,
                   "request graph needs at least 2 vertices");
    SP_CHECK_INPUT(req.k >= 2, "request k must be >= 2");
    SP_CHECK_INPUT(req.k <= req.graph.num_nodes(),
                   "request k exceeds the vertex count");

    Diagnostics local_diag;
    Diagnostics& diag = external_diag != nullptr ? *external_diag : local_diag;
    ComputeBudget budget;
    core::MeloOptions m;
    static_cast<core::PipelineConfig&>(m) = req.pipeline;
    // Kernel threading is a server decision (see service.h).
    m.parallel = opts_.parallel;
    // Model admission is too: the server's cap overrides whatever the
    // request carried.
    if (opts_.max_clique_pairs > 0) m.max_clique_pairs = opts_.max_clique_pairs;
    m.diagnostics = &diag;
    if (opts_.deadline_seconds > 0.0) {
      budget = ComputeBudget::with_deadline(opts_.deadline_seconds);
      m.budget = &budget;
    }
    m.embedding_provider = cache_.provider();

    if (req.k == 2) {
      const core::MeloBipartitionResult r =
          core::melo_bipartition(req.graph, m, req.balance);
      resp.cut = r.cut;
      resp.ratio_cut = r.ratio_cut;
      resp.scaled_cost = part::scaled_cost(req.graph, r.partition);
      resp.eigenvectors_used = r.eigenvectors_used;
      resp.eigen_converged = r.eigen_converged;
      resp.budget_exhausted = r.budget_exhausted;
      resp.assignment = r.partition.assignment();
    } else {
      const core::MeloMultiwayResult r =
          core::melo_multiway(req.graph, req.k, m);
      resp.scaled_cost = r.scaled_cost;
      resp.cut = part::cut_nets(req.graph, r.partition);
      resp.ratio_cut = 0.0;
      resp.eigenvectors_used = r.eigenvectors_used;
      resp.eigen_converged = r.eigen_converged;
      resp.budget_exhausted = r.budget_exhausted;
      resp.assignment = r.partition.assignment();
    }
    // Response status reflects *result* properties only (convergence,
    // budget), never process properties (cache hits, fallback counts, who
    // served it) — process detail lives in metrics/diagnostics. This is
    // what keeps cold and cached responses byte-identical even when the
    // cold solve needed a recovered fallback.
    resp.status = resp.budget_exhausted
                      ? std::string(status_token(StatusCode::kBudgetExhausted))
                      : resp.eigen_converged
                            ? std::string(status_token(StatusCode::kOk))
                            : std::string(status_token(StatusCode::kDegraded));
  } catch (const Error& e) {
    resp.status = "error";
    resp.error = e.what();
    resp.assignment.clear();
  }
  return resp;
}

MetricsSnapshot PartitionService::snapshot() const {
  MetricsSnapshot s = metrics_.snapshot();
  s.workers = workers_.size();
  const EmbeddingCacheStats c = cache_.stats();
  s.cache_lookups = c.lookups;
  s.cache_hits = c.hits;
  s.cache_prefix_hits = c.prefix_hits;
  s.cache_evictions = c.evictions;
  s.cache_bytes = c.bytes;
  s.cache_entries = c.entries;
  s.cache_hit_rate = c.hit_rate();
  if (cache_.disk_enabled()) {
    const storage::StoreStats d = cache_.disk_stats();
    s.storage.present = true;
    s.storage.disk_hits = d.hits;
    s.storage.disk_misses = d.misses;
    s.storage.spills = d.spills;
    s.storage.spill_failures = d.spill_failures;
    s.storage.evictions = d.evictions;
    s.storage.corrupt_quarantined = d.corrupt_quarantined;
    s.storage.bytes_on_disk = d.bytes_on_disk;
    s.storage.disk_entries = d.entries;
  }
  return s;
}

}  // namespace specpart::service
