#include "service/cache.h"

#include <mutex>
#include <utility>

#include "util/stringutil.h"
#include "util/timer.h"

namespace specpart::service {

namespace {

/// Leading `count` pairs of a basis, presented as if the caller had asked
/// for exactly `count`. When the basis holds fewer pairs (small graph or a
/// degraded solve) the whole basis is returned with the shortfall flagged,
/// mirroring compute_eigenbasis's own truncation accounting.
spectral::EigenBasis slice_basis(const spectral::EigenBasis& full,
                                 std::size_t count) {
  spectral::EigenBasis out;
  out.n = full.n;
  out.laplacian_trace = full.laplacian_trace;
  out.requested = count;
  out.budget_exhausted = full.budget_exhausted;
  const std::size_t d = std::min(count, full.dimension());
  out.values.assign(full.values.begin(),
                    full.values.begin() + static_cast<std::ptrdiff_t>(d));
  out.vectors = linalg::DenseMatrix(full.n, d);
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t i = 0; i < full.n; ++i)
      out.vectors.at(i, j) = full.vectors.at(i, j);
  out.converged_pairs = std::min(full.converged_pairs, d);
  out.converged = out.converged_pairs == d && d > 0;
  out.truncated = d < count && (full.truncated || d < full.dimension());
  return out;
}

/// Solver/strategy tokens of the options that produce a basis, recorded
/// in the spilled file header for operators inspecting a store directory.
std::string solver_token_of(const spectral::EmbeddingOptions& opts) {
  return std::string(core::solver_backend_token(opts.solver.backend));
}
std::string strategy_token_of(const spectral::EmbeddingOptions& opts) {
  return std::string(core::solver_strategy_token(opts.solver.strategy));
}
/// Objective token, or "" for the default: the empty string keeps default
/// spills writing headers byte-identical to the pre-objective layout.
std::string objective_token_of(const spectral::EmbeddingOptions& opts) {
  if (opts.objective == linalg::ObjectiveModel::kUnnormalized) return {};
  return std::string(core::objective_model_token(opts.objective));
}

}  // namespace

EmbeddingCache::EmbeddingCache(EmbeddingCacheOptions opts)
    : opts_(std::move(opts)) {
  // A misconfigured --cache-dir (uncreatable directory) throws here:
  // failing fast at startup beats silently serving without durability.
  if (!opts_.cache_dir.empty() && opts_.max_bytes > 0) {
    storage::StoreOptions store;
    store.dir = opts_.cache_dir;
    store.budget_bytes = opts_.disk_budget_bytes;
    store.chunk_cols = opts_.disk_chunk_cols;
    disk_ = std::make_unique<storage::StoreIndex>(std::move(store));
  }
}

std::size_t EmbeddingCache::quantized_count(std::size_t count) const {
  const std::size_t q = std::max<std::size_t>(1, opts_.dim_quantum);
  return ((count + q - 1) / q) * q;
}

std::size_t EmbeddingCache::basis_bytes(const spectral::EigenBasis& basis) {
  constexpr std::size_t kEntryOverhead = 256;  // map node, LRU node, struct
  return kEntryOverhead + sizeof(double) * basis.values.size() +
         sizeof(double) * basis.vectors.rows() * basis.vectors.cols();
}

Fingerprint EmbeddingCache::eigen_key(const graph::Graph& g,
                                      const spectral::EmbeddingOptions& opts,
                                      std::size_t solve_count) {
  Hasher h;
  h.mix_string("specpart.eigenbasis.v1");
  // Graph content: the CSR arrays fully determine the Laplacian. The
  // canonical unique edge list (u < v, ascending) plus the vertex count is
  // that content without the redundant adjacency mirror.
  h.mix_size(g.num_nodes());
  h.mix_size(g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    h.mix_u64(static_cast<std::uint64_t>(e.u) |
              (static_cast<std::uint64_t>(e.v) << 32));
    h.mix_double(e.weight);
  }
  // Solver options: anything that can change the returned bits. The
  // backend token keeps scalar- and block-solved bases in disjoint cache
  // domains — their eigenvectors agree only to tolerance, not bitwise.
  h.mix_bool(opts.skip_trivial);
  h.mix_string(core::solver_backend_token(opts.solver.backend));
  h.mix_size(opts.solver.dense_threshold);
  h.mix_size(opts.solver.dense_fallback_limit);
  h.mix_double(opts.solver.tolerance);
  h.mix_size(opts.solver.max_iterations);
  h.mix_size(opts.solver.block_size);
  // Strategy + V-cycle knobs: a flat-solved and a multilevel-solved basis
  // agree only to the refine tolerance, never bitwise, so they live in
  // disjoint key domains exactly like the backends above.
  h.mix_string(core::solver_strategy_token(opts.solver.strategy));
  h.mix_size(opts.solver.ml_coarsest_size);
  h.mix_size(opts.solver.ml_refine_degree);
  h.mix_size(opts.solver.ml_refine_sweeps);
  h.mix_double(opts.solver.ml_refine_tolerance);
  // Objective model: normalized and unnormalized bases are spectra of
  // different operators, so they must live in disjoint key domains. Mixed
  // only when non-default so every pre-objective key is bit-preserved.
  if (opts.objective != linalg::ObjectiveModel::kUnnormalized)
    h.mix_string(core::objective_model_token(opts.objective));
  h.mix_u64(opts.seed);
  h.mix_size(solve_count);
  return h.digest();
}

Fingerprint EmbeddingCache::netlist_key(const graph::Hypergraph& h,
                                        model::NetModel net_model,
                                        std::size_t max_net_size,
                                        const spectral::EmbeddingOptions& opts,
                                        std::size_t solve_count) {
  Hasher hs;
  hs.mix_string("specpart.eigenbasis.v2");
  // Model content: pin lists are canonical (the Hypergraph ctor sorts and
  // dedups them), so hashing them verbatim plus the net-model token and
  // the size filter pins down the clique Laplacian without building it.
  hs.mix_string(core::net_model_token(net_model));
  hs.mix_size(max_net_size);
  hs.mix_size(h.num_nodes());
  hs.mix_size(h.num_nets());
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    hs.mix_size(pins.size());
    hs.mix_span(pins);
    hs.mix_double(h.net_weight(e));
  }
  // Solver options: anything that can change the returned bits. The
  // backend token keeps scalar- and block-solved bases in disjoint cache
  // domains — a scalar-warmed cache must miss under solver=block.
  hs.mix_bool(opts.skip_trivial);
  hs.mix_string(core::solver_backend_token(opts.solver.backend));
  hs.mix_size(opts.solver.dense_threshold);
  hs.mix_size(opts.solver.dense_fallback_limit);
  hs.mix_double(opts.solver.tolerance);
  hs.mix_size(opts.solver.max_iterations);
  hs.mix_size(opts.solver.block_size);
  // Strategy + V-cycle knobs, mirroring eigen_key: a flat-warmed cache
  // must miss under strategy=multilevel and vice versa.
  hs.mix_string(core::solver_strategy_token(opts.solver.strategy));
  hs.mix_size(opts.solver.ml_coarsest_size);
  hs.mix_size(opts.solver.ml_refine_degree);
  hs.mix_size(opts.solver.ml_refine_sweeps);
  hs.mix_double(opts.solver.ml_refine_tolerance);
  // Objective model, mirroring eigen_key: an unnormalized-warmed cache
  // must miss under objective=normalized. Gated so default keys are
  // bit-identical to the pre-objective domain.
  if (opts.objective != linalg::ObjectiveModel::kUnnormalized)
    hs.mix_string(core::objective_model_token(opts.objective));
  hs.mix_u64(opts.seed);
  hs.mix_size(solve_count);
  return hs.digest();
}

spectral::EigenBasis EmbeddingCache::compute(
    const model::CliqueModel& cm, const spectral::EmbeddingOptions& opts,
    Diagnostics* diag, ComputeBudget* budget) {
  if (opts_.max_bytes == 0)  // caching disabled: raw pipeline behavior
    return spectral::compute_eigenbasis(cm.operator_matrix(opts.objective, diag),
                                        opts, diag, budget);

  const std::size_t solve_count = quantized_count(opts.count);
  const Fingerprint key =
      netlist_key(cm.hypergraph(), cm.net_model(),
                  cm.build_options().max_net_size, opts, solve_count);
  if (spectral::EigenBasis hit; lookup(key, opts.count, diag, hit))
    return hit;  // the model was never expanded
  if (spectral::EigenBasis hit; disk_lookup(key, opts.count, opts, diag, hit))
    return hit;  // still never expanded: tier 2 is keyed the same way

  spectral::EmbeddingOptions solve_opts = opts;
  solve_opts.count = solve_count;
  spectral::EigenBasis full = spectral::compute_eigenbasis(
      cm.operator_matrix(opts.objective, diag), solve_opts, diag, budget);
  return insert(key, std::move(full), opts.count, opts, diag);
}

spectral::EigenBasis EmbeddingCache::compute(
    const graph::Graph& g, const spectral::EmbeddingOptions& opts,
    Diagnostics* diag, ComputeBudget* budget) {
  if (opts_.max_bytes == 0)  // caching disabled: raw pipeline behavior
    return spectral::compute_eigenbasis(g, opts, diag, budget);

  const std::size_t solve_count = quantized_count(opts.count);
  const Fingerprint key = eigen_key(g, opts, solve_count);
  if (spectral::EigenBasis hit; lookup(key, opts.count, diag, hit))
    return hit;
  if (spectral::EigenBasis hit; disk_lookup(key, opts.count, opts, diag, hit))
    return hit;

  // Miss: solve at the quantized dimension outside the lock (concurrent
  // misses on the same key both solve; the solver is deterministic, so
  // whichever insertion lands is bit-identical to the other).
  spectral::EmbeddingOptions solve_opts = opts;
  solve_opts.count = solve_count;
  spectral::EigenBasis full =
      spectral::compute_eigenbasis(g, solve_opts, diag, budget);
  return insert(key, std::move(full), opts.count, opts, diag);
}

bool EmbeddingCache::lookup(const Fingerprint& key, std::size_t count,
                            Diagnostics* diag, spectral::EigenBasis& out) {
  Timer lookup_timer;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (count < it->second.basis.dimension()) ++stats_.prefix_hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  out = slice_basis(it->second.basis, count);
  if (diag != nullptr)
    diag->record_stage("embedding_cache_hit", lookup_timer.seconds());
  return true;
}

bool EmbeddingCache::disk_lookup(const Fingerprint& key, std::size_t count,
                                 const spectral::EmbeddingOptions& opts,
                                 Diagnostics* diag,
                                 spectral::EigenBasis& out) {
  if (disk_ == nullptr) return false;
  Timer timer;
  // Always load the *full* stored basis (d_req = 0): promoting a prefix
  // would let a later larger-d request in the same quantized bucket
  // receive a truncated slice, breaking the determinism contract.
  std::optional<spectral::EigenBasis> full = disk_->load(key);
  if (!full) return false;
  promote(key, *full, opts);
  out = slice_basis(*full, count);
  if (diag != nullptr)
    diag->record_stage("embedding_cache_disk_hit", timer.seconds());
  return true;
}

spectral::EigenBasis EmbeddingCache::insert(
    const Fingerprint& key, spectral::EigenBasis full, std::size_t count,
    const spectral::EmbeddingOptions& opts, Diagnostics* diag) {
  const bool clean =
      full.converged && !full.truncated && !full.budget_exhausted;
  spectral::EigenBasis sliced = slice_basis(full, count);
  // The fresh solve's cost counters belong to this run; cache *hits* go
  // through slice_basis alone and correctly report zero solve cost.
  sliced.solve_flops = full.solve_flops;
  sliced.solve_bytes_moved = full.solve_bytes_moved;

  // Write-behind spill before the tier-1 insert, outside the lock (the
  // write is eigensolve-sized I/O). The disk tier takes every clean
  // basis, even one too large for the in-memory budget — a disk budget
  // bigger than RAM is the point of the tier. Failures are counted in
  // the store's stats and degrade to nothing: tier 1 proceeds normally.
  if (disk_ != nullptr && clean)
    disk_->store(key, full, solver_token_of(opts), strategy_token_of(opts),
                 objective_token_of(opts));

  std::vector<std::pair<Fingerprint, Entry>> spilled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t bytes = basis_bytes(full);
    if (!clean || bytes > opts_.max_bytes) {
      ++stats_.uncacheable;
      if (diag != nullptr && clean)
        diag->warn("embedding_cache",
                   strprintf("basis of %zu bytes exceeds the %zu-byte cache "
                             "budget; not cached",
                             bytes, opts_.max_bytes));
      return sliced;
    }
    if (entries_.find(key) == entries_.end()) {  // first concurrent solve wins
      lru_.push_front(key);
      Entry entry;
      entry.basis = std::move(full);
      entry.bytes = bytes;
      entry.solver_token = solver_token_of(opts);
      entry.strategy_token = strategy_token_of(opts);
      entry.objective_token = objective_token_of(opts);
      entry.lru_pos = lru_.begin();
      entries_.emplace(key, std::move(entry));
      stats_.bytes += bytes;
      stats_.entries = entries_.size();
      ++stats_.insertions;
      evict_to_budget_locked(spilled);
    }
  }
  spill(spilled);
  return sliced;
}

void EmbeddingCache::promote(const Fingerprint& key,
                             const spectral::EigenBasis& full,
                             const spectral::EmbeddingOptions& opts) {
  std::vector<std::pair<Fingerprint, Entry>> spilled;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t bytes = basis_bytes(full);
    if (bytes > opts_.max_bytes) return;  // disk-only entry; serve the slice
    if (entries_.find(key) != entries_.end()) return;
    lru_.push_front(key);
    Entry entry;
    entry.basis = full;
    entry.bytes = bytes;
    entry.solver_token = solver_token_of(opts);
    entry.strategy_token = strategy_token_of(opts);
    entry.objective_token = objective_token_of(opts);
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
    stats_.bytes += bytes;
    stats_.entries = entries_.size();
    ++stats_.insertions;
    evict_to_budget_locked(spilled);
  }
  spill(spilled);
}

void EmbeddingCache::evict_to_budget_locked(
    std::vector<std::pair<Fingerprint, Entry>>& spilled) {
  while (stats_.bytes > opts_.max_bytes && lru_.size() > 1) {
    const Fingerprint victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytes -= it->second.bytes;
    spilled.emplace_back(victim, std::move(it->second));
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

void EmbeddingCache::spill(
    const std::vector<std::pair<Fingerprint, Entry>>& spilled) {
  if (disk_ == nullptr) return;
  // Spill-on-evict: usually a no-op (the insert-time spill already
  // persisted the entry and store() is idempotent), but it re-persists
  // entries whose earlier spill failed or was evicted from the disk tier.
  for (const auto& [key, entry] : spilled)
    disk_->store(key, entry.basis, entry.solver_token, entry.strategy_token,
                 entry.objective_token);
}

core::EmbeddingProvider EmbeddingCache::provider() {
  return [this](const model::CliqueModel& cm,
                const spectral::EmbeddingOptions& opts, Diagnostics* diag,
                ComputeBudget* budget) {
    return compute(cm, opts, diag, budget);
  };
}

EmbeddingCacheStats EmbeddingCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

storage::StoreStats EmbeddingCache::disk_stats() const {
  return disk_ == nullptr ? storage::StoreStats{} : disk_->stats();
}

void EmbeddingCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

}  // namespace specpart::service
