// ShardClient: deadline-bounded wire-protocol client for one
// specpart_server backend, with bounded retry (exponential backoff plus
// deterministic jitter) and a per-shard circuit breaker.
//
// Failure model. The serving determinism contract makes every response a
// pure function of the request bytes, so requests are idempotent: a
// connect refusal, a mid-frame disconnect, or a deadline expiry is always
// safe to handle by reconnecting and resending. Each call makes up to
// 1 + max_retries attempts; every failed attempt feeds the breaker's
// consecutive-failure count (passive accounting) and every success resets
// it.
//
// Circuit breaker. closed --(K consecutive failures)--> open
// --(cooldown elapses; one probe admitted)--> half-open --(probe
// succeeds)--> closed, or --(probe fails)--> open again. While open, calls
// return immediately without touching the network, so a dead shard costs
// the router a map lookup, not a connect timeout per request. Active
// health PINGs (ShardRouter's health thread) deliberately bypass the
// admission gate: a PING that succeeds against an open breaker is exactly
// the recovery signal, and closes it without waiting for a request-borne
// probe.
//
// Network fault domain (compile-time gated by SPECPART_FAULT_INJECTION,
// armed via fault::arm; see docs/ROBUSTNESS.md):
//   net.connect_refused      -> the attempt fails as if connect() was
//                               refused (connection dropped first)
//   net.mid_frame_disconnect -> half the REQUEST frame is sent, then the
//                               connection is torn down
//   net.slow_shard           -> the response read behaves as a deadline
//                               expiry (slow-shard latency)
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "service/net.h"
#include "service/protocol.h"

namespace specpart::service {

/// Exponential backoff with deterministic jitter. Retry `attempt`
/// (1-based) sleeps min(max_ms, base_ms * 2^(attempt-1)) scaled by a
/// jitter factor in [0.5, 1.0] derived from (jitter_seed, salt, attempt)
/// via splitmix64 — reproducible in tests, decorrelated across callers.
struct BackoffPolicy {
  /// Resend attempts after the first try (0 = fail fast).
  std::size_t max_retries = 2;
  double base_ms = 10.0;
  double max_ms = 200.0;
  std::uint64_t jitter_seed = 0x5eedULL;

  double delay_ms(std::size_t attempt, std::uint64_t salt) const;
};

struct CircuitBreakerOptions {
  /// Consecutive failures that trip closed -> open.
  std::size_t failure_threshold = 3;
  /// Seconds an open breaker waits before admitting a half-open probe.
  double cooldown_seconds = 1.0;
};

enum class ShardState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Stable token: "closed" | "open" | "half_open".
const char* shard_state_token(ShardState s);

struct ShardClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Connection-establishment deadline (ms; < 0 blocks).
  int connect_timeout_ms = 250;
  /// Per-syscall read/write deadline for request/response I/O (ms).
  int io_timeout_ms = 30000;
  BackoffPolicy backoff;
  CircuitBreakerOptions breaker;
};

/// Monotonic counters; a consistent copy is returned by stats().
struct ShardClientStats {
  /// call() invocations admitted by the breaker.
  std::uint64_t requests = 0;
  std::uint64_t successes = 0;
  /// Failed attempts, including retries (passive breaker accounting).
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;
  /// Calls refused outright by an open breaker.
  std::uint64_t skipped = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t pings_ok = 0;
  std::uint64_t pings_failed = 0;
};

/// One backend connection with retries, deadlines and a circuit breaker.
/// Thread-safe; calls to the same shard are serialized over one persistent
/// connection (reconnected lazily after any failure).
class ShardClient {
 public:
  explicit ShardClient(ShardClientOptions opts);
  ~ShardClient();
  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Round-trips one request under the retry budget. nullopt when the
  /// shard could not serve it (breaker open, or every attempt failed) —
  /// the caller's cue to fail over.
  std::optional<PartitionResponse> call(const PartitionRequest& req);

  /// Active health probe (PING -> PONG). Bypasses the breaker gate; its
  /// outcome feeds the same failure/recovery accounting as calls.
  bool ping();

  ShardState state() const;
  ShardClientStats stats() const;
  const ShardClientOptions& options() const { return opts_; }
  /// "host:port" for metrics and logs.
  std::string name() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Breaker admission; may transition open -> half-open.
  bool admit_locked();
  void on_attempt_failure_locked();
  void on_success_locked();
  bool ensure_connected_locked();
  void disconnect_locked();
  bool send_request_locked(const PartitionRequest& req);
  std::optional<PartitionResponse> read_response_locked();

  ShardClientOptions opts_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::unique_ptr<FdStreamBuf> rbuf_;
  std::unique_ptr<FdStreamBuf> wbuf_;
  ShardState state_ = ShardState::kClosed;
  std::size_t consecutive_failures_ = 0;
  /// Half-open: a probe is in flight; further calls are refused until it
  /// settles.
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  ShardClientStats stats_;
  /// Per-call jitter salt.
  std::uint64_t call_counter_ = 0;
};

}  // namespace specpart::service
