// Minimal POSIX TCP plumbing for the service binaries: listen / accept /
// connect helpers plus a std::streambuf over a file descriptor, so the
// wire protocol (protocol.h) reads and writes std::iostreams no matter
// whether the transport is a pipe, stdin/stdout, or a socket.
//
// Hardened for fleet use (PR 7): writes use send(MSG_NOSIGNAL) and loop
// over partial transfers, so a client that disconnects mid-response can no
// longer SIGPIPE-kill the process; reads and writes optionally carry
// poll-based deadlines, so a stalled peer releases its thread instead of
// pinning it forever; and tcp_connect_timeout bounds connection
// establishment the same way. Still deliberately tiny: IPv4
// loopback-oriented, no TLS — fleet-grade transport security belongs in
// front of it.
#pragma once

#include <cstdint>
#include <streambuf>
#include <string>

namespace specpart::service {

/// Opens a listening IPv4 TCP socket on `port` (0 = kernel-assigned).
/// Returns the listening fd; *bound_port receives the actual port.
/// Throws specpart::Error on failure.
int tcp_listen(std::uint16_t port, std::uint16_t* bound_port = nullptr);

/// Blocks until a client connects; returns the connection fd.
int tcp_accept(int listen_fd);

/// Connects to host:port (host = dotted quad or "localhost").
int tcp_connect(const std::string& host, std::uint16_t port);

/// Connects with a poll-based deadline (non-blocking connect). Throws
/// specpart::Error on refusal, unreachable host, or deadline expiry.
/// timeout_ms < 0 blocks indefinitely (same as tcp_connect).
int tcp_connect_timeout(const std::string& host, std::uint16_t port,
                        int timeout_ms);

/// Closes an fd (ignores errors; safe on -1).
void fd_close(int fd);

/// Half-closes both directions of a socket so the peer's (and any local
/// thread's) blocked reads fail immediately, without racing fd reuse the
/// way close() does. Ignores errors; safe on -1 and non-sockets. Also the
/// documented way to wake a thread blocked in tcp_accept.
void fd_shutdown(int fd);

/// Buffered std::streambuf over a file descriptor, usable for both
/// reading and writing (bidirectional socket I/O). Does not own the fd.
///
/// Deadlines: set_read_timeout / set_write_timeout arm poll-based
/// deadlines per underlying read/write syscall (milliseconds; < 0 = block
/// forever, the default). A timed-out read reports EOF to the stream and
/// sets timed_out(), so `std::getline` on a stalled connection returns
/// instead of pinning the reader thread. Writes prefer send(MSG_NOSIGNAL)
/// and fall back to write() on non-socket fds, so a vanished peer yields a
/// stream error, never SIGPIPE.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

  /// Per-syscall read deadline in ms (< 0 = block forever).
  void set_read_timeout(int ms) { read_timeout_ms_ = ms; }
  /// Per-syscall write deadline in ms (< 0 = block forever).
  void set_write_timeout(int ms) { write_timeout_ms_ = ms; }
  /// True once a read or write deadline expired on this buffer.
  bool timed_out() const { return timed_out_; }

 protected:
  int_type underflow() override;
  int_type overflow(int_type c) override;
  int sync() override;

 private:
  bool flush_write();
  /// Polls for readiness under the given deadline; true when the fd is
  /// ready (or no deadline is armed), false on deadline expiry.
  bool wait_ready(short events, int timeout_ms);

  static constexpr std::size_t kBufSize = 1 << 16;
  int fd_;
  int read_timeout_ms_ = -1;
  int write_timeout_ms_ = -1;
  bool timed_out_ = false;
  /// Latched after send() reports ENOTSOCK (pipes, stdio); writes then use
  /// write(), relying on the caller ignoring SIGPIPE for those fds.
  bool not_socket_ = false;
  char rbuf_[kBufSize];
  char wbuf_[kBufSize];
};

}  // namespace specpart::service
