// Minimal POSIX TCP plumbing for the service binaries: listen / accept /
// connect helpers plus a std::streambuf over a file descriptor, so the
// wire protocol (protocol.h) reads and writes std::iostreams no matter
// whether the transport is a pipe, stdin/stdout, or a socket.
//
// Deliberately tiny: IPv4 loopback-oriented, blocking I/O, no TLS — the
// serving layer's scope is the engine (queue, cache, metrics); fleet-grade
// transport belongs in front of it.
#pragma once

#include <cstdint>
#include <streambuf>
#include <string>

namespace specpart::service {

/// Opens a listening IPv4 TCP socket on `port` (0 = kernel-assigned).
/// Returns the listening fd; *bound_port receives the actual port.
/// Throws specpart::Error on failure.
int tcp_listen(std::uint16_t port, std::uint16_t* bound_port = nullptr);

/// Blocks until a client connects; returns the connection fd.
int tcp_accept(int listen_fd);

/// Connects to host:port (host = dotted quad or "localhost").
int tcp_connect(const std::string& host, std::uint16_t port);

/// Closes an fd (ignores errors; safe on -1).
void fd_close(int fd);

/// Buffered std::streambuf over a file descriptor, usable for both
/// reading and writing (bidirectional socket I/O). Does not own the fd.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);

 protected:
  int_type underflow() override;
  int_type overflow(int_type c) override;
  int sync() override;

 private:
  bool flush_write();

  static constexpr std::size_t kBufSize = 1 << 16;
  int fd_;
  char rbuf_[kBufSize];
  char wbuf_[kBufSize];
};

}  // namespace specpart::service
