#include "service/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

int tcp_listen(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fd_close(fd);
    throw_errno(strprintf("bind to port %u", static_cast<unsigned>(port)));
  }
  if (::listen(fd, 16) < 0) {
    fd_close(fd);
    throw_errno("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      fd_close(fd);
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved =
      host.empty() || host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    fd_close(fd);
    throw Error("tcp_connect: cannot parse host '" + host +
                "' (use a dotted-quad IPv4 address or 'localhost')");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fd_close(fd);
    throw_errno(strprintf("connect to %s:%u", resolved.c_str(),
                          static_cast<unsigned>(port)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void fd_close(int fd) {
  if (fd >= 0) ::close(fd);
}

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(rbuf_, rbuf_, rbuf_);
  setp(wbuf_, wbuf_ + kBufSize);
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  for (;;) {
    const ssize_t n = ::read(fd_, rbuf_, kBufSize);
    if (n > 0) {
      setg(rbuf_, rbuf_, rbuf_ + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();
    if (errno == EINTR) continue;
    return traits_type::eof();
  }
}

bool FdStreamBuf::flush_write() {
  const char* p = pbase();
  while (p < pptr()) {
    const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
    if (n > 0) {
      p += n;
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  setp(wbuf_, wbuf_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type c) {
  if (!flush_write()) return traits_type::eof();
  if (!traits_type::eq_int_type(c, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(c);
    pbump(1);
  }
  return traits_type::not_eof(c);
}

int FdStreamBuf::sync() { return flush_write() ? 0 : -1; }

}  // namespace specpart::service
