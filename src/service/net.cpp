#include "service/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Resolves the loopback-friendly host spellings to a dotted quad.
std::string resolve_host(const std::string& host) {
  return host.empty() || host == "localhost" ? "127.0.0.1" : host;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int tcp_listen(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    fd_close(fd);
    throw_errno(strprintf("bind to port %u", static_cast<unsigned>(port)));
  }
  if (::listen(fd, 16) < 0) {
    fd_close(fd);
    throw_errno("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      fd_close(fd);
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  return tcp_connect_timeout(host, port, -1);
}

int tcp_connect_timeout(const std::string& host, std::uint16_t port,
                        int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = resolve_host(host);
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    fd_close(fd);
    throw Error("tcp_connect: cannot parse host '" + host +
                "' (use a dotted-quad IPv4 address or 'localhost')");
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fd_close(fd);
    throw_errno("fcntl(O_NONBLOCK)");
  }
  const std::string target =
      strprintf("%s:%u", resolved.c_str(), static_cast<unsigned>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      fd_close(fd);
      throw_errno("connect to " + target);
    }
    // Await completion of the in-flight connect under the deadline.
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&p, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      fd_close(fd);
      throw_errno("poll(connect to " + target + ")");
    }
    if (rc == 0) {
      fd_close(fd);
      throw Error(strprintf("connect to %s: timed out after %d ms",
                            target.c_str(), timeout_ms));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      fd_close(fd);
      throw Error("connect to " + target + ": " +
                  std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    fd_close(fd);
    throw_errno("fcntl(restore flags)");
  }
  set_nodelay(fd);
  return fd;
}

void fd_close(int fd) {
  if (fd >= 0) ::close(fd);
}

void fd_shutdown(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(rbuf_, rbuf_, rbuf_);
  setp(wbuf_, wbuf_ + kBufSize);
}

bool FdStreamBuf::wait_ready(short events, int timeout_ms) {
  if (timeout_ms < 0) return true;
  pollfd p{};
  p.fd = fd_;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;  // ready, hung up, or errored: let the
                              // syscall report the condition
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return true;  // poll itself failed; fall through to the syscall
  }
}

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  for (;;) {
    if (!wait_ready(POLLIN, read_timeout_ms_)) {
      timed_out_ = true;
      return traits_type::eof();
    }
    const ssize_t n = ::read(fd_, rbuf_, kBufSize);
    if (n > 0) {
      setg(rbuf_, rbuf_, rbuf_ + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();
    if (errno == EINTR) continue;
    return traits_type::eof();
  }
}

bool FdStreamBuf::flush_write() {
  const char* p = pbase();
  // Loop partial transfers: a short send/write must not truncate the
  // frame, and a gone peer must surface as a stream error, not SIGPIPE.
  while (p < pptr()) {
    if (!wait_ready(POLLOUT, write_timeout_ms_)) {
      timed_out_ = true;
      return false;
    }
    const std::size_t len = static_cast<std::size_t>(pptr() - p);
    ssize_t n;
    if (!not_socket_) {
      n = ::send(fd_, p, len, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        not_socket_ = true;
        continue;
      }
    } else {
      n = ::write(fd_, p, len);
    }
    if (n > 0) {
      p += n;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  setp(wbuf_, wbuf_ + kBufSize);
  return true;
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type c) {
  if (!flush_write()) return traits_type::eof();
  if (!traits_type::eq_int_type(c, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(c);
    pbump(1);
  }
  return traits_type::not_eof(c);
}

int FdStreamBuf::sync() { return flush_write() ? 0 : -1; }

}  // namespace specpart::service
