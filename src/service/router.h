// ShardRouter: the fault-tolerant front tier over N specpart_server
// backends.
//
// Placement. Each request is fingerprinted by its *netlist content* (pins,
// net weights, net model — the same 128-bit splitmix64 construction the
// embedding cache keys on, util/hashing.h) and placed on a consistent-hash
// ring of virtual nodes. Same netlist -> same shard, so each shard's
// embedding cache stays hot for its slice of the keyspace; adding or
// losing a shard only remaps the ring segments it owned.
//
// Failure handling, in escalation order:
//   1. ShardClient retry: bounded resends with exponential backoff +
//      jitter against the primary shard (client.h).
//   2. Hash-ring failover: a shard that is down (breaker open) or
//      exhausted its retry budget is skipped and the request walks the
//      ring to the next live shard. The pipeline is deterministic, so the
//      response is byte-identical no matter which shard computes it.
//   3. Local fallback: when every shard is unavailable the router computes
//      the request itself under a degraded ComputeBudget deadline,
//      recorded as a `router_local_fallback` diagnostics stage and counted
//      in the aggregated metrics. Degrade, never abort.
//
// Health. Besides the passive per-attempt failure accounting, an optional
// health thread PINGs every shard each interval; a successful PING against
// an open breaker closes it (the half-open probe, done proactively), so a
// restarted shard rejoins the ring within one interval.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/service.h"
#include "util/hashing.h"

namespace specpart::service {

/// Consistent-hash ring over shard indices. Each shard owns `vnodes`
/// pseudo-random points on a 64-bit ring; a key is served by the shard
/// owning the first point at or after it (wrapping), and its failover
/// order is the remaining shards in ring-walk order.
class HashRing {
 public:
  HashRing() = default;
  HashRing(std::size_t num_shards, std::size_t vnodes);

  /// All distinct shard indices in ring-walk order from `point`: the
  /// primary first, then the failover sequence. Empty for an empty ring.
  std::vector<std::size_t> route(std::uint64_t point) const;

  /// The primary shard for `point` (ring must be non-empty).
  std::size_t primary(std::uint64_t point) const;

  std::size_t num_shards() const { return num_shards_; }

 private:
  std::size_t num_shards_ = 0;
  /// (ring point, shard index), sorted by point.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

/// Content-based routing key: fingerprint of the netlist (pins + weights)
/// and the net model — deliberately NOT of k, balance, scaling or d, so
/// every variation over one netlist lands on the same shard's warm cache
/// (mirroring what the embedding-cache key ignores).
Fingerprint routing_key(const PartitionRequest& req);

struct RouterOptions {
  /// One entry per backend shard.
  std::vector<ShardClientOptions> shards;
  /// Virtual nodes per shard on the hash ring.
  std::size_t vnodes = 64;
  /// Active health-check period in seconds (0 disables the thread;
  /// passive failure accounting still runs).
  double health_interval_seconds = 0.0;
  /// Degraded deadline for local fallback computes (0 = unlimited).
  double local_deadline_seconds = 30.0;
  /// The local fallback engine (its deadline_seconds is overridden by
  /// local_deadline_seconds).
  ServiceOptions local;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions opts);

  /// Stops the health thread and disconnects every shard.
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes one request: primary shard -> ring failover -> local fallback.
  /// Never throws for shard unavailability; an `error` response only
  /// reflects a problem with the request itself.
  PartitionResponse route(const PartitionRequest& req);

  /// Aggregated tier metrics: the local fallback engine's counters plus
  /// the router section (failovers, fallbacks, per-shard breaker state).
  MetricsSnapshot snapshot() const;

  std::size_t num_shards() const { return shards_.size(); }
  ShardClient& shard(std::size_t i) { return *shards_[i]; }
  PartitionService& local_service() { return local_; }
  const RouterOptions& options() const { return opts_; }

 private:
  void health_loop();

  RouterOptions opts_;
  std::vector<std::unique_ptr<ShardClient>> shards_;
  HashRing ring_;
  /// Local fallback engine (also the source of the base MetricsSnapshot).
  PartitionService local_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> local_fallbacks_{0};

  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  bool stopping_ = false;
  std::thread health_thread_;
};

}  // namespace specpart::service
