#include "service/server.h"

#include <condition_variable>
#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "service/net.h"
#include "service/router.h"
#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::service {

std::future<PartitionResponse> ServiceBackend::submit(PartitionRequest req) {
  return svc_.submit(std::move(req));
}

bool ServiceBackend::try_submit(PartitionRequest req,
                                std::future<PartitionResponse>& out) {
  return svc_.try_submit(std::move(req), out);
}

MetricsSnapshot ServiceBackend::metrics() { return svc_.snapshot(); }

std::future<PartitionResponse> RouterBackend::submit(PartitionRequest req) {
  // Deferred: route() runs when the writer thread calls future.get(), so
  // the reader keeps parsing while earlier requests are in flight and
  // responses still leave in FIFO order.
  return std::async(std::launch::deferred,
                    [this, r = std::move(req)] { return router_.route(r); });
}

bool RouterBackend::try_submit(PartitionRequest req,
                               std::future<PartitionResponse>& out) {
  out = submit(std::move(req));
  return true;
}

MetricsSnapshot RouterBackend::metrics() { return router_.snapshot(); }

void write_metrics_frame(const MetricsSnapshot& snap, std::ostream& out) {
  out << "METRICS\n";
  for (const auto& [key, value] : snap.key_values())
    out << "METRIC " << key << strprintf(" %.17g", value) << '\n';
  out << "END\n";
}

void serve_stream(StreamBackend& backend, std::istream& in, std::ostream& out,
                  const ServeOptions& opts) {
  struct Item {
    enum Kind { kResponse, kReady, kPong, kMetrics, kBye } kind;
    std::future<PartitionResponse> future;  // kResponse
    PartitionResponse response;             // kReady
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Item> items;
  const auto push = [&](Item item) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      items.push_back(std::move(item));
    }
    cv.notify_one();
  };
  // The reader (below) parses frames and enqueues work; this writer emits
  // each response as soon as its future resolves. The split matters: a
  // pipelining client only sends more requests after it reads responses,
  // so a server that writes only between reads deadlocks once the
  // client's window fills. The queue preserves request order, so clients
  // still read responses strictly FIFO.
  std::thread writer([&] {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return !items.empty(); });
        item = std::move(items.front());
        items.pop_front();
      }
      switch (item.kind) {
        case Item::kResponse:
          write_response(item.future.get(), out);
          break;
        case Item::kReady:
          write_response(item.response, out);
          break;
        case Item::kPong:
          out << "PONG\n";
          break;
        case Item::kMetrics:
          // Snapshot here, after all earlier responses went out, so the
          // frame reflects at least everything the client has seen.
          write_metrics_frame(backend.metrics(), out);
          break;
        case Item::kBye:
          out << "BYE\n";
          out.flush();
          return;
      }
      out.flush();
    }
  });

  std::string line;
  bool failed = false;
  while (!failed && std::getline(in, line)) {
    const std::string_view stripped = trim(line);
    if (stripped.empty()) continue;
    try {
      if (starts_with(stripped, "REQUEST")) {
        PartitionRequest req = parse_request(line, in, opts.limits);
        Item item;
        if (opts.reject_when_full) {
          // Saved before the move: try_submit consumes the request even
          // when it rejects.
          std::string req_id = req.id;
          if (backend.try_submit(std::move(req), item.future)) {
            item.kind = Item::kResponse;
          } else {
            // Admission control: the rejection is itself an error
            // response, so clients see *why* instead of a stall.
            item.kind = Item::kReady;
            item.response.id = std::move(req_id);
            item.response.status = "error";
            item.response.error = "rejected: queue full";
          }
        } else {
          item.kind = Item::kResponse;
          item.future = backend.submit(std::move(req));  // backpressure
        }
        push(std::move(item));
      } else if (stripped == "PING") {
        push(Item{Item::kPong, {}, {}});
      } else if (stripped == "METRICS") {
        push(Item{Item::kMetrics, {}, {}});
      } else if (stripped == "QUIT") {
        break;
      } else {
        throw Error("unknown frame '" + std::string(stripped) + "'");
      }
    } catch (const Error& e) {
      // A malformed frame poisons the rest of the stream (framing is
      // lost), so report and stop this connection. Every parse-level
      // failure — truncated payload, oversized payload, garbage frame —
      // is surfaced under the one structured bad_request token.
      Item item;
      item.kind = Item::kReady;
      item.response.id = "?";
      item.response.status = "error";
      item.response.error = starts_with(e.what(), "bad_request")
                                ? e.what()
                                : std::string("bad_request: ") + e.what();
      push(std::move(item));
      failed = true;
    }
  }
  push(Item{Item::kBye, {}, {}});
  writer.join();
}

ShardServer::ShardServer(ShardServerOptions opts)
    : opts_(std::move(opts)), svc_(opts_.service) {
  listen_fd_ = tcp_listen(0, &port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = -1;
    try {
      fd = tcp_accept(listen_fd_);
    } catch (const Error&) {
      // Listener shut down (stop()/kill()) or otherwise dead: done.
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      // Lost the race with kill(): this fd was accepted after the sever
      // pass, so sever it ourselves instead of serving it.
      fd_shutdown(fd);
      fd_close(fd);
      return;
    }
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(
        [this, fd, slot] { serve_connection(fd, slot); });
  }
}

void ShardServer::serve_connection(int fd, std::size_t slot) {
  {
    FdStreamBuf in_buf(fd);
    FdStreamBuf out_buf(fd);
    if (opts_.idle_timeout_seconds > 0.0)
      in_buf.set_read_timeout(
          static_cast<int>(opts_.idle_timeout_seconds * 1000.0));
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    ServiceBackend backend(svc_);
    try {
      serve_stream(backend, in, out, opts_.serve);
    } catch (const Error&) {
      // Connection-level failure; drop the connection, keep the server.
    }
  }
  // Deregister before closing so kill() can never shut down a recycled
  // fd number.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_[slot] = -1;
  }
  fd_close(fd);
}

void ShardServer::kill() {
  stopping_.store(true, std::memory_order_relaxed);
  fd_shutdown(listen_fd_);
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (const int fd : conn_fds_)
    if (fd >= 0) fd_shutdown(fd);
}

void ShardServer::stop() {
  kill();
  if (accept_thread_.joinable()) accept_thread_.join();
  // No new connection threads can appear now; join what's left.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  fd_close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace specpart::service
