#include "service/client.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>

#include <sys/socket.h>

#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/stringutil.h"

namespace specpart::service {

double BackoffPolicy::delay_ms(std::size_t attempt, std::uint64_t salt) const {
  if (attempt == 0) return 0.0;
  const double uncapped =
      base_ms * std::pow(2.0, static_cast<double>(attempt - 1));
  const double capped = std::min(max_ms, uncapped);
  // Deterministic jitter in [0.5, 1.0]: splitmix over (seed, salt, attempt).
  std::uint64_t state = jitter_seed ^ (salt * 0x9E3779B97F4A7C15ULL) ^
                        static_cast<std::uint64_t>(attempt);
  const std::uint64_t word = splitmix64(state);
  const double unit =
      static_cast<double>(word >> 11) * (1.0 / 9007199254740992.0);
  return capped * (0.5 + 0.5 * unit);
}

const char* shard_state_token(ShardState s) {
  switch (s) {
    case ShardState::kClosed:
      return "closed";
    case ShardState::kOpen:
      return "open";
    case ShardState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

ShardClient::ShardClient(ShardClientOptions opts) : opts_(std::move(opts)) {}

ShardClient::~ShardClient() {
  std::lock_guard<std::mutex> lock(mutex_);
  disconnect_locked();
}

std::string ShardClient::name() const {
  return strprintf("%s:%u", opts_.host.c_str(),
                   static_cast<unsigned>(opts_.port));
}

ShardState ShardClient::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

ShardClientStats ShardClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool ShardClient::admit_locked() {
  switch (state_) {
    case ShardState::kClosed:
      return true;
    case ShardState::kOpen:
      if (Clock::now() - opened_at_ >=
          std::chrono::duration<double>(opts_.breaker.cooldown_seconds)) {
        state_ = ShardState::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case ShardState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void ShardClient::on_attempt_failure_locked() {
  ++stats_.failures;
  if (state_ == ShardState::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarted.
    state_ = ShardState::kOpen;
    opened_at_ = Clock::now();
    probe_in_flight_ = false;
    consecutive_failures_ = 0;
    ++stats_.breaker_opens;
    return;
  }
  ++consecutive_failures_;
  if (state_ == ShardState::kClosed &&
      consecutive_failures_ >= opts_.breaker.failure_threshold) {
    state_ = ShardState::kOpen;
    opened_at_ = Clock::now();
    consecutive_failures_ = 0;
    ++stats_.breaker_opens;
  }
}

void ShardClient::on_success_locked() {
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = ShardState::kClosed;
  ++stats_.successes;
}

bool ShardClient::ensure_connected_locked() {
  if (fd_ >= 0) return true;
  try {
    fd_ = tcp_connect_timeout(opts_.host, opts_.port, opts_.connect_timeout_ms);
  } catch (const Error&) {
    return false;
  }
  rbuf_ = std::make_unique<FdStreamBuf>(fd_);
  rbuf_->set_read_timeout(opts_.io_timeout_ms);
  wbuf_ = std::make_unique<FdStreamBuf>(fd_);
  wbuf_->set_write_timeout(opts_.io_timeout_ms);
  return true;
}

void ShardClient::disconnect_locked() {
  rbuf_.reset();
  wbuf_.reset();
  fd_close(fd_);
  fd_ = -1;
}

bool ShardClient::send_request_locked(const PartitionRequest& req) {
  std::ostringstream frame;
  write_request(req, frame);
  const std::string bytes = frame.str();
  if (SP_FAULT("net.mid_frame_disconnect")) {
    // Send a truncated frame and drop the connection, leaving the shard a
    // garbage stream to cope with (it must survive; we must retry).
    (void)::send(fd_, bytes.data(), bytes.size() / 2, MSG_NOSIGNAL);
    disconnect_locked();
    return false;
  }
  std::ostream out(wbuf_.get());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
}

std::optional<PartitionResponse> ShardClient::read_response_locked() {
  if (SP_FAULT("net.slow_shard")) return std::nullopt;
  std::istream in(rbuf_.get());
  try {
    return read_response(in);
  } catch (const Error&) {
    // Malformed or truncated response: the framing is lost, treat the
    // connection as dead and let the retry loop resend.
    return std::nullopt;
  }
}

std::optional<PartitionResponse> ShardClient::call(
    const PartitionRequest& req) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!admit_locked()) {
    ++stats_.skipped;
    return std::nullopt;
  }
  ++stats_.requests;
  const std::uint64_t salt = ++call_counter_;
  const std::size_t attempts = opts_.backoff.max_retries + 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      const double ms = opts_.backoff.delay_ms(attempt, salt);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    if (SP_FAULT("net.connect_refused")) {
      disconnect_locked();
      on_attempt_failure_locked();
    } else if (!ensure_connected_locked()) {
      on_attempt_failure_locked();
    } else if (!send_request_locked(req)) {
      disconnect_locked();
      on_attempt_failure_locked();
    } else if (std::optional<PartitionResponse> resp = read_response_locked()) {
      on_success_locked();
      return resp;
    } else {
      disconnect_locked();
      on_attempt_failure_locked();
    }
    // A breaker that opened mid-call (including a failed half-open probe)
    // ends the retry budget early: the shard is being declared down.
    if (state_ == ShardState::kOpen) break;
  }
  return std::nullopt;
}

bool ShardClient::ping() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Deliberately no admit gate (see class comment): the periodic ping IS
  // the recovery probe for an open breaker.
  const auto fail = [this] {
    disconnect_locked();
    on_attempt_failure_locked();
    ++stats_.pings_failed;
    return false;
  };
  if (SP_FAULT("net.connect_refused")) return fail();
  if (!ensure_connected_locked()) {
    on_attempt_failure_locked();
    ++stats_.pings_failed;
    return false;
  }
  std::ostream out(wbuf_.get());
  out << "PING\n";
  out.flush();
  if (!out.good()) return fail();
  if (SP_FAULT("net.slow_shard")) return fail();
  std::istream in(rbuf_.get());
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    if (trim(line) == "PONG") {
      on_success_locked();
      ++stats_.pings_ok;
      return true;
    }
    break;  // anything else on the wire: framing is gone
  }
  return fail();
}

}  // namespace specpart::service
