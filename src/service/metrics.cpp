#include "service/metrics.h"

#include <cmath>
#include <sstream>

#include "util/stringutil.h"

namespace specpart::service {

double LatencyHistogram::bucket_upper(std::size_t i) {
  return 1e-6 * std::pow(2.0, static_cast<double>(i) / 4.0);
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  // Invert upper(i) = 1us * 2^(i/4): i = ceil(4 * log2(s / 1us)).
  std::size_t bucket = 0;
  if (seconds > 1e-6) {
    const double exact = 4.0 * std::log2(seconds * 1e6);
    bucket = static_cast<std::size_t>(std::max(0.0, std::ceil(exact)));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i)
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  s.total = total_.load(std::memory_order_relaxed);
  s.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample (1-based), then walk the cumulative counts.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation across the bucket's span.
      const double lo = i == 0 ? 0.0 : bucket_upper(i - 1);
      const double hi = bucket_upper(i);
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative = next;
  }
  return bucket_upper(kBuckets - 1);
}

void ServiceMetrics::on_completed(const std::string& status, double seconds) {
  if (status == "error")
    responses_error_.fetch_add(1, relaxed);
  else if (status == "ok")
    responses_ok_.fetch_add(1, relaxed);
  else
    responses_degraded_.fetch_add(1, relaxed);
  latency_.record(seconds);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot s;
  s.requests_total = requests_total_.load(relaxed);
  s.responses_ok = responses_ok_.load(relaxed);
  s.responses_degraded = responses_degraded_.load(relaxed);
  s.responses_error = responses_error_.load(relaxed);
  s.rejected = rejected_.load(relaxed);
  s.objective_normalized_requests =
      objective_normalized_requests_.load(relaxed);
  s.queue_depth = queue_depth_.load(relaxed);
  s.queue_peak = queue_peak_.load(relaxed);
  s.latency = latency_.snapshot();
  return s;
}

std::vector<std::pair<std::string, double>> MetricsSnapshot::key_values()
    const {
  std::vector<std::pair<std::string, double>> kv = {
      {"requests_total", static_cast<double>(requests_total)},
      {"responses_ok", static_cast<double>(responses_ok)},
      {"responses_degraded", static_cast<double>(responses_degraded)},
      {"responses_error", static_cast<double>(responses_error)},
      {"rejected", static_cast<double>(rejected)},
      {"queue_depth", static_cast<double>(queue_depth)},
      {"queue_peak", static_cast<double>(queue_peak)},
      {"workers", static_cast<double>(workers)},
      {"cache_lookups", static_cast<double>(cache_lookups)},
      {"cache_hits", static_cast<double>(cache_hits)},
      {"cache_prefix_hits", static_cast<double>(cache_prefix_hits)},
      {"cache_evictions", static_cast<double>(cache_evictions)},
      {"cache_bytes", static_cast<double>(cache_bytes)},
      {"cache_entries", static_cast<double>(cache_entries)},
      {"cache_hit_rate", cache_hit_rate},
  };
  // Emitted only when normalized-objective traffic was seen: a default-
  // objective deployment's METRICS frame bytes are unchanged.
  if (objective_normalized_requests > 0)
    kv.emplace_back("objective_normalized_requests",
                    static_cast<double>(objective_normalized_requests));
  if (storage.present) {
    kv.emplace_back("storage_disk_hits",
                    static_cast<double>(storage.disk_hits));
    kv.emplace_back("storage_disk_misses",
                    static_cast<double>(storage.disk_misses));
    kv.emplace_back("storage_spills", static_cast<double>(storage.spills));
    kv.emplace_back("storage_spill_failures",
                    static_cast<double>(storage.spill_failures));
    kv.emplace_back("storage_evictions",
                    static_cast<double>(storage.evictions));
    kv.emplace_back("storage_corrupt_quarantined",
                    static_cast<double>(storage.corrupt_quarantined));
    kv.emplace_back("storage_bytes_on_disk",
                    static_cast<double>(storage.bytes_on_disk));
    kv.emplace_back("storage_disk_entries",
                    static_cast<double>(storage.disk_entries));
  }
  const std::vector<std::pair<std::string, double>> latency_kv = {
      {"latency_count", static_cast<double>(latency.total)},
      {"latency_mean_seconds", latency.mean()},
      {"latency_p50_seconds", latency.quantile(0.50)},
      {"latency_p95_seconds", latency.quantile(0.95)},
      {"latency_p99_seconds", latency.quantile(0.99)},
  };
  kv.insert(kv.end(), latency_kv.begin(), latency_kv.end());
  if (router.present) {
    kv.emplace_back("router_requests", static_cast<double>(router.requests));
    kv.emplace_back("router_failovers", static_cast<double>(router.failovers));
    kv.emplace_back("router_local_fallbacks",
                    static_cast<double>(router.local_fallbacks));
    kv.emplace_back("router_retries", static_cast<double>(router.retries));
    kv.emplace_back("router_shards_total",
                    static_cast<double>(router.shards_total));
    kv.emplace_back("router_shards_live",
                    static_cast<double>(router.shards_live));
    for (std::size_t i = 0; i < router.shards.size(); ++i) {
      const RouterShardMetrics& s = router.shards[i];
      const std::string prefix = strprintf("shard%zu_", i);
      kv.emplace_back(prefix + "state", static_cast<double>(s.state));
      kv.emplace_back(prefix + "requests", static_cast<double>(s.requests));
      kv.emplace_back(prefix + "failures", static_cast<double>(s.failures));
      kv.emplace_back(prefix + "retries", static_cast<double>(s.retries));
      kv.emplace_back(prefix + "breaker_opens",
                      static_cast<double>(s.breaker_opens));
      kv.emplace_back(prefix + "pings_ok", static_cast<double>(s.pings_ok));
      kv.emplace_back(prefix + "pings_failed",
                      static_cast<double>(s.pings_failed));
    }
  }
  return kv;
}

std::string MetricsSnapshot::render_text() const {
  std::ostringstream out;
  out << "service metrics\n";
  out << strprintf("  requests      total=%llu ok=%llu degraded=%llu "
                   "error=%llu rejected=%llu\n",
                   static_cast<unsigned long long>(requests_total),
                   static_cast<unsigned long long>(responses_ok),
                   static_cast<unsigned long long>(responses_degraded),
                   static_cast<unsigned long long>(responses_error),
                   static_cast<unsigned long long>(rejected));
  out << strprintf("  queue         depth=%zu peak=%zu workers=%zu\n",
                   queue_depth, queue_peak, workers);
  out << strprintf("  cache         hit_rate=%.1f%% hits=%llu (prefix %llu) "
                   "lookups=%llu evictions=%llu entries=%zu bytes=%zu\n",
                   100.0 * cache_hit_rate,
                   static_cast<unsigned long long>(cache_hits),
                   static_cast<unsigned long long>(cache_prefix_hits),
                   static_cast<unsigned long long>(cache_lookups),
                   static_cast<unsigned long long>(cache_evictions),
                   cache_entries, cache_bytes);
  if (objective_normalized_requests > 0)
    out << strprintf(
        "  objective     normalized_requests=%llu\n",
        static_cast<unsigned long long>(objective_normalized_requests));
  if (storage.present)
    out << strprintf(
        "  storage       disk_hits=%llu disk_misses=%llu spills=%llu "
        "(failed %llu) evictions=%llu quarantined=%llu entries=%zu "
        "bytes=%zu\n",
        static_cast<unsigned long long>(storage.disk_hits),
        static_cast<unsigned long long>(storage.disk_misses),
        static_cast<unsigned long long>(storage.spills),
        static_cast<unsigned long long>(storage.spill_failures),
        static_cast<unsigned long long>(storage.evictions),
        static_cast<unsigned long long>(storage.corrupt_quarantined),
        storage.disk_entries, storage.bytes_on_disk);
  out << strprintf("  latency       count=%llu mean=%.3fms p50=%.3fms "
                   "p95=%.3fms p99=%.3fms\n",
                   static_cast<unsigned long long>(latency.total),
                   1e3 * latency.mean(), 1e3 * latency.quantile(0.50),
                   1e3 * latency.quantile(0.95), 1e3 * latency.quantile(0.99));
  if (router.present) {
    out << strprintf(
        "  router        requests=%llu failovers=%llu local_fallbacks=%llu "
        "retries=%llu shards=%zu/%zu live\n",
        static_cast<unsigned long long>(router.requests),
        static_cast<unsigned long long>(router.failovers),
        static_cast<unsigned long long>(router.local_fallbacks),
        static_cast<unsigned long long>(router.retries), router.shards_live,
        router.shards_total);
    static const char* const kStateNames[] = {"closed", "open", "half_open"};
    for (std::size_t i = 0; i < router.shards.size(); ++i) {
      const RouterShardMetrics& s = router.shards[i];
      const char* state =
          s.state >= 0 && s.state <= 2 ? kStateNames[s.state] : "?";
      out << strprintf(
          "  shard%zu        %s state=%s requests=%llu failures=%llu "
          "retries=%llu opens=%llu pings=%llu/%llu ok\n",
          i, s.name.c_str(), state,
          static_cast<unsigned long long>(s.requests),
          static_cast<unsigned long long>(s.failures),
          static_cast<unsigned long long>(s.retries),
          static_cast<unsigned long long>(s.breaker_opens),
          static_cast<unsigned long long>(s.pings_ok),
          static_cast<unsigned long long>(s.pings_ok + s.pings_failed));
    }
  }
  return out.str();
}

}  // namespace specpart::service
