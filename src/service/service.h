// PartitionService: the serving engine behind specpart_server.
//
// Requests enter through a bounded job queue with admission control —
// submit() exerts backpressure by blocking while the queue is full,
// try_submit() rejects instead (and the rejection is counted) — and are
// executed by a pool of worker threads. Each execution runs the standard
// MELO pipeline (core/drivers.h) with three serving-layer attachments:
//
//  * the content-addressed EmbeddingCache installed as the pipeline's
//    embedding provider, so repeated eigensolves are skipped;
//  * a per-request ComputeBudget when a deadline is configured;
//  * a per-request Diagnostics sink feeding the ServiceMetrics hub.
//
// Determinism contract (extends the PR 3 fixed-block contract to serving):
// the serialized response is a pure function of the serialized request and
// the server's PipelineConfig-visible settings. Cold, cache-hit, 1 worker
// or 8, SPECPART_THREADS=1 or 8: byte-identical responses. Responses under
// an exhausted compute budget are the documented exception (best-so-far
// semantics are inherently wall-clock dependent). See docs/SERVING.md.
//
// Intra-request compute parallelism is the *server's* choice, not the
// client's: the request's ParallelConfig is overridden with
// ServiceOptions::parallel, so a remote client cannot oversubscribe the
// host. The kernels still funnel through util/parallel.h's shared
// ThreadPool, whose fixed-block reductions are what make the thread-count
// independence above hold.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "util/parallel.h"

namespace specpart::service {

struct ServiceOptions {
  /// Worker threads executing requests.
  std::size_t num_workers = 2;
  /// Jobs that may wait in the queue (excluding the ones executing).
  std::size_t queue_capacity = 64;
  /// Embedding-cache sizing (max_bytes = 0 disables caching).
  EmbeddingCacheOptions cache;
  /// Per-request compute budget in seconds (0 = unlimited). Budget-limited
  /// responses are best-so-far and exempt from the determinism contract.
  double deadline_seconds = 0.0;
  /// Server-side admission cap on clique-expansion size (exact pair count
  /// sum p(p-1)/2; 0 = unlimited). An oversized request fails fast with a
  /// structured `model_too_large` error response instead of attempting the
  /// allocation — note a cache hit never expands the model, so a request
  /// whose basis is cached still succeeds.
  std::size_t max_clique_pairs = 0;
  /// Compute-kernel threading for request execution (server-level; the
  /// request's own ParallelConfig is ignored). Default 0 = auto:
  /// $SPECPART_THREADS or hardware concurrency.
  ParallelConfig parallel = ParallelConfig::with_threads(0);
};

class PartitionService {
 public:
  explicit PartitionService(ServiceOptions opts = {});

  /// Drains the queue, then stops and joins the workers.
  ~PartitionService();

  PartitionService(const PartitionService&) = delete;
  PartitionService& operator=(const PartitionService&) = delete;

  /// Synchronous execution on the calling thread, bypassing the queue but
  /// sharing the cache and metrics. This is what `netlist_tool --json`
  /// uses, which is why CLI output and service responses cannot diverge.
  /// `diag` (optional) receives the run's diagnostics — the router uses it
  /// to record the `router_local_fallback` stage; diagnostics never alter
  /// the response bytes.
  PartitionResponse execute(const PartitionRequest& req,
                            Diagnostics* diag = nullptr);

  /// Asynchronous execution through the bounded queue. Blocks while the
  /// queue is full (backpressure). Throws specpart::Error after shutdown.
  std::future<PartitionResponse> submit(PartitionRequest req);

  /// Non-blocking admission: false (and a counted rejection) when the
  /// queue is full, true with `out` set otherwise.
  bool try_submit(PartitionRequest req,
                  std::future<PartitionResponse>& out);

  /// Finishes queued work, then stops the workers. Idempotent; implied by
  /// destruction.
  void shutdown();

  /// Counters + queue gauges + cache stats + latency percentiles.
  MetricsSnapshot snapshot() const;

  EmbeddingCacheStats cache_stats() const { return cache_.stats(); }
  const ServiceOptions& options() const { return opts_; }
  ServiceMetrics& metrics() { return metrics_; }

 private:
  struct Job {
    PartitionRequest request;
    std::promise<PartitionResponse> promise;
    std::chrono::steady_clock::time_point accepted;
  };

  void worker_loop();
  PartitionResponse execute_internal(const PartitionRequest& req,
                                     Diagnostics* external_diag = nullptr);
  std::future<PartitionResponse> enqueue_locked(PartitionRequest&& req,
                                                std::unique_lock<std::mutex>& lock);

  ServiceOptions opts_;
  EmbeddingCache cache_;
  ServiceMetrics metrics_;

  std::mutex mutex_;
  std::condition_variable not_empty_cv_;
  std::condition_variable not_full_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace specpart::service
