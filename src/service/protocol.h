// Wire protocol of the partitioning service.
//
// Newline-delimited text, chosen so the service can run over any byte
// stream (stdin/stdout pipes, a TCP socket) and so responses can be
// compared byte-for-byte — the serving determinism contract is literally
// "the serialized response is a pure function of the serialized request".
// For that reason the response deliberately carries NO serving metadata:
// no timings, no cache hit/miss flag, no worker id. Those live in the
// metrics subsystem (metrics.h) and the Diagnostics sink, where cold and
// cached runs are *supposed* to differ.
//
// Frame shapes (one frame per message):
//
//   REQUEST id=<tok> k=<int> balance=<float> d=<int> trivial=<0|1>
//           scaling=<tok> selection=<tok> readjust=<0|1> h=<float>
//           lazy=<0|1> lazy_window=<int> lazy_rerank=<int>
//           net_model=<tok> starts=<int> seed=<u64> graph_lines=<int>
//   <graph_lines lines of hMETIS .hgr text>
//   END
//
//   RESPONSE id=<tok> status=<ok|degraded|budget_exhausted|error> k=<int>
//            cut=<float> scaled_cost=<float> ratio_cut=<float>
//            d_used=<int> converged=<0|1> budget_exhausted=<0|1> n=<int>
//   ASSIGN <n cluster ids>
//   END
//
// Error responses replace everything after `status=error` with
// `error=<message to end of line>` and carry no ASSIGN line. Header keys
// may appear in any order on parse but are always emitted in the order
// above; unknown keys are rejected (a typo must not silently change an
// experiment). Floats are serialized with %.17g so they round-trip to the
// exact same double.
//
// The service also understands three control lines (no END framing):
// `PING` -> `PONG`, `METRICS` -> a `METRICS`-headed key/value frame, and
// `QUIT` -> connection close. See examples/specpart_server.cpp.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline_config.h"
#include "graph/hypergraph.h"
#include "util/status.h"

namespace specpart::service {

/// Parse-side resource limits: a REQUEST frame announcing (or streaming)
/// more than this is rejected with a structured `bad_request:` Error
/// *before* the parser commits to reading unbounded bytes — an
/// announced-but-absurd graph_lines fails immediately, and an oversized
/// payload fails as soon as the running byte count crosses the budget
/// (bounded by one line of overshoot, since frames are line-delimited).
struct ProtocolLimits {
  /// Max lines a REQUEST's .hgr payload may announce.
  std::size_t max_graph_lines = 4'000'000;
  /// Max total bytes of the .hgr payload.
  std::size_t max_payload_bytes = 256ull << 20;
};

/// One partitioning job: the hypergraph payload plus the shared pipeline
/// knobs (core::PipelineConfig — the same struct the CLI drivers consume,
/// so the service and netlist_tool cannot drift apart).
struct PartitionRequest {
  std::string id = "r0";
  /// Number of clusters. k = 2 splits by best min-cut prefix under
  /// `balance`; k > 2 splits by DP-RP under Scaled Cost.
  std::uint32_t k = 2;
  /// Min cluster fraction for 2-way cuts (0 = best ratio-cut split).
  double balance = 0.45;
  core::PipelineConfig pipeline;
  graph::Hypergraph graph;
};

/// The deterministic result payload (see file comment: serving metadata is
/// deliberately absent).
struct PartitionResponse {
  std::string id;
  /// "ok" | "degraded" | "budget_exhausted" | "error".
  std::string status = "ok";
  /// Non-empty exactly when status == "error".
  std::string error;
  std::uint32_t k = 0;
  double cut = 0.0;
  double scaled_cost = 0.0;
  /// k = 2 only (0 otherwise).
  double ratio_cut = 0.0;
  std::size_t eigenvectors_used = 0;
  bool eigen_converged = true;
  bool budget_exhausted = false;
  std::vector<std::uint32_t> assignment;

  bool ok() const { return status != "error"; }
};

/// Serializes one request frame (REQUEST header + .hgr payload + END).
void write_request(const PartitionRequest& req, std::ostream& out);

/// Parses a request frame given its already-read header line; consumes the
/// graph payload and the END line from `in`. Throws specpart::Error on
/// malformed input; limit violations throw with a `bad_request:` prefix
/// without consuming the oversized payload.
PartitionRequest parse_request(const std::string& header_line,
                               std::istream& in,
                               const ProtocolLimits& limits = {});

/// Reads the next request frame, skipping blank lines. Returns nullopt at
/// EOF. Throws specpart::Error when the stream holds a non-REQUEST frame
/// (use the server loop for control lines).
std::optional<PartitionRequest> read_request(std::istream& in,
                                             const ProtocolLimits& limits = {});

/// Serializes one response frame (RESPONSE header [+ ASSIGN] + END).
void write_response(const PartitionResponse& resp, std::ostream& out);

/// Parses a response frame given its already-read header line.
PartitionResponse parse_response(const std::string& header_line,
                                 std::istream& in);

/// Reads the next response frame, skipping blank lines; nullopt at EOF.
std::optional<PartitionResponse> read_response(std::istream& in);

/// Single-line JSON rendering with exactly the wire-format fields, used by
/// `netlist_tool --json` so scripts can diff CLI results against service
/// responses.
std::string response_to_json(const PartitionResponse& resp);

/// StatusCode -> wire status token ("ok" | "degraded" | "budget_exhausted").
std::string_view status_token(StatusCode code);

}  // namespace specpart::service
