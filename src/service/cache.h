// Content-addressed embedding cache for the partitioning service.
//
// The eigensolve dominates end-to-end cost, and the paper's own thesis
// makes its result unusually reusable: the leading Laplacian eigenvectors
// are a property of the (graph, net model) pair alone — every split
// method, every weighting scheme, every k consumes the same basis. The
// cache therefore keys on a fingerprint of exactly what the eigensolve
// depends on — the clique-model graph's CSR arrays, the trivial-pair
// accounting, the solver seed/tolerance/thresholds — and deliberately NOT
// on the request's weighting scheme, split method or k.
//
// *Dimension quantization keeps prefix reuse deterministic.* Serving a
// d' = 10 request as a prefix of an arbitrarily larger cached d = 20 basis
// would be fast but wrong under the serving determinism contract: Lanczos
// run for 20 pairs does not return bit-identical leading pairs to Lanczos
// run for 10, so the response would depend on what happened to be cached.
// Instead the cache *always* solves for dim_quantum-rounded d (e.g. a
// d = 10 request solves 16 pairs) and hands back the leading d columns.
// Cold or cached, first request or thousandth, 1 thread or 8: the response
// is a pure function of the request. Every d' with the same rounded d is a
// cache hit on the same entry — the "prefix reuse" the paper's
// more-eigenvectors thesis pays for.
//
// Eviction is byte-budgeted LRU over the stored bases. Only clean bases
// (fully converged, untruncated, not budget-limited) are inserted, so a
// degraded solve can never poison future requests.
//
// *Tier 2 — the persistent basis store.* When `cache_dir` is configured,
// a storage::StoreIndex sits beneath the in-memory tier: every clean
// solve is spilled write-behind (insert and evict both persist), and a
// tier-1 miss consults the disk before solving. A disk hit promotes the
// *full* stored basis back to tier 1 — promoting a prefix would let a
// later larger-d request in the same quantized bucket receive a
// truncated slice — records an `embedding_cache_disk_hit` stage, and
// serves bytes identical to a cold compute (the store round-trips fp64
// bit patterns exactly). Disk failures of any kind degrade to recompute;
// the tier can make the service faster, never wrong and never down.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/drivers.h"
#include "spectral/embedding.h"
#include "storage/store_index.h"
#include "util/hashing.h"

namespace specpart::service {

struct EmbeddingCacheOptions {
  /// Byte budget for stored eigenbases (values + vectors + bookkeeping).
  /// 0 disables caching entirely (every request solves cold, without
  /// dimension quantization — byte-identical to the raw pipeline).
  std::size_t max_bytes = 256ull << 20;
  /// Eigensolve dimension is rounded up to the next multiple of this
  /// quantum (see file comment). 1 = no quantization: only exact-d repeats
  /// hit the cache.
  std::size_t dim_quantum = 8;
  /// Directory for the persistent tier-2 basis store. Empty (the default)
  /// disables the tier entirely — tier-1-only behavior, byte-identical to
  /// a build without src/storage.
  std::string cache_dir;
  /// Byte budget of the tier-2 directory; LRU files beyond it are deleted.
  std::size_t disk_budget_bytes = 1ull << 30;
  /// Columns per chunk of newly spilled basis files.
  std::size_t disk_chunk_cols = storage::kDefaultChunkCols;
};

/// Monotonic counters; snapshot-consistent (taken under the cache lock).
struct EmbeddingCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  /// Hits that served a strictly smaller d than the stored basis holds
  /// (subset of `hits`).
  std::uint64_t prefix_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Clean-solve results not inserted (degraded/truncated/budget-limited
  /// bases, or a basis alone larger than the byte budget).
  std::uint64_t uncacheable = 0;
  std::size_t bytes = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Thread-safe content-addressed LRU cache of Laplacian eigenbases.
class EmbeddingCache {
 public:
  explicit EmbeddingCache(EmbeddingCacheOptions opts = {});

  /// The cache-aware eigensolve over a lazy clique model (the
  /// core::EmbeddingProvider shape). The key is computed from the
  /// *hypergraph* plus the net-model token — not the expanded clique
  /// graph — so a hit returns the sliced basis without ever touching the
  /// model: no clique expansion, no Laplacian, no eigensolve. Hits record
  /// an "embedding_cache_hit" stage in `diag`; misses build the fused
  /// Laplacian, solve at the quantized dimension and insert. Safe to call
  /// from any number of service workers concurrently.
  spectral::EigenBasis compute(const model::CliqueModel& cm,
                               const spectral::EmbeddingOptions& opts,
                               Diagnostics* diag, ComputeBudget* budget);

  /// Graph-keyed variant (the pre-fused-data-plane entry point, keyed on
  /// the expanded clique graph's edge list). Kept for callers that hold a
  /// plain Graph; uses a distinct key domain ("…v1") from the hypergraph
  /// keys ("…v2"), so the two never collide.
  spectral::EigenBasis compute(const graph::Graph& g,
                               const spectral::EmbeddingOptions& opts,
                               Diagnostics* diag, ComputeBudget* budget);

  /// Binds this cache as a pipeline embedding provider. The cache must
  /// outlive every pipeline run using the provider.
  core::EmbeddingProvider provider();

  EmbeddingCacheStats stats() const;

  /// Whether the persistent tier is active (cache_dir configured, opened
  /// successfully, and caching enabled).
  bool disk_enabled() const { return disk_ != nullptr; }

  /// Tier-2 counters (zeroes when the tier is disabled).
  storage::StoreStats disk_stats() const;

  /// Drops every in-memory entry (counters and the disk tier are kept).
  void clear();

  const EmbeddingCacheOptions& options() const { return opts_; }

  /// Content key of one eigensolve: fingerprint of the graph CSR arrays
  /// (edge endpoints + weights + vertex count), the trivial-pair
  /// accounting, seed, tolerance, thresholds, and the quantized solve
  /// dimension. Exposed for tests.
  static Fingerprint eigen_key(const graph::Graph& g,
                               const spectral::EmbeddingOptions& opts,
                               std::size_t solve_count);

  /// Hypergraph-content key: fingerprint of the pin lists + net weights +
  /// net-model token + max_net_size, plus the same solver options as
  /// eigen_key. Computable without expanding the model — the point of the
  /// fused data plane: a hit never pays for clique expansion. Two requests
  /// get the same key iff eigen_key over their expanded graphs would agree
  /// (up to hypergraphs that differ only in <2-pin nets, which expand
  /// identically but key differently — a spurious miss, never a false
  /// hit). Exposed for tests.
  static Fingerprint netlist_key(const graph::Hypergraph& h,
                                 model::NetModel net_model,
                                 std::size_t max_net_size,
                                 const spectral::EmbeddingOptions& opts,
                                 std::size_t solve_count);

  /// dim_quantum-rounded solve dimension for a requested count.
  std::size_t quantized_count(std::size_t count) const;

  /// Bytes one stored basis accounts for.
  static std::size_t basis_bytes(const spectral::EigenBasis& basis);

 private:
  struct Entry {
    spectral::EigenBasis basis;
    std::size_t bytes = 0;
    /// Solver/strategy/objective tokens of the options that produced the
    /// basis, kept so an evicted entry can still be spilled to tier 2
    /// (objective_token is empty for the default objective).
    std::string solver_token;
    std::string strategy_token;
    std::string objective_token;
    /// Position in lru_ (front = most recently used).
    std::list<Fingerprint>::iterator lru_pos;
  };

  /// Hit path: under the lock, finds `key`, bumps its LRU position and
  /// writes the basis sliced to `count` into `out`. False on miss.
  bool lookup(const Fingerprint& key, std::size_t count, Diagnostics* diag,
              spectral::EigenBasis& out);

  /// Tier-2 path (tier-1 miss): loads the full stored basis from disk,
  /// promotes it to tier 1, records the disk-hit stage and writes the
  /// slice into `out`. False on a disk miss (or disabled tier).
  bool disk_lookup(const Fingerprint& key, std::size_t count,
                   const spectral::EmbeddingOptions& opts, Diagnostics* diag,
                   spectral::EigenBasis& out);

  /// Miss path: inserts `full` under `key` when it is clean and fits the
  /// budget (spilling it write-behind to tier 2 first), and returns it
  /// sliced to `count`.
  spectral::EigenBasis insert(const Fingerprint& key,
                              spectral::EigenBasis full, std::size_t count,
                              const spectral::EmbeddingOptions& opts,
                              Diagnostics* diag);

  /// Inserts an already-persisted basis into tier 1 (the promotion half
  /// of disk_lookup); spills any entries it evicts.
  void promote(const Fingerprint& key, const spectral::EigenBasis& full,
               const spectral::EmbeddingOptions& opts);

  /// Evicts LRU entries beyond the byte budget into `spilled` so the
  /// caller can persist them after releasing the lock.
  void evict_to_budget_locked(
      std::vector<std::pair<Fingerprint, Entry>>& spilled);

  /// Write-behind: persists evicted entries not already on disk.
  void spill(const std::vector<std::pair<Fingerprint, Entry>>& spilled);

  EmbeddingCacheOptions opts_;
  std::unique_ptr<storage::StoreIndex> disk_;
  mutable std::mutex mutex_;
  std::list<Fingerprint> lru_;
  std::unordered_map<Fingerprint, Entry, FingerprintHash> entries_;
  EmbeddingCacheStats stats_;
};

}  // namespace specpart::service
