#include "service/protocol.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "graph/netlist_io.h"
#include "util/error.h"
#include "util/stringutil.h"

namespace specpart::service {

namespace {

/// key=value tokens of a header line after the leading verb. `error=`
/// greedily consumes the rest of the line (messages contain spaces).
std::vector<std::pair<std::string, std::string>> parse_header_fields(
    std::string_view line, std::string_view verb) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::string_view rest = trim(line);
  SP_CHECK_INPUT(starts_with(rest, verb),
                 "protocol: expected " + std::string(verb) + " line, got '" +
                     std::string(line) + "'");
  rest.remove_prefix(verb.size());
  while (true) {
    rest = trim(rest);
    if (rest.empty()) break;
    const std::size_t eq = rest.find('=');
    SP_CHECK_INPUT(eq != std::string_view::npos && eq > 0,
                   "protocol: malformed field in '" + std::string(line) + "'");
    const std::string key(rest.substr(0, eq));
    rest.remove_prefix(eq + 1);
    if (key == "error") {  // free-text tail
      fields.emplace_back(key, std::string(trim(rest)));
      break;
    }
    const std::size_t end = rest.find_first_of(" \t");
    const std::string value(
        end == std::string_view::npos ? rest : rest.substr(0, end));
    rest.remove_prefix(
        end == std::string_view::npos ? rest.size() : end);
    fields.emplace_back(key, value);
  }
  return fields;
}

bool parse_bool_field(const std::string& value, const std::string& key) {
  if (value == "1") return true;
  if (value == "0") return false;
  throw Error("protocol: field " + key + " must be 0 or 1, got '" + value +
              "'");
}

void expect_end_line(std::istream& in, std::string_view frame) {
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    SP_CHECK_INPUT(trim(line) == "END",
                   "protocol: expected END after " + std::string(frame) +
                       ", got '" + line + "'");
    return;
  }
  throw Error("protocol: stream ended before END of " + std::string(frame));
}

/// First non-blank line, or nullopt at EOF.
std::optional<std::string> next_content_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!trim(line).empty()) return line;
  }
  return std::nullopt;
}

}  // namespace

std::string_view status_token(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kDegraded:
      return "degraded";
    case StatusCode::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "?";
}

void write_request(const PartitionRequest& req, std::ostream& out) {
  std::ostringstream graph_text;
  graph::write_hgr(req.graph, graph_text);
  const std::string payload = graph_text.str();
  std::size_t lines = 0;
  for (const char c : payload)
    if (c == '\n') ++lines;

  const core::PipelineConfig& p = req.pipeline;
  out << "REQUEST id=" << req.id << " k=" << req.k
      << strprintf(" balance=%.17g", req.balance) << " d=" << p.num_eigenvectors
      << " trivial=" << (p.include_trivial ? 1 : 0)
      << " scaling=" << core::coord_scaling_token(p.scaling)
      << " selection=" << core::selection_rule_token(p.selection)
      << " readjust=" << (p.readjust_h ? 1 : 0)
      << strprintf(" h=%.17g", p.h_override)
      << " lazy=" << (p.lazy_ranking ? 1 : 0)
      << " lazy_window=" << p.lazy_window
      << " lazy_rerank=" << p.lazy_rerank_interval
      << " net_model=" << core::net_model_token(p.net_model)
      << " starts=" << p.num_starts << " seed=" << p.seed;
  // Emitted only for non-default backends: absent means scalar, which keeps
  // the wire bytes of scalar requests identical to the pre-solver protocol.
  if (p.solver.backend != core::SolverBackend::kScalar)
    out << " solver=" << core::solver_backend_token(p.solver.backend);
  // Same non-default-only contract for the orchestration strategy: absent
  // means flat, so pre-multilevel recorded traffic replays byte-identical.
  if (p.solver.strategy != core::SolverStrategy::kFlat)
    out << " strategy=" << core::solver_strategy_token(p.solver.strategy);
  // And for the objective model: absent means unnormalized, so recorded
  // min-cut traffic stays byte-identical to the pre-objective protocol.
  if (p.objective != core::ObjectiveModel::kUnnormalized)
    out << " objective=" << core::objective_model_token(p.objective);
  out << " graph_lines=" << lines << '\n';
  out << payload;
  out << "END\n";
}

PartitionRequest parse_request(const std::string& header_line,
                               std::istream& in,
                               const ProtocolLimits& limits) {
  PartitionRequest req;
  core::PipelineConfig& p = req.pipeline;
  std::size_t graph_lines = 0;
  bool have_graph_lines = false;
  for (const auto& [key, value] : parse_header_fields(header_line, "REQUEST")) {
    if (key == "id") {
      req.id = value;
    } else if (key == "k") {
      req.k = static_cast<std::uint32_t>(parse_size(value, "k"));
    } else if (key == "balance") {
      req.balance = parse_double(value, "balance");
    } else if (key == "d") {
      p.num_eigenvectors = parse_size(value, "d");
    } else if (key == "trivial") {
      p.include_trivial = parse_bool_field(value, key);
    } else if (key == "scaling") {
      p.scaling = core::parse_coord_scaling(value);
    } else if (key == "selection") {
      p.selection = core::parse_selection_rule(value);
    } else if (key == "readjust") {
      p.readjust_h = parse_bool_field(value, key);
    } else if (key == "h") {
      p.h_override = parse_double(value, "h");
    } else if (key == "lazy") {
      p.lazy_ranking = parse_bool_field(value, key);
    } else if (key == "lazy_window") {
      p.lazy_window = parse_size(value, "lazy_window");
    } else if (key == "lazy_rerank") {
      p.lazy_rerank_interval = parse_size(value, "lazy_rerank");
    } else if (key == "net_model") {
      p.net_model = core::parse_net_model(value);
    } else if (key == "starts") {
      p.num_starts = parse_size(value, "starts");
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(parse_size(value, "seed"));
    } else if (key == "solver") {
      // Absent field = scalar (backward compatible); an unknown token is a
      // structured bad_request error, not a protocol-level crash.
      try {
        p.solver.backend = core::parse_solver_backend(value);
      } catch (const Error& e) {
        throw Error(std::string("bad_request: ") + e.what());
      }
    } else if (key == "strategy") {
      // Absent field = flat (backward compatible); same structured
      // bad_request contract as the solver field.
      try {
        p.solver.strategy = core::parse_solver_strategy(value);
      } catch (const Error& e) {
        throw Error(std::string("bad_request: ") + e.what());
      }
    } else if (key == "objective") {
      // Absent field = unnormalized (backward compatible); same structured
      // bad_request contract as the solver and strategy fields.
      try {
        p.objective = core::parse_objective_model(value);
      } catch (const Error& e) {
        throw Error(std::string("bad_request: ") + e.what());
      }
    } else if (key == "graph_lines") {
      graph_lines = parse_size(value, "graph_lines");
      have_graph_lines = true;
    } else {
      throw Error("protocol: unknown REQUEST field '" + key + "'");
    }
  }
  SP_CHECK_INPUT(have_graph_lines,
                 "protocol: REQUEST is missing the graph_lines field");
  SP_CHECK_INPUT(req.k >= 2, "protocol: k must be >= 2");
  // Reject an absurd announced size before committing to read it — the
  // header alone must not be able to make the server loop over terabytes.
  if (graph_lines > limits.max_graph_lines)
    throw Error(strprintf(
        "bad_request: graph_lines=%zu exceeds the %zu-line payload limit",
        graph_lines, limits.max_graph_lines));

  std::string payload;
  std::string line;
  for (std::size_t i = 0; i < graph_lines; ++i) {
    SP_CHECK_INPUT(static_cast<bool>(std::getline(in, line)),
                   "protocol: stream ended inside the graph payload "
                   "(expected " +
                       std::to_string(graph_lines) + " lines)");
    payload += line;
    payload += '\n';
    if (payload.size() > limits.max_payload_bytes)
      throw Error(strprintf(
          "bad_request: request payload exceeds the %zu-byte limit",
          limits.max_payload_bytes));
  }
  std::istringstream graph_in(payload);
  req.graph = graph::read_hgr(graph_in);
  expect_end_line(in, "REQUEST");
  return req;
}

std::optional<PartitionRequest> read_request(std::istream& in,
                                             const ProtocolLimits& limits) {
  const std::optional<std::string> header = next_content_line(in);
  if (!header) return std::nullopt;
  return parse_request(*header, in, limits);
}

void write_response(const PartitionResponse& resp, std::ostream& out) {
  out << "RESPONSE id=" << resp.id << " status=" << resp.status;
  if (resp.status == "error") {
    out << " error=" << resp.error << '\n';
    out << "END\n";
    return;
  }
  out << " k=" << resp.k << strprintf(" cut=%.17g", resp.cut)
      << strprintf(" scaled_cost=%.17g", resp.scaled_cost)
      << strprintf(" ratio_cut=%.17g", resp.ratio_cut)
      << " d_used=" << resp.eigenvectors_used
      << " converged=" << (resp.eigen_converged ? 1 : 0)
      << " budget_exhausted=" << (resp.budget_exhausted ? 1 : 0)
      << " n=" << resp.assignment.size() << '\n';
  out << "ASSIGN";
  for (const std::uint32_t c : resp.assignment) out << ' ' << c;
  out << '\n';
  out << "END\n";
}

PartitionResponse parse_response(const std::string& header_line,
                                 std::istream& in) {
  PartitionResponse resp;
  std::size_t n = 0;
  bool have_n = false;
  for (const auto& [key, value] :
       parse_header_fields(header_line, "RESPONSE")) {
    if (key == "id") {
      resp.id = value;
    } else if (key == "status") {
      resp.status = value;
    } else if (key == "error") {
      resp.error = value;
    } else if (key == "k") {
      resp.k = static_cast<std::uint32_t>(parse_size(value, "k"));
    } else if (key == "cut") {
      resp.cut = parse_double(value, "cut");
    } else if (key == "scaled_cost") {
      resp.scaled_cost = parse_double(value, "scaled_cost");
    } else if (key == "ratio_cut") {
      resp.ratio_cut = parse_double(value, "ratio_cut");
    } else if (key == "d_used") {
      resp.eigenvectors_used = parse_size(value, "d_used");
    } else if (key == "converged") {
      resp.eigen_converged = parse_bool_field(value, key);
    } else if (key == "budget_exhausted") {
      resp.budget_exhausted = parse_bool_field(value, key);
    } else if (key == "n") {
      n = parse_size(value, "n");
      have_n = true;
    } else {
      throw Error("protocol: unknown RESPONSE field '" + key + "'");
    }
  }
  if (resp.status == "error") {
    expect_end_line(in, "RESPONSE");
    return resp;
  }
  SP_CHECK_INPUT(have_n, "protocol: RESPONSE is missing the n field");
  const std::optional<std::string> assign_line = next_content_line(in);
  SP_CHECK_INPUT(assign_line.has_value(),
                 "protocol: stream ended before the ASSIGN line");
  const std::vector<std::string> tokens = split_ws(*assign_line);
  SP_CHECK_INPUT(!tokens.empty() && tokens[0] == "ASSIGN",
                 "protocol: expected ASSIGN line, got '" + *assign_line + "'");
  SP_CHECK_INPUT(tokens.size() == n + 1,
                 strprintf("protocol: ASSIGN holds %zu ids, header says n=%zu",
                           tokens.size() - 1, n));
  resp.assignment.reserve(n);
  for (std::size_t i = 1; i < tokens.size(); ++i)
    resp.assignment.push_back(
        static_cast<std::uint32_t>(parse_size(tokens[i], "ASSIGN id")));
  expect_end_line(in, "RESPONSE");
  return resp;
}

std::optional<PartitionResponse> read_response(std::istream& in) {
  const std::optional<std::string> header = next_content_line(in);
  if (!header) return std::nullopt;
  return parse_response(*header, in);
}

std::string response_to_json(const PartitionResponse& resp) {
  std::ostringstream out;
  out << "{\"id\": \"" << resp.id << "\", \"status\": \"" << resp.status
      << "\"";
  if (resp.status == "error") {
    std::string escaped;
    for (const char c : resp.error) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    out << ", \"error\": \"" << escaped << "\"}";
    return out.str();
  }
  out << ", \"k\": " << resp.k << strprintf(", \"cut\": %.17g", resp.cut)
      << strprintf(", \"scaled_cost\": %.17g", resp.scaled_cost)
      << strprintf(", \"ratio_cut\": %.17g", resp.ratio_cut)
      << ", \"d_used\": " << resp.eigenvectors_used
      << ", \"converged\": " << (resp.eigen_converged ? "true" : "false")
      << ", \"budget_exhausted\": "
      << (resp.budget_exhausted ? "true" : "false") << ", \"n\": "
      << resp.assignment.size() << ", \"assignment\": [";
  for (std::size_t i = 0; i < resp.assignment.size(); ++i)
    out << (i ? ", " : "") << resp.assignment[i];
  out << "]}";
  return out.str();
}

}  // namespace specpart::service
