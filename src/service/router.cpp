#include "service/router.h"

#include <algorithm>

#include "core/pipeline_config.h"
#include "util/status.h"

namespace specpart::service {

HashRing::HashRing(std::size_t num_shards, std::size_t vnodes)
    : num_shards_(num_shards) {
  points_.reserve(num_shards * vnodes);
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    for (std::size_t replica = 0; replica < vnodes; ++replica) {
      Hasher h;
      h.mix_string("specpart.ring.v1");
      h.mix_size(shard);
      h.mix_size(replica);
      points_.emplace_back(h.digest().lo, shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<std::size_t> HashRing::route(std::uint64_t point) const {
  std::vector<std::size_t> order;
  if (points_.empty()) return order;
  order.reserve(num_shards_);
  std::vector<bool> seen(num_shards_, false);
  // First point at or after `point`, wrapping around the ring.
  std::size_t start =
      static_cast<std::size_t>(
          std::lower_bound(points_.begin(), points_.end(),
                           std::make_pair(point, std::size_t{0})) -
          points_.begin()) %
      points_.size();
  for (std::size_t i = 0; i < points_.size() && order.size() < num_shards_;
       ++i) {
    const std::size_t shard = points_[(start + i) % points_.size()].second;
    if (!seen[shard]) {
      seen[shard] = true;
      order.push_back(shard);
    }
  }
  return order;
}

std::size_t HashRing::primary(std::uint64_t point) const {
  return route(point).front();
}

Fingerprint routing_key(const PartitionRequest& req) {
  Hasher h;
  h.mix_string("specpart.route.v1");
  h.mix_string(core::net_model_token(req.pipeline.net_model));
  const graph::Hypergraph& g = req.graph;
  h.mix_size(g.num_nodes());
  h.mix_size(g.num_nets());
  for (graph::NetId e = 0; e < g.num_nets(); ++e) {
    h.mix_span(g.net(e));
    h.mix_double(g.net_weight(e));
  }
  return h.digest();
}

namespace {

ServiceOptions local_options(const RouterOptions& opts) {
  ServiceOptions local = opts.local;
  local.deadline_seconds = opts.local_deadline_seconds;
  return local;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions opts)
    : opts_(std::move(opts)),
      ring_(opts_.shards.size(), std::max<std::size_t>(1, opts_.vnodes)),
      local_(local_options(opts_)) {
  shards_.reserve(opts_.shards.size());
  for (const ShardClientOptions& shard_opts : opts_.shards)
    shards_.push_back(std::make_unique<ShardClient>(shard_opts));
  if (opts_.health_interval_seconds > 0.0 && !shards_.empty())
    health_thread_ = std::thread([this] { health_loop(); });
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    stopping_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
}

void ShardRouter::health_loop() {
  std::unique_lock<std::mutex> lock(health_mutex_);
  const auto interval =
      std::chrono::duration<double>(opts_.health_interval_seconds);
  while (!stopping_) {
    if (health_cv_.wait_for(lock, interval, [this] { return stopping_; }))
      break;
    lock.unlock();
    for (const std::unique_ptr<ShardClient>& shard : shards_) shard->ping();
    lock.lock();
  }
}

PartitionResponse ShardRouter::route(const PartitionRequest& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!shards_.empty()) {
    const Fingerprint key = routing_key(req);
    const std::vector<std::size_t> order = ring_.route(key.hi ^ key.lo);
    for (std::size_t i = 0; i < order.size(); ++i) {
      // Moving past the primary is a failover, whether the shard failed
      // its attempts or was skipped by an open breaker.
      if (i > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
      if (std::optional<PartitionResponse> resp = shards_[order[i]]->call(req))
        return *resp;
    }
  }
  // Every shard unavailable (or none configured): degrade, never abort.
  // The local engine computes under its own (degraded) deadline; the
  // recovery is visible as a router_local_fallback diagnostics stage and
  // in the aggregated metrics, never in the response bytes.
  local_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  Diagnostics diag;
  StageTimerScope scope(&diag, "router_local_fallback");
  diag.fallback("router_local_fallback",
                "all shards unavailable or retry budget exhausted; "
                "computing locally under a degraded deadline");
  return local_.execute(req, &diag);
}

MetricsSnapshot ShardRouter::snapshot() const {
  MetricsSnapshot s = local_.snapshot();
  s.router.present = true;
  s.router.requests = requests_.load(std::memory_order_relaxed);
  s.router.failovers = failovers_.load(std::memory_order_relaxed);
  s.router.local_fallbacks = local_fallbacks_.load(std::memory_order_relaxed);
  s.router.shards_total = shards_.size();
  for (const std::unique_ptr<ShardClient>& shard : shards_) {
    RouterShardMetrics m;
    m.name = shard->name();
    m.state = static_cast<int>(shard->state());
    const ShardClientStats st = shard->stats();
    m.requests = st.requests;
    m.failures = st.failures;
    m.retries = st.retries;
    m.breaker_opens = st.breaker_opens;
    m.pings_ok = st.pings_ok;
    m.pings_failed = st.pings_failed;
    s.router.retries += st.retries;
    if (m.state != static_cast<int>(ShardState::kOpen))
      ++s.router.shards_live;
    s.router.shards.push_back(std::move(m));
  }
  return s;
}

}  // namespace specpart::service
