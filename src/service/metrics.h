// Serving metrics: request/error counters, queue depth, cache hit rate,
// and latency percentiles from a fixed-bucket histogram.
//
// Everything here is updated from hot serving paths, so the design goals
// are (a) wait-free recording — plain relaxed atomics, no locks — and
// (b) snapshot-then-render: readers take a consistent-enough copy
// (MetricsSnapshot) and all derivation (rates, percentiles) happens on the
// copy. Latency quantiles come from a fixed log-spaced bucket histogram
// (~19% resolution steps from 1 microsecond to ~4.6 hours), the standard
// serving-systems trade: bounded memory, wait-free writes, quantile error
// bounded by the bucket width.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace specpart::service {

/// Fixed-bucket latency histogram. Bucket i counts samples in
/// (upper(i-1), upper(i)] with upper(i) = 1us * 2^(i/4) — four buckets per
/// doubling, 96 buckets, so the top bucket boundary exceeds 4 hours;
/// slower samples clamp into the last bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 96;

  void record(double seconds);

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    double sum_seconds = 0.0;

    /// Quantile in seconds by linear interpolation inside the covering
    /// bucket; 0 when empty. q in [0, 1].
    double quantile(double q) const;
    double mean() const {
      return total == 0 ? 0.0 : sum_seconds / static_cast<double>(total);
    }
  };

  Snapshot snapshot() const;

  /// Upper bound of bucket i in seconds (exposed for tests).
  static double bucket_upper(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  /// Nanosecond sum (atomic doubles are not portable pre-C++20 everywhere;
  /// a 64-bit nanosecond counter overflows after ~584 years of latency).
  std::atomic<std::uint64_t> sum_nanos_{0};
};

/// Per-shard health and traffic counters inside a router snapshot.
struct RouterShardMetrics {
  /// "host:port" of the backend.
  std::string name;
  /// Circuit-breaker state: 0 = closed, 1 = open, 2 = half-open
  /// (service::ShardState values; kept as int so metrics.h does not
  /// depend on client.h).
  int state = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t pings_ok = 0;
  std::uint64_t pings_failed = 0;
};

/// Router tier counters, aggregated into the same MetricsSnapshot the
/// single-server METRICS frame renders. `present` is false for a plain
/// PartitionService snapshot, and absent sections emit nothing — the
/// non-router METRICS frame bytes are unchanged by this section existing.
struct RouterMetricsSection {
  bool present = false;
  std::uint64_t requests = 0;
  /// Requests re-routed past their primary shard (down, open breaker, or
  /// retry budget exhausted there).
  std::uint64_t failovers = 0;
  /// Requests computed by the router's own degraded-deadline engine after
  /// every shard was unavailable.
  std::uint64_t local_fallbacks = 0;
  /// Total shard-level resend attempts (sum over shards).
  std::uint64_t retries = 0;
  std::size_t shards_total = 0;
  /// Shards whose breaker is not open.
  std::size_t shards_live = 0;
  std::vector<RouterShardMetrics> shards;
};

/// Persistent tier-2 basis store counters, filled by the service from
/// storage::StoreStats when the tier is configured. `present` is false
/// when the tier is disabled, and absent sections emit nothing — a
/// tier-less deployment's METRICS frame bytes are unchanged by this
/// section existing (same contract as the router section).
struct StorageMetricsSection {
  bool present = false;
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_misses = 0;
  std::uint64_t spills = 0;
  std::uint64_t spill_failures = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt_quarantined = 0;
  std::size_t bytes_on_disk = 0;
  std::size_t disk_entries = 0;
};

/// One consistent view of the service counters plus everything derived
/// from them. Produced by ServiceMetrics::snapshot() (and enriched with
/// cache stats by PartitionService::snapshot(), and with the router
/// section by ShardRouter::snapshot()).
struct MetricsSnapshot {
  std::uint64_t requests_total = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_degraded = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t rejected = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  std::size_t workers = 0;

  /// Requests carrying a non-default objective model (normalized
  /// Laplacian / conductance objective). Emitted in key_values() and the
  /// text rendering only when nonzero, so default-objective traffic's
  /// METRICS frames are byte-identical to the pre-objective format.
  std::uint64_t objective_normalized_requests = 0;

  // Cache section (filled by the service from EmbeddingCacheStats).
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_prefix_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_entries = 0;
  double cache_hit_rate = 0.0;

  /// Persistent tier-2 store (present only when cache_dir is configured).
  StorageMetricsSection storage;

  /// Router tier (present only in ShardRouter snapshots).
  RouterMetricsSection router;

  LatencyHistogram::Snapshot latency;

  /// Stable key/value flattening: the METRICS wire frame and the text
  /// rendering both derive from this, so they cannot disagree.
  std::vector<std::pair<std::string, double>> key_values() const;

  /// Human-readable multi-line rendering (counters, cache, p50/p95/p99).
  std::string render_text() const;
};

/// Wait-free counter hub updated by the serving paths.
class ServiceMetrics {
 public:
  void on_submitted() { requests_total_.fetch_add(1, relaxed); }
  void on_rejected() { rejected_.fetch_add(1, relaxed); }
  /// A request arrived carrying a non-default (normalized) objective.
  void on_normalized_objective() {
    objective_normalized_requests_.fetch_add(1, relaxed);
  }

  void on_enqueued(std::size_t depth) {
    queue_depth_.store(depth, relaxed);
    std::size_t peak = queue_peak_.load(relaxed);
    while (depth > peak &&
           !queue_peak_.compare_exchange_weak(peak, depth, relaxed)) {
    }
  }
  void on_dequeued(std::size_t depth) { queue_depth_.store(depth, relaxed); }

  /// `status` is the wire status token of the finished response.
  void on_completed(const std::string& status, double seconds);

  MetricsSnapshot snapshot() const;

 private:
  static constexpr std::memory_order relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> responses_degraded_{0};
  std::atomic<std::uint64_t> responses_error_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> objective_normalized_requests_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> queue_peak_{0};
  LatencyHistogram latency_;
};

}  // namespace specpart::service
