// The reusable serving loop behind specpart_server and specpart_router,
// plus an in-process TCP shard server for tests and the multi-shard
// loadgen.
//
// serve_stream() speaks the wire protocol (protocol.h) over any iostream
// pair: REQUEST frames are admitted through a StreamBackend, control lines
// (PING / METRICS / QUIT) are answered in order, and a dedicated writer
// thread emits each response as soon as it is ready so pipelining clients
// cannot deadlock the reader. Malformed or over-limit frames get a
// structured `bad_request:` error response before the connection closes
// (framing is lost after garbage, so closing is the only safe move).
//
// ShardServer binds a PartitionService to a kernel-assigned TCP port with
// an accept loop, one serve_stream per connection. kill() is the
// fault-injection hammer: it severs the listener AND every active
// connection without draining, exactly what a crashed shard looks like to
// a router.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/service.h"

namespace specpart::service {

class ShardRouter;

/// What a serving loop does with an admitted request: PartitionService
/// (queue + workers) for specpart_server, ShardRouter for specpart_router.
class StreamBackend {
 public:
  virtual ~StreamBackend() = default;

  /// Accepts one request; may exert backpressure by blocking. The future
  /// resolves to the response (responses are written in submission order).
  virtual std::future<PartitionResponse> submit(PartitionRequest req) = 0;

  /// Non-blocking admission; false on rejection (queue full).
  virtual bool try_submit(PartitionRequest req,
                          std::future<PartitionResponse>& out) = 0;

  /// Snapshot rendered into the METRICS frame.
  virtual MetricsSnapshot metrics() = 0;
};

/// StreamBackend over a PartitionService.
class ServiceBackend : public StreamBackend {
 public:
  explicit ServiceBackend(PartitionService& svc) : svc_(svc) {}
  std::future<PartitionResponse> submit(PartitionRequest req) override;
  bool try_submit(PartitionRequest req,
                  std::future<PartitionResponse>& out) override;
  MetricsSnapshot metrics() override;

 private:
  PartitionService& svc_;
};

/// StreamBackend over a ShardRouter. Routing runs lazily on the writer
/// thread (deferred future), which keeps the reader free to parse frames
/// while preserving FIFO response order; the router never rejects.
class RouterBackend : public StreamBackend {
 public:
  explicit RouterBackend(ShardRouter& router) : router_(router) {}
  std::future<PartitionResponse> submit(PartitionRequest req) override;
  bool try_submit(PartitionRequest req,
                  std::future<PartitionResponse>& out) override;
  MetricsSnapshot metrics() override;

 private:
  ShardRouter& router_;
};

struct ServeOptions {
  /// true: a full queue yields an immediate `rejected: queue full` error
  /// response; false: the reader blocks (backpressure).
  bool reject_when_full = true;
  /// Parse-side payload limits (see protocol.h).
  ProtocolLimits limits;
};

/// Serves one connection's byte streams until EOF, QUIT, or a poisoned
/// frame. See file comment for the reader/writer split.
void serve_stream(StreamBackend& backend, std::istream& in, std::ostream& out,
                  const ServeOptions& opts = {});

/// Renders a METRICS control frame (METRIC key value lines + END).
void write_metrics_frame(const MetricsSnapshot& snap, std::ostream& out);

struct ShardServerOptions {
  ServiceOptions service;
  ServeOptions serve;
  /// Per-connection idle read deadline in seconds (0 = none): a client
  /// that stalls mid-stream for longer has its connection closed and its
  /// reader thread released.
  double idle_timeout_seconds = 0.0;
};

/// An in-process specpart_server: PartitionService + TCP accept loop on a
/// kernel-assigned port. Used by the multi-shard loadgen and the router
/// tests; the standalone binary wires the same pieces by hand for stdio
/// support.
class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions opts = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  std::uint16_t port() const { return port_; }
  PartitionService& service() { return svc_; }

  /// Graceful stop: stops accepting, severs remaining connections, joins.
  void stop();

  /// Crash simulation: severs the listener and every active connection
  /// immediately (no drain), so in-flight peers see mid-stream resets.
  /// The object stays joinable; stop()/destruction cleans up.
  void kill();

 private:
  void accept_loop();
  void serve_connection(int fd, std::size_t slot);

  ShardServerOptions opts_;
  PartitionService svc_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mutex_;
  /// Active connection fds by slot; -1 once the serving thread is done
  /// with (and has closed) the fd. Append-only, so kill() can sever every
  /// live connection without racing fd reuse.
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread accept_thread_;
};

}  // namespace specpart::service
