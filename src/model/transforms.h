// Alternative hypergraph-to-graph transformations surveyed in section 2 of
// the paper (and in [4]): the star model (a dummy vertex per net) and the
// dual/intersection model (a vertex per net). Provided for completeness and
// ablation; the experiments use the clique models.
#pragma once

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace specpart::model {

/// Star expansion [30]: adds one dummy vertex per net of >= 2 pins and an
/// edge (pin, dummy) of weight `w` times the net weight. The first
/// h.num_nodes() vertices of the result are the original modules; dummies
/// follow in net order. `dummy_of` (optional) receives, for each net, the
/// dummy vertex id or UINT32_MAX for skipped single-pin nets.
graph::Graph star_expand(const graph::Hypergraph& h, double w = 1.0,
                         std::vector<std::uint32_t>* dummy_of = nullptr);

/// Dual (intersection) model [34]: one vertex per net; two nets are joined
/// by an edge weighted by the number of modules they share.
graph::Graph dual_graph(const graph::Hypergraph& h);

}  // namespace specpart::model
