#include "model/clique_models.h"

#include <cmath>

#include "model/assembly.h"
#include "util/error.h"

namespace specpart::model {

const char* net_model_name(NetModel m) {
  switch (m) {
    case NetModel::kStandard:
      return "standard";
    case NetModel::kPartitioningSpecific:
      return "partitioning-specific";
    case NetModel::kFrankle:
      return "frankle";
  }
  return "?";
}

double clique_edge_cost(NetModel m, std::size_t size) {
  SP_ASSERT(size >= 2);
  const double s = static_cast<double>(size);
  switch (m) {
    case NetModel::kStandard:
      return 1.0 / (s - 1.0);
    case NetModel::kPartitioningSpecific:
      // Conditioned on a uniformly random bipartition cutting the net, the
      // expected number of cut clique edges is s(s-1)/4 / (1 - 2^{1-s});
      // this cost makes that expectation exactly 1.
      return 4.0 * (1.0 - std::exp2(1.0 - s)) / (s * (s - 1.0));
    case NetModel::kFrankle:
      return std::pow(2.0 / s, 1.5);
  }
  return 0.0;
}

graph::Graph clique_expand(const graph::Hypergraph& h, NetModel m,
                           std::size_t max_net_size) {
  // Streams pin pairs straight into the shared assembly workspace — no
  // intermediate Edge list (see model/assembly.h).
  ModelBuildOptions opts;
  opts.max_net_size = max_net_size;
  return expand_clique_graph(h, m, opts);
}

}  // namespace specpart::model
