#include "model/transforms.h"

#include <cstdint>
#include <map>

namespace specpart::model {

graph::Graph star_expand(const graph::Hypergraph& h, double w,
                         std::vector<std::uint32_t>* dummy_of) {
  std::vector<graph::Edge> edges;
  std::uint32_t next = static_cast<std::uint32_t>(h.num_nodes());
  if (dummy_of) dummy_of->assign(h.num_nets(), UINT32_MAX);
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    const std::uint32_t dummy = next++;
    if (dummy_of) (*dummy_of)[e] = dummy;
    for (graph::NodeId v : pins)
      edges.push_back({v, dummy, w * h.net_weight(e)});
  }
  return graph::Graph(next, edges);
}

graph::Graph dual_graph(const graph::Hypergraph& h) {
  // For every module, connect all pairs of its incident nets; merging in
  // Graph's constructor accumulates the shared-module counts.
  std::vector<graph::Edge> edges;
  for (graph::NodeId v = 0; v < h.num_nodes(); ++v) {
    const auto& nets = h.nets_of(v);
    for (std::size_t i = 0; i < nets.size(); ++i)
      for (std::size_t j = i + 1; j < nets.size(); ++j)
        edges.push_back({nets[i], nets[j], 1.0});
  }
  return graph::Graph(h.num_nets(), edges);
}

}  // namespace specpart::model
