// Fused hypergraph -> matrix assembly: the zero-copy front door of the
// sparse data plane.
//
// The seed pipeline materialized the same sparsity structure four times per
// request (pin pairs -> Edge list -> Graph CSR -> Triplet list -> Laplacian
// CSR). The builders here stream clique pairs straight into the shared
// counting-sort assembler (linalg/csr.h) and finish directly into the
// structure an algorithm actually wants:
//
//  * build_clique_laplacian: pins -> Laplacian CSR in one assembly, degrees
//    accumulated in-pass and spliced in as sorted diagonal entries. No
//    Graph, no triplets, no comparison sorts, one cols/values
//    materialization.
//  * expand_clique_graph: pins -> adjacency CSR (the Graph) the same way.
//  * CliqueModel: lazy holder used by the drivers — builds the Laplacian
//    or the Graph on first request and derives the other in O(nnz) if it
//    is ever needed too (Q = D - A, so A = -offdiag(Q) exactly). A cached
//    embedding means neither is ever built.
//
// Expansion cost is known exactly up front (sum p(p-1)/2 over eligible
// nets), which buys two things: the entry buffer is materialized once at
// its final size, and a `max_clique_pairs` budget can reject an oversized
// model with a structured `model_too_large` error *before* allocating
// gigabytes — an admission decision, not an OOM.
#pragma once

#include <cstddef>
#include <optional>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "linalg/objective.h"
#include "linalg/sparse.h"
#include "model/clique_models.h"
#include "util/budget.h"
#include "util/status.h"

namespace specpart::model {

/// Options shared by the fused model builders.
struct ModelBuildOptions {
  /// Nets larger than this are skipped when > 0 (0 keeps everything).
  std::size_t max_net_size = 0;
  /// Clique-pair admission budget: when > 0 and the exact pair count
  /// sum p(p-1)/2 of the eligible nets exceeds it, the build throws Error
  /// with a `model_too_large` message (also recorded as a Diagnostics
  /// warning) before any entry buffer is sized. 0 = unlimited.
  std::size_t max_clique_pairs = 0;
  /// Row-block parallelism for the assembly's merge passes (bit-identical
  /// output for any thread count).
  ParallelConfig parallel;
};

/// Exact number of clique pairs expansion would emit: sum p(p-1)/2 over
/// nets with >= 2 pins (and <= max_net_size when that is > 0).
std::size_t clique_pair_count(const graph::Hypergraph& h,
                              std::size_t max_net_size = 0);

/// Fused pins -> Laplacian build (see file comment). Throws Error with a
/// `model_too_large` message when opts.max_clique_pairs is exceeded.
linalg::SymCsrMatrix build_clique_laplacian(const graph::Hypergraph& h,
                                            NetModel m,
                                            const ModelBuildOptions& opts = {},
                                            Diagnostics* diag = nullptr);

/// Assembler-backed clique expansion: same result as clique_expand, plus
/// the pair-count admission guard and deterministic parallel merge.
graph::Graph expand_clique_graph(const graph::Hypergraph& h, NetModel m,
                                 const ModelBuildOptions& opts = {},
                                 Diagnostics* diag = nullptr);

/// Lazy clique model over one hypergraph + net model.
///
/// The drivers hand this to the embedding provider instead of an expanded
/// Graph; whichever representation is requested first is built fused from
/// the pins (under a "model" diagnostics stage), and the other — if ever
/// needed — is derived from it in O(nnz). A cache hit requests neither, so
/// it skips clique expansion entirely.
class CliqueModel {
 public:
  CliqueModel(const graph::Hypergraph& h, NetModel m,
              ModelBuildOptions opts = {});

  const graph::Hypergraph& hypergraph() const { return *hypergraph_; }
  NetModel net_model() const { return model_; }
  const ModelBuildOptions& build_options() const { return opts_; }

  /// The clique-model Laplacian; built fused on first call.
  const linalg::SymCsrMatrix& laplacian(Diagnostics* diag = nullptr) const;

  /// The operator of the requested objective model: the Laplacian itself
  /// for kUnnormalized (no copy), or the cached degree-normalized operator
  /// N = D^{-1/2} L D^{-1/2} for kNormalizedSymmetric — an O(nnz) rescale
  /// of the Laplacian's value array over the same CsrStorage pattern,
  /// built on first request. Zero-degree rows scale to zero (see
  /// linalg/objective.h), so isolated vertices are safe.
  const linalg::SymCsrMatrix& operator_matrix(
      linalg::ObjectiveModel objective, Diagnostics* diag = nullptr) const;

  /// The clique-model graph; derived from the Laplacian when that already
  /// exists, otherwise expanded fused on first call.
  const graph::Graph& graph(Diagnostics* diag = nullptr) const;

  bool laplacian_built() const { return laplacian_.has_value(); }
  bool graph_built() const { return graph_.has_value(); }

 private:
  const graph::Hypergraph* hypergraph_;
  NetModel model_;
  ModelBuildOptions opts_;
  mutable std::optional<graph::Graph> graph_;
  mutable std::optional<linalg::SymCsrMatrix> laplacian_;
  mutable std::optional<linalg::SymCsrMatrix> normalized_;
};

}  // namespace specpart::model
