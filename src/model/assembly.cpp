#include "model/assembly.h"

#include <string>

#include "graph/laplacian.h"
#include "linalg/csr.h"
#include "util/error.h"

namespace specpart::model {

namespace {

constexpr const char* kModelStage = "model";

bool net_eligible(const std::vector<graph::NodeId>& pins,
                  std::size_t max_net_size) {
  if (pins.size() < 2) return false;
  return max_net_size == 0 || pins.size() <= max_net_size;
}

/// Checks the pair budget, then streams every eligible net's clique pairs
/// into the workspace (buffers pre-sized to the exact entry count).
/// Returns the pair count.
std::size_t admit_and_stream(const graph::Hypergraph& h, NetModel m,
                             const ModelBuildOptions& opts, Diagnostics* diag,
                             linalg::CsrAssembler& ws) {
  const std::size_t pairs = clique_pair_count(h, opts.max_net_size);
  if (opts.max_clique_pairs > 0 && pairs > opts.max_clique_pairs) {
    const std::string message =
        "model_too_large: clique expansion needs " + std::to_string(pairs) +
        " pairs, budget " + std::to_string(opts.max_clique_pairs) + " (" +
        std::to_string(h.num_nets()) + " nets, " +
        std::to_string(h.num_pins()) + " pins)";
    if (diag != nullptr) diag->warn(kModelStage, message);
    throw Error(message);
  }
  ws.begin(h.num_nodes());
  ws.reserve(pairs * 2);  // add_edge stores both directions
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (!net_eligible(pins, opts.max_net_size)) continue;
    const double cost = h.net_weight(e) * clique_edge_cost(m, pins.size());
    for (std::size_t i = 0; i < pins.size(); ++i)
      for (std::size_t j = i + 1; j < pins.size(); ++j)
        ws.add_edge(pins[i], pins[j], cost);
  }
  return pairs;
}

}  // namespace

std::size_t clique_pair_count(const graph::Hypergraph& h,
                              std::size_t max_net_size) {
  std::size_t pairs = 0;
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (!net_eligible(pins, max_net_size)) continue;
    pairs += pins.size() * (pins.size() - 1) / 2;
  }
  return pairs;
}

linalg::SymCsrMatrix build_clique_laplacian(const graph::Hypergraph& h,
                                            NetModel m,
                                            const ModelBuildOptions& opts,
                                            Diagnostics* diag) {
  linalg::CsrAssembler& ws = linalg::thread_assembly_workspace();
  admit_and_stream(h, m, opts, diag, ws);
  linalg::CsrStorage q;
  ws.finish_laplacian(q, nullptr, opts.parallel);
  return linalg::SymCsrMatrix(std::move(q));
}

graph::Graph expand_clique_graph(const graph::Hypergraph& h, NetModel m,
                                 const ModelBuildOptions& opts,
                                 Diagnostics* diag) {
  linalg::CsrAssembler& ws = linalg::thread_assembly_workspace();
  admit_and_stream(h, m, opts, diag, ws);
  return graph::Graph(h.num_nodes(), ws, opts.parallel);
}

CliqueModel::CliqueModel(const graph::Hypergraph& h, NetModel m,
                         ModelBuildOptions opts)
    : hypergraph_(&h), model_(m), opts_(opts) {}

const linalg::SymCsrMatrix& CliqueModel::laplacian(Diagnostics* diag) const {
  if (!laplacian_.has_value()) {
    StageTimerScope timer(diag, kModelStage);
    if (graph_.has_value()) {
      laplacian_.emplace(graph::build_laplacian(*graph_));
    } else {
      laplacian_.emplace(
          build_clique_laplacian(*hypergraph_, model_, opts_, diag));
    }
  }
  return *laplacian_;
}

const linalg::SymCsrMatrix& CliqueModel::operator_matrix(
    linalg::ObjectiveModel objective, Diagnostics* diag) const {
  if (objective == linalg::ObjectiveModel::kUnnormalized)
    return laplacian(diag);
  if (!normalized_.has_value()) {
    const linalg::SymCsrMatrix& q = laplacian(diag);
    StageTimerScope timer(diag, kModelStage);
    normalized_.emplace(linalg::normalized_laplacian(q));
  }
  return *normalized_;
}

const graph::Graph& CliqueModel::graph(Diagnostics* diag) const {
  if (!graph_.has_value()) {
    StageTimerScope timer(diag, kModelStage);
    if (laplacian_.has_value()) {
      graph_.emplace(graph::adjacency_graph(*laplacian_));
    } else {
      graph_.emplace(expand_clique_graph(*hypergraph_, model_, opts_, diag));
    }
  }
  return *graph_;
}

}  // namespace specpart::model
