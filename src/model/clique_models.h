// Hyperedge-to-clique net models.
//
// Spectral methods need a graph, but circuits are hypergraphs. The classic
// fix replaces each net e by a clique over its pins with a per-edge cost
// c(|e|). No cost function is "perfect" (Ihler et al. [31]); the paper uses
// three (section 2) and finds the partitioning-specific model best for
// multi-way spectral partitioning:
//
//  * standard:               c(s) = 1 / (s - 1)
//  * partitioning-specific:  c(s) = 4 (1 - 2^{1-s}) / (s (s - 1))
//      — normalizes the *expected* cost of a randomly bipartitioned net,
//        conditioned on the net being cut, to 1   [reconstructed, DESIGN.md]
//  * Frankle:                c(s) = (2 / s)^{3/2}
#pragma once

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace specpart::model {

/// The three clique-edge cost functions from the paper.
enum class NetModel {
  kStandard,
  kPartitioningSpecific,
  kFrankle,
};

const char* net_model_name(NetModel m);

/// Per-clique-edge cost of a net with `size` distinct pins (size >= 2).
double clique_edge_cost(NetModel m, std::size_t size);

/// Expands every net of >= 2 pins into a weighted clique and returns the
/// resulting graph (parallel edges from different nets merge by weight).
/// Nets larger than `max_net_size` are skipped when max_net_size > 0 — the
/// paper notes [10] removed >99-pin nets; default keeps everything.
graph::Graph clique_expand(const graph::Hypergraph& h, NetModel m,
                           std::size_t max_net_size = 0);

}  // namespace specpart::model
