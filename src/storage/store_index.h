// Crash-safe directory index over basis files: the persistent cache
// tier's data plane.
//
// The index owns one directory of `<key-hex>.eb` files (basis_store.h
// format). It is *rebuild-on-open*: nothing but the basis files
// themselves is authoritative, so there is no journal to replay and no
// metadata file to corrupt. Opening scans the directory, validates each
// header against its filename, quarantines anything invalid (rename to
// `*.quarantined` — never delete evidence, never abort) and deletes
// stale `*.tmp` leftovers from interrupted writes.
//
// Writes are temp-file + atomic-rename: a crash at any point leaves
// either no entry or a complete, valid entry, never a readable-but-
// corrupt one (the restart scan removes the orphaned temp). Reads that
// hit corruption (bit rot, truncation after open) quarantine the entry
// and report a miss so the caller recomputes — the tier degrades, it
// never serves wrong bytes and never takes the process down.
//
// Eviction is byte-budgeted LRU ordered by file mtime (ties broken by
// key so the order is deterministic); a freshly rebuilt index inherits
// the pre-restart recency order to mtime resolution, which is exactly
// the durability this tier exists for.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "spectral/embedding.h"
#include "storage/basis_store.h"
#include "util/hashing.h"

namespace specpart::storage {

struct StoreOptions {
  /// Directory holding the basis files; created (recursively) on open.
  std::string dir;
  /// Byte budget over the stored files; exceeding it evicts LRU entries.
  std::size_t budget_bytes = 1ull << 30;
  /// Columns per chunk for newly written files (reads honor whatever the
  /// file's header says).
  std::size_t chunk_cols = kDefaultChunkCols;
};

/// Monotonic counters; snapshot-consistent (taken under the index lock).
/// corrupt_quarantined counts both open-scan quarantines and read-path
/// quarantines.
struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t spills = 0;
  /// store() calls that failed (I/O error, injected ENOSPC, injected
  /// crash); the tier keeps serving, the entry just is not persisted.
  std::uint64_t spill_failures = 0;
  std::uint64_t evictions = 0;
  std::uint64_t corrupt_quarantined = 0;
  std::size_t bytes_on_disk = 0;
  std::size_t entries = 0;
};

/// Thread-safe persistent basis store over one directory.
class StoreIndex {
 public:
  /// Opens (creating if needed) and scans `opts.dir`. Throws
  /// specpart::Error only when the directory itself cannot be created or
  /// listed — individual bad files are quarantined, never fatal.
  explicit StoreIndex(StoreOptions opts);

  /// Loads the entry for `key`, or nullopt when absent. `d_req = 0`
  /// loads every stored column (what tier-1 promotion wants — promoting
  /// a prefix would let later larger-d requests in the same quantized
  /// bucket receive a truncated slice). A corrupt entry is quarantined,
  /// counted, and reported as a miss; this never throws into serving.
  std::optional<spectral::EigenBasis> load(const Fingerprint& key,
                                           std::size_t d_req = 0);

  /// Persists `basis` under `key` via temp-file + atomic rename, then
  /// evicts to budget. Idempotent: an existing entry is refreshed (LRU
  /// bump), not rewritten. Returns false on failure (counted in
  /// spill_failures), which is never fatal to the caller.
  /// `objective_token` is recorded in the file header's extension zone
  /// only when non-default (see write_basis_file).
  bool store(const Fingerprint& key, const spectral::EigenBasis& basis,
             std::string_view solver_token, std::string_view strategy_token,
             std::string_view objective_token = {});

  /// Whether `key` is currently indexed (no I/O, no LRU effect).
  bool contains(const Fingerprint& key) const;

  StoreStats stats() const;

  const StoreOptions& options() const { return opts_; }

  /// Path of the entry file for `key` inside this store's directory.
  std::string entry_path(const Fingerprint& key) const;

 private:
  struct Entry {
    std::size_t bytes = 0;
    /// Position in lru_ (front = most recently used).
    std::list<Fingerprint>::iterator lru_pos;
  };

  /// Directory scan: delete temps, validate headers, quarantine garbage,
  /// seed the LRU in mtime order, evict to budget.
  void open_and_scan();
  void quarantine_locked(const Fingerprint& key, const std::string& path);
  void evict_to_budget_locked();

  StoreOptions opts_;
  mutable std::mutex mutex_;
  std::list<Fingerprint> lru_;
  std::unordered_map<Fingerprint, Entry, FingerprintHash> entries_;
  StoreStats stats_;
};

}  // namespace specpart::storage
