#include "storage/store_index.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "util/error.h"
#include "util/fault.h"

namespace fs = std::filesystem;

namespace specpart::storage {

namespace {

constexpr std::string_view kEntrySuffix = ".eb";
constexpr std::string_view kTempSuffix = ".tmp";
constexpr std::string_view kQuarantineSuffix = ".quarantined";

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

StoreIndex::StoreIndex(StoreOptions opts) : opts_(std::move(opts)) {
  SP_CHECK_INPUT(!opts_.dir.empty(), "storage: store directory is empty");
  open_and_scan();
}

std::string StoreIndex::entry_path(const Fingerprint& key) const {
  return (fs::path(opts_.dir) / (key.hex() + std::string(kEntrySuffix)))
      .string();
}

void StoreIndex::open_and_scan() {
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  if (ec && !fs::is_directory(opts_.dir))
    throw Error("storage: cannot create store directory " + opts_.dir +
                ": " + ec.message());

  // Collect candidates first (mutating the directory mid-iteration is
  // implementation-defined), then validate each.
  struct Candidate {
    std::string path;
    std::string name;
    fs::file_time_type mtime;
  };
  std::vector<Candidate> found;
  for (const auto& de : fs::directory_iterator(opts_.dir, ec)) {
    if (!de.is_regular_file()) continue;
    Candidate c;
    c.path = de.path().string();
    c.name = de.path().filename().string();
    c.mtime = de.last_write_time(ec);
    found.push_back(std::move(c));
  }
  if (ec)
    throw Error("storage: cannot list store directory " + opts_.dir + ": " +
                ec.message());

  // Deterministic rebuild order: oldest first (so the LRU back is the
  // eviction victim), ties broken by name.
  std::sort(found.begin(), found.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.name < b.name;
            });

  std::lock_guard<std::mutex> lock(mutex_);
  for (const Candidate& c : found) {
    if (ends_with(c.name, kTempSuffix)) {
      // Orphan of an interrupted write: the rename never happened, so
      // nothing references it. Safe (and correct) to remove.
      fs::remove(c.path, ec);
      continue;
    }
    if (!ends_with(c.name, kEntrySuffix)) continue;  // quarantined etc.

    const std::optional<BasisHeader> hdr = read_basis_header(c.path);
    const std::string expected_name =
        hdr ? hdr->key.hex() + std::string(kEntrySuffix) : std::string();
    if (!hdr || c.name != expected_name) {
      // Invalid header, truncation, or a file stored under the wrong
      // name (which would serve the wrong content): quarantine.
      fs::rename(c.path, c.path + std::string(kQuarantineSuffix), ec);
      ++stats_.corrupt_quarantined;
      continue;
    }
    const std::size_t bytes =
        basis_file_size(hdr->n, hdr->d, hdr->chunk_cols);
    lru_.push_front(hdr->key);  // newest scanned = most recently used
    Entry entry;
    entry.bytes = bytes;
    entry.lru_pos = lru_.begin();
    entries_.emplace(hdr->key, std::move(entry));
    stats_.bytes_on_disk += bytes;
  }
  stats_.entries = entries_.size();
  evict_to_budget_locked();
}

std::optional<spectral::EigenBasis> StoreIndex::load(const Fingerprint& key,
                                                     std::size_t d_req) {
  const std::string path = entry_path(key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }

  // I/O outside the lock: the file is immutable once renamed into place,
  // and a concurrent eviction at worst turns this into a miss.
  try {
    BasisHeader hdr;
    spectral::EigenBasis basis = read_basis_columns(path, d_req, &hdr);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return basis;
  } catch (const Error&) {
    // Corruption discovered after open (bit rot, truncation, injected
    // fault): quarantine and degrade to a miss — never throw into
    // serving, never serve wrong bytes.
    std::lock_guard<std::mutex> lock(mutex_);
    quarantine_locked(key, path);
    ++stats_.misses;
    return std::nullopt;
  }
}

bool StoreIndex::store(const Fingerprint& key,
                       const spectral::EigenBasis& basis,
                       std::string_view solver_token,
                       std::string_view strategy_token,
                       std::string_view objective_token) {
  const std::string path = entry_path(key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {  // idempotent: refresh recency only
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return true;
    }
  }

  // Write outside the lock (the eigensolve-sized payload dominates), to
  // a temp path unique to this key; concurrent stores of the same key
  // write identical bytes, so last-rename-wins is harmless.
  const std::string tmp = path + std::string(kTempSuffix);
  try {
    write_basis_file(tmp, key, basis, solver_token, strategy_token,
                     objective_token, opts_.chunk_cols);
  } catch (const Error&) {
    std::error_code ec;
    fs::remove(tmp, ec);  // a failed write must not leave debris
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spill_failures;
    return false;
  }

  if (SP_FAULT("storage.crash_before_rename")) {
    // Simulated crash between write and publish: the temp stays on disk
    // exactly as a real crash would leave it (the next open's scan
    // removes it), and the entry was never published.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spill_failures;
    return false;
  }

  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic publish
  if (ec) {
    fs::remove(tmp, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.spill_failures;
    return false;
  }

  const std::size_t bytes = basis_file_size(
      basis.n, basis.dimension(), opts_.chunk_cols);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.find(key) == entries_.end()) {
    lru_.push_front(key);
    Entry entry;
    entry.bytes = bytes;
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
    stats_.bytes_on_disk += bytes;
    stats_.entries = entries_.size();
    ++stats_.spills;
    evict_to_budget_locked();
  }
  return true;
}

bool StoreIndex::contains(const Fingerprint& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

StoreStats StoreIndex::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void StoreIndex::quarantine_locked(const Fingerprint& key,
                                   const std::string& path) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    stats_.bytes_on_disk -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    stats_.entries = entries_.size();
  }
  std::error_code ec;
  fs::rename(path, path + std::string(kQuarantineSuffix), ec);
  if (ec) fs::remove(path, ec);  // fall back to unlink; never rethrow
  ++stats_.corrupt_quarantined;
}

void StoreIndex::evict_to_budget_locked() {
  // Keep at least the most recent entry, mirroring the in-memory tier:
  // a budget smaller than one basis still serves that basis.
  while (stats_.bytes_on_disk > opts_.budget_bytes && lru_.size() > 1) {
    const Fingerprint victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytes_on_disk -= it->second.bytes;
    std::error_code ec;
    fs::remove(entry_path(victim), ec);
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

}  // namespace specpart::storage
