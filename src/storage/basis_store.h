// On-disk eigenbasis format: chunked column-major fp64 with a fixed
// header and per-chunk checksums.
//
// The persistent cache tier stores each eigenbasis as one file whose
// layout supports *hyperslab* reads — loading any leading column range
// [0, d_req) without touching the rest of the spectrum, the access
// pattern of hdf5-style chunked datasets implemented over a plain file:
//
//   [header, 192 bytes fixed]
//     magic, version, n, d, chunk_cols, v2 netlist fingerprint,
//     laplacian trace, solver/strategy tokens, values checksum,
//     header checksum, then the extension zone [128, 192): an objective
//     token + its own checksum, written only for non-default objectives
//     (all-zero = unnormalized, so every pre-objective file and every
//     default-objective file is byte-identical to the v1 layout)
//   [values block]  d x fp64 eigenvalues (ascending)
//   [chunk 0]       columns [0, chunk_cols) column-major, n fp64 each,
//                   followed by a u64 checksum of the chunk bytes
//   [chunk 1]       columns [chunk_cols, 2*chunk_cols) ... checksum
//   ...
//
// Columns are column-major *within* a chunk so a leading column range
// maps to a leading chunk range: reading d_req columns touches exactly
// ceil(d_req / chunk_cols) chunks, each verified against its own
// checksum (the chunk is the unit of integrity, so a partial read still
// detects corruption in everything it consumed). Eigenvalues live with
// the header because they are d doubles — always cheap — while the
// vectors are n x d and dominate the file.
//
// The checksums are FNV-1a 64 over the raw bytes: deterministic across
// platforms and runs, defending against torn writes and bit rot, not
// adversaries (matching the content-fingerprint philosophy of
// util/hashing.h). Every read validates; every validation failure throws
// specpart::Error so the caller (store_index.h) can quarantine the entry
// and fall back to recompute — a corrupt file must never surface wrong
// bytes, and must never abort the process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "spectral/embedding.h"
#include "util/hashing.h"

namespace specpart::storage {

/// First 8 bytes of every basis file ("SPEC.EB1" little-endian).
inline constexpr std::uint64_t kBasisMagic = 0x3142452E43455053ULL;
inline constexpr std::uint32_t kBasisVersion = 1;
/// Fixed header size; the values block starts at this offset.
inline constexpr std::size_t kHeaderBytes = 192;
/// Fixed width of the solver/strategy token fields (zero-padded).
inline constexpr std::size_t kTokenBytes = 24;
/// Default columns per chunk (a d = 16 quantized basis spans 4 chunks).
inline constexpr std::size_t kDefaultChunkCols = 4;

/// Decoded fixed header of one basis file.
struct BasisHeader {
  std::uint64_t n = 0;
  /// Columns stored (the dimension-quantized solve count).
  std::uint64_t d = 0;
  std::uint64_t chunk_cols = 0;
  /// Content key the entry was stored under (the eigensolve fingerprint).
  Fingerprint key;
  double laplacian_trace = 0.0;
  std::string solver_token;
  std::string strategy_token;
  /// Objective-model token of the operator the basis was solved on.
  /// Stored in the extension zone only when non-default; an all-zero zone
  /// (every legacy file) decodes as "unnormalized".
  std::string objective_token = "unnormalized";
  /// FNV-1a 64 of the values block (verified by read_basis_columns).
  std::uint64_t values_checksum = 0;
};

/// FNV-1a 64 over a byte span.
std::uint64_t checksum64(const void* data, std::size_t len);

/// Chunks a d-column basis spans at `chunk_cols` columns per chunk.
std::size_t num_chunks(std::size_t d, std::size_t chunk_cols);

/// Exact file size of a stored (n, d) basis — header + values + chunks +
/// per-chunk checksums. This is also the byte cost the eviction budget
/// accounts for an entry.
std::size_t basis_file_size(std::size_t n, std::size_t d,
                            std::size_t chunk_cols);

/// Writes `basis` (all of it) to `path`, overwriting. Throws
/// specpart::Error on any I/O failure (including the injected
/// storage.enospc fault). The caller is responsible for making the write
/// crash-safe (temp file + atomic rename; see store_index.h).
/// `objective_token` is written into the header's extension zone only
/// when it names a non-default objective; empty or "unnormalized" leaves
/// the zone zeroed, keeping default files byte-identical to the v1 layout.
void write_basis_file(const std::string& path, const Fingerprint& key,
                      const spectral::EigenBasis& basis,
                      std::string_view solver_token,
                      std::string_view strategy_token,
                      std::string_view objective_token = {},
                      std::size_t chunk_cols = kDefaultChunkCols);

/// Reads and validates the fixed header alone (magic, version, field
/// sanity, header checksum, and the exact file size implied by n/d/
/// chunk_cols). Returns nullopt on any mismatch — the scan-on-open
/// validation path, which must not throw on garbage files.
std::optional<BasisHeader> read_basis_header(const std::string& path);

/// Hyperslab read of columns [0, d_req) (d_req = 0 reads every stored
/// column). Verifies the header, the values checksum and each covering
/// chunk's checksum; throws specpart::Error on corruption, truncation or
/// short read (including the injected storage.short_read /
/// storage.checksum_flip faults). The returned basis is reconstructed as
/// clean — only clean bases are ever stored — with converged/
/// converged_pairs reflecting the columns actually read and zero solve
/// cost counters, exactly like an in-memory cache hit.
spectral::EigenBasis read_basis_columns(const std::string& path,
                                        std::size_t d_req,
                                        BasisHeader* header_out = nullptr);

}  // namespace specpart::storage
