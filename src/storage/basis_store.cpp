#include "storage/basis_store.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "util/error.h"
#include "util/fault.h"
#include "util/stringutil.h"

namespace specpart::storage {

namespace {

/// RAII std::FILE handle.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void append_u64(std::vector<unsigned char>& buf, std::uint64_t v) {
  unsigned char b[8];
  std::memcpy(b, &v, 8);
  buf.insert(buf.end(), b, b + 8);
}

void append_u32(std::vector<unsigned char>& buf, std::uint32_t v) {
  unsigned char b[4];
  std::memcpy(b, &v, 4);
  buf.insert(buf.end(), b, b + 4);
}

void append_f64(std::vector<unsigned char>& buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  append_u64(buf, bits);
}

/// Zero-padded fixed-width token field. Tokens longer than the field
/// would decode truncated (an aliasing hazard), so they are a contract
/// violation — every solver/strategy token in the tree is < 24 chars.
void append_token(std::vector<unsigned char>& buf, std::string_view token) {
  SP_REQUIRE(token.size() < kTokenBytes,
             "storage: token '" + std::string(token) + "' exceeds the " +
                 std::to_string(kTokenBytes) + "-byte header field");
  buf.insert(buf.end(), token.begin(), token.end());
  buf.insert(buf.end(), kTokenBytes - token.size(), 0);
}

std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

double load_f64(const unsigned char* p) {
  const std::uint64_t bits = load_u64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string load_token(const unsigned char* p) {
  std::size_t len = 0;
  while (len < kTokenBytes && p[len] != 0) ++len;
  return std::string(reinterpret_cast<const char*>(p), len);
}

/// Columns covered by chunk `c` of a d-column basis: [begin, end).
void chunk_span(std::size_t c, std::size_t d, std::size_t chunk_cols,
                std::size_t& begin, std::size_t& end) {
  begin = c * chunk_cols;
  end = std::min(d, begin + chunk_cols);
}

void read_exact(std::FILE* f, void* dst, std::size_t bytes,
                const std::string& path, const char* what) {
  const std::size_t got = std::fread(dst, 1, bytes, f);
  if (got != bytes || SP_FAULT("storage.short_read"))
    throw Error(strprintf("storage: short read in %s of %s (wanted %zu "
                          "bytes, got %zu)",
                          what, path.c_str(), bytes, got));
}

void write_exact(std::FILE* f, const void* src, std::size_t bytes,
                 const std::string& path) {
  if (SP_FAULT("storage.enospc"))
    throw Error("storage: no space left on device writing " + path +
                " (injected)");
  const std::size_t put = std::fwrite(src, 1, bytes, f);
  if (put != bytes)
    throw Error(strprintf("storage: write failed on %s (%zu of %zu bytes)",
                          path.c_str(), put, bytes));
}

/// Extension zone inside the fixed header: an objective token and its own
/// checksum, occupying bytes that were reserved zeros in the v1 layout.
/// The main header checksum does not cover the zone (it predates it), so
/// the zone carries its own — all-zero means "no extension" (legacy or
/// default objective), anything else must validate.
constexpr std::size_t kObjectiveTokenOffset = 128;
constexpr std::size_t kObjectiveChecksumOffset =
    kObjectiveTokenOffset + kTokenBytes;  // 152; zone ends at 160

bool objective_is_default(std::string_view token) {
  return token.empty() || token == "unnormalized";
}

/// Serialized header bytes (exactly kHeaderBytes, checksum filled in).
std::vector<unsigned char> encode_header(const Fingerprint& key,
                                         const spectral::EigenBasis& basis,
                                         std::string_view solver_token,
                                         std::string_view strategy_token,
                                         std::string_view objective_token,
                                         std::size_t chunk_cols,
                                         std::uint64_t values_checksum) {
  std::vector<unsigned char> h;
  h.reserve(kHeaderBytes);
  append_u64(h, kBasisMagic);
  append_u32(h, kBasisVersion);
  append_u32(h, 0);  // reserved
  append_u64(h, basis.n);
  append_u64(h, basis.dimension());
  append_u64(h, chunk_cols);
  append_u64(h, key.hi);
  append_u64(h, key.lo);
  append_f64(h, basis.laplacian_trace);
  append_token(h, solver_token);
  append_token(h, strategy_token);
  append_u64(h, values_checksum);
  append_u64(h, checksum64(h.data(), h.size()));  // header checksum
  h.resize(kHeaderBytes, 0);
  if (!objective_is_default(objective_token)) {
    SP_REQUIRE(objective_token.size() < kTokenBytes,
               "storage: token '" + std::string(objective_token) +
                   "' exceeds the " + std::to_string(kTokenBytes) +
                   "-byte header field");
    std::memcpy(h.data() + kObjectiveTokenOffset, objective_token.data(),
                objective_token.size());
    const std::uint64_t sum =
        checksum64(h.data() + kObjectiveTokenOffset, kTokenBytes);
    std::memcpy(h.data() + kObjectiveChecksumOffset, &sum, 8);
  }
  return h;
}

}  // namespace

std::uint64_t checksum64(const void* data, std::size_t len) {
  // FNV-1a 64: byte-oriented, deterministic, no tables.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::size_t num_chunks(std::size_t d, std::size_t chunk_cols) {
  SP_REQUIRE(chunk_cols > 0, "storage: chunk_cols must be positive");
  return (d + chunk_cols - 1) / chunk_cols;
}

std::size_t basis_file_size(std::size_t n, std::size_t d,
                            std::size_t chunk_cols) {
  // Header + values + (vector payload + one u64 checksum per chunk).
  return kHeaderBytes + 8 * d + 8 * n * d +
         8 * num_chunks(d, chunk_cols);
}

void write_basis_file(const std::string& path, const Fingerprint& key,
                      const spectral::EigenBasis& basis,
                      std::string_view solver_token,
                      std::string_view strategy_token,
                      std::string_view objective_token,
                      std::size_t chunk_cols) {
  SP_REQUIRE(chunk_cols > 0, "storage: chunk_cols must be positive");
  const std::size_t n = basis.n;
  const std::size_t d = basis.dimension();

  // Values block bytes (d fp64, bit patterns preserved).
  std::vector<unsigned char> values;
  values.reserve(8 * d);
  for (std::size_t j = 0; j < d; ++j) append_f64(values, basis.values[j]);

  const std::vector<unsigned char> header =
      encode_header(key, basis, solver_token, strategy_token,
                    objective_token, chunk_cols,
                    checksum64(values.data(), values.size()));

  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr)
    throw Error("storage: cannot open " + path + " for writing");
  write_exact(f.get(), header.data(), header.size(), path);
  write_exact(f.get(), values.data(), values.size(), path);

  // Chunks: column-major within each chunk, checksum trailing.
  std::vector<double> chunk;
  for (std::size_t c = 0; c < num_chunks(d, chunk_cols); ++c) {
    std::size_t begin = 0, end = 0;
    chunk_span(c, d, chunk_cols, begin, end);
    chunk.clear();
    chunk.reserve(n * (end - begin));
    for (std::size_t j = begin; j < end; ++j)
      for (std::size_t i = 0; i < n; ++i)
        chunk.push_back(basis.vectors.at(i, j));
    const std::size_t bytes = 8 * chunk.size();
    write_exact(f.get(), chunk.data(), bytes, path);
    const std::uint64_t sum = checksum64(chunk.data(), bytes);
    write_exact(f.get(), &sum, 8, path);
  }
  if (std::fflush(f.get()) != 0)
    throw Error("storage: flush failed on " + path);
}

std::optional<BasisHeader> read_basis_header(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return std::nullopt;
  unsigned char h[kHeaderBytes];
  if (std::fread(h, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    return std::nullopt;

  if (load_u64(h) != kBasisMagic) return std::nullopt;
  if (load_u32(h + 8) != kBasisVersion) return std::nullopt;
  BasisHeader out;
  out.n = load_u64(h + 16);
  out.d = load_u64(h + 24);
  out.chunk_cols = load_u64(h + 32);
  out.key.hi = load_u64(h + 40);
  out.key.lo = load_u64(h + 48);
  out.laplacian_trace = load_f64(h + 56);
  out.solver_token = load_token(h + 64);
  out.strategy_token = load_token(h + 64 + kTokenBytes);
  out.values_checksum = load_u64(h + 64 + 2 * kTokenBytes);
  // Header checksum covers everything before itself.
  const std::size_t checked = 64 + 2 * kTokenBytes + 8;
  if (load_u64(h + checked) != checksum64(h, checked)) return std::nullopt;

  // Extension zone: all-zero (every legacy and default-objective file)
  // decodes as the default; otherwise the zone's own checksum must match
  // and the token must be non-empty.
  bool zone_used = false;
  for (std::size_t i = 0; i < kTokenBytes + 8; ++i)
    if (h[kObjectiveTokenOffset + i] != 0) {
      zone_used = true;
      break;
    }
  if (zone_used) {
    if (load_u64(h + kObjectiveChecksumOffset) !=
        checksum64(h + kObjectiveTokenOffset, kTokenBytes))
      return std::nullopt;
    out.objective_token = load_token(h + kObjectiveTokenOffset);
    if (out.objective_token.empty()) return std::nullopt;
  }

  if (out.n == 0 || out.d == 0 || out.chunk_cols == 0) return std::nullopt;
  // Guard the size product before trusting it (a corrupt header must not
  // drive a multi-terabyte allocation downstream).
  if (out.d > (1ull << 32) || out.n > (1ull << 40) ||
      out.n * out.d > (1ull << 40))
    return std::nullopt;

  std::error_code ec;
  const auto actual = std::filesystem::file_size(path, ec);
  if (ec || actual != basis_file_size(out.n, out.d, out.chunk_cols))
    return std::nullopt;
  return out;
}

spectral::EigenBasis read_basis_columns(const std::string& path,
                                        std::size_t d_req,
                                        BasisHeader* header_out) {
  const std::optional<BasisHeader> hdr = read_basis_header(path);
  if (!hdr)
    throw Error("storage: invalid or truncated basis header in " + path);
  if (header_out != nullptr) *header_out = *hdr;
  const std::size_t n = hdr->n;
  const std::size_t d_stored = hdr->d;
  const std::size_t chunk_cols = hdr->chunk_cols;
  if (d_req == 0) d_req = d_stored;
  SP_CHECK_INPUT(d_req <= d_stored,
                 strprintf("storage: %s stores %zu columns, %zu requested",
                           path.c_str(), d_stored, d_req));

  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) throw Error("storage: cannot open " + path);
  if (std::fseek(f.get(), static_cast<long>(kHeaderBytes), SEEK_SET) != 0)
    throw Error("storage: seek failed in " + path);

  // Values: the checksum covers the whole block, so read all d_stored of
  // them (tiny) and keep the leading d_req.
  std::vector<double> values(d_stored);
  read_exact(f.get(), values.data(), 8 * d_stored, path, "values block");
  std::uint64_t values_sum = checksum64(values.data(), 8 * d_stored);
  if (SP_FAULT("storage.checksum_flip")) values_sum ^= 1;
  if (values_sum != hdr->values_checksum)
    throw Error("storage: values checksum mismatch in " + path);

  spectral::EigenBasis out;
  out.n = n;
  out.laplacian_trace = hdr->laplacian_trace;
  out.values.assign(values.begin(),
                    values.begin() + static_cast<std::ptrdiff_t>(d_req));
  out.vectors = linalg::DenseMatrix(n, d_req);

  // Chunks covering [0, d_req): each is read whole (the checksum's unit)
  // and only the needed columns are scattered into the row-major matrix.
  std::vector<double> chunk;
  for (std::size_t c = 0; c < num_chunks(d_req, chunk_cols); ++c) {
    const std::size_t begin = c * chunk_cols;
    const std::size_t end = std::min(d_stored, begin + chunk_cols);
    chunk.resize(n * (end - begin));
    read_exact(f.get(), chunk.data(), 8 * chunk.size(), path, "chunk");
    std::uint64_t stored_sum = 0;
    read_exact(f.get(), &stored_sum, 8, path, "chunk checksum");
    std::uint64_t sum = checksum64(chunk.data(), 8 * chunk.size());
    if (SP_FAULT("storage.checksum_flip")) sum ^= 1;
    if (sum != stored_sum)
      throw Error(strprintf("storage: chunk %zu checksum mismatch in %s",
                            c, path.c_str()));
    const std::size_t cols_used = std::min(end, d_req) - begin;
    for (std::size_t j = 0; j < cols_used; ++j)
      for (std::size_t i = 0; i < n; ++i)
        out.vectors.at(i, begin + j) = chunk[j * n + i];
  }

  // Only clean bases are ever stored; reconstruct the clean flags with
  // zero solve cost, exactly like an in-memory cache hit.
  out.requested = d_req;
  out.converged_pairs = d_req;
  out.converged = d_req > 0;
  out.truncated = false;
  out.budget_exhausted = false;
  return out;
}

}  // namespace specpart::storage
