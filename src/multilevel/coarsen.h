// Laplacian coarsening for the multilevel eigensolver (vcycle.h).
//
// Each level contracts the clique-expanded graph by heavy-edge matching on
// the Laplacian's off-diagonal weights — the net-aware weights the clique
// model assigned — followed by a two-hop pass that pairs leftover vertices
// through a common neighbor (the METIS-style rescue for star-heavy
// netlists, where plain matching strands most vertices). Clusters never
// exceed two vertices: larger aggregates visibly distort the coarse
// spectrum and silently *lose* low eigenvectors — a failure converged Ritz
// residuals cannot detect, because the refined basis converges cleanly to
// the wrong invariant subspace.
//
// The coarse operator is the Galerkin projection P^T L P under the
// piecewise-constant prolongation P (fine vertex r maps to coarse vertex
// coarse_of[r] with unit weight), which for a graph Laplacian is *exactly*
// the Laplacian of the contracted graph: intra-cluster edges vanish,
// parallel inter-cluster edges sum. It is assembled through the shared CSR
// assembler (linalg/csr.h) under its stable-merge contract, so the coarse
// matrix is bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/sparse.h"
#include "util/parallel.h"

namespace specpart::multilevel {

/// One coarsening step: the fine-to-coarse vertex map and the coarse
/// Laplacian. The prolongation is implicit — P x_c is x_c[coarse_of[r]] —
/// so no interpolation matrix is ever stored.
struct CoarseLevel {
  /// fine vertex -> coarse vertex (cluster id). Clusters have size <= 2.
  std::vector<std::uint32_t> coarse_of;
  /// Galerkin coarse Laplacian = Laplacian of the contracted graph.
  linalg::SymCsrMatrix lap;
  /// Vertex count of the fine matrix this level contracted.
  std::size_t fine_n = 0;

  std::size_t coarse_n() const { return lap.size(); }
};

struct CoarsenOptions {
  /// Stop coarsening once this few vertices remain.
  std::size_t coarsest_size = 400;
  /// Hard cap on hierarchy depth.
  std::size_t max_levels = 40;
  /// Stop when a level shrinks by less than this factor (coarse_n >
  /// min_shrink_factor * fine_n means matching stalled; further levels
  /// would add cost without reducing the coarse solve).
  double min_shrink_factor = 0.75;
  /// Threading for the coarse-matrix assembly merge (the matching itself
  /// is serial by construction — its greedy order is part of the output).
  ParallelConfig parallel;
  /// General Galerkin contraction: stream *every* fine entry (diagonals
  /// and intra-cluster entries included) through the generic stable-merge
  /// finish, yielding P^T M P exactly for any symmetric M — required for
  /// the normalized operator D^{-1/2} L D^{-1/2}, whose coarse operator is
  /// NOT the contracted graph's Laplacian. The default (false) keeps the
  /// contracted-graph finish_laplacian path, which is byte-identical to
  /// the pre-objective code for plain Laplacians.
  bool galerkin_general = false;
};

/// One heavy-edge + two-hop matching step over `fine` (a Laplacian-like
/// symmetric matrix: off-diagonal entries are negated connection weights,
/// which holds for both L and the normalized D^{-1/2} L D^{-1/2}).
/// Deterministic: the matching scans vertices in ascending order and ties
/// break toward the first-seen heaviest neighbor. `galerkin_general`
/// selects the exact P^T M P contraction (see CoarsenOptions).
CoarseLevel coarsen_once(const linalg::SymCsrMatrix& fine,
                         const ParallelConfig& parallel = {},
                         bool galerkin_general = false);

/// Full hierarchy: repeated coarsen_once until coarsest_size, max_levels
/// or a matching stall. levels[0] contracts `finest`; levels[k] contracts
/// levels[k-1].lap. May return an empty vector (finest is already small).
std::vector<CoarseLevel> build_hierarchy(const linalg::SymCsrMatrix& finest,
                                         const CoarsenOptions& opts = {});

}  // namespace specpart::multilevel
