#include "multilevel/vcycle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/dense.h"
#include "linalg/lanczos.h"
#include "linalg/panel_ops.h"
#include "linalg/symmetric_eigen.h"
#include "multilevel/coarsen.h"
#include "util/rng.h"
#include "util/timer.h"

namespace specpart::multilevel {

namespace {

using linalg::DenseMatrix;
using linalg::Panel;
using linalg::SymCsrMatrix;
using linalg::Vec;

/// Cost counters accumulated across every level, comparable with the flat
/// solvers' (flops, CSR bytes streamed, single-column operator applies).
struct Counters {
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  std::size_t applies = 0;

  void charge_spmm(const SymCsrMatrix& m, std::size_t cols) {
    flops += 2ull * m.nnz() * cols;
    bytes += m.stream_bytes();
    applies += cols;
  }
};

/// Rayleigh-Ritz rotation of `x` in place: projects L onto span(x),
/// diagonalizes the (small, dense) projection and rotates x to the Ritz
/// vectors, ascending. Fills `theta` (all x.cols() Ritz values) and
/// `residuals` (||L x_j - theta_j x_j|| for the first `want` columns);
/// returns the max of those residuals. Deterministic for any thread count:
/// the panel kernels use fixed row blocks and the dense solve is serial.
double rayleigh_ritz(const SymCsrMatrix& l, Panel& x, std::size_t want,
                     const ParallelConfig& par, Vec& theta, Vec& residuals,
                     Counters& c) {
  const std::size_t n = x.rows(), w = x.cols();
  Panel z(n, w);
  l.spmm(x, z, par);
  c.charge_spmm(l, w);
  DenseMatrix s = linalg::panel_dots(x, z, par);
  c.flops += 2ull * n * w * w;
  // x^T L x is symmetric up to roundoff; the dense solver wants it exact.
  for (std::size_t a = 0; a < w; ++a)
    for (std::size_t b = 0; b < a; ++b) {
      const double m = 0.5 * (s.at(a, b) + s.at(b, a));
      s.at(a, b) = m;
      s.at(b, a) = m;
    }
  const linalg::EigenDecomposition dec =
      linalg::solve_symmetric_eigen(std::move(s));  // ascending
  Panel xr(n, w), zr(n, w);
  linalg::panel_rotate(x, dec.vectors, xr, par);
  linalg::panel_rotate(z, dec.vectors, zr, par);
  c.flops += 4ull * n * w * w;
  x = std::move(xr);
  theta = dec.values;

  const std::size_t nres = std::min(want, w);
  residuals.assign(nres, 0.0);
  double worst = 0.0;
  for (std::size_t j = 0; j < nres; ++j) {
    const double tj = theta[j];
    const double sq = parallel_reduce<double>(
        par, 0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double acc = 0.0;
          for (std::size_t r = lo; r < hi; ++r) {
            const double d = zr.at(r, j) - tj * x.at(r, j);
            acc += d * d;
          }
          return acc;
        },
        [](double acc, double part) { return acc + part; });
    residuals[j] = std::sqrt(sq);
    worst = std::max(worst, residuals[j]);
  }
  c.flops += 3ull * n * nres;
  return worst;
}

/// Degree-`degree` Chebyshev filter on [lo, hi] applied to every column of
/// `x`: the three-term recurrence in the variable (L - c I) / e grows like
/// cosh(degree * acosh(..)) below `lo` and stays bounded on [lo, hi], so
/// the wanted low eigencomponents are amplified relative to everything
/// else. Columns are renormalized every 8 degrees against overflow (the
/// growth factor per degree can exceed 1e2 when lo << hi).
void chebyshev_filter(const SymCsrMatrix& l, Panel& x, double lo, double hi,
                      std::size_t degree, const ParallelConfig& par,
                      Counters& c) {
  const std::size_t n = x.rows(), w = x.cols();
  const double e = std::max((hi - lo) / 2.0, 1e-300);
  const double ctr = (hi + lo) / 2.0;
  Panel y0 = x;
  Panel y1(n, w), tmp(n, w);
  l.spmm(y0, tmp, par);
  c.charge_spmm(l, w);
  parallel_for(par, 0, n, [&](std::size_t lo_r, std::size_t hi_r) {
    for (std::size_t r = lo_r; r < hi_r; ++r)
      for (std::size_t cc = 0; cc < w; ++cc)
        y1.at(r, cc) = (tmp.at(r, cc) - ctr * y0.at(r, cc)) / e;
  });
  c.flops += 3ull * n * w;
  for (std::size_t k = 1; k < degree; ++k) {
    l.spmm(y1, tmp, par);
    c.charge_spmm(l, w);
    parallel_for(par, 0, n, [&](std::size_t lo_r, std::size_t hi_r) {
      for (std::size_t r = lo_r; r < hi_r; ++r)
        for (std::size_t cc = 0; cc < w; ++cc) {
          const double v =
              2.0 * (tmp.at(r, cc) - ctr * y1.at(r, cc)) / e - y0.at(r, cc);
          y0.at(r, cc) = y1.at(r, cc);
          y1.at(r, cc) = v;
        }
    });
    c.flops += 6ull * n * w;
    if ((k & 7) == 7) {
      for (std::size_t cc = 0; cc < w; ++cc) {
        const double nrm =
            std::sqrt(linalg::panel_col_dot(y1, cc, y1, cc, par));
        if (nrm > 0.0) {
          linalg::panel_col_scale(y1, cc, 1.0 / nrm, par);
          linalg::panel_col_scale(y0, cc, 1.0 / nrm, par);
        }
      }
      c.flops += 6ull * n * w;
    }
  }
  x = std::move(y1);
}

}  // namespace

linalg::LanczosResult multilevel_solve_smallest(
    const SymCsrMatrix& a, std::size_t want, std::uint64_t seed,
    const linalg::SolverOptions& opts, const ParallelConfig& parallel,
    ComputeBudget* budget, MultilevelStats* stats, bool galerkin_general) {
  linalg::LanczosResult result;
  const std::size_t n = a.size();
  want = std::min(want, n);
  if (want == 0 || n == 0) {
    if (stats != nullptr) *stats = MultilevelStats{};
    return result;
  }

  MultilevelStats local_stats;
  MultilevelStats& st = stats != nullptr ? *stats : local_stats;
  st = MultilevelStats{};
  Counters c;
  Rng rng(seed);
  const ParallelConfig& par = parallel;

  // Panel width: ~2x the wanted count. The surplus columns act as a guard
  // band — the filter and the Rayleigh-Ritz window only certify pairs
  // strictly inside the panel's Ritz spectrum.
  const std::size_t width =
      std::min(n, want + std::max<std::size_t>(want, 6));

  // Hierarchy. The coarsest level must comfortably hold the panel, so the
  // configured floor is clamped to 2x the width (pair matching can
  // overshoot a level below the floor by at most a factor of two).
  Timer t_coarsen;
  CoarsenOptions copts;
  copts.coarsest_size =
      std::max<std::size_t>(opts.ml_coarsest_size, 2 * width);
  copts.parallel = par;
  copts.galerkin_general = galerkin_general;
  const std::vector<CoarseLevel> levels = build_hierarchy(a, copts);
  const SymCsrMatrix& coarsest = levels.empty() ? a : levels.back().lap;
  st.levels = levels.size();
  st.coarsest_n = coarsest.size();
  st.coarsening_ratio =
      static_cast<double>(n) / static_cast<double>(coarsest.size());
  st.coarsen_seconds = t_coarsen.seconds();

  // Coarsest solve: exact dense decomposition in the window the hierarchy
  // targets; a scalar Lanczos backstop when matching stalled far above it
  // (rare — star-free graphs with uniform weights).
  Timer t_solve;
  const std::size_t nc = coarsest.size();
  const std::size_t wc = std::min(width, nc);
  bool exhausted = false;
  Panel x(nc, wc);
  if (nc <= std::max<std::size_t>(600, copts.coarsest_size * 3 / 2)) {
    const linalg::EigenDecomposition dec =
        linalg::solve_symmetric_eigen_smallest(coarsest.to_dense(), wc);
    for (std::size_t r = 0; r < nc; ++r)
      for (std::size_t j = 0; j < wc; ++j) x.at(r, j) = dec.vectors.at(r, j);
  } else {
    linalg::LanczosOptions lopts;
    lopts.num_eigenpairs = wc;
    lopts.seed = seed;
    lopts.parallel = par;
    lopts.budget = budget;
    const linalg::LanczosResult coarse =
        linalg::lanczos_smallest(coarsest, lopts);
    c.flops += coarse.flops;
    c.bytes += coarse.matrix_bytes_moved;
    c.applies += coarse.operator_applies;
    exhausted = coarse.budget_exhausted;
    const std::size_t have = std::min(wc, coarse.values.size());
    for (std::size_t j = 0; j < have; ++j)
      for (std::size_t r = 0; r < nc; ++r)
        x.at(r, j) = coarse.vectors.at(r, j);
    for (std::size_t j = have; j < wc; ++j) {  // top up with random columns
      for (std::size_t r = 0; r < nc; ++r) x.at(r, j) = rng.next_normal();
    }
    panel_qr_cgs2(x, 1e-13, par, rng, c.flops);
  }
  st.coarse_solve_seconds = t_solve.seconds();

  Vec theta;
  Vec residuals;

  /// Refinement at one level: Rayleigh-Ritz sweeps with Chebyshev
  /// filtering in between, until the aspiration residual, a sweep cap, a
  /// stall, or budget exhaustion. The first sweep always runs (it is what
  /// makes theta / residuals consistent with x), matching the flat
  /// solvers' at-least-one-iteration contract.
  auto refine = [&](const SymCsrMatrix& m, Panel& xl, bool finest) {
    Timer t_level;
    const double hi = m.gershgorin_upper();
    const double scale = std::max(hi, 1e-30);
    const double aspiration =
        (finest ? opts.tolerance : std::max(opts.tolerance, 1e-6)) * scale;
    const std::size_t max_sweeps =
        opts.ml_refine_sweeps != 0 ? opts.ml_refine_sweeps
                                   : (finest ? std::size_t{20}
                                             : std::size_t{10});
    const std::size_t degree =
        std::max<std::size_t>(2, opts.ml_refine_degree);

    double res = rayleigh_ritz(m, xl, want, par, theta, residuals, c);
    std::size_t sweeps = 1;
    double best = std::numeric_limits<double>::infinity();
    int no_gain = 0;
    while (sweeps < max_sweeps && res > aspiration && !exhausted) {
      // Lenient stall rule: a filter pass that is recovering a mode the
      // coarse basis missed *raises* the residual before it collapses, so
      // only two consecutive no-gain sweeps end the level.
      if (res > 0.9 * best) {
        if (++no_gain >= 2) break;
      } else {
        no_gain = 0;
      }
      best = std::min(best, res);
      if (!budget_charge(budget)) {
        exhausted = true;
        break;
      }
      double lo = theta[xl.cols() - 1];
      lo = std::min(std::max(lo * 1.05, 1e-8 * hi), 0.5 * hi);
      chebyshev_filter(m, xl, lo, hi, degree, par, c);
      panel_qr_cgs2(xl, 1e-13, par, rng, c.flops);
      res = rayleigh_ritz(m, xl, want, par, theta, residuals, c);
      ++sweeps;
    }

    LevelStats ls;
    ls.n = m.size();
    ls.nnz = m.nnz();
    ls.sweeps = sweeps;
    ls.relative_residual = res / scale;
    ls.seconds = t_level.seconds();
    st.refine_seconds += ls.seconds;
    st.per_level.push_back(ls);
  };

  // Ascent: prolong (piecewise-constant), re-orthonormalize, refine. When
  // the budget dies mid-ascent the prolongation still runs to the finest
  // level (the result must live on the original vertex set) but each
  // remaining level gets only the mandatory consistency sweep.
  for (std::size_t li = levels.size(); li-- > 0;) {
    const SymCsrMatrix& fine = li == 0 ? a : levels[li - 1].lap;
    const CoarseLevel& lev = levels[li];
    const std::size_t nf = fine.size(), w = x.cols();
    Panel xf(nf, w);
    parallel_for(par, 0, nf, [&](std::size_t lo_r, std::size_t hi_r) {
      for (std::size_t r = lo_r; r < hi_r; ++r) {
        const double* src = x.row(lev.coarse_of[r]);
        double* dst = xf.row(r);
        for (std::size_t cc = 0; cc < w; ++cc) dst[cc] = src[cc];
      }
    });
    panel_qr_cgs2(xf, 1e-13, par, rng, c.flops);
    c.flops += 4ull * nf * w * w;
    x = std::move(xf);
    refine(fine, x, li == 0);
  }
  if (levels.empty()) refine(a, x, /*finest=*/true);

  // Extraction. theta / residuals reflect the last (finest) Rayleigh-Ritz
  // rotation, so the columns of x already are the unit Ritz vectors.
  const double fin_scale = std::max(a.gershgorin_upper(), 1e-30);
  const double accept =
      std::max(opts.ml_refine_tolerance, opts.tolerance) * fin_scale;
  const std::size_t take = std::min(want, x.cols());
  result.values.assign(theta.begin(),
                       theta.begin() + static_cast<std::ptrdiff_t>(take));
  result.vectors = DenseMatrix(n, take);
  for (std::size_t j = 0; j < take; ++j)
    for (std::size_t r = 0; r < n; ++r)
      result.vectors.at(r, j) = x.at(r, j);
  result.num_converged = 0;
  for (std::size_t j = 0; j < std::min(take, residuals.size()); ++j) {
    if (residuals[j] > accept) break;
    ++result.num_converged;
  }
  result.converged =
      !exhausted && take == want && result.num_converged == want;
  result.budget_exhausted = exhausted;
  result.iterations = st.total_sweeps();
  result.operator_applies = c.applies;
  result.flops = c.flops;
  result.matrix_bytes_moved = c.bytes;
  return result;
}

}  // namespace specpart::multilevel
