// Multilevel eigensolver: the coarsen / solve / refine V-cycle over the
// CSR data plane.
//
// A flat Krylov solve on a large clique-model Laplacian spends most of its
// time resolving a quasi-continuum of low eigenvalues — hundreds of Krylov
// columns, each one a full sweep of the matrix. The V-cycle sidesteps
// that: heavy-edge matching (coarsen.h) contracts the matrix level by
// level down to a few hundred vertices, the coarsest problem is solved
// exactly by the dense decomposition, and the basis rides back up through
// piecewise-constant interpolation + CGS2 re-orthonormalization +
// Rayleigh-Ritz refinement sweeps. Between sweeps a degree-p Chebyshev
// filter on [lo, hi] (lo just above the current Ritz window, hi the
// Gershgorin bound) damps everything above the wanted band — single power
// steps on sigma I - L are useless here because sigma >> lambda_d, so the
// three-term Chebyshev recurrence does the separation work.
//
// Every floating-point path is either serial or built on the fixed-block
// primitives of util/parallel.h (panel_ops, spmm), so the result is
// bit-identical across 1, 2 and 8 threads.
//
// Convergence contract: the sweeps aspire to SolverOptions::tolerance, but
// on instances whose low spectrum is a clustered quasi-continuum the
// filter's separation power caps the certifiable residual well above it.
// SolverOptions::ml_refine_tolerance (relative, ~1e-4) is the documented
// acceptance bound governing the returned `converged` flag; callers that
// need the tight tolerance fall back to a flat solve when it is unmet
// (spectral/embedding.cpp does exactly that).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/eigensolver.h"
#include "linalg/sparse.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace specpart::multilevel {

/// Per-level refinement record, finest level last.
struct LevelStats {
  std::size_t n = 0;
  std::size_t nnz = 0;
  /// Rayleigh-Ritz sweeps spent on this level.
  std::size_t sweeps = 0;
  /// Final max Ritz residual over the wanted pairs, relative to the
  /// level's Gershgorin scale.
  double relative_residual = 0.0;
  double seconds = 0.0;
};

struct MultilevelStats {
  std::size_t levels = 0;
  std::size_t coarsest_n = 0;
  /// finest n / coarsest n (1.0 when no coarsening happened).
  double coarsening_ratio = 1.0;
  double coarsen_seconds = 0.0;
  double coarse_solve_seconds = 0.0;
  double refine_seconds = 0.0;
  /// One entry per refined level, coarse-to-fine order (finest last).
  std::vector<LevelStats> per_level;

  std::size_t total_sweeps() const {
    std::size_t s = 0;
    for (const LevelStats& l : per_level) s += l.sweeps;
    return s;
  }
};

/// Computes the `want` smallest eigenpairs of the symmetric sparse matrix
/// `a` through the V-cycle. Consumes the ml_* knobs plus `tolerance` of
/// `opts`; `converged` in the result reflects ml_refine_tolerance (see the
/// file comment). The FLOP / bytes-moved counters accumulate across every
/// level, comparable with the flat solvers'. One refinement sweep charges
/// one budget unit; on exhaustion the best basis so far is returned with
/// budget_exhausted set. `galerkin_general` selects the exact P^T M P
/// contraction for non-Laplacian symmetric operators (the normalized
/// objective); the default keeps the contracted-graph path byte-identical
/// for plain Laplacians (see CoarsenOptions::galerkin_general).
linalg::LanczosResult multilevel_solve_smallest(
    const linalg::SymCsrMatrix& a, std::size_t want, std::uint64_t seed,
    const linalg::SolverOptions& opts, const ParallelConfig& parallel,
    ComputeBudget* budget = nullptr, MultilevelStats* stats = nullptr,
    bool galerkin_general = false);

}  // namespace specpart::multilevel
