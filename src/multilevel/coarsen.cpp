#include "multilevel/coarsen.h"

#include <cstdint>
#include <limits>

#include "linalg/csr.h"

namespace specpart::multilevel {

namespace {

constexpr std::uint32_t kUnmatched = std::numeric_limits<std::uint32_t>::max();

}  // namespace

CoarseLevel coarsen_once(const linalg::SymCsrMatrix& fine,
                         const ParallelConfig& parallel,
                         bool galerkin_general) {
  const std::size_t n = fine.size();
  std::vector<std::uint32_t> cid(n, kUnmatched);
  std::uint32_t next = 0;

  // Pass 1: heavy-edge pairing. Ascending vertex order, each unmatched
  // vertex grabs its heaviest unmatched neighbor.
  for (std::size_t v = 0; v < n; ++v) {
    if (cid[v] != kUnmatched) continue;
    double best_w = 0.0;
    std::size_t best = n;
    for (std::size_t k = fine.row_begin(v); k < fine.row_end(v); ++k) {
      const std::size_t u = fine.col_index(k);
      if (u == v || cid[u] != kUnmatched) continue;
      const double w = -fine.value(k);  // Laplacian off-diagonal = -weight
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    if (best < n) {
      cid[v] = next;
      cid[best] = next;
      ++next;
    }
  }

  // Pass 2: two-hop pairing. A leftover (typically a vertex whose whole
  // neighborhood matched in pass 1) pairs with another leftover reachable
  // through any common neighbor, weighted by the lighter of the two hops.
  // This keeps clusters at size <= 2 while still shrinking star-heavy
  // regions; the alternative — absorbing leftovers into existing pairs —
  // loses low eigenvectors (see the file comment in coarsen.h).
  for (std::size_t v = 0; v < n; ++v) {
    if (cid[v] != kUnmatched) continue;
    double best_w = 0.0;
    std::size_t best = n;
    for (std::size_t k = fine.row_begin(v); k < fine.row_end(v); ++k) {
      const std::size_t u = fine.col_index(k);
      if (u == v) continue;
      const double wu = -fine.value(k);
      for (std::size_t k2 = fine.row_begin(u); k2 < fine.row_end(u); ++k2) {
        const std::size_t t = fine.col_index(k2);
        if (t == u || t == v || cid[t] != kUnmatched) continue;
        const double wt = -fine.value(k2);
        const double w2 = wu < wt ? wu : wt;
        if (w2 > best_w) {
          best_w = w2;
          best = t;
        }
      }
    }
    if (best < n) {
      cid[v] = next;
      cid[best] = next;
      ++next;
    } else {
      cid[v] = next;  // isolated (or fully surrounded): singleton cluster
      ++next;
    }
  }

  // Coarse operator through the shared assembler. Default path: stream
  // every crossing fine edge once (i < j picks one of the CSR's two
  // mirrored entries) as a positive adjacency weight; finish_laplacian
  // merges parallel edges under the stable-merge contract, negates them
  // back and splices in the weighted-degree diagonal. Intra-cluster edges
  // are dropped, which for a graph Laplacian is exactly the Galerkin
  // contraction P^T L P. General path: see the galerkin_general branch.
  linalg::CsrAssembler& assembler = linalg::thread_assembly_workspace();
  assembler.begin(next);
  assembler.reserve(fine.nnz());
  linalg::CsrStorage storage;
  if (galerkin_general) {
    // Exact Galerkin contraction for a general symmetric matrix: stream
    // every stored entry — diagonals and intra-cluster entries included —
    // as the directed coarse entry (cid[i], cid[j], v) and let the generic
    // stable-merge finish sum them. The result is P^T M P verbatim; since
    // every fine row stores a diagonal, every coarse row keeps one too.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = fine.row_begin(i); k < fine.row_end(i); ++k)
        assembler.add_entry(cid[i], cid[fine.col_index(k)], fine.value(k));
    assembler.finish(storage, parallel);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = fine.row_begin(i); k < fine.row_end(i); ++k) {
        const std::size_t j = fine.col_index(k);
        if (j <= i) continue;
        if (cid[i] == cid[j]) continue;
        assembler.add_edge(cid[i], cid[j], -fine.value(k));
      }
    assembler.finish_laplacian(storage, nullptr, parallel);
  }

  CoarseLevel level;
  level.coarse_of = std::move(cid);
  level.lap = linalg::SymCsrMatrix(std::move(storage));
  level.fine_n = n;
  return level;
}

std::vector<CoarseLevel> build_hierarchy(const linalg::SymCsrMatrix& finest,
                                         const CoarsenOptions& opts) {
  std::vector<CoarseLevel> levels;
  while (true) {
    const linalg::SymCsrMatrix& cur =
        levels.empty() ? finest : levels.back().lap;
    if (cur.size() <= opts.coarsest_size || levels.size() >= opts.max_levels)
      break;
    CoarseLevel level =
        coarsen_once(cur, opts.parallel, opts.galerkin_general);
    if (static_cast<double>(level.coarse_n()) >
        opts.min_shrink_factor * static_cast<double>(cur.size()))
      break;  // matching stalled; deeper levels would not pay for themselves
    levels.push_back(std::move(level));
  }
  return levels;
}

}  // namespace specpart::multilevel
