// Tests for the parallel compute-kernel layer (util/parallel.h):
// determinism of the fixed-block reductions across thread counts, and
// equivalence of every parallelized hot path (MELO argmax, Lanczos, SpMV,
// k-means assignment, DP-RP table fill) with the serial reference.
//
// Thread counts are oversubscribed on small machines on purpose — the
// pool spawns the requested workers regardless of core count, so the
// determinism contract is exercised under real interleaving everywhere.
// `SPECPART_THREADS` (set by the CI's pinned ctest invocation) is added to
// the tested counts when present.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/drivers.h"
#include "core/melo.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "model/clique_models.h"
#include "spectral/dprp.h"
#include "spectral/kmeans.h"
#include "util/rng.h"

namespace specpart {
namespace {

std::vector<std::size_t> tested_thread_counts() {
  std::vector<std::size_t> counts = {1, 2, 8};
  const std::size_t env = env_threads();
  if (env > 1 && env != 2 && env != 8) counts.push_back(env);
  return counts;
}

ParallelConfig cfg(std::size_t threads, std::size_t grain = 128) {
  ParallelConfig c;
  c.num_threads = threads;
  c.grain = grain;
  return c;
}

TEST(Parallel, ConfigResolvesThreads) {
  EXPECT_EQ(ParallelConfig{}.threads(), 1u);
  EXPECT_TRUE(ParallelConfig{}.serial());
  EXPECT_EQ(ParallelConfig::with_threads(8).threads(), 8u);
  EXPECT_FALSE(ParallelConfig::with_threads(8).serial());
  // 0 = auto resolves to something >= 1 (env or hardware).
  EXPECT_GE(ParallelConfig::with_threads(0).threads(), 1u);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  const std::size_t n = 10007;  // not a multiple of the grain
  for (const std::size_t t : tested_thread_counts()) {
    std::vector<int> hits(n, 0);
    parallel_for(cfg(t), 3, n, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i], 0) << i;
    for (std::size_t i = 3; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
  }
}

TEST(Parallel, ReduceSumBitIdenticalAcrossThreadCounts) {
  // Values of wildly different magnitude make the sum order-sensitive, so
  // bit-equality across thread counts is a real statement about the fixed
  // blocks, not an accident of benign data.
  Rng rng(42);
  const std::size_t n = 20011;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = rng.next_normal() * std::pow(10.0, static_cast<double>(i % 17) - 8);

  auto sum_with = [&](std::size_t threads) {
    return parallel_reduce<double>(
        cfg(threads), 0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += xs[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  const double reference = sum_with(1);
  for (const std::size_t t : tested_thread_counts())
    EXPECT_EQ(sum_with(t), reference) << t << " threads";

  // And the reference equals an explicit fixed-block serial fold.
  double manual = 0.0;
  for (std::size_t lo = 0; lo < n; lo += 128) {
    double s = 0.0;
    for (std::size_t i = lo; i < std::min(n, lo + 128); ++i) s += xs[i];
    manual += s;
  }
  EXPECT_EQ(reference, manual);
}

TEST(Parallel, ReduceEmptyAndSingleBlock) {
  auto count = [](std::size_t lo, std::size_t hi) {
    return static_cast<double>(hi - lo);
  };
  auto add = [](double a, double b) { return a + b; };
  EXPECT_EQ(parallel_reduce<double>(cfg(8), 5, 5, 1.5, count, add), 1.5);
  EXPECT_EQ(parallel_reduce<double>(cfg(8, 1024), 0, 100, 0.0, count, add),
            100.0);
}

TEST(Parallel, ArgmaxMatchesSerialFirstMaxScan) {
  Rng rng(7);
  const std::size_t n = 5000;
  std::vector<double> keys(n);
  std::vector<char> valid(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<double>(rng.next_below(50));  // many exact ties
    valid[i] = rng.next_below(4) != 0;
  }
  // Serial reference: ascending scan, replace on strictly-greater key.
  std::size_t expected = n;
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!valid[i]) continue;
    if (expected == n || keys[i] > best) {
      best = keys[i];
      expected = i;
    }
  }
  for (const std::size_t t : tested_thread_counts()) {
    const std::size_t got = parallel_argmax(
        cfg(t, 64), n, [&](std::size_t i) { return keys[i]; },
        [&](std::size_t i) { return valid[i] != 0; });
    EXPECT_EQ(got, expected) << t << " threads";
  }
  // No valid index at all -> n.
  EXPECT_EQ(parallel_argmax(
                cfg(8, 64), n, [&](std::size_t i) { return keys[i]; },
                [](std::size_t) { return false; }),
            n);
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      parallel_for(cfg(4, 16), 0, 1000,
                   [&](std::size_t lo, std::size_t) {
                     if (lo >= 512) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::vector<int> hits(100, 0);
  parallel_for(cfg(4, 16), 0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, PoolReuseIsStable) {
  // Many small jobs back-to-back: exercises sleep/wake cycles of the pool.
  double expected = -1.0;
  for (int round = 0; round < 200; ++round) {
    const double s = parallel_reduce<double>(
        cfg(4, 8), 0, 1000, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i)
            acc += static_cast<double>(i) * 0.5;
          return acc;
        },
        [](double a, double b) { return a + b; });
    if (expected < 0.0) expected = s;
    ASSERT_EQ(s, expected) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Equivalence of the parallelized hot paths with the serial reference.
// ---------------------------------------------------------------------------

graph::Hypergraph make_netlist(std::size_t modules, std::uint64_t seed) {
  graph::GeneratorConfig gcfg;
  gcfg.num_modules = modules;
  gcfg.num_nets = modules + modules / 10;
  gcfg.seed = seed;
  return graph::generate_netlist(gcfg);
}

core::VectorInstance random_instance(std::size_t n, std::size_t d,
                                     std::uint64_t seed) {
  core::VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(n, d);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      inst.vectors.at(i, j) = rng.next_normal();
  return inst;
}

TEST(ParallelEquivalence, MeloExactOrderingBitIdentical) {
  const core::VectorInstance inst = random_instance(600, 8, 11);
  core::MeloOrderingOptions opts;
  const part::Ordering reference = core::melo_order_vectors(inst, opts);
  for (const std::size_t t : tested_thread_counts()) {
    opts.parallel = ParallelConfig::with_threads(t);
    EXPECT_EQ(core::melo_order_vectors(inst, opts), reference)
        << t << " threads";
  }
}

TEST(ParallelEquivalence, MeloLazyOrderingBitIdentical) {
  const core::VectorInstance inst = random_instance(600, 8, 12);
  core::MeloOrderingOptions opts;
  opts.lazy_ranking = true;
  opts.lazy_window = 24;
  opts.lazy_rerank_interval = 40;
  const part::Ordering reference = core::melo_order_vectors(inst, opts);
  for (const std::size_t t : tested_thread_counts()) {
    opts.parallel = ParallelConfig::with_threads(t);
    EXPECT_EQ(core::melo_order_vectors(inst, opts), reference)
        << t << " threads";
  }
}

TEST(ParallelEquivalence, MeloDriverWithReadjustBitIdentical) {
  // n below the dense eigensolver threshold: the eigenbasis is identical
  // for every thread count, so the full driver (including the H-readjust
  // reload) must reproduce the serial orderings bit for bit.
  const graph::Hypergraph h = make_netlist(300, 5);
  core::MeloOptions opts;
  opts.num_eigenvectors = 6;
  opts.num_starts = 2;
  const auto reference = core::melo_orderings(h, opts);
  for (const std::size_t t : tested_thread_counts()) {
    opts.parallel = ParallelConfig::with_threads(t);
    const auto runs = core::melo_orderings(h, opts);
    ASSERT_EQ(runs.size(), reference.size());
    for (std::size_t r = 0; r < runs.size(); ++r)
      EXPECT_EQ(runs[r].ordering, reference[r].ordering)
          << t << " threads, start " << r;
  }
}

TEST(ParallelEquivalence, SparseMatvecBitIdentical) {
  const graph::Hypergraph h = make_netlist(800, 21);
  const linalg::SymCsrMatrix q = graph::build_laplacian(
      model::clique_expand(h, model::NetModel::kPartitioningSpecific));
  Rng rng(3);
  linalg::Vec x(q.size());
  for (double& v : x) v = rng.next_normal();
  linalg::Vec reference;
  q.matvec(x, reference);
  for (const std::size_t t : tested_thread_counts()) {
    linalg::Vec y;
    q.matvec(x, y, cfg(t, 64));
    EXPECT_EQ(y, reference) << t << " threads";
  }
}

TEST(ParallelEquivalence, LanczosMatchesSerialAndIsDeterministic) {
  // Ring + random chords: the spectrum is well separated, so the serial
  // reference converges fully (clique-expanded netlists cluster eigenvalues
  // and are exercised end-to-end by the MELO driver test instead).
  const std::size_t n = 400;
  Rng rng(33);
  std::vector<graph::Edge> edges;
  for (std::size_t i = 0; i < n; ++i)
    edges.push_back({static_cast<graph::NodeId>(i),
                     static_cast<graph::NodeId>((i + 1) % n),
                     0.5 + rng.next_double()});
  for (std::size_t e = 0; e < 2 * n; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    const auto v = static_cast<graph::NodeId>(rng.next_below(n));
    if (u != v) edges.push_back({u, v, 0.5 + rng.next_double()});
  }
  const linalg::SymCsrMatrix q =
      graph::build_laplacian(graph::Graph(n, edges));
  linalg::LanczosOptions opts;
  opts.num_eigenpairs = 6;
  const linalg::LanczosResult serial = linalg::lanczos_smallest(q, opts);
  ASSERT_TRUE(serial.converged);

  const double scale = q.gershgorin_upper();
  std::vector<linalg::LanczosResult> parallel_results;
  for (const std::size_t t : {std::size_t{2}, std::size_t{8}}) {
    opts.parallel = ParallelConfig::with_threads(t);
    parallel_results.push_back(linalg::lanczos_smallest(q, opts));
    const linalg::LanczosResult& r = parallel_results.back();
    ASSERT_TRUE(r.converged) << t << " threads";
    ASSERT_EQ(r.values.size(), serial.values.size());
    // Parallel reorthogonalization is CGS2 (vs serial MGS2): eigenvalues
    // agree to solver tolerance, not bitwise.
    for (std::size_t i = 0; i < serial.values.size(); ++i)
      EXPECT_NEAR(r.values[i], serial.values[i], 1e-6 * scale)
          << t << " threads, pair " << i;
  }
  // Determinism among parallel runs: 2 and 8 threads are bit-identical.
  EXPECT_EQ(parallel_results[0].values, parallel_results[1].values);
  EXPECT_EQ(parallel_results[0].iterations, parallel_results[1].iterations);
  EXPECT_EQ(parallel_results[0].vectors.max_abs_diff(
                parallel_results[1].vectors),
            0.0);
}

TEST(ParallelEquivalence, KmeansAssignmentsBitIdentical) {
  // n below the dense threshold keeps the embedding identical across
  // thread counts; the Lloyd iterations themselves are exact under
  // point-blocking, so assignments must match bit for bit.
  const graph::Hypergraph h = make_netlist(300, 55);
  spectral::KmeansOptions opts;
  opts.num_starts = 2;
  const part::Partition reference = spectral::kmeans_partition(h, 4, opts);
  for (const std::size_t t : tested_thread_counts()) {
    opts.parallel = ParallelConfig::with_threads(t);
    const part::Partition p = spectral::kmeans_partition(h, 4, opts);
    EXPECT_EQ(p.assignment(), reference.assignment()) << t << " threads";
  }
}

TEST(ParallelEquivalence, DprpSplitBitIdentical) {
  const graph::Hypergraph h = make_netlist(500, 77);
  core::MeloOptions mopts;
  mopts.num_eigenvectors = 6;
  const auto runs = core::melo_orderings(h, mopts);
  spectral::DprpOptions opts;
  opts.k = 6;
  const spectral::DprpResult reference =
      spectral::dprp_split(h, runs[0].ordering, opts);
  for (const std::size_t t : tested_thread_counts()) {
    opts.parallel = ParallelConfig::with_threads(t);
    const spectral::DprpResult r =
        spectral::dprp_split(h, runs[0].ordering, opts);
    EXPECT_EQ(r.boundaries, reference.boundaries) << t << " threads";
    EXPECT_EQ(r.scaled_cost, reference.scaled_cost) << t << " threads";
    EXPECT_EQ(r.partition.assignment(), reference.partition.assignment())
        << t << " threads";
  }
}

}  // namespace
}  // namespace specpart
