// End-to-end integration tests: full pipelines on generated benchmarks,
// cross-algorithm consistency, and the paper's qualitative claims in
// miniature.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/drivers.h"
#include "exp/runners.h"
#include "exp/suite.h"
#include "graph/netlist_io.h"
#include "part/fm.h"
#include "part/objectives.h"
#include "spectral/dprp.h"
#include "spectral/kp.h"
#include "spectral/rsb.h"
#include "spectral/sb.h"
#include "spectral/sfc.h"
#include "util/error.h"

namespace specpart {
namespace {

exp::Benchmark small_benchmark() {
  auto suite = exp::paper_suite(0.25, 1);  // balu at quarter scale (~200)
  return suite.front();
}

TEST(Integration, AllAlgorithmsProduceValidPartitions) {
  const graph::Hypergraph h = exp::load(small_benchmark());
  const std::uint32_t k = 4;

  const part::Partition rsb =
      spectral::rsb_partition(h, k, spectral::RsbOptions{});
  const part::Partition kp = spectral::kp_partition(h, k, spectral::KpOptions{});
  spectral::DprpOptions dpo;
  dpo.k = k;
  const part::Partition sfc =
      spectral::dprp_split(h, spectral::sfc_ordering(h, spectral::SfcOptions{}),
                           dpo)
          .partition;
  const part::Partition melo =
      core::melo_multiway(h, k, core::MeloOptions{}).partition;

  for (const part::Partition* p : {&rsb, &kp, &sfc, &melo}) {
    EXPECT_EQ(p->num_nodes(), h.num_nodes());
    EXPECT_EQ(p->k(), k);
    EXPECT_EQ(p->num_nonempty(), k);
    EXPECT_TRUE(std::isfinite(part::scaled_cost(h, *p)));
  }
}

TEST(Integration, MeloBeatsSbOnBalancedCutAcrossSeeds) {
  // The titular claim over several suite instances: MELO (d = 10) balanced
  // cut <= SB balanced cut, allowing a tiny tolerance, and strictly better
  // somewhere.
  std::size_t strictly_better = 0;
  std::size_t compared = 0;
  for (const auto& b : exp::paper_suite(0.4, 3)) {
    const graph::Hypergraph h = exp::load(b);
    spectral::SbOptions so;
    so.min_fraction = 0.45;
    const double sb_cut =
        part::cut_nets(h, spectral::spectral_bipartition(h, so).partition);
    core::MeloOptions m;
    m.num_starts = 3;
    const double melo_cut = core::melo_bipartition(h, m, 0.45).cut;
    EXPECT_LE(melo_cut, sb_cut * 1.10 + 1e-9) << b.name;
    if (melo_cut < sb_cut - 1e-9) ++strictly_better;
    ++compared;
  }
  EXPECT_GE(compared, 3u);
  EXPECT_GE(strictly_better, 1u);
}

TEST(Integration, MoreEigenvectorsHelpOnBalancedCut) {
  const auto suite = exp::paper_suite(0.5, 2);
  for (const auto& b : suite) {
    const graph::Hypergraph h = exp::load(b);
    double cut_d2 = 0.0, cut_d12 = 0.0;
    for (std::size_t d : {std::size_t{2}, std::size_t{12}}) {
      core::MeloOptions m;
      m.num_eigenvectors = d;
      m.num_starts = 2;
      const double c = core::melo_bipartition(h, m, 0.45).cut;
      (d == 2 ? cut_d2 : cut_d12) = c;
    }
    EXPECT_LE(cut_d12, cut_d2 * 1.05 + 1e-9) << b.name;
  }
}

TEST(Integration, PipelineThroughFileIo) {
  // Generate -> serialize -> parse -> partition: identical results.
  const graph::Hypergraph h = exp::load(small_benchmark());
  std::ostringstream out;
  graph::write_hgr(h, out);
  std::istringstream in(out.str());
  const graph::Hypergraph h2 = graph::read_hgr(in);

  core::MeloOptions m;
  const auto a = core::melo_bipartition(h, m, 0.45);
  const auto b = core::melo_bipartition(h2, m, 0.45);
  EXPECT_EQ(a.partition.assignment(), b.partition.assignment());
  EXPECT_DOUBLE_EQ(a.cut, b.cut);
}

TEST(Integration, FmRefinesMeloPartition) {
  // MELO + FM post-refinement (the classic hybrid): never worse than MELO.
  const graph::Hypergraph h = exp::load(small_benchmark());
  core::MeloOptions m;
  const auto melo = core::melo_bipartition(h, m, 0.45);
  part::FmOptions fo;
  const auto refined = part::fm_refine(h, melo.partition, fo);
  EXPECT_LE(refined.cut, melo.cut + 1e-9);
}

TEST(Integration, RunnersProduceTables) {
  exp::RunnerOptions opts;
  opts.scale = 0.15;
  opts.limit = 2;
  const exp::Table t1 = exp::run_table1(opts);
  EXPECT_EQ(t1.num_rows(), 2u);
  const exp::Table t2 = exp::run_table2_schemes(opts, 6);
  EXPECT_EQ(t2.num_rows(), 2u);
  const exp::Table t3 = exp::run_table3_dims(opts, {2, 6});
  EXPECT_EQ(t3.num_rows(), 2u);
  exp::Table4Summary summary;
  const exp::Table t4 = exp::run_table4_multiway(opts, {2, 4}, &summary);
  EXPECT_EQ(t4.num_rows(), 4u);
  EXPECT_EQ(summary.rows, 4u);
  const exp::Table t5 = exp::run_table5_bipart(opts);
  EXPECT_EQ(t5.num_rows(), 2u);
}

TEST(Integration, TablePrintingIsWellFormed) {
  exp::RunnerOptions opts;
  opts.scale = 0.15;
  opts.limit = 1;
  const exp::Table t = exp::run_table1(opts);
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("benchmark"), std::string::npos);
  EXPECT_NE(csv.str().find("benchmark,"), std::string::npos);
  // CSV has header + one row.
  std::size_t lines = 0;
  for (char c : csv.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
}

TEST(Integration, SuiteIsDeterministic) {
  const auto a = exp::paper_suite(0.3, 0);
  const auto b = exp::paper_suite(0.3, 0);
  ASSERT_EQ(a.size(), 12u);
  ASSERT_EQ(b.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    const graph::Hypergraph ha = exp::load(a[i]);
    const graph::Hypergraph hb = exp::load(b[i]);
    EXPECT_EQ(ha.num_nets(), hb.num_nets());
    EXPECT_EQ(ha.num_pins(), hb.num_pins());
  }
}

TEST(Integration, FindBenchmarkByName) {
  const auto suite = exp::paper_suite(1.0, 0);
  EXPECT_EQ(exp::find_benchmark(suite, "prim2").name, "prim2");
  EXPECT_THROW(exp::find_benchmark(suite, "nope"), specpart::Error);
}

}  // namespace
}  // namespace specpart
