// Tests for the partitioning service layer: content-addressed embedding
// cache (hits, prefix reuse, LRU eviction), job-queue admission control,
// serving metrics, the wire protocol, and the serving determinism
// contract (byte-identical responses cold, cached, and at any kernel
// thread count).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/generator.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "service/cache.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service.h"
#include "util/error.h"
#include "util/hashing.h"

namespace specpart::service {
namespace {

graph::Hypergraph small_netlist(std::uint64_t seed = 7,
                                std::size_t modules = 90) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 3;
  cfg.num_clusters = 4;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

PartitionRequest make_request(std::uint64_t graph_seed = 7,
                              std::size_t d = 8) {
  PartitionRequest req;
  req.id = "t";
  req.graph = small_netlist(graph_seed);
  req.pipeline.num_eigenvectors = d;
  return req;
}

std::string wire(const PartitionResponse& resp) {
  std::ostringstream out;
  write_response(resp, out);
  return out.str();
}

bool has_stage(const Diagnostics& diag, const std::string& name) {
  for (const StageStats& s : diag.stages())
    if (s.name == name) return true;
  return false;
}

void expect_same_basis(const spectral::EigenBasis& a,
                       const spectral::EigenBasis& b) {
  ASSERT_EQ(a.dimension(), b.dimension());
  ASSERT_EQ(a.n, b.n);
  for (std::size_t j = 0; j < a.dimension(); ++j) {
    EXPECT_EQ(a.values[j], b.values[j]);
    for (std::size_t i = 0; i < a.n; ++i)
      EXPECT_EQ(a.vectors.at(i, j), b.vectors.at(i, j));
  }
}

TEST(Hashing, DeterministicOrderSensitiveDigest) {
  Hasher a, b, c;
  a.mix_u64(1);
  a.mix_u64(2);
  a.mix_string("x");
  b.mix_u64(1);
  b.mix_u64(2);
  b.mix_string("x");
  c.mix_u64(2);
  c.mix_u64(1);
  c.mix_string("x");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_EQ(a.digest().hex().size(), 32u);

  Hasher d, e;
  d.mix_double(1.0);
  e.mix_double(-1.0);
  EXPECT_NE(d.digest(), e.digest());
}

TEST(Cache, QuantizedCountRoundsUp) {
  EmbeddingCacheOptions opts;
  opts.dim_quantum = 8;
  EmbeddingCache cache(opts);
  EXPECT_EQ(cache.quantized_count(1), 8u);
  EXPECT_EQ(cache.quantized_count(8), 8u);
  EXPECT_EQ(cache.quantized_count(10), 16u);
  EXPECT_EQ(cache.quantized_count(16), 16u);
}

TEST(Cache, KeyIgnoresUnrelatedOptionsButSeesGraphAndSolver) {
  const graph::Graph g = model::clique_expand(
      small_netlist(), model::NetModel::kPartitioningSpecific);
  const graph::Graph g2 = model::clique_expand(
      small_netlist(11), model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions e;
  const Fingerprint base = EmbeddingCache::eigen_key(g, e, 16);
  EXPECT_EQ(base, EmbeddingCache::eigen_key(g, e, 16));
  EXPECT_NE(base, EmbeddingCache::eigen_key(g2, e, 16));
  EXPECT_NE(base, EmbeddingCache::eigen_key(g, e, 24));
  spectral::EmbeddingOptions seeded = e;
  seeded.seed ^= 1;
  EXPECT_NE(base, EmbeddingCache::eigen_key(g, seeded, 16));
  // Threading is a how, not a what: it must not change the content key.
  spectral::EmbeddingOptions threaded = e;
  threaded.parallel = ParallelConfig::with_threads(8);
  EXPECT_EQ(base, EmbeddingCache::eigen_key(g, threaded, 16));
}

TEST(Cache, SolverBackendsLiveInDisjointKeyDomains) {
  // The eigensolver backend changes the numerical content of the basis,
  // so scalar- and block-produced embeddings must never alias: a cache
  // warmed by scalar requests has to miss when the same netlist arrives
  // with solver=block.
  const graph::Graph g = model::clique_expand(
      small_netlist(), model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions e;
  spectral::EmbeddingOptions blocked = e;
  blocked.solver.backend = linalg::SolverBackend::kBlock;
  EXPECT_NE(EmbeddingCache::eigen_key(g, e, 16),
            EmbeddingCache::eigen_key(g, blocked, 16));

  PartitionService svc;
  PartitionRequest req = make_request();
  const PartitionResponse scalar_resp = svc.execute(req);  // warms the cache
  req.pipeline.solver.backend = core::SolverBackend::kBlock;
  const PartitionResponse block_resp = svc.execute(req);
  EXPECT_EQ(scalar_resp.status, "ok");
  EXPECT_EQ(block_resp.status, "ok");

  const EmbeddingCacheStats s = svc.cache_stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(Cache, SolverStrategiesLiveInDisjointKeyDomains) {
  // The solve strategy changes the numerical content of the basis (the
  // V-cycle converges to its own acceptance bound, not the flat chain's),
  // so flat- and multilevel-produced embeddings must never alias — in
  // BOTH key domains: the legacy graph key and the netlist key.
  const graph::Hypergraph h = small_netlist();
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions e;
  spectral::EmbeddingOptions ml = e;
  ml.solver.strategy = linalg::SolverStrategy::kMultilevel;
  EXPECT_NE(EmbeddingCache::eigen_key(g, e, 16),
            EmbeddingCache::eigen_key(g, ml, 16));
  EXPECT_NE(
      EmbeddingCache::netlist_key(h, model::NetModel::kPartitioningSpecific,
                                  0, e, 16),
      EmbeddingCache::netlist_key(h, model::NetModel::kPartitioningSpecific,
                                  0, ml, 16));
  // The multilevel tuning knobs are content too, in both domains.
  spectral::EmbeddingOptions tuned = ml;
  tuned.solver.ml_refine_degree += 1;
  EXPECT_NE(EmbeddingCache::eigen_key(g, ml, 16),
            EmbeddingCache::eigen_key(g, tuned, 16));
  EXPECT_NE(
      EmbeddingCache::netlist_key(h, model::NetModel::kPartitioningSpecific,
                                  0, ml, 16),
      EmbeddingCache::netlist_key(h, model::NetModel::kPartitioningSpecific,
                                  0, tuned, 16));

  // End to end: a cache warmed by a flat request must miss when the same
  // netlist arrives with strategy=multilevel.
  PartitionService svc;
  PartitionRequest req = make_request();
  const PartitionResponse flat_resp = svc.execute(req);  // warms the cache
  req.pipeline.solver.strategy = core::SolverStrategy::kMultilevel;
  const PartitionResponse ml_resp = svc.execute(req);
  EXPECT_EQ(flat_resp.status, "ok");
  EXPECT_EQ(ml_resp.status, "ok");

  const EmbeddingCacheStats s = svc.cache_stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(Cache, RepeatedSolveHitsAndSkipsEigensolve) {
  const graph::Graph g = model::clique_expand(
      small_netlist(), model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions e;
  e.count = 8;

  EmbeddingCache cache;
  Diagnostics cold, warm;
  const spectral::EigenBasis b1 = cache.compute(g, e, &cold, nullptr);
  const spectral::EigenBasis b2 = cache.compute(g, e, &warm, nullptr);

  EXPECT_TRUE(has_stage(cold, "eigensolve"));
  EXPECT_FALSE(has_stage(cold, "embedding_cache_hit"));
  EXPECT_TRUE(has_stage(warm, "embedding_cache_hit"));
  EXPECT_FALSE(has_stage(warm, "eigensolve"));

  const EmbeddingCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  expect_same_basis(b1, b2);
}

TEST(Cache, PrefixReuseServesSmallerDFromOneEntry) {
  const graph::Graph g = model::clique_expand(
      small_netlist(), model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions e10;
  e10.count = 10;  // quantized to 16
  spectral::EmbeddingOptions e12 = e10;
  e12.count = 12;  // same bucket

  EmbeddingCache cache;
  const spectral::EigenBasis b10 = cache.compute(g, e10, nullptr, nullptr);
  Diagnostics warm;
  const spectral::EigenBasis b12 = cache.compute(g, e12, &warm, nullptr);

  EXPECT_EQ(b10.dimension(), 10u);
  EXPECT_EQ(b12.dimension(), 12u);
  EXPECT_FALSE(has_stage(warm, "eigensolve"));

  const EmbeddingCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.prefix_hits, 1u);
  EXPECT_EQ(s.entries, 1u);

  // The smaller basis is the exact leading prefix of the larger one.
  for (std::size_t j = 0; j < 10; ++j) {
    EXPECT_EQ(b10.values[j], b12.values[j]);
    for (std::size_t i = 0; i < b10.n; ++i)
      EXPECT_EQ(b10.vectors.at(i, j), b12.vectors.at(i, j));
  }
}

TEST(Cache, LruEvictionUnderByteBudget) {
  spectral::EmbeddingOptions e;
  e.count = 8;
  const auto expand = [](std::uint64_t seed) {
    return model::clique_expand(small_netlist(seed),
                                model::NetModel::kPartitioningSpecific);
  };
  const graph::Graph g1 = expand(1), g2 = expand(2), g3 = expand(3);

  // Learn one entry's footprint, then budget for two.
  EmbeddingCache probe;
  probe.compute(g1, e, nullptr, nullptr);
  const std::size_t entry_bytes = probe.stats().bytes;
  ASSERT_GT(entry_bytes, 0u);

  EmbeddingCacheOptions opts;
  opts.max_bytes = 2 * entry_bytes + entry_bytes / 2;
  EmbeddingCache cache(opts);
  cache.compute(g1, e, nullptr, nullptr);
  cache.compute(g2, e, nullptr, nullptr);
  cache.compute(g3, e, nullptr, nullptr);  // evicts g1 (LRU)

  EmbeddingCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, opts.max_bytes);

  // g3 and g2 survived; g1 must miss again.
  cache.compute(g3, e, nullptr, nullptr);
  cache.compute(g2, e, nullptr, nullptr);
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.compute(g1, e, nullptr, nullptr);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(Cache, DisabledCacheNeverStoresAndSkipsQuantization) {
  const graph::Graph g = model::clique_expand(
      small_netlist(), model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions e;
  e.count = 10;
  EmbeddingCacheOptions opts;
  opts.max_bytes = 0;
  EmbeddingCache cache(opts);
  const spectral::EigenBasis b = cache.compute(g, e, nullptr, nullptr);
  EXPECT_EQ(b.dimension(), 10u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // Byte-identical to the raw pipeline when disabled.
  const spectral::EigenBasis raw = spectral::compute_eigenbasis(g, e);
  expect_same_basis(b, raw);
}

TEST(Cache, NetlistKeyAgreesWithGraphKeyOnHitMissBehavior) {
  // The re-keyed cache (netlist_key over the hypergraph) must make the
  // same hit/miss decisions the legacy graph key made: keys agree iff the
  // expanded clique graphs + solver options agree.
  spectral::EmbeddingOptions e;
  e.count = 8;
  const auto graph_key = [&](const graph::Hypergraph& h,
                             const spectral::EmbeddingOptions& opts) {
    return EmbeddingCache::eigen_key(
        model::clique_expand(h, model::NetModel::kPartitioningSpecific), opts,
        16);
  };
  const auto hgr_key = [&](const graph::Hypergraph& h,
                           const spectral::EmbeddingOptions& opts) {
    return EmbeddingCache::netlist_key(
        h, model::NetModel::kPartitioningSpecific, 0, opts, 16);
  };

  const graph::Hypergraph h1 = small_netlist(7);
  const graph::Hypergraph h1_again = small_netlist(7);
  const graph::Hypergraph h2 = small_netlist(8);

  // Identical netlist: both schemes hit.
  EXPECT_EQ(hgr_key(h1, e), hgr_key(h1_again, e));
  EXPECT_EQ(graph_key(h1, e), graph_key(h1_again, e));

  // Different netlist: both schemes miss.
  EXPECT_NE(hgr_key(h1, e), hgr_key(h2, e));
  EXPECT_NE(graph_key(h1, e), graph_key(h2, e));

  // Solver-option changes invalidate both the same way.
  spectral::EmbeddingOptions seeded = e;
  seeded.seed ^= 0x5555;
  EXPECT_NE(hgr_key(h1, e), hgr_key(h1, seeded));
  EXPECT_NE(graph_key(h1, e), graph_key(h1, seeded));

  // Net-model changes miss under the new key without expanding anything.
  EXPECT_NE(hgr_key(h1, e),
            EmbeddingCache::netlist_key(h1, model::NetModel::kFrankle, 0, e,
                                        16));

  // The two schemes use disjoint key domains: a request can never hit an
  // entry inserted under the other scheme.
  EXPECT_NE(hgr_key(h1, e), graph_key(h1, e));
}

TEST(Cache, NetlistHitSkipsCliqueExpansionEntirely) {
  const graph::Hypergraph h = small_netlist();
  spectral::EmbeddingOptions e;
  e.count = 8;
  EmbeddingCache cache;

  model::CliqueModel cold_model(h, model::NetModel::kPartitioningSpecific);
  Diagnostics cold;
  const spectral::EigenBasis b1 =
      cache.compute(cold_model, e, &cold, nullptr);
  EXPECT_TRUE(has_stage(cold, "model"));
  EXPECT_TRUE(has_stage(cold, "eigensolve"));
  EXPECT_TRUE(cold_model.laplacian_built());

  model::CliqueModel warm_model(h, model::NetModel::kPartitioningSpecific);
  Diagnostics warm;
  const spectral::EigenBasis b2 =
      cache.compute(warm_model, e, &warm, nullptr);
  EXPECT_TRUE(has_stage(warm, "embedding_cache_hit"));
  EXPECT_FALSE(has_stage(warm, "eigensolve"));
  EXPECT_FALSE(has_stage(warm, "model"));
  // The hit never touched the model: no clique expansion, no Laplacian.
  EXPECT_FALSE(warm_model.laplacian_built());
  EXPECT_FALSE(warm_model.graph_built());

  expect_same_basis(b1, b2);
  const EmbeddingCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(Service, OversizedModelYieldsStructuredErrorNotOom) {
  ServiceOptions opts;
  opts.max_clique_pairs = 3;  // far below any real request
  PartitionService svc(opts);
  const PartitionResponse resp = svc.execute(make_request());
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.error.find("model_too_large"), std::string::npos);
  EXPECT_TRUE(resp.assignment.empty());
  EXPECT_EQ(svc.snapshot().responses_error, 1u);
}

TEST(Service, RepeatedRequestIsByteIdenticalAndHitsCache) {
  PartitionService svc;
  const PartitionRequest req = make_request();
  const PartitionResponse cold = svc.execute(req);
  const PartitionResponse cached = svc.execute(req);
  EXPECT_EQ(cold.status, "ok");
  EXPECT_EQ(wire(cold), wire(cached));

  const EmbeddingCacheStats s = svc.cache_stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);

  const MetricsSnapshot m = svc.snapshot();
  EXPECT_EQ(m.requests_total, 2u);
  EXPECT_EQ(m.responses_ok, 2u);
  EXPECT_EQ(m.latency.total, 2u);
}

TEST(Service, ByteIdenticalAcrossKernelThreadCounts) {
  // A graph above the dense threshold, so the Lanczos kernels (the
  // parallel code path) actually run. The fixed-block reduction contract
  // plus the server-side thread override must make the serialized
  // response independent of the kernel thread count.
  PartitionRequest req = make_request();
  req.graph = small_netlist(7, 400);

  ServiceOptions serial;
  serial.parallel = ParallelConfig::with_threads(1);
  ServiceOptions threaded;
  threaded.parallel = ParallelConfig::with_threads(8);

  PartitionService svc1(serial);
  PartitionService svc8(threaded);
  const std::string cold1 = wire(svc1.execute(req));
  const std::string warm1 = wire(svc1.execute(req));
  const std::string cold8 = wire(svc8.execute(req));
  const std::string warm8 = wire(svc8.execute(req));
  EXPECT_EQ(cold1, warm1);
  EXPECT_EQ(cold1, cold8);
  EXPECT_EQ(cold1, warm8);
}

TEST(Service, MultiwayRequestsServeFromTheSameEmbedding) {
  // k and balance are not part of the cache key: a k=4 request after a
  // k=2 request on the same graph reuses the embedding.
  PartitionService svc;
  PartitionRequest req = make_request();
  const PartitionResponse r2 = svc.execute(req);
  req.k = 4;
  const PartitionResponse r4 = svc.execute(req);
  EXPECT_EQ(r2.status, "ok");
  EXPECT_EQ(r4.status, "ok");
  EXPECT_EQ(r4.assignment.size(), req.graph.num_nodes());
  EXPECT_EQ(svc.cache_stats().hits, 1u);
}

TEST(Service, InvalidRequestYieldsErrorResponse) {
  PartitionService svc;
  PartitionRequest req = make_request();
  req.k = static_cast<std::uint32_t>(req.graph.num_nodes() + 1);
  const PartitionResponse resp = svc.execute(req);
  EXPECT_EQ(resp.status, "error");
  EXPECT_FALSE(resp.error.empty());
  EXPECT_TRUE(resp.assignment.empty());
  EXPECT_EQ(svc.snapshot().responses_error, 1u);
}

TEST(Service, TrySubmitRejectsWhenQueueIsFullWithoutDeadlock) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  PartitionService svc(opts);

  // Fire requests far faster than one worker can drain a capacity-1
  // queue: some must be rejected, every accepted one must complete.
  std::vector<std::future<PartitionResponse>> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 24; ++i) {
    std::future<PartitionResponse> fut;
    if (svc.try_submit(make_request(), fut))
      accepted.push_back(std::move(fut));
    else
      ++rejected;
  }
  EXPECT_GT(rejected, 0u);
  ASSERT_FALSE(accepted.empty());
  for (auto& fut : accepted) EXPECT_EQ(fut.get().status, "ok");

  const MetricsSnapshot m = svc.snapshot();
  EXPECT_EQ(m.rejected, rejected);
  EXPECT_EQ(m.requests_total, accepted.size());
  EXPECT_LE(m.queue_peak, opts.queue_capacity);
}

TEST(Service, BlockingSubmitExertsBackpressureWithoutDeadlock) {
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 3;
  PartitionService svc(opts);

  // Several producers push through a tiny queue; submit() must block
  // instead of rejecting, and everything must complete.
  std::vector<std::thread> producers;
  std::vector<std::future<PartitionResponse>> futures(12);
  for (std::size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < 4; ++i)
        futures[4 * p + i] = svc.submit(make_request());
    });
  }
  for (std::thread& t : producers) t.join();
  for (auto& fut : futures) EXPECT_EQ(fut.get().status, "ok");

  const MetricsSnapshot m = svc.snapshot();
  EXPECT_EQ(m.requests_total, 12u);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_LE(m.queue_peak, opts.queue_capacity);
}

TEST(Service, SubmitAfterShutdownThrows) {
  PartitionService svc;
  svc.shutdown();
  EXPECT_THROW(svc.submit(make_request()), Error);
}

TEST(Protocol, RequestRoundTripIsByteStable) {
  PartitionRequest req = make_request();
  req.id = "roundtrip";
  req.k = 4;
  req.balance = 0.4;
  req.pipeline.scaling = core::CoordScaling::kGap;
  req.pipeline.lazy_ranking = true;
  req.pipeline.seed = 99;

  std::ostringstream first;
  write_request(req, first);
  std::istringstream in(first.str());
  const std::optional<PartitionRequest> parsed = read_request(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, "roundtrip");
  EXPECT_EQ(parsed->k, 4u);
  EXPECT_EQ(parsed->pipeline.scaling, core::CoordScaling::kGap);
  EXPECT_EQ(parsed->graph.num_nodes(), req.graph.num_nodes());
  EXPECT_EQ(parsed->graph.num_nets(), req.graph.num_nets());

  std::ostringstream second;
  write_request(*parsed, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Protocol, ResponseRoundTripIsByteStable) {
  PartitionResponse resp;
  resp.id = "r1";
  resp.status = "ok";
  resp.k = 2;
  resp.cut = 13;
  resp.scaled_cost = 0.015625;
  resp.ratio_cut = 0.001953125;
  resp.eigenvectors_used = 8;
  resp.eigen_converged = true;
  resp.assignment = {0, 1, 1, 0, 1};

  std::ostringstream first;
  write_response(resp, first);
  std::istringstream in(first.str());
  const std::optional<PartitionResponse> parsed = read_response(in);
  ASSERT_TRUE(parsed.has_value());
  std::ostringstream second;
  write_response(*parsed, second);
  EXPECT_EQ(first.str(), second.str());

  PartitionResponse err;
  err.id = "r2";
  err.status = "error";
  err.error = "request k exceeds the vertex count";
  std::ostringstream efirst;
  write_response(err, efirst);
  std::istringstream ein(efirst.str());
  const std::optional<PartitionResponse> eparsed = read_response(ein);
  ASSERT_TRUE(eparsed.has_value());
  EXPECT_EQ(eparsed->error, err.error);
  std::ostringstream esecond;
  write_response(*eparsed, esecond);
  EXPECT_EQ(efirst.str(), esecond.str());
}

TEST(Protocol, MalformedInputThrows) {
  std::istringstream empty("");
  EXPECT_FALSE(read_request(empty).has_value());

  std::istringstream bad_verb("HELLO a=1\n");
  EXPECT_THROW(read_request(bad_verb), Error);

  std::istringstream unknown_field("REQUEST id=x bogus=1 graph_lines=0\nEND\n");
  EXPECT_THROW(read_request(unknown_field), Error);

  std::istringstream truncated("REQUEST id=x graph_lines=5\n1 2\n");
  EXPECT_THROW(read_request(truncated), Error);
}

TEST(Protocol, SolverFieldDefaultsToScalarAndRoundTrips) {
  // Scalar requests must serialize to the exact pre-solver-field bytes
  // (absent field == scalar), so old clients and recorded wire traffic
  // keep working; block requests carry the field and round-trip.
  PartitionRequest req = make_request();
  std::ostringstream scalar_wire;
  write_request(req, scalar_wire);
  EXPECT_EQ(scalar_wire.str().find(" solver="), std::string::npos);
  std::istringstream scalar_in(scalar_wire.str());
  const std::optional<PartitionRequest> scalar_parsed =
      read_request(scalar_in);
  ASSERT_TRUE(scalar_parsed.has_value());
  EXPECT_EQ(scalar_parsed->pipeline.solver.backend,
            core::SolverBackend::kScalar);

  req.pipeline.solver.backend = core::SolverBackend::kBlock;
  std::ostringstream first;
  write_request(req, first);
  EXPECT_NE(first.str().find(" solver=block"), std::string::npos);
  std::istringstream in(first.str());
  const std::optional<PartitionRequest> parsed = read_request(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pipeline.solver.backend, core::SolverBackend::kBlock);
  std::ostringstream second;
  write_request(*parsed, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Protocol, UnknownSolverTokenIsStructuredBadRequest) {
  std::istringstream bad(
      "REQUEST id=x solver=qr_iteration graph_lines=0\nEND\n");
  try {
    read_request(bad);
    FAIL() << "unknown solver token must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad_request"), std::string::npos) << msg;
    EXPECT_NE(msg.find("qr_iteration"), std::string::npos) << msg;
  }
}

TEST(Protocol, StrategyFieldDefaultsToFlatAndRoundTrips) {
  // Flat requests serialize to the exact pre-strategy-field bytes (absent
  // field == flat) so recorded wire traffic keeps working; multilevel
  // requests carry the field and round-trip byte-stably.
  PartitionRequest req = make_request();
  std::ostringstream flat_wire;
  write_request(req, flat_wire);
  EXPECT_EQ(flat_wire.str().find(" strategy="), std::string::npos);
  std::istringstream flat_in(flat_wire.str());
  const std::optional<PartitionRequest> flat_parsed = read_request(flat_in);
  ASSERT_TRUE(flat_parsed.has_value());
  EXPECT_EQ(flat_parsed->pipeline.solver.strategy,
            core::SolverStrategy::kFlat);

  req.pipeline.solver.strategy = core::SolverStrategy::kMultilevel;
  std::ostringstream first;
  write_request(req, first);
  EXPECT_NE(first.str().find(" strategy=multilevel"), std::string::npos);
  std::istringstream in(first.str());
  const std::optional<PartitionRequest> parsed = read_request(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pipeline.solver.strategy,
            core::SolverStrategy::kMultilevel);
  std::ostringstream second;
  write_request(*parsed, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Protocol, UnknownStrategyTokenIsStructuredBadRequest) {
  std::istringstream bad(
      "REQUEST id=x strategy=cascadic graph_lines=0\nEND\n");
  try {
    read_request(bad);
    FAIL() << "unknown strategy token must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad_request"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cascadic"), std::string::npos) << msg;
  }
}

TEST(Protocol, AbsurdAnnouncedPayloadIsRejectedBeforeReading) {
  // The header alone must not make the server loop over terabytes: an
  // announced graph_lines past the limit fails before any payload read.
  ProtocolLimits limits;
  limits.max_graph_lines = 100;
  std::istringstream in("REQUEST id=x graph_lines=101\n");
  try {
    read_request(in, limits);
    FAIL() << "oversized announcement must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad_request"), std::string::npos)
        << e.what();
  }
  // At the limit, the (truncated) payload is at least attempted.
  std::istringstream ok_header("REQUEST id=x graph_lines=100\n");
  try {
    read_request(ok_header, limits);
    FAIL() << "truncated payload must still throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).find("graph_lines=100 exceeds"),
              std::string::npos);
  }
}

TEST(Protocol, OversizedStreamedPayloadIsRejectedMidRead) {
  ProtocolLimits limits;
  limits.max_payload_bytes = 64;
  std::ostringstream frame;
  frame << "REQUEST id=x graph_lines=4\n";
  frame << "2 4\n";
  for (int i = 0; i < 3; ++i)
    frame << std::string(40, '1') << "\n";  // blows the 64-byte budget
  frame << "END\n";
  std::istringstream in(frame.str());
  try {
    read_request(in, limits);
    FAIL() << "oversized payload must be rejected";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad_request"), std::string::npos) << msg;
    EXPECT_NE(msg.find("64-byte limit"), std::string::npos) << msg;
  }
}

TEST(Protocol, DefaultLimitsAdmitNormalRequests) {
  const PartitionRequest req = make_request();
  std::ostringstream frame;
  write_request(req, frame);
  std::istringstream in(frame.str());
  const std::optional<PartitionRequest> parsed = read_request(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->graph.num_nodes(), req.graph.num_nodes());
}

/// Runs one client script through the shared serving loop and returns the
/// server's byte output.
std::string serve_script(const std::string& script,
                         const ServeOptions& opts = {}) {
  PartitionService svc;
  ServiceBackend backend(svc);
  std::istringstream in(script);
  std::ostringstream out;
  serve_stream(backend, in, out, opts);
  return out.str();
}

TEST(ServeStream, GarbageFrameGetsStructuredBadRequestThenCloses) {
  const std::string out = serve_script("FETCH /index.html\n");
  EXPECT_NE(out.find("status=error"), std::string::npos) << out;
  EXPECT_NE(out.find("error=bad_request: "), std::string::npos) << out;
  EXPECT_NE(out.find("unknown frame"), std::string::npos) << out;
  // The connection is poisoned after garbage: the loop said BYE.
  EXPECT_NE(out.find("BYE"), std::string::npos) << out;
}

TEST(ServeStream, TruncatedRequestGetsStructuredBadRequest) {
  const std::string out =
      serve_script("REQUEST id=x graph_lines=5\n1 2\n");
  EXPECT_NE(out.find("error=bad_request: "), std::string::npos) << out;
}

TEST(ServeStream, OversizedRequestGetsStructuredBadRequest) {
  ServeOptions opts;
  opts.limits.max_graph_lines = 3;
  const std::string out =
      serve_script("REQUEST id=x graph_lines=4\n1 1\n1 2\n2 1\n1 2\nEND\n",
                   opts);
  EXPECT_NE(out.find("error=bad_request: "), std::string::npos) << out;
  EXPECT_NE(out.find("payload limit"), std::string::npos) << out;
}

TEST(ServeStream, ValidFramesStillFlowAfterHardening) {
  const PartitionRequest req = make_request();
  std::ostringstream script;
  write_request(req, script);
  script << "PING\nQUIT\n";
  const std::string out = serve_script(script.str());
  PartitionService svc;
  std::ostringstream expected;
  write_response(svc.execute(req), expected);
  EXPECT_NE(out.find(expected.str()), std::string::npos);
  EXPECT_NE(out.find("PONG\n"), std::string::npos);
  EXPECT_NE(out.find("BYE\n"), std::string::npos);
}

TEST(Protocol, JsonMirrorsResponseFields) {
  PartitionService svc;
  const PartitionResponse resp = svc.execute(make_request());
  const std::string json = response_to_json(resp);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"cut\": "), std::string::npos);
  EXPECT_NE(json.find("\"assignment\": ["), std::string::npos);
}

TEST(Metrics, HistogramQuantilesBracketRecordedValues) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(0.010);  // 10ms
  for (int i = 0; i < 10; ++i) h.record(1.0);     // 1s tail
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 110u);
  EXPECT_NEAR(s.mean(), (100 * 0.010 + 10 * 1.0) / 110.0, 1e-9);
  // p50 lands in the 10ms bucket, p99 in the 1s bucket; the log-spaced
  // buckets bound the error to one resolution step (2^(1/4)).
  EXPECT_GT(s.quantile(0.5), 0.010 / 1.2);
  EXPECT_LT(s.quantile(0.5), 0.010 * 1.2);
  EXPECT_GT(s.quantile(0.99), 1.0 / 1.2);
  EXPECT_LT(s.quantile(0.99), 1.0 * 1.2);
  // q = 0 estimates the minimum: the lower edge of the first occupied
  // bucket, which sits one resolution step below the 10ms samples.
  EXPECT_LE(s.quantile(0.0), 0.010);
  EXPECT_GT(s.quantile(0.0), 0.0);

  for (std::size_t i = 1; i < LatencyHistogram::kBuckets; ++i)
    EXPECT_GT(LatencyHistogram::bucket_upper(i),
              LatencyHistogram::bucket_upper(i - 1));
}

TEST(Metrics, SnapshotCountsByStatusAndRendersPercentiles) {
  ServiceMetrics m;
  m.on_submitted();
  m.on_submitted();
  m.on_submitted();
  m.on_completed("ok", 0.002);
  m.on_completed("degraded", 0.004);
  m.on_completed("error", 0.001);
  m.on_rejected();
  m.on_enqueued(3);
  m.on_dequeued(2);

  const MetricsSnapshot s = m.snapshot();
  EXPECT_EQ(s.requests_total, 3u);
  EXPECT_EQ(s.responses_ok, 1u);
  EXPECT_EQ(s.responses_degraded, 1u);
  EXPECT_EQ(s.responses_error, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.queue_depth, 2u);
  EXPECT_EQ(s.queue_peak, 3u);

  const std::string text = s.render_text();
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("hit_rate"), std::string::npos);

  // The wire frame and the text rendering derive from one flattening.
  EXPECT_FALSE(s.key_values().empty());
}

TEST(Service, RestartServesWarmFromDiskTierByteIdentically) {
  // The tier-2 restart contract: a brand-new service process over the
  // same --cache-dir serves the very first request from disk — no
  // eigensolve — with response bytes identical to the cold compute.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("specpart_svc_restart_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  ServiceOptions opts;
  opts.num_workers = 0;
  opts.cache.cache_dir = dir;

  std::string cold;
  {
    PartitionService svc(opts);
    Diagnostics diag;
    cold = wire(svc.execute(make_request(), &diag));
    EXPECT_TRUE(has_stage(diag, "eigensolve"));
    EXPECT_EQ(svc.snapshot().storage.spills, 1u);
  }  // "process exit": tier 1 dies with the service

  {
    PartitionService svc(opts);  // "restart" over the same directory
    Diagnostics diag;
    const std::string warm = wire(svc.execute(make_request(), &diag));
    EXPECT_EQ(cold, warm);
    EXPECT_TRUE(has_stage(diag, "embedding_cache_disk_hit"));
    EXPECT_FALSE(has_stage(diag, "eigensolve"));
    const MetricsSnapshot snap = svc.snapshot();
    EXPECT_TRUE(snap.storage.present);
    EXPECT_EQ(snap.storage.disk_hits, 1u);
  }
  fs::remove_all(dir);
}

TEST(PipelineConfig, TokensRoundTrip) {
  using core::CoordScaling;
  using core::SelectionRule;
  for (CoordScaling v : {CoordScaling::kSqrtGap, CoordScaling::kGap,
                         CoordScaling::kInvSqrtLambda, CoordScaling::kUnit})
    EXPECT_EQ(core::parse_coord_scaling(core::coord_scaling_token(v)), v);
  for (SelectionRule v : {SelectionRule::kMagnitude, SelectionRule::kProjection,
                          SelectionRule::kCosine})
    EXPECT_EQ(core::parse_selection_rule(core::selection_rule_token(v)), v);
  for (model::NetModel v :
       {model::NetModel::kStandard, model::NetModel::kPartitioningSpecific,
        model::NetModel::kFrankle})
    EXPECT_EQ(core::parse_net_model(core::net_model_token(v)), v);
  EXPECT_THROW(core::parse_coord_scaling("nope"), Error);
  EXPECT_THROW(core::parse_net_model(""), Error);
}

TEST(PipelineConfig, FlowsIntoStageOptions) {
  core::PipelineConfig cfg;
  cfg.num_eigenvectors = 12;
  cfg.include_trivial = false;
  cfg.seed = 1234;
  cfg.lazy_ranking = true;
  cfg.lazy_window = 7;
  const spectral::EmbeddingOptions e = cfg.embedding_options();
  EXPECT_EQ(e.count, 12u);
  EXPECT_TRUE(e.skip_trivial);
  const core::MeloOrderingOptions o = cfg.ordering_options(2);
  EXPECT_TRUE(o.lazy_ranking);
  EXPECT_EQ(o.lazy_window, 7u);
  EXPECT_EQ(o.start_rank, 2u);
}

}  // namespace
}  // namespace specpart::service
