// Tests for the multilevel eigensolver: coarsening (Galerkin conservation,
// prolongation round-trip, hierarchy shape), the V-cycle (per-level Ritz
// residual certification, eigenvalue agreement with the dense solver,
// degenerate netlists), the end-to-end pipeline contract (MELO cut quality
// within tolerance of the flat strategy, flat fallback on an unmet
// refinement tolerance), and bit-identity across kernel thread counts
// (this binary also runs as test_multilevel_mt under SPECPART_THREADS=8,
// making the "auto" lane below an 8-thread lane).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/drivers.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/laplacian.h"
#include "linalg/symmetric_eigen.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "multilevel/coarsen.h"
#include "multilevel/vcycle.h"
#include "spectral/embedding.h"
#include "util/rng.h"

namespace specpart::multilevel {
namespace {

using linalg::DenseMatrix;
using linalg::SymCsrMatrix;
using linalg::Vec;

/// Random connected graph Laplacian (spanning tree + extra random edges).
SymCsrMatrix random_laplacian(std::size_t n, std::size_t extra_edges,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (std::size_t v = 1; v < n; ++v)
    edges.push_back({static_cast<graph::NodeId>(rng.next_below(v)),
                     static_cast<graph::NodeId>(v),
                     0.5 + rng.next_double()});
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    const auto v = static_cast<graph::NodeId>(rng.next_below(n));
    if (u != v) edges.push_back({u, v, 0.5 + rng.next_double()});
  }
  return graph::build_laplacian(graph::Graph(n, edges));
}

graph::Hypergraph bench_netlist(std::size_t modules, std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 10;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

SymCsrMatrix netlist_laplacian(std::size_t modules, std::uint64_t seed) {
  return graph::build_laplacian(model::clique_expand(
      bench_netlist(modules, seed), model::NetModel::kPartitioningSpecific));
}

TEST(Coarsen, GalerkinCoarseLaplacianMatchesTripletReference) {
  // The coarse operator must be exactly P^T L P under the
  // piecewise-constant prolongation — equivalently the Laplacian of the
  // contracted graph built by summing inter-cluster edge weights through
  // the plain triplet route.
  const SymCsrMatrix q = random_laplacian(300, 900, 7);
  const CoarseLevel lev = coarsen_once(q);
  const std::size_t nc = lev.coarse_n();
  ASSERT_EQ(lev.fine_n, 300u);
  ASSERT_EQ(lev.coarse_of.size(), 300u);
  ASSERT_LT(nc, 300u);

  // Cluster ids valid, cluster sizes never above two (larger aggregates
  // silently lose low eigenvectors — see coarsen.h).
  std::vector<std::size_t> cluster_size(nc, 0);
  for (const std::uint32_t c : lev.coarse_of) {
    ASSERT_LT(c, nc);
    ++cluster_size[c];
  }
  for (std::size_t c = 0; c < nc; ++c) {
    EXPECT_GE(cluster_size[c], 1u);
    EXPECT_LE(cluster_size[c], 2u);
  }

  // Dense Galerkin reference: ref = P^T L P, entry by entry.
  const DenseMatrix ld = q.to_dense();
  DenseMatrix ref(nc, nc);
  for (std::size_t i = 0; i < 300; ++i)
    for (std::size_t j = 0; j < 300; ++j)
      ref.at(lev.coarse_of[i], lev.coarse_of[j]) += ld.at(i, j);
  const DenseMatrix coarse = lev.lap.to_dense();
  EXPECT_LT(coarse.max_abs_diff(ref), 1e-10);

  // A Laplacian stays a Laplacian: zero row sums, nonnegative diagonal.
  for (std::size_t i = 0; i < nc; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < nc; ++j) row += coarse.at(i, j);
    EXPECT_NEAR(row, 0.0, 1e-9) << "row " << i;
    EXPECT_GE(coarse.at(i, i), 0.0);
  }
}

TEST(Coarsen, ProlongationRestrictionRoundTrip) {
  // Restriction after prolongation multiplies each coarse entry by its
  // cluster size: P^T P = diag(|cluster|). With sizes 1 and 2 the sums
  // are exact in floating point, so the round-trip is equality, not
  // approximation.
  const SymCsrMatrix q = random_laplacian(200, 500, 11);
  const CoarseLevel lev = coarsen_once(q);
  const std::size_t nc = lev.coarse_n();

  Rng rng(3);
  Vec xc(nc);
  for (double& v : xc) v = rng.next_normal();

  Vec xf(lev.fine_n);
  for (std::size_t r = 0; r < lev.fine_n; ++r) xf[r] = xc[lev.coarse_of[r]];

  Vec back(nc, 0.0);
  std::vector<std::size_t> cluster_size(nc, 0);
  for (std::size_t r = 0; r < lev.fine_n; ++r) {
    back[lev.coarse_of[r]] += xf[r];
    ++cluster_size[lev.coarse_of[r]];
  }
  for (std::size_t c = 0; c < nc; ++c)
    EXPECT_EQ(back[c], static_cast<double>(cluster_size[c]) * xc[c])
        << "cluster " << c;
}

TEST(Coarsen, HierarchyReachesTheConfiguredFloor) {
  const SymCsrMatrix q = netlist_laplacian(2000, 1234);
  CoarsenOptions opts;
  opts.coarsest_size = 400;
  const std::vector<CoarseLevel> levels = build_hierarchy(q, opts);
  ASSERT_FALSE(levels.empty());
  // Each level genuinely shrinks; pair matching halves at best.
  std::size_t fine_n = q.size();
  for (const CoarseLevel& lev : levels) {
    EXPECT_EQ(lev.fine_n, fine_n);
    EXPECT_LT(lev.coarse_n(), fine_n);
    EXPECT_GE(2 * lev.coarse_n(), fine_n);
    fine_n = lev.coarse_n();
  }
  // The coarsest level lies in the window the floor targets (matching can
  // overshoot the floor by at most a factor of two).
  EXPECT_LE(levels.back().coarse_n(), opts.coarsest_size);
  EXPECT_GE(2 * levels.back().coarse_n(), opts.coarsest_size);
}

TEST(Multilevel, RitzResidualsCertifiedAtEveryLevel) {
  const SymCsrMatrix q = netlist_laplacian(1200, 1234);
  linalg::SolverOptions sopts;
  MultilevelStats stats;
  const linalg::LanczosResult r = multilevel_solve_smallest(
      q, 10, 0x3E10ULL, sopts, ParallelConfig{}, nullptr, &stats);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.num_converged, 10u);
  ASSERT_GE(stats.levels, 1u);
  // One refinement record per prolongation target, finest included.
  ASSERT_EQ(stats.per_level.size(), stats.levels);
  EXPECT_GT(stats.coarsening_ratio, 1.0);
  for (const LevelStats& ls : stats.per_level)
    EXPECT_LE(ls.relative_residual, sopts.ml_refine_tolerance)
        << "level n=" << ls.n;
  EXPECT_EQ(stats.per_level.back().n, q.size());  // finest last
  // Ritz values ascend and start at the trivial eigenvalue.
  EXPECT_NEAR(r.values[0], 0.0, 1e-7);
  for (std::size_t j = 1; j < r.values.size(); ++j)
    EXPECT_GE(r.values[j], r.values[j - 1]);
  // The cost counters accumulate across every level.
  EXPECT_GT(r.flops, 0u);
  EXPECT_GT(r.matrix_bytes_moved, 0u);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Multilevel, MatchesDenseEigenvalues) {
  const SymCsrMatrix q = netlist_laplacian(600, 1234);
  linalg::SolverOptions sopts;
  const linalg::LanczosResult r = multilevel_solve_smallest(
      q, 6, 0x3E10ULL, sopts, ParallelConfig{});
  ASSERT_TRUE(r.converged);
  const linalg::EigenDecomposition exact =
      linalg::solve_symmetric_eigen_smallest(q.to_dense(), 6);
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(r.values[j], exact.values[j], 1e-6) << "pair " << j;
  // Unit, pairwise-orthogonal Ritz vectors.
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a; b < 6; ++b) {
      const double d = linalg::dot(r.vectors.col(a), r.vectors.col(b));
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-8) << a << "," << b;
    }
}

TEST(Multilevel, DegenerateNetlistsWithPathologicalNets) {
  // A 600-vertex chain netlist salted with a 0-pin net, 1-pin nets and
  // nets with duplicate pins. The clique-model path must absorb all of
  // them, and the V-cycle result must satisfy its own acceptance bound
  // when it claims convergence.
  std::vector<std::vector<graph::NodeId>> nets;
  for (graph::NodeId v = 0; v + 1 < 600; ++v)
    nets.push_back({v, static_cast<graph::NodeId>(v + 1)});
  for (graph::NodeId v = 0; v + 37 < 600; v += 37)
    nets.push_back({v, static_cast<graph::NodeId>(v + 19),
                    static_cast<graph::NodeId>(v + 37)});
  nets.push_back({});                  // 0-pin net
  nets.push_back({5});                 // 1-pin net
  nets.push_back({7, 7, 8});           // duplicate pins
  nets.push_back({3, 3, 3});           // all pins identical
  const graph::Hypergraph h(600, std::move(nets));
  const SymCsrMatrix q =
      model::build_clique_laplacian(h, model::NetModel::kStandard);

  linalg::SolverOptions sopts;
  MultilevelStats stats;
  const linalg::LanczosResult r = multilevel_solve_smallest(
      q, 4, 0x3E10ULL, sopts, ParallelConfig{}, nullptr, &stats);
  ASSERT_EQ(r.values.size(), 4u);
  EXPECT_NEAR(r.values[0], 0.0, 1e-6);
  const double accept = sopts.ml_refine_tolerance * q.gershgorin_upper();
  for (std::size_t j = 0; j < r.num_converged; ++j) {
    const Vec v = r.vectors.col(j);
    Vec qv = q.matvec(v);
    linalg::axpy(-r.values[j], v, qv);
    EXPECT_LE(linalg::norm(qv), accept * (1.0 + 1e-12)) << "pair " << j;
  }

  // The product contract on the same input: the embedding layer always
  // delivers a converged basis — directly, or through the flat fallback.
  spectral::EmbeddingOptions eopts;
  eopts.count = 4;
  eopts.solver.strategy = linalg::SolverStrategy::kMultilevel;
  eopts.solver.dense_threshold = 0;  // force the iterative path
  const spectral::EigenBasis basis = spectral::compute_eigenbasis(q, eopts);
  EXPECT_TRUE(basis.converged);
  EXPECT_EQ(basis.dimension(), 4u);
}

TEST(Multilevel, CutQualityWithinFivePercentOfFlat) {
  const graph::Hypergraph h = bench_netlist(800, 1234);
  core::MeloOptions flat;
  flat.num_eigenvectors = 10;
  core::MeloOptions multi = flat;
  multi.solver.strategy = core::SolverStrategy::kMultilevel;

  const core::MeloBipartitionResult a = core::melo_bipartition(h, flat);
  const core::MeloBipartitionResult b = core::melo_bipartition(h, multi);
  ASSERT_TRUE(a.eigen_converged);
  ASSERT_TRUE(b.eigen_converged);
  EXPECT_GT(a.cut, 0.0);
  EXPECT_LE(b.cut, 1.05 * a.cut)
      << "multilevel cut " << b.cut << " vs flat " << a.cut;
}

TEST(Multilevel, EmbeddingFallsBackToFlatOnUnmetTolerance) {
  // An unreachable refinement tolerance forces the V-cycle to report
  // non-convergence; the embedding layer must then run the flat chain and
  // still deliver a converged basis, recording the fallback.
  const SymCsrMatrix q = netlist_laplacian(600, 1234);
  spectral::EmbeddingOptions eopts;
  eopts.count = 6;
  eopts.solver.strategy = linalg::SolverStrategy::kMultilevel;
  eopts.solver.ml_refine_tolerance = 1e-300;
  // One sweep = only the mandatory consistency Rayleigh-Ritz pass: the
  // prolonged coarse basis is never filtered, so its residual cannot meet
  // the acceptance bound.
  eopts.solver.ml_refine_sweeps = 1;
  Diagnostics diag;
  const spectral::EigenBasis basis =
      spectral::compute_eigenbasis(q, eopts, &diag);
  EXPECT_TRUE(basis.converged);
  EXPECT_GE(diag.stage_fallbacks("eigensolve"), 1u);
  bool saw_fallback = false;
  for (const DiagnosticEvent& e : diag.events())
    if (e.is_fallback && e.message.find("multilevel") != std::string::npos)
      saw_fallback = true;
  EXPECT_TRUE(saw_fallback);
}

TEST(Multilevel, BitIdenticalAcrossThreadCounts) {
  // Matching is serial, the coarse assembly honors the CSR stable-merge
  // contract, and every refinement kernel uses the fixed-block
  // deterministic primitives — so 1 thread, 2 threads and the auto lane
  // (8 threads in the test_multilevel_mt ctest run) must agree bitwise.
  const SymCsrMatrix q = netlist_laplacian(1000, 1234);
  linalg::SolverOptions sopts;
  const auto solve = [&](const ParallelConfig& par) {
    return multilevel_solve_smallest(q, 8, 0x3E10ULL, sopts, par);
  };
  const linalg::LanczosResult one = solve(ParallelConfig::with_threads(1));
  const linalg::LanczosResult two = solve(ParallelConfig::with_threads(2));
  const linalg::LanczosResult autod =
      solve(ParallelConfig::with_threads(0));  // $SPECPART_THREADS
  ASSERT_EQ(one.values.size(), two.values.size());
  ASSERT_EQ(one.values.size(), autod.values.size());
  for (std::size_t j = 0; j < one.values.size(); ++j) {
    EXPECT_EQ(one.values[j], two.values[j]) << "pair " << j;
    EXPECT_EQ(one.values[j], autod.values[j]) << "pair " << j;
  }
  EXPECT_EQ(one.vectors.max_abs_diff(two.vectors), 0.0);
  EXPECT_EQ(one.vectors.max_abs_diff(autod.vectors), 0.0);
  EXPECT_EQ(one.iterations, two.iterations);
  EXPECT_EQ(one.matrix_bytes_moved, two.matrix_bytes_moved);
}

}  // namespace
}  // namespace specpart::multilevel
