// Tests for the Householder + implicit-QL symmetric eigensolver.
//
// Oracles: analytically known spectra (diagonal matrices, path-graph
// Laplacians) and the defining properties A v = lambda v, V^T V = I,
// A = V diag(lambda) V^T, verified over randomized sizes via TEST_P.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/symmetric_eigen.h"
#include "linalg/tridiagonal.h"
#include "util/rng.h"

namespace specpart::linalg {
namespace {

DenseMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.next_normal();
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  return a;
}

/// Laplacian of the unweighted path graph P_n: eigenvalues are
/// 2 - 2 cos(pi k / n), k = 0..n-1.
DenseMatrix path_laplacian(std::size_t n) {
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    if (i > 0) {
      a.at(i, i - 1) = -1.0;
      deg += 1.0;
    }
    if (i + 1 < n) {
      a.at(i, i + 1) = -1.0;
      deg += 1.0;
    }
    a.at(i, i) = deg;
  }
  return a;
}

TEST(Tridiagonal, DiagonalMatrixEigenvaluesSorted) {
  Tridiagonal t{{5.0, 1.0, 3.0}, {0.0, 0.0, 0.0}};
  const Vec values = tridiagonal_eigenvalues(std::move(t));
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 3.0);
  EXPECT_DOUBLE_EQ(values[2], 5.0);
}

TEST(Tridiagonal, TwoByTwoKnown) {
  // [[2, 1], [1, 2]] -> eigenvalues 1, 3.
  Tridiagonal t{{2.0, 2.0}, {0.0, 1.0}};
  const Vec values = tridiagonal_eigenvalues(std::move(t));
  EXPECT_NEAR(values[0], 1.0, 1e-12);
  EXPECT_NEAR(values[1], 3.0, 1e-12);
}

TEST(SymmetricEigen, PathLaplacianSpectrum) {
  const std::size_t n = 12;
  const EigenDecomposition dec = solve_symmetric_eigen(path_laplacian(n));
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                             static_cast<double>(n));
    EXPECT_NEAR(dec.values[k], expected, 1e-10) << "k=" << k;
  }
}

TEST(SymmetricEigen, TrivialSizes) {
  EigenDecomposition d0 = solve_symmetric_eigen(DenseMatrix(0, 0));
  EXPECT_TRUE(d0.values.empty());
  DenseMatrix one(1, 1);
  one.at(0, 0) = 42.0;
  EigenDecomposition d1 = solve_symmetric_eigen(one);
  ASSERT_EQ(d1.values.size(), 1u);
  EXPECT_DOUBLE_EQ(d1.values[0], 42.0);
  EXPECT_DOUBLE_EQ(d1.vectors.at(0, 0), 1.0);
}

TEST(SymmetricEigen, SmallestTruncates) {
  const EigenDecomposition dec =
      solve_symmetric_eigen_smallest(path_laplacian(10), 3);
  ASSERT_EQ(dec.values.size(), 3u);
  EXPECT_EQ(dec.vectors.cols(), 3u);
  EXPECT_EQ(dec.vectors.rows(), 10u);
  EXPECT_NEAR(dec.values[0], 0.0, 1e-10);
}

class SymmetricEigenSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymmetricEigenSweep, ReconstructsMatrix) {
  const std::size_t n = GetParam();
  const DenseMatrix a = random_symmetric(n, 100 + n);
  const EigenDecomposition dec = solve_symmetric_eigen(a);

  // A = V diag(lambda) V^T.
  DenseMatrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda.at(i, i) = dec.values[i];
  const DenseMatrix recon =
      dec.vectors.multiply(lambda).multiply(dec.vectors.transposed());
  EXPECT_LT(recon.max_abs_diff(a), 1e-9 * (1.0 + a.frobenius()));
}

TEST_P(SymmetricEigenSweep, VectorsOrthonormal) {
  const std::size_t n = GetParam();
  const DenseMatrix a = random_symmetric(n, 200 + n);
  const EigenDecomposition dec = solve_symmetric_eigen(a);
  const DenseMatrix gram = dec.vectors.transposed().multiply(dec.vectors);
  EXPECT_LT(gram.max_abs_diff(DenseMatrix::identity(n)), 1e-10);
}

TEST_P(SymmetricEigenSweep, ValuesAscending) {
  const std::size_t n = GetParam();
  const EigenDecomposition dec =
      solve_symmetric_eigen(random_symmetric(n, 300 + n));
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_LE(dec.values[i - 1], dec.values[i]);
}

TEST_P(SymmetricEigenSweep, ResidualsSmall) {
  const std::size_t n = GetParam();
  const DenseMatrix a = random_symmetric(n, 400 + n);
  const EigenDecomposition dec = solve_symmetric_eigen(a);
  for (std::size_t j = 0; j < n; ++j) {
    const Vec v = dec.vectors.col(j);
    const Vec av = a.matvec(v);
    Vec residual = av;
    axpy(-dec.values[j], v, residual);
    EXPECT_LT(norm(residual), 1e-9 * (1.0 + std::fabs(dec.values[j])))
        << "eigenpair " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetricEigenSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 34, 55));

TEST(SymmetricEigen, RepeatedEigenvaluesHandled) {
  // 2 I_4 plus a rank-1 bump: eigenvalues {2, 2, 2, 6}.
  DenseMatrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a.at(i, j) = (i == j ? 3.0 : 1.0);
  const EigenDecomposition dec = solve_symmetric_eigen(a);
  EXPECT_NEAR(dec.values[0], 2.0, 1e-10);
  EXPECT_NEAR(dec.values[1], 2.0, 1e-10);
  EXPECT_NEAR(dec.values[2], 2.0, 1e-10);
  EXPECT_NEAR(dec.values[3], 6.0, 1e-10);
}

TEST(Householder, TridiagonalIsSimilar) {
  const std::size_t n = 9;
  const DenseMatrix a = random_symmetric(n, 77);
  DenseMatrix q;
  const Tridiagonal t = householder_tridiagonalize(a, &q);
  // Rebuild T as a dense matrix and check Q T Q^T = A.
  DenseMatrix tm(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    tm.at(i, i) = t.diag[i];
    if (i >= 1) {
      tm.at(i, i - 1) = t.off[i];
      tm.at(i - 1, i) = t.off[i];
    }
  }
  const DenseMatrix recon = q.multiply(tm).multiply(q.transposed());
  EXPECT_LT(recon.max_abs_diff(a), 1e-10 * (1.0 + a.frobenius()));
}

}  // namespace
}  // namespace specpart::linalg
