// Tests for the DP-RP dynamic program, validated against brute-force
// enumeration of all contiguous splits on small instances.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <numeric>

#include "graph/generator.h"
#include "part/objectives.h"
#include "spectral/dprp.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::spectral {
namespace {

/// Brute force over all contiguous k-way splits of the ordering.
double brute_force_best(const graph::Hypergraph& h, const part::Ordering& o,
                        std::uint32_t k, std::size_t lo, std::size_t hi) {
  const std::size_t n = o.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> bounds(k + 1, 0);
  bounds[k] = n;
  // bounds[1..k-1] enumerated; last cluster implicit.
  std::function<void(std::uint32_t, std::size_t)> rec2 =
      [&](std::uint32_t level, std::size_t start) {
        if (level == k - 1) {
          const std::size_t len = n - start;
          if (len < lo || len > hi) return;
          std::vector<std::uint32_t> assignment(n, 0);
          std::size_t pos = 0;
          std::size_t cluster_start = 0;
          for (std::uint32_t c = 0; c + 1 < k; ++c) {
            for (; pos < bounds[c + 1]; ++pos) assignment[o[pos]] = c;
            cluster_start = bounds[c + 1];
          }
          (void)cluster_start;
          for (; pos < n; ++pos) assignment[o[pos]] = k - 1;
          best = std::min(best, part::scaled_cost(
                                    h, part::Partition(assignment, k)));
          return;
        }
        for (std::size_t len = lo; len <= hi && start + len <= n; ++len) {
          bounds[level + 1] = start + len;
          rec2(level + 1, start + len);
        }
      };
  rec2(0, 0);
  return best;
}

graph::Hypergraph random_netlist(std::size_t n, std::size_t nets,
                                 std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = n;
  cfg.num_nets = nets;
  cfg.num_clusters = 3;
  cfg.subclusters_per_cluster = 1;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

class DprpBrute
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(DprpBrute, MatchesBruteForce) {
  const auto [n, k] = GetParam();
  const graph::Hypergraph h = random_netlist(n, n + 10, 31 + n + k);
  part::Ordering o(n);
  std::iota(o.begin(), o.end(), 0u);
  Rng rng(n * 7 + k);
  rng.shuffle(o);

  DprpOptions opts;
  opts.k = k;
  const DprpResult r = dprp_split(h, o, opts);
  ASSERT_TRUE(r.feasible);
  const double brute = brute_force_best(h, o, k, 1, n);
  EXPECT_NEAR(r.scaled_cost, brute, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, DprpBrute,
    ::testing::Combine(::testing::Values<std::size_t>(8, 10, 12, 14),
                       ::testing::Values<std::uint32_t>(2, 3, 4)));

TEST(Dprp, RespectsSizeBounds) {
  const graph::Hypergraph h = random_netlist(30, 40, 5);
  part::Ordering o(30);
  std::iota(o.begin(), o.end(), 0u);
  DprpOptions opts;
  opts.k = 3;
  opts.min_cluster_size = 8;
  opts.max_cluster_size = 12;
  const DprpResult r = dprp_split(h, o, opts);
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_GE(r.partition.cluster_size(c), 8u);
    EXPECT_LE(r.partition.cluster_size(c), 12u);
  }
}

TEST(Dprp, BoundsMatchBruteForce) {
  const graph::Hypergraph h = random_netlist(12, 20, 6);
  part::Ordering o(12);
  std::iota(o.begin(), o.end(), 0u);
  DprpOptions opts;
  opts.k = 3;
  opts.min_cluster_size = 3;
  opts.max_cluster_size = 6;
  const DprpResult r = dprp_split(h, o, opts);
  EXPECT_NEAR(r.scaled_cost, brute_force_best(h, o, 3, 3, 6), 1e-12);
}

TEST(Dprp, InfeasibleBoundsThrow) {
  const graph::Hypergraph h = random_netlist(10, 15, 7);
  part::Ordering o(10);
  std::iota(o.begin(), o.end(), 0u);
  DprpOptions opts;
  opts.k = 3;
  opts.min_cluster_size = 5;  // 3 * 5 > 10
  EXPECT_THROW(dprp_split(h, o, opts), Error);
}

TEST(Dprp, KTooSmallThrows) {
  const graph::Hypergraph h = random_netlist(10, 15, 8);
  part::Ordering o(10);
  std::iota(o.begin(), o.end(), 0u);
  DprpOptions opts;
  opts.k = 1;
  EXPECT_THROW(dprp_split(h, o, opts), Error);
}

TEST(Dprp, BoundariesConsistentWithPartition) {
  const graph::Hypergraph h = random_netlist(25, 35, 9);
  part::Ordering o(25);
  std::iota(o.begin(), o.end(), 0u);
  Rng rng(10);
  rng.shuffle(o);
  DprpOptions opts;
  opts.k = 4;
  const DprpResult r = dprp_split(h, o, opts);
  ASSERT_EQ(r.boundaries.size(), 5u);
  EXPECT_EQ(r.boundaries.front(), 0u);
  EXPECT_EQ(r.boundaries.back(), 25u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(r.partition.cluster_size(c),
              r.boundaries[c + 1] - r.boundaries[c]);
    for (std::size_t pos = r.boundaries[c]; pos < r.boundaries[c + 1]; ++pos)
      EXPECT_EQ(r.partition.cluster_of(o[pos]), c);
  }
}

TEST(Dprp, ScaledCostMatchesObjectiveModule) {
  const graph::Hypergraph h = random_netlist(40, 55, 12);
  part::Ordering o(40);
  std::iota(o.begin(), o.end(), 0u);
  DprpOptions opts;
  opts.k = 5;
  const DprpResult r = dprp_split(h, o, opts);
  EXPECT_NEAR(r.scaled_cost, part::scaled_cost(h, r.partition), 1e-12);
}

TEST(DprpAllK, EachKMatchesIndividualSolve) {
  const graph::Hypergraph h = random_netlist(20, 30, 13);
  part::Ordering o(20);
  std::iota(o.begin(), o.end(), 0u);
  Rng rng(14);
  rng.shuffle(o);
  DprpOptions opts;
  opts.k = 5;
  const auto all = dprp_all_k(h, o, opts);
  ASSERT_EQ(all.size(), 4u);  // k = 2..5
  for (std::uint32_t k = 2; k <= 5; ++k) {
    DprpOptions single = opts;
    single.k = k;
    const DprpResult direct = dprp_split(h, o, single);
    ASSERT_TRUE(all[k - 2].feasible);
    EXPECT_NEAR(all[k - 2].scaled_cost, direct.scaled_cost, 1e-12)
        << "k=" << k;
  }
}

TEST(DprpAllK, InfeasibleKsFlagged) {
  const graph::Hypergraph h = random_netlist(10, 15, 15);
  part::Ordering o(10);
  std::iota(o.begin(), o.end(), 0u);
  DprpOptions opts;
  opts.k = 6;
  opts.min_cluster_size = 3;  // k >= 4 infeasible (4 * 3 > 10)
  const auto all = dprp_all_k(h, o, opts);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_TRUE(all[0].feasible);   // k = 2
  EXPECT_TRUE(all[1].feasible);   // k = 3
  EXPECT_FALSE(all[2].feasible);  // k = 4
  EXPECT_FALSE(all[3].feasible);  // k = 5
  EXPECT_FALSE(all[4].feasible);  // k = 6
}

}  // namespace
}  // namespace specpart::spectral
