// Resilience tests: injected eigensolver failures, degenerate spectra and
// exhausted compute budgets must all degrade into a valid, balanced
// partition with the recovery recorded in Diagnostics — no crash, no
// silent empty result.
//
// The fault-injection tests need the library built with the (default-ON)
// CMake option SPECPART_FAULT_INJECTION; they skip themselves when the
// hooks were compiled out.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/drivers.h"
#include "graph/generator.h"
#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "model/clique_models.h"
#include "part/fm.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "part/report.h"
#include "spectral/embedding.h"
#include "util/budget.h"
#include "util/fault.h"
#include "util/status.h"

namespace specpart {
namespace {

graph::Hypergraph test_netlist(std::size_t n, std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = n;
  cfg.num_nets = n + n / 2;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

bool has_event(const Diagnostics& diag, const std::string& needle) {
  for (const DiagnosticEvent& e : diag.events())
    if (e.message.find(needle) != std::string::npos) return true;
  return false;
}

double stage_seconds(const Diagnostics& diag, const std::string& name) {
  for (const StageStats& s : diag.stages())
    if (s.name == name) return s.seconds;
  return -1.0;
}

void expect_valid_balanced(const graph::Hypergraph& h,
                           const core::MeloBipartitionResult& r,
                           double min_fraction) {
  const std::size_t n = h.num_nodes();
  EXPECT_TRUE(part::is_permutation(r.ordering, n));
  ASSERT_EQ(r.partition.num_nodes(), n);
  ASSERT_EQ(r.partition.k(), 2u);
  const double floor_size = min_fraction * static_cast<double>(n);
  EXPECT_GE(static_cast<double>(r.partition.cluster_size(0)), floor_size);
  EXPECT_GE(static_cast<double>(r.partition.cluster_size(1)), floor_size);
  // The reported cut must match an independent recount — no silent junk.
  EXPECT_DOUBLE_EQ(r.cut, part::cut_nets(h, r.partition));
}

// --- Diagnostics on a healthy run -------------------------------------------

TEST(Resilience, CleanRunReportsTimingsAndZeroFallbacks) {
  const graph::Hypergraph h = test_netlist(60, 11);
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 6;
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
  EXPECT_EQ(diag.status(), StatusCode::kOk);
  EXPECT_EQ(diag.total_fallbacks(), 0u);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_EQ(r.eigenvectors_used, 6u);
  // Every pipeline stage reports a wall-clock timing.
  EXPECT_GE(stage_seconds(diag, "model"), 0.0);
  EXPECT_GE(stage_seconds(diag, "eigensolve"), 0.0);
  EXPECT_GE(stage_seconds(diag, "ordering"), 0.0);
  EXPECT_GE(stage_seconds(diag, "split"), 0.0);
}

TEST(Resilience, StatusCodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kDegraded), "degraded");
  EXPECT_STREQ(status_code_name(StatusCode::kBudgetExhausted),
               "budget_exhausted");
}

// --- Injected eigensolver failures ------------------------------------------

#ifdef SPECPART_FAULT_INJECTION
constexpr bool kFaultsCompiled = true;
#else
constexpr bool kFaultsCompiled = false;
#endif

TEST(Resilience, ForcedBreakdownRecoversWithRestart) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  const graph::Hypergraph h = test_netlist(60, 12);
  fault::arm("lanczos.force_breakdown", 3);
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 5;
  m.solver.dense_threshold = 8;  // force the Lanczos path on this small instance
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
  EXPECT_GE(fault::triggered("lanczos.force_breakdown"), 1u);
  EXPECT_TRUE(has_event(diag, "breakdown"));
  EXPECT_GE(diag.stage_fallbacks("eigensolve"), 1u);
}

TEST(Resilience, ForcedNonConvergenceWalksFallbackChain) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  const graph::Hypergraph h = test_netlist(60, 13);
  // First attempt and the reseeded restart fail; the enlarged Krylov
  // attempt runs clean and converges.
  fault::arm("lanczos.force_nonconverge", 2);
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 5;
  m.solver.dense_threshold = 8;
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
  EXPECT_TRUE(has_event(diag, "reseeded restart"));
  EXPECT_TRUE(has_event(diag, "enlarged Krylov"));
  EXPECT_TRUE(r.eigen_converged);
  EXPECT_EQ(diag.status(), StatusCode::kDegraded);
}

TEST(Resilience, PersistentNonConvergenceFallsBackToDense) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  const graph::Hypergraph h = test_netlist(60, 14);
  fault::arm("lanczos.force_nonconverge", 100);  // defeat every attempt
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 5;
  m.solver.dense_threshold = 8;
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
  EXPECT_TRUE(has_event(diag, "dense eigensolver fallback"));
  EXPECT_TRUE(r.eigen_converged);  // the dense solve is exact
  EXPECT_EQ(r.eigenvectors_used, 5u);
  EXPECT_EQ(diag.status(), StatusCode::kDegraded);
}

TEST(Resilience, TruncationToConvergedPrefix) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  const graph::Hypergraph h = test_netlist(60, 15);
  const graph::Graph g = model::clique_expand(
      h, model::NetModel::kPartitioningSpecific);
  fault::arm("lanczos.force_nonconverge", 100);
  Diagnostics diag;
  spectral::EmbeddingOptions eopts;
  eopts.count = 6;
  eopts.solver.dense_threshold = 8;
  eopts.solver.dense_fallback_limit = 0;  // terminal recovery is truncation
  const auto basis = spectral::compute_eigenbasis(g, eopts, &diag);
  EXPECT_TRUE(basis.truncated);
  EXPECT_LT(basis.dimension(), basis.requested);
  EXPECT_GE(basis.dimension(), 1u);
  EXPECT_TRUE(has_event(diag, "truncated eigenbasis"));
  EXPECT_EQ(diag.status(), StatusCode::kDegraded);
}

TEST(Resilience, TruncatedBasisDegradesDEndToEnd) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  const graph::Hypergraph h = test_netlist(60, 16);
  fault::arm("lanczos.force_nonconverge", 100);
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 6;
  m.solver.dense_threshold = 8;
  m.solver.dense_fallback_limit = 0;  // no dense rescue: d must degrade instead
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
  EXPECT_LT(r.eigenvectors_used, 6u);
  EXPECT_GE(r.eigenvectors_used, 1u);
  EXPECT_TRUE(has_event(diag, "degraded d"));
  EXPECT_NE(diag.status(), StatusCode::kOk);
}

TEST(Resilience, ClusteredSpectrumCompleteGraph) {
  // K_n via a single all-vertex net: Laplacian eigenvalues {0, n, .., n} —
  // maximal clustering. The Lanczos path must handle the invariant
  // subspaces (breakdown restarts) and still produce a balanced split.
  std::vector<std::vector<graph::NodeId>> nets = {{}};
  for (graph::NodeId v = 0; v < 30; ++v) nets[0].push_back(v);
  for (graph::NodeId v = 0; v + 1 < 30; ++v) nets.push_back({v, v + 1});
  const graph::Hypergraph h(30, std::move(nets));
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 5;
  m.solver.dense_threshold = 8;
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
}

// --- Compute budgets ---------------------------------------------------------

TEST(Resilience, ExpiredDeadlineReturnsBestSoFarPartition) {
  const graph::Hypergraph h = test_netlist(100, 17);
  ComputeBudget budget = ComputeBudget::with_deadline(0.0);
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 6;
  m.solver.dense_threshold = 8;  // Lanczos path: the budget bites mid-eigensolve
  m.num_starts = 3;
  m.diagnostics = &diag;
  m.budget = &budget;
  const auto r = core::melo_bipartition(h, m, 0.45);
  expect_valid_balanced(h, r, 0.45);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(diag.status(), StatusCode::kBudgetExhausted);
}

TEST(Resilience, IterationBudgetBoundsLanczos) {
  const graph::Hypergraph h = test_netlist(120, 18);
  const graph::Graph g = model::clique_expand(
      h, model::NetModel::kPartitioningSpecific);
  const linalg::SymCsrMatrix q = graph::build_laplacian(g);
  ComputeBudget budget = ComputeBudget::with_max_iterations(5);
  linalg::LanczosOptions lopts;
  lopts.num_eigenpairs = 8;
  lopts.budget = &budget;
  const auto r = linalg::lanczos_smallest(q, lopts);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.iterations, 6u);
  EXPECT_GE(r.values.size(), 1u);  // best-so-far pairs, never empty
  EXPECT_FALSE(r.converged);
}

TEST(Resilience, BudgetedFmStaysBalanced) {
  const graph::Hypergraph h = test_netlist(80, 19);
  ComputeBudget budget = ComputeBudget::with_deadline(0.0);
  part::FmOptions opts;
  opts.balance = {0.45, 0.55};
  opts.budget = &budget;
  const auto r = part::fm_bipartition(h, opts);
  EXPECT_TRUE(r.budget_exhausted);
  ASSERT_EQ(r.partition.num_nodes(), 80u);
  const auto n0 = static_cast<double>(r.partition.cluster_size(0));
  EXPECT_GE(n0, 0.45 * 80.0 - 1.0);
  EXPECT_LE(n0, 0.55 * 80.0 + 1.0);
  EXPECT_DOUBLE_EQ(r.cut, part::cut_nets(h, r.partition));
}

TEST(Resilience, UnlimitedBudgetNeverExhausts) {
  ComputeBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_TRUE(budget.charge(1000000));
}

// --- Solver provenance in reports -------------------------------------------

TEST(Resilience, ReportSurfacesSolverOutcome) {
  const graph::Hypergraph h = test_netlist(40, 20);
  Diagnostics diag;
  core::MeloOptions m;
  m.num_eigenvectors = 4;
  m.diagnostics = &diag;
  const auto r = core::melo_bipartition(h, m, 0.45);
  part::QualityReport qr = part::evaluate(h, r.partition);
  qr.solver.present = true;
  qr.solver.eigen_converged = r.eigen_converged;
  qr.solver.eigenvectors_requested = m.num_eigenvectors;
  qr.solver.eigenvectors_used = r.eigenvectors_used;
  qr.solver.budget_exhausted = r.budget_exhausted;
  qr.solver.fallbacks = diag.total_fallbacks();
  std::ostringstream out;
  part::print_report(qr, out);
  EXPECT_NE(out.str().find("eigensolver : converged"), std::string::npos);
}

}  // namespace
}  // namespace specpart
