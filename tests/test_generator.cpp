// Tests for the synthetic netlist generator: determinism, connectivity,
// size fidelity, and that the planted structure is actually present
// (intra-cluster nets dominate).
#include <gtest/gtest.h>

#include <set>

#include "graph/generator.h"
#include "util/error.h"

namespace specpart::graph {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.num_modules = 300;
  cfg.num_nets = 330;
  cfg.num_clusters = 4;
  cfg.subclusters_per_cluster = 2;
  cfg.seed = 42;
  return cfg;
}

TEST(Generator, Deterministic) {
  const Hypergraph a = generate_netlist(small_config());
  const Hypergraph b = generate_netlist(small_config());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (NetId e = 0; e < a.num_nets(); ++e) EXPECT_EQ(a.net(e), b.net(e));
}

TEST(Generator, SeedChangesOutput) {
  GeneratorConfig cfg = small_config();
  const Hypergraph a = generate_netlist(cfg);
  cfg.seed = 43;
  const Hypergraph b = generate_netlist(cfg);
  bool any_diff = a.num_nets() != b.num_nets();
  for (NetId e = 0; !any_diff && e < a.num_nets(); ++e)
    any_diff = a.net(e) != b.net(e);
  EXPECT_TRUE(any_diff);
}

TEST(Generator, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig cfg = small_config();
    cfg.seed = seed;
    EXPECT_TRUE(generate_netlist(cfg).connected()) << "seed " << seed;
  }
}

TEST(Generator, RespectsModuleCount) {
  const Hypergraph h = generate_netlist(small_config());
  EXPECT_EQ(h.num_nodes(), 300u);
}

TEST(Generator, NetCountApproximate) {
  const Hypergraph h = generate_netlist(small_config());
  // Connectivity repair may append a few 2-pin nets.
  EXPECT_GE(h.num_nets(), 330u);
  EXPECT_LE(h.num_nets(), 330u + 20u);
}

TEST(Generator, NetSizesWithinBounds) {
  GeneratorConfig cfg = small_config();
  cfg.max_net_size = 8;
  const Hypergraph h = generate_netlist(cfg);
  for (NetId e = 0; e < h.num_nets(); ++e) {
    EXPECT_GE(h.net(e).size(), 2u);
    EXPECT_LE(h.net(e).size(), 8u);
  }
}

TEST(Generator, MostNetsAreSmall) {
  const Hypergraph h = generate_netlist(small_config());
  std::size_t small_nets = 0;
  for (NetId e = 0; e < h.num_nets(); ++e)
    if (h.net(e).size() <= 4) ++small_nets;
  EXPECT_GT(small_nets, h.num_nets() * 3 / 5);
}

TEST(Generator, PlantedClustersCoverAll) {
  const GeneratorConfig cfg = small_config();
  const auto planted = planted_clusters(cfg);
  ASSERT_EQ(planted.size(), cfg.num_modules);
  std::set<std::uint32_t> distinct(planted.begin(), planted.end());
  EXPECT_EQ(distinct.size(), cfg.num_clusters);
}

TEST(Generator, PlantedStructureDominates) {
  const GeneratorConfig cfg = small_config();
  const Hypergraph h = generate_netlist(cfg);
  const auto planted = planted_clusters(cfg);
  std::size_t intra = 0, counted = 0;
  for (NetId e = 0; e < h.num_nets(); ++e) {
    const auto& pins = h.net(e);
    if (pins.size() < 2) continue;
    ++counted;
    bool same = true;
    for (NodeId v : pins) same = same && planted[v] == planted[pins[0]];
    if (same) ++intra;
  }
  // p_subcluster + p_cluster defaults to 0.80; allow generous slack.
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(counted), 0.70);
}

TEST(Generator, PlantedMatchesGeneratorLayout) {
  // planted_clusters must reproduce the exact layout the netlist used:
  // regenerate twice and compare.
  const GeneratorConfig cfg = small_config();
  EXPECT_EQ(planted_clusters(cfg), planted_clusters(cfg));
}

TEST(Generator, ClusterCountClamped) {
  GeneratorConfig cfg;
  cfg.num_modules = 8;
  cfg.num_nets = 10;
  cfg.num_clusters = 100;  // more clusters than modules
  cfg.subclusters_per_cluster = 3;
  cfg.seed = 5;
  const Hypergraph h = generate_netlist(cfg);
  EXPECT_EQ(h.num_nodes(), 8u);
  EXPECT_TRUE(h.connected());
}

TEST(Generator, RejectsBadProbabilities) {
  GeneratorConfig cfg = small_config();
  cfg.p_subcluster = 0.8;
  cfg.p_cluster = 0.5;  // sums over 1
  EXPECT_THROW(generate_netlist(cfg), Error);
}

TEST(Generator, RejectsTinyInstance) {
  GeneratorConfig cfg;
  cfg.num_modules = 1;
  EXPECT_THROW(generate_netlist(cfg), Error);
}

}  // namespace
}  // namespace specpart::graph
