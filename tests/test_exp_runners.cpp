// Tests for the experiment-runner layer (exp/): every runner must produce a
// well-formed table at tiny scale, CSV output must parse, and the summary
// statistics must be internally consistent.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/runners.h"
#include "exp/tableio.h"
#include "util/stringutil.h"

namespace specpart::exp {
namespace {

RunnerOptions tiny() {
  RunnerOptions opts;
  opts.scale = 0.12;
  opts.limit = 2;
  opts.seed = 5;
  return opts;
}

std::size_t csv_lines(const Table& t) {
  std::ostringstream out;
  t.print_csv(out);
  std::size_t lines = 0;
  for (char c : out.str())
    if (c == '\n') ++lines;
  return lines;
}

TEST(Runners, Table1RowsMatchLimit) {
  const Table t = run_table1(tiny());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(csv_lines(t), 3u);  // header + 2 rows
}

TEST(Runners, Table2EveryCellFilled) {
  const Table t = run_table2_schemes(tiny(), 5);
  ASSERT_EQ(t.num_rows(), 2u);
  for (const auto& row : t.rows()) EXPECT_EQ(row.size(), 6u);
}

TEST(Runners, Table3HeaderTracksDims) {
  const Table t = run_table3_dims(tiny(), {2, 4, 6});
  ASSERT_EQ(t.num_rows(), 2u);
  for (const auto& row : t.rows())
    EXPECT_EQ(row.size(), 5u);  // name + 3 dims + best-d
}

TEST(Runners, Table4SummaryAveragesRows) {
  Table4Summary summary;
  const Table t = run_table4_multiway(tiny(), {2, 3}, &summary);
  EXPECT_EQ(t.num_rows(), 4u);  // 2 benchmarks x 2 ks
  EXPECT_EQ(summary.rows, 4u);
  // Recompute the RSB average from the printed improvement column.
  double acc = 0.0;
  for (const auto& row : t.rows())
    acc += parse_double(row[6], "impr-RSB");
  EXPECT_NEAR(summary.avg_improvement_vs_rsb, acc / 4.0, 0.06);
}

TEST(Runners, Table5HasTimingColumns) {
  const Table t = run_table5_bipart(tiny());
  ASSERT_EQ(t.num_rows(), 2u);
  for (const auto& row : t.rows()) {
    ASSERT_EQ(row.size(), 7u);
    EXPECT_GE(parse_double(row[5], "t2"), 0.0);
    EXPECT_GE(parse_double(row[6], "t10"), 0.0);
  }
}

TEST(Runners, FigSeriesMonotoneDColumn) {
  RunnerOptions opts = tiny();
  opts.limit = 0;  // fig needs the named benchmark in the suite
  const Table t = run_fig_quality_vs_d(opts, "balu", 4);
  ASSERT_EQ(t.num_rows(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(t.rows()[i][0], std::to_string(i + 1));
  // d = 2 row must equal the SB reference (MELO d=2 degenerates to SB).
  EXPECT_EQ(t.rows()[1][1], t.rows()[1][2]);
}

TEST(Runners, AblationsProduceRows) {
  const RunnerOptions opts = tiny();
  EXPECT_EQ(run_ablation_lazy(opts).num_rows(), 2u);
  EXPECT_EQ(run_ablation_net_models(opts).num_rows(), 2u);
  EXPECT_EQ(run_ablation_h_readjust(opts).num_rows(), 2u);
  EXPECT_EQ(run_ablation_selection(opts).num_rows(), 2u);
  EXPECT_EQ(run_ablation_fm_post(opts).num_rows(), 2u);
}

TEST(Runners, ExtendedTablesProduceRows) {
  const RunnerOptions opts = tiny();
  const Table bi = run_extended_bipartitioners(opts);
  EXPECT_EQ(bi.num_rows(), 2u);
  for (const auto& row : bi.rows()) EXPECT_EQ(row.size(), 6u);
  const Table multi = run_extended_multiway(opts, {3});
  EXPECT_EQ(multi.num_rows(), 2u);
  for (const auto& row : multi.rows()) EXPECT_EQ(row.size(), 7u);
}

TEST(Runners, FmPostNeverWorsens) {
  const Table t = run_ablation_fm_post(tiny());
  for (const auto& row : t.rows()) {
    const double melo = parse_double(row[1], "melo");
    const double refined = parse_double(row[2], "refined");
    EXPECT_LE(refined, melo + 1e-9) << row[0];
  }
}

TEST(Runners, DeterministicAcrossCalls) {
  const Table a = run_table2_schemes(tiny(), 4);
  const Table b = run_table2_schemes(tiny(), 4);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (std::size_t r = 0; r < a.num_rows(); ++r)
    EXPECT_EQ(a.rows()[r], b.rows()[r]);
}

TEST(TableIo, ImprovementPct) {
  EXPECT_DOUBLE_EQ(improvement_pct(100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(improvement_pct(100.0, 110.0), -10.0);
  EXPECT_DOUBLE_EQ(improvement_pct(0.0, 5.0), 0.0);  // guarded
}

TEST(TableIo, BannerContainsTitle) {
  std::ostringstream out;
  print_banner(out, "Hello Table");
  EXPECT_NE(out.str().find("Hello Table"), std::string::npos);
}

}  // namespace
}  // namespace specpart::exp
