// Tests for the Lanczos eigensolver, validated against the exact dense
// solver on random graph Laplacians, including disconnected graphs
// (repeated zero eigenvalues exercise the invariant-subspace restart).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "graph/laplacian.h"
#include "linalg/lanczos.h"
#include "linalg/symmetric_eigen.h"
#include "util/rng.h"

namespace specpart::linalg {
namespace {

/// Random connected graph Laplacian (spanning tree + extra random edges).
SymCsrMatrix random_laplacian(std::size_t n, std::size_t extra_edges,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (std::size_t v = 1; v < n; ++v)
    edges.push_back({static_cast<graph::NodeId>(rng.next_below(v)),
                     static_cast<graph::NodeId>(v),
                     0.5 + rng.next_double()});
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    const auto v = static_cast<graph::NodeId>(rng.next_below(n));
    if (u != v) edges.push_back({u, v, 0.5 + rng.next_double()});
  }
  return graph::build_laplacian(graph::Graph(n, edges));
}

TEST(Lanczos, MatchesDenseOnSmallLaplacian) {
  const SymCsrMatrix q = random_laplacian(40, 80, 1);
  LanczosOptions opts;
  opts.num_eigenpairs = 5;
  const LanczosResult r = lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  const EigenDecomposition exact = solve_symmetric_eigen(q.to_dense());
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_NEAR(r.values[j], exact.values[j], 1e-7) << "pair " << j;
}

TEST(Lanczos, FirstPairIsTrivial) {
  const SymCsrMatrix q = random_laplacian(60, 120, 2);
  LanczosOptions opts;
  opts.num_eigenpairs = 3;
  const LanczosResult r = lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 0.0, 1e-8);
  // Trivial eigenvector is constant: all entries equal up to sign.
  const Vec v0 = r.vectors.col(0);
  for (std::size_t i = 1; i < v0.size(); ++i)
    EXPECT_NEAR(v0[i], v0[0], 1e-7);
}

TEST(Lanczos, ResidualsSmall) {
  const SymCsrMatrix q = random_laplacian(80, 160, 3);
  LanczosOptions opts;
  opts.num_eigenpairs = 6;
  const LanczosResult r = lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  for (std::size_t j = 0; j < 6; ++j) {
    const Vec v = r.vectors.col(j);
    Vec qv = q.matvec(v);
    axpy(-r.values[j], v, qv);
    EXPECT_LT(norm(qv), 1e-6 * q.gershgorin_upper()) << "pair " << j;
  }
}

TEST(Lanczos, VectorsOrthonormal) {
  const SymCsrMatrix q = random_laplacian(70, 140, 4);
  LanczosOptions opts;
  opts.num_eigenpairs = 8;
  const LanczosResult r = lanczos_smallest(q, opts);
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = a; b < 8; ++b) {
      const double g = dot(r.vectors.col(a), r.vectors.col(b));
      EXPECT_NEAR(g, a == b ? 1.0 : 0.0, 1e-7) << a << "," << b;
    }
  }
}

TEST(Lanczos, DisconnectedGraphRepeatedZeros) {
  // Two disjoint cliques: the Laplacian kernel is 2-dimensional.
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 10; ++i)
    for (graph::NodeId j = i + 1; j < 10; ++j) edges.push_back({i, j, 1.0});
  for (graph::NodeId i = 10; i < 20; ++i)
    for (graph::NodeId j = i + 1; j < 20; ++j) edges.push_back({i, j, 1.0});
  const SymCsrMatrix q = graph::build_laplacian(graph::Graph(20, edges));
  LanczosOptions opts;
  opts.num_eigenpairs = 3;
  const LanczosResult r = lanczos_smallest(q, opts);
  EXPECT_NEAR(r.values[0], 0.0, 1e-8);
  EXPECT_NEAR(r.values[1], 0.0, 1e-8);
  EXPECT_NEAR(r.values[2], 10.0, 1e-6);  // K10 second eigenvalue = n = 10
}

TEST(Lanczos, WantMoreThanDimension) {
  const SymCsrMatrix q = random_laplacian(6, 5, 5);
  LanczosOptions opts;
  opts.num_eigenpairs = 10;  // clamped to n = 6
  const LanczosResult r = lanczos_smallest(q, opts);
  EXPECT_EQ(r.values.size(), 6u);
  const EigenDecomposition exact = solve_symmetric_eigen(q.to_dense());
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(r.values[j], exact.values[j], 1e-7);
}

TEST(Lanczos, DeterministicForFixedSeed) {
  const SymCsrMatrix q = random_laplacian(50, 100, 6);
  LanczosOptions opts;
  opts.num_eigenpairs = 4;
  const LanczosResult a = lanczos_smallest(q, opts);
  const LanczosResult b = lanczos_smallest(q, opts);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_DOUBLE_EQ(a.values[j], b.values[j]);
}

TEST(Lanczos, LargerGraphConverges) {
  const SymCsrMatrix q = random_laplacian(1200, 3600, 7);
  LanczosOptions opts;
  opts.num_eigenpairs = 10;
  const LanczosResult r = lanczos_smallest(q, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], 0.0, 1e-7);
  for (std::size_t j = 1; j < 10; ++j) {
    EXPECT_GT(r.values[j], -1e-9);
    EXPECT_GE(r.values[j] + 1e-9, r.values[j - 1]);
  }
}

TEST(LanczosLargestOp, DiagonalOperator) {
  // B = diag(1..8): largest eigenpairs are 8, 7, 6.
  const std::size_t n = 8;
  auto apply = [](const Vec& x, Vec& y) {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      y[i] = static_cast<double>(i + 1) * x[i];
  };
  LanczosOptions opts;
  opts.num_eigenpairs = 3;
  const LanczosResult r = lanczos_largest_op(n, apply, 8.0, opts);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 8.0, 1e-8);
  EXPECT_NEAR(r.values[1], 7.0, 1e-8);
  EXPECT_NEAR(r.values[2], 6.0, 1e-8);
}

TEST(LanczosSelective, MatchesDenseOracle) {
  const SymCsrMatrix q = random_laplacian(150, 300, 21);
  LanczosOptions opts;
  opts.num_eigenpairs = 6;
  opts.reorthogonalization = Reorthogonalization::kSelective;
  const LanczosResult r = lanczos_smallest(q, opts);
  ASSERT_TRUE(r.converged);
  const EigenDecomposition exact = solve_symmetric_eigen(q.to_dense());
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(r.values[j], exact.values[j], 1e-6) << "pair " << j;
}

TEST(LanczosSelective, VectorsStayOrthonormal) {
  const SymCsrMatrix q = random_laplacian(400, 900, 22);
  LanczosOptions opts;
  opts.num_eigenpairs = 8;
  opts.reorthogonalization = Reorthogonalization::kSelective;
  const LanczosResult r = lanczos_smallest(q, opts);
  for (std::size_t a = 0; a < r.values.size(); ++a)
    for (std::size_t b = a; b < r.values.size(); ++b)
      EXPECT_NEAR(dot(r.vectors.col(a), r.vectors.col(b)),
                  a == b ? 1.0 : 0.0, 1e-5)
          << a << "," << b;
}

TEST(LanczosSelective, AgreesWithFullOnLargerGraph) {
  const SymCsrMatrix q = random_laplacian(1200, 3600, 7);
  LanczosOptions full;
  full.num_eigenpairs = 10;
  LanczosOptions sel = full;
  sel.reorthogonalization = Reorthogonalization::kSelective;
  const LanczosResult a = lanczos_smallest(q, full);
  const LanczosResult b = lanczos_smallest(q, sel);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (std::size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(a.values[j], b.values[j], 1e-5 * (1.0 + a.values[j]))
        << "pair " << j;
}

TEST(LanczosSelective, DisconnectedGraphStillWorks) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 10; ++i)
    for (graph::NodeId j = i + 1; j < 10; ++j) edges.push_back({i, j, 1.0});
  for (graph::NodeId i = 10; i < 20; ++i)
    for (graph::NodeId j = i + 1; j < 20; ++j) edges.push_back({i, j, 1.0});
  const SymCsrMatrix q = graph::build_laplacian(graph::Graph(20, edges));
  LanczosOptions opts;
  opts.num_eigenpairs = 3;
  opts.reorthogonalization = Reorthogonalization::kSelective;
  const LanczosResult r = lanczos_smallest(q, opts);
  EXPECT_NEAR(r.values[0], 0.0, 1e-7);
  EXPECT_NEAR(r.values[1], 0.0, 1e-7);
  EXPECT_NEAR(r.values[2], 10.0, 1e-5);
}

}  // namespace
}  // namespace specpart::linalg
