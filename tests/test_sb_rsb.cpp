// Tests for spectral bipartitioning and its recursive multi-way extension.
#include <gtest/gtest.h>

#include "graph/generator.h"
#include "part/objectives.h"
#include "spectral/rsb.h"
#include "spectral/sb.h"
#include "util/error.h"

namespace specpart::spectral {
namespace {

/// Two dense blocks joined by a thin bridge.
graph::Hypergraph two_blocks(std::size_t half, std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 2 * half;
  cfg.num_nets = 5 * half;
  cfg.num_clusters = 2;
  cfg.subclusters_per_cluster = 1;
  cfg.p_subcluster = 0.95;
  cfg.p_cluster = 0.0;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

TEST(Sb, RecoversTwoBlocks) {
  const graph::Hypergraph h = two_blocks(40, 3);
  const auto planted = graph::planted_clusters([&] {
    graph::GeneratorConfig cfg;
    cfg.num_modules = 80;
    cfg.num_nets = 200;
    cfg.num_clusters = 2;
    cfg.subclusters_per_cluster = 1;
    cfg.p_subcluster = 0.95;
    cfg.p_cluster = 0.0;
    cfg.seed = 3;
    return cfg;
  }());
  SbOptions opts;
  const SbResult r = spectral_bipartition(h, opts);
  // The SB bipartition should agree with the planted one almost everywhere
  // (up to cluster relabeling).
  std::size_t agree = 0;
  for (graph::NodeId v = 0; v < h.num_nodes(); ++v)
    if (r.partition.cluster_of(v) == planted[v]) ++agree;
  const std::size_t matched = std::max(agree, h.num_nodes() - agree);
  EXPECT_GT(matched, h.num_nodes() * 9 / 10);
}

TEST(Sb, FiedlerValuePositiveForConnected) {
  const graph::Hypergraph h = two_blocks(20, 5);
  const SbResult r = spectral_bipartition(h, SbOptions{});
  EXPECT_GT(r.fiedler_value, 0.0);
}

TEST(Sb, BalancedModeRespectsFraction) {
  const graph::Hypergraph h = two_blocks(30, 7);
  SbOptions opts;
  opts.min_fraction = 0.45;
  const SbResult r = spectral_bipartition(h, opts);
  const std::size_t n = h.num_nodes();
  EXPECT_GE(r.partition.cluster_size(0), static_cast<std::size_t>(0.45 * n));
  EXPECT_GE(r.partition.cluster_size(1), static_cast<std::size_t>(0.45 * n));
}

TEST(Sb, OrderingIsPermutation) {
  const graph::Hypergraph h = two_blocks(15, 9);
  const SbResult r = spectral_bipartition(h, SbOptions{});
  EXPECT_TRUE(part::is_permutation(r.ordering, h.num_nodes()));
}

TEST(Sb, SplitConsistentWithPartition) {
  const graph::Hypergraph h = two_blocks(15, 11);
  const SbResult r = spectral_bipartition(h, SbOptions{});
  EXPECT_EQ(r.partition.cluster_size(0), r.split.split);
  EXPECT_DOUBLE_EQ(part::cut_nets(h, r.partition), r.split.cut);
}

TEST(Rsb, ProducesKNonEmptyClusters) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 120;
  cfg.num_nets = 180;
  cfg.num_clusters = 4;
  cfg.seed = 13;
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  for (std::uint32_t k : {2u, 3u, 5u, 8u}) {
    const part::Partition p = rsb_partition(h, k, RsbOptions{});
    EXPECT_EQ(p.k(), k);
    EXPECT_EQ(p.num_nonempty(), k) << "k=" << k;
  }
}

TEST(Rsb, RecoversPlantedFourWay) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 160;
  cfg.num_nets = 420;
  cfg.num_clusters = 4;
  cfg.subclusters_per_cluster = 1;
  cfg.p_subcluster = 0.93;
  cfg.p_cluster = 0.0;
  cfg.seed = 17;
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  const part::Partition p = rsb_partition(h, 4, RsbOptions{});
  // Quality proxy: the 4-way scaled cost must beat a round-robin partition
  // by a wide margin.
  std::vector<std::uint32_t> rr(h.num_nodes());
  for (std::size_t i = 0; i < rr.size(); ++i) rr[i] = i % 4;
  const double ours = part::scaled_cost(h, p);
  const double base = part::scaled_cost(h, part::Partition(rr, 4));
  EXPECT_LT(ours, 0.4 * base);
}

TEST(Rsb, RejectsBadK) {
  const graph::Hypergraph h = two_blocks(10, 19);
  EXPECT_THROW(rsb_partition(h, 1, RsbOptions{}), Error);
  EXPECT_THROW(rsb_partition(h, 1000, RsbOptions{}), Error);
}

TEST(Rsb, KEqualsNDegenerates) {
  graph::Hypergraph h(4, {{0, 1}, {1, 2}, {2, 3}});
  const part::Partition p = rsb_partition(h, 4, RsbOptions{});
  EXPECT_EQ(p.num_nonempty(), 4u);
  for (std::uint32_t c = 0; c < 4; ++c) EXPECT_EQ(p.cluster_size(c), 1u);
}

TEST(FiedlerOrdering, PathIsMonotone) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i + 1 < 20; ++i)
    edges.push_back({i, static_cast<graph::NodeId>(i + 1), 1.0});
  const graph::Graph g(20, edges);
  const part::Ordering o = fiedler_ordering(g, 1);
  // The Fiedler vector of a path is monotone along the path, so the
  // ordering must be 0..19 or its reverse.
  const bool forward = o.front() == 0;
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(o[i], forward ? i : 19 - i);
}

}  // namespace
}  // namespace specpart::spectral
