// Tests for the extended algorithm set: Barnes' transportation method,
// Frankle-Karp probes, Kernighan-Lin, multilevel partitioning, cluster
// extraction, and Hall placement.
#include <gtest/gtest.h>

#include "core/clustering.h"
#include "graph/generator.h"
#include "part/kl.h"
#include "part/kwayfm.h"
#include "part/multilevel.h"
#include "part/objectives.h"
#include "model/clique_models.h"
#include "spectral/barnes.h"
#include "spectral/embedding.h"
#include "spectral/fkprobe.h"
#include "spectral/kmeans.h"
#include "spectral/placement.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart {
namespace {

graph::Hypergraph planted(std::size_t n, std::size_t clusters,
                          std::uint64_t seed, double p_local = 0.9) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = n;
  cfg.num_nets = n * 2;
  cfg.num_clusters = clusters;
  cfg.subclusters_per_cluster = 1;
  cfg.p_subcluster = p_local;
  cfg.p_cluster = 0.0;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

// --- Barnes ------------------------------------------------------------

TEST(Barnes, ProducesPrescribedSizes) {
  const graph::Hypergraph h = planted(90, 3, 1);
  spectral::BarnesOptions opts;
  const part::Partition p = spectral::barnes_partition(h, 3, opts);
  EXPECT_EQ(p.cluster_size(0), 30u);
  EXPECT_EQ(p.cluster_size(1), 30u);
  EXPECT_EQ(p.cluster_size(2), 30u);
}

TEST(Barnes, CustomSizesRespected) {
  const graph::Hypergraph h = planted(60, 2, 2);
  spectral::BarnesOptions opts;
  opts.cluster_sizes = {20, 40};
  const part::Partition p = spectral::barnes_partition(h, 2, opts);
  EXPECT_EQ(p.cluster_size(0), 20u);
  EXPECT_EQ(p.cluster_size(1), 40u);
}

TEST(Barnes, BeatsRoundRobinOnPlanted) {
  const graph::Hypergraph h = planted(120, 4, 3);
  const part::Partition p =
      spectral::barnes_partition(h, 4, spectral::BarnesOptions{});
  std::vector<std::uint32_t> rr(h.num_nodes());
  for (std::size_t i = 0; i < rr.size(); ++i) rr[i] = i % 4;
  EXPECT_LT(part::cut_nets(h, p),
            part::cut_nets(h, part::Partition(rr, 4)));
}

TEST(Barnes, RejectsBadSizes) {
  const graph::Hypergraph h = planted(20, 2, 4);
  spectral::BarnesOptions opts;
  opts.cluster_sizes = {5, 5};  // does not sum to 20
  EXPECT_THROW(spectral::barnes_partition(h, 2, opts), Error);
}

// --- Frankle-Karp probes ------------------------------------------------

TEST(FkProbe, BalancedAndReasonable) {
  const graph::Hypergraph h = planted(100, 2, 5);
  spectral::FkProbeOptions opts;
  const spectral::FkProbeResult r = spectral::fk_probe_bipartition(h, opts);
  const std::size_t n = h.num_nodes();
  EXPECT_GE(r.partition.cluster_size(0), static_cast<std::size_t>(0.45 * n));
  EXPECT_GE(r.partition.cluster_size(1), static_cast<std::size_t>(0.45 * n));
  EXPECT_DOUBLE_EQ(r.cut, part::cut_nets(h, r.partition));
  // Two planted blocks: the probe family contains the Fiedler direction,
  // so the cut must be far below half the nets.
  EXPECT_LT(r.cut, 0.3 * static_cast<double>(h.num_nets()));
}

TEST(FkProbe, DeterministicForFixedSeed) {
  const graph::Hypergraph h = planted(60, 2, 6);
  const auto a = spectral::fk_probe_bipartition(h, spectral::FkProbeOptions{});
  const auto b = spectral::fk_probe_bipartition(h, spectral::FkProbeOptions{});
  EXPECT_EQ(a.partition.assignment(), b.partition.assignment());
}

TEST(FkProbe, MoreProbesNeverWorse) {
  const graph::Hypergraph h = planted(80, 3, 7, 0.7);
  spectral::FkProbeOptions few;
  few.num_probes = 4;
  spectral::FkProbeOptions many = few;
  many.num_probes = 32;
  // Probe sequences are prefixes of the same stream, so more probes can
  // only improve the best.
  EXPECT_LE(spectral::fk_probe_bipartition(h, many).cut,
            spectral::fk_probe_bipartition(h, few).cut + 1e-9);
}

// --- Kernighan-Lin -------------------------------------------------------

graph::Graph two_cliques_bridge(std::size_t half) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < half; ++i)
    for (graph::NodeId j = i + 1; j < half; ++j) edges.push_back({i, j, 1.0});
  for (graph::NodeId i = half; i < 2 * half; ++i)
    for (graph::NodeId j = i + 1; j < 2 * half; ++j)
      edges.push_back({i, j, 1.0});
  edges.push_back({0, static_cast<graph::NodeId>(half), 1.0});
  return graph::Graph(2 * half, edges);
}

TEST(Kl, FindsTwoCliques) {
  const graph::Graph g = two_cliques_bridge(8);
  const part::KlResult r = part::kl_bipartition(g, part::KlOptions{});
  EXPECT_DOUBLE_EQ(r.cut, 1.0);
  EXPECT_EQ(r.partition.cluster_size(0), 8u);
}

TEST(Kl, RefineNeverWorsensAndPreservesSizes) {
  Rng rng(8);
  std::vector<graph::Edge> edges;
  for (int e = 0; e < 200; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(40));
    const auto v = static_cast<graph::NodeId>(rng.next_below(40));
    if (u != v) edges.push_back({u, v, 1.0 + rng.next_double()});
  }
  const graph::Graph g(40, edges);
  std::vector<std::uint32_t> a(40);
  for (std::size_t i = 0; i < 40; ++i) a[i] = i % 2;
  const part::Partition init(a, 2);
  const double before = part::cut_weight(g, init);
  const part::KlResult r = part::kl_refine(g, init, part::KlOptions{});
  EXPECT_LE(r.cut, before + 1e-9);
  EXPECT_EQ(r.partition.cluster_size(0), init.cluster_size(0));
  EXPECT_EQ(r.partition.cluster_size(1), init.cluster_size(1));
}

TEST(Kl, ExactWindowMatchesOrBeatsSmallWindow) {
  const graph::Graph g = two_cliques_bridge(6);
  part::KlOptions small;
  small.candidate_window = 1;
  part::KlOptions full;
  full.candidate_window = 0;
  EXPECT_LE(part::kl_bipartition(g, full).cut,
            part::kl_bipartition(g, small).cut + 1e-9);
}

// --- Multilevel ----------------------------------------------------------

TEST(Multilevel, CoarsenOnceShrinksAndPreservesWeight) {
  const graph::Hypergraph h = planted(200, 4, 9);
  std::vector<double> weight(h.num_nodes(), 1.0);
  std::vector<std::uint32_t> coarse_of;
  std::vector<double> coarse_weight;
  const graph::Hypergraph coarse =
      part::coarsen_once(h, weight, 1, &coarse_of, &coarse_weight);
  EXPECT_LT(coarse.num_nodes(), h.num_nodes());
  EXPECT_GE(coarse.num_nodes(), h.num_nodes() / 2);  // pairs at most
  double total = 0.0;
  for (double w : coarse_weight) total += w;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(h.num_nodes()));
  for (graph::NodeId v = 0; v < h.num_nodes(); ++v)
    EXPECT_LT(coarse_of[v], coarse.num_nodes());
}

TEST(Multilevel, CutConsistentAcrossProjection) {
  // The cut of a coarse partition equals the cut of its fine projection.
  const graph::Hypergraph h = planted(150, 3, 10);
  std::vector<double> weight(h.num_nodes(), 1.0);
  std::vector<std::uint32_t> coarse_of;
  std::vector<double> coarse_weight;
  const graph::Hypergraph coarse =
      part::coarsen_once(h, weight, 2, &coarse_of, &coarse_weight);
  Rng rng(3);
  std::vector<std::uint32_t> ca(coarse.num_nodes());
  for (auto& c : ca) c = rng.next_bool() ? 1 : 0;
  const part::Partition cp(ca, 2);
  std::vector<std::uint32_t> fa(h.num_nodes());
  for (graph::NodeId v = 0; v < h.num_nodes(); ++v)
    fa[v] = cp.cluster_of(coarse_of[v]);
  // Coarse nets merged duplicates by weight, so weighted cuts must agree.
  EXPECT_NEAR(part::cut_nets(coarse, cp),
              part::cut_nets(h, part::Partition(fa, 2)), 1e-9);
}

TEST(Multilevel, BipartitionQualityAndBalance) {
  const graph::Hypergraph h = planted(400, 2, 11, 0.85);
  part::MultilevelOptions opts;
  const part::MultilevelResult r = part::multilevel_bipartition(h, opts);
  EXPECT_GT(r.levels, 0u);
  EXPECT_TRUE(opts.balance.satisfied(r.partition));
  // Two planted blocks: cut should be small relative to net count.
  EXPECT_LT(r.cut, 0.25 * static_cast<double>(h.num_nets()));
}

TEST(Multilevel, SpectralInitialAlsoWorks) {
  const graph::Hypergraph h = planted(300, 2, 13, 0.85);
  part::MultilevelOptions opts;
  opts.spectral_initial = true;
  const part::MultilevelResult r = part::multilevel_bipartition(h, opts);
  EXPECT_TRUE(opts.balance.satisfied(r.partition));
  EXPECT_DOUBLE_EQ(r.cut, part::cut_nets(h, r.partition));
}

TEST(Multilevel, MatchesFlatFmOnSmallInstance) {
  // Small instances skip coarsening entirely and reduce to FM.
  const graph::Hypergraph h = planted(40, 2, 14);
  part::MultilevelOptions opts;
  opts.coarsest_size = 64;
  const part::MultilevelResult r = part::multilevel_bipartition(h, opts);
  EXPECT_EQ(r.levels, 0u);
  EXPECT_TRUE(opts.balance.satisfied(r.partition));
}

// --- K-way FM refinement ---------------------------------------------------

TEST(KWayFm, NeverIncreasesCut) {
  const graph::Hypergraph h = planted(160, 4, 27, 0.8);
  Rng rng(28);
  std::vector<std::uint32_t> a(h.num_nodes());
  for (auto& c : a) c = static_cast<std::uint32_t>(rng.next_below(4));
  const part::Partition init(a, 4);
  const double before = part::cut_nets(h, init);
  const part::KWayFmResult r = part::kway_fm_refine(h, init, part::KWayFmOptions{});
  EXPECT_LE(r.cut, before + 1e-9);
  EXPECT_NEAR(r.improvement, before - r.cut, 1e-9);
}

TEST(KWayFm, ImprovesRandomStartSubstantially) {
  const graph::Hypergraph h = planted(200, 4, 29, 0.9);
  Rng rng(30);
  std::vector<std::uint32_t> a(h.num_nodes());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i % 4;  // round robin
  const part::Partition init(a, 4);
  const double before = part::cut_nets(h, init);
  const part::KWayFmResult r = part::kway_fm_refine(h, init, part::KWayFmOptions{});
  EXPECT_LT(r.cut, 0.6 * before);
}

TEST(KWayFm, RespectsSizeBounds) {
  const graph::Hypergraph h = planted(120, 3, 31, 0.85);
  std::vector<std::uint32_t> a(h.num_nodes());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i % 3;
  part::KWayFmOptions opts;
  opts.min_cluster_size = 30;
  opts.max_cluster_size = 50;
  const part::KWayFmResult r =
      part::kway_fm_refine(h, part::Partition(a, 3), opts);
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_GE(r.partition.cluster_size(c), 30u);
    EXPECT_LE(r.partition.cluster_size(c), 50u);
  }
}

TEST(KWayFm, BipartitionCaseMatchesPlainFm) {
  // With k = 2 the pairwise sweep IS one FM run on the (strict = full)
  // netlist, so the result should be at least as good as the initial.
  const graph::Hypergraph h = planted(100, 2, 32, 0.85);
  std::vector<std::uint32_t> a(h.num_nodes());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i % 2;
  const part::Partition init(a, 2);
  const part::KWayFmResult r =
      part::kway_fm_refine(h, init, part::KWayFmOptions{});
  EXPECT_LT(r.cut, part::cut_nets(h, init));
  EXPECT_EQ(r.partition.k(), 2u);
}

// --- Cluster extraction ---------------------------------------------------

TEST(Clustering, CoversAllVertices) {
  const graph::Hypergraph h = planted(160, 4, 15, 0.85);
  const core::ClusteringResult r =
      core::extract_clusters(h, core::ClusteringOptions{});
  EXPECT_GE(r.num_clusters, 2u);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < r.partition.k(); ++c)
    total += r.partition.cluster_size(c);
  EXPECT_EQ(total, h.num_nodes());
  EXPECT_EQ(r.partition.num_nonempty(), r.num_clusters);
}

TEST(Clustering, FindsPlantedStructure) {
  const graph::Hypergraph h = planted(200, 4, 16, 0.92);
  core::ClusteringOptions opts;
  opts.min_cluster_fraction = 0.10;
  const core::ClusteringResult r = core::extract_clusters(h, opts);
  // Quality proxy: scaled cost below round-robin with the same k (the
  // extraction is greedy and may over-segment, so the margin is modest).
  std::vector<std::uint32_t> rr(h.num_nodes());
  for (std::size_t i = 0; i < rr.size(); ++i) rr[i] = i % r.num_clusters;
  EXPECT_LT(part::scaled_cost(h, r.partition),
            0.9 * part::scaled_cost(h, part::Partition(rr, r.num_clusters)));
}

TEST(Clustering, MaxClustersHonored) {
  const graph::Hypergraph h = planted(150, 6, 17, 0.9);
  core::ClusteringOptions opts;
  opts.max_clusters = 3;
  const core::ClusteringResult r = core::extract_clusters(h, opts);
  EXPECT_LE(r.num_clusters, 3u);
}

TEST(Clustering, RejectsBadFractions) {
  const graph::Hypergraph h = planted(30, 2, 18);
  core::ClusteringOptions opts;
  opts.min_cluster_fraction = 0.6;
  opts.max_cluster_fraction = 0.4;
  EXPECT_THROW(core::extract_clusters(h, opts), Error);
}

// --- Spectral k-means -------------------------------------------------------

TEST(Kmeans, ProducesKNonEmptyClusters) {
  const graph::Hypergraph h = planted(90, 3, 23);
  for (std::uint32_t k : {2u, 3u, 5u}) {
    const part::Partition p =
        spectral::kmeans_partition(h, k, spectral::KmeansOptions{});
    EXPECT_EQ(p.k(), k);
    EXPECT_EQ(p.num_nonempty(), k) << "k=" << k;
  }
}

TEST(Kmeans, RecoversPlantedClusters) {
  const graph::Hypergraph h = planted(120, 3, 24, 0.92);
  const part::Partition p =
      spectral::kmeans_partition(h, 3, spectral::KmeansOptions{});
  std::vector<std::uint32_t> rr(h.num_nodes());
  for (std::size_t i = 0; i < rr.size(); ++i) rr[i] = i % 3;
  EXPECT_LT(part::scaled_cost(h, p),
            0.5 * part::scaled_cost(h, part::Partition(rr, 3)));
}

TEST(Kmeans, DeterministicForFixedSeed) {
  const graph::Hypergraph h = planted(70, 3, 25);
  const auto a = spectral::kmeans_partition(h, 3, spectral::KmeansOptions{});
  const auto b = spectral::kmeans_partition(h, 3, spectral::KmeansOptions{});
  EXPECT_EQ(a.assignment(), b.assignment());
}

TEST(Kmeans, RejectsBadK) {
  const graph::Hypergraph h = planted(20, 2, 26);
  EXPECT_THROW(spectral::kmeans_partition(h, 1, spectral::KmeansOptions{}),
               Error);
  EXPECT_THROW(spectral::kmeans_partition(h, 100, spectral::KmeansOptions{}),
               Error);
}

// --- Hall placement --------------------------------------------------------

TEST(Placement, WirelengthEqualsEigenvalueSum) {
  const graph::Hypergraph h = planted(80, 2, 19);
  spectral::PlacementOptions opts;
  opts.dimensions = 3;
  const spectral::Placement p = spectral::hall_placement(h, opts);
  // sum_e w_e ||x_u-x_v||^2 = sum_j lambda_j over the placed eigenvectors.
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions eo;
  eo.count = 3;
  eo.skip_trivial = true;
  const auto basis = spectral::compute_eigenbasis(g, eo);
  double lambda_sum = 0.0;
  for (double v : basis.values) lambda_sum += v;
  EXPECT_NEAR(p.quadratic_wirelength, lambda_sum,
              1e-6 * (1.0 + lambda_sum));
}

TEST(Placement, BeatsRandomPlacementOfSameScale) {
  const graph::Hypergraph h = planted(100, 3, 20);
  spectral::PlacementOptions opts;
  const spectral::Placement hall = spectral::hall_placement(h, opts);
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  // Random unit-norm columns, same shape.
  Rng rng(21);
  linalg::DenseMatrix random(hall.coords.rows(), hall.coords.cols());
  for (std::size_t j = 0; j < random.cols(); ++j) {
    linalg::Vec col(random.rows());
    for (double& x : col) x = rng.next_normal();
    linalg::normalize(col);
    random.set_col(j, col);
  }
  EXPECT_LT(hall.quadratic_wirelength,
            spectral::quadratic_wirelength(g, random));
}

TEST(Placement, CoordinatesAreCentered) {
  const graph::Hypergraph h = planted(60, 2, 22);
  const spectral::Placement p =
      spectral::hall_placement(h, spectral::PlacementOptions{});
  for (std::size_t j = 0; j < p.coords.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < p.coords.rows(); ++i)
      sum += p.coords.at(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-6);  // orthogonal to the constant vector
  }
}

}  // namespace
}  // namespace specpart
