// Tests for partitioning objectives on graphs and hypergraphs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/clique_models.h"
#include "part/objectives.h"

namespace specpart::part {
namespace {

graph::Graph square() {
  // 4-cycle with unit weights: 0-1-2-3-0.
  return graph::Graph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {0, 3, 1.0}});
}

TEST(GraphCut, CountsCrossingEdgesOnce) {
  const Partition p({0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(cut_weight(square(), p), 2.0);
  EXPECT_DOUBLE_EQ(paper_f(square(), p), 4.0);
}

TEST(GraphCut, ZeroWhenUncut) {
  const Partition p({0, 0, 0, 0}, 2);
  EXPECT_DOUBLE_EQ(cut_weight(square(), p), 0.0);
}

TEST(GraphCut, WeightsRespected) {
  graph::Graph g(2, {{0, 1, 2.5}});
  EXPECT_DOUBLE_EQ(cut_weight(g, Partition({0, 1}, 2)), 2.5);
}

TEST(ClusterDegrees, GraphVersion) {
  const Partition p({0, 1, 1, 0}, 2);  // cut edges: (0,1) and (2,3)
  const auto deg = cluster_degrees(square(), p);
  EXPECT_DOUBLE_EQ(deg[0], 2.0);
  EXPECT_DOUBLE_EQ(deg[1], 2.0);
}

TEST(RatioCut, GraphKnownValue) {
  const Partition p({0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(ratio_cut(square(), p), 2.0 / 4.0);
}

TEST(RatioCut, DegenerateIsInfinite) {
  const Partition p({0, 0, 0, 0}, 2);
  EXPECT_TRUE(std::isinf(ratio_cut(square(), p)));
}

TEST(ScaledCost, GraphKnownValue) {
  const Partition p({0, 0, 1, 1}, 2);
  // (1/(4*1)) * (2/2 + 2/2) = 0.5.
  EXPECT_DOUBLE_EQ(scaled_cost(square(), p), 0.5);
}

TEST(ScaledCost, EmptyClusterInfeasible) {
  const Partition p({0, 0, 1, 1}, 3);
  EXPECT_TRUE(std::isinf(scaled_cost(square(), p)));
}

graph::Hypergraph netlist() {
  // nets: {0,1,2}, {2,3}, {0,3}
  return graph::Hypergraph(4, {{0, 1, 2}, {2, 3}, {0, 3}});
}

TEST(NetCut, SpanningNetCountedOnce) {
  const Partition p({0, 0, 1, 1}, 2);
  // {0,1,2} cut, {2,3} inside cluster 1, {0,3} cut.
  EXPECT_DOUBLE_EQ(cut_nets(netlist(), p), 2.0);
}

TEST(NetCut, ThreeWaySpanStillOnce) {
  const Partition p({0, 1, 2, 2}, 3);
  EXPECT_DOUBLE_EQ(cut_nets(netlist(), p), 2.0);  // {0,1,2} and {0,3}
}

TEST(NetCut, WeightedNets) {
  graph::Hypergraph h(3, {{0, 1}, {1, 2}}, {2.0, 5.0});
  EXPECT_DOUBLE_EQ(cut_nets(h, Partition({0, 0, 1}, 2)), 5.0);
}

TEST(ClusterDegrees, HypergraphSpanningNetCountsPerCluster) {
  const Partition p({0, 1, 2, 2}, 3);
  const auto deg = cluster_degrees(netlist(), p);
  // {0,1,2} touches clusters 0,1,2; {0,3} touches 0,2.
  EXPECT_DOUBLE_EQ(deg[0], 2.0);
  EXPECT_DOUBLE_EQ(deg[1], 1.0);
  EXPECT_DOUBLE_EQ(deg[2], 2.0);
}

TEST(ScaledCost, HypergraphKnownValue) {
  const Partition p({0, 0, 1, 1}, 2);
  // E_0 = 2 ({0,1,2} and {0,3}), E_1 = 2. (1/(4*1)) * (2/2 + 2/2) = 0.5.
  EXPECT_DOUBLE_EQ(scaled_cost(netlist(), p), 0.5);
}

TEST(Objectives, TwoPinHypergraphMatchesGraph) {
  // A hypergraph of only 2-pin nets must give identical cut/scaled cost to
  // the equivalent graph.
  graph::Graph g(5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0},
                     {4, 0, 1.0}});
  const graph::Hypergraph h = graph::to_hypergraph(g);
  const Partition p({0, 0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(cut_nets(h, p), cut_weight(g, p));
  EXPECT_DOUBLE_EQ(scaled_cost(h, p), scaled_cost(g, p));
  EXPECT_DOUBLE_EQ(ratio_cut(h, p), ratio_cut(g, p));
}

TEST(Soed, CountsSpanPerCluster) {
  // net {0,1,2} spanning 3 clusters -> SOED 3; net {2,3} inside -> 0.
  graph::Hypergraph h(4, {{0, 1, 2}, {2, 3}});
  const Partition p({0, 1, 2, 2}, 3);
  EXPECT_DOUBLE_EQ(sum_of_external_degrees(h, p), 3.0);
  EXPECT_DOUBLE_EQ(k_minus_one_cost(h, p), 2.0);
}

TEST(Soed, EqualsClusterDegreeSum) {
  const graph::Hypergraph h = netlist();
  const Partition p({0, 1, 2, 2}, 3);
  const auto deg = cluster_degrees(h, p);
  EXPECT_DOUBLE_EQ(sum_of_external_degrees(h, p), deg[0] + deg[1] + deg[2]);
}

TEST(KMinusOne, EqualsCutForBipartitions) {
  const graph::Hypergraph h = netlist();
  const Partition p({0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(k_minus_one_cost(h, p), cut_nets(h, p));
}

TEST(Absorption, FullyAbsorbedIsNetCount) {
  graph::Hypergraph h(4, {{0, 1}, {2, 3}, {0, 1, 2, 3}});
  const Partition all_one({0, 0, 0, 0}, 1);
  EXPECT_DOUBLE_EQ(absorption(h, all_one), 3.0);
}

TEST(Absorption, PartialAbsorption) {
  graph::Hypergraph h(4, {{0, 1, 2, 3}});
  // 3 pins in cluster 0, 1 in cluster 1: (3-1)/(4-1) = 2/3.
  const Partition p({0, 0, 0, 1}, 2);
  EXPECT_NEAR(absorption(h, p), 2.0 / 3.0, 1e-15);
}

TEST(Objectives, SinglePinNetsNeverCut) {
  graph::Hypergraph h(2, {{0}, {1}, {0, 1}});
  EXPECT_DOUBLE_EQ(cut_nets(h, Partition({0, 1}, 2)), 1.0);
}

}  // namespace
}  // namespace specpart::part
