// Tests for netlist file I/O (.hgr and .netD parsers, partition writer).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/netlist_io.h"
#include "util/error.h"

namespace specpart::graph {
namespace {

TEST(Hgr, ParsesPlainFormat) {
  std::istringstream in("3 4\n1 2\n2 3 4\n1 4\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nets(), 3u);
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.net(1).size(), 3u);
  EXPECT_EQ(h.net(0)[0], 0u);  // 1-based in file -> 0-based in memory
}

TEST(Hgr, SkipsCommentsAndBlanks) {
  std::istringstream in("% comment\n\n2 3\n% another\n1 2\n\n2 3\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nets(), 2u);
}

TEST(Hgr, NetWeights) {
  std::istringstream in("2 3 1\n5.0 1 2\n0.5 2 3\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_DOUBLE_EQ(h.net_weight(0), 5.0);
  EXPECT_DOUBLE_EQ(h.net_weight(1), 0.5);
}

TEST(Hgr, VertexWeightLinesConsumed) {
  std::istringstream in("1 2 10\n1 2\n3\n4\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nets(), 1u);
  EXPECT_EQ(h.num_nodes(), 2u);
}

TEST(Hgr, RejectsMalformedHeader) {
  std::istringstream in("3\n");
  EXPECT_THROW(read_hgr(in), Error);
}

TEST(Hgr, RejectsBadFmt) {
  std::istringstream in("1 2 7\n1 2\n");
  EXPECT_THROW(read_hgr(in), Error);
}

TEST(Hgr, RejectsOutOfRangePin) {
  std::istringstream in("1 2\n1 3\n");
  EXPECT_THROW(read_hgr(in), Error);
}

TEST(Hgr, RejectsZeroPin) {
  std::istringstream in("1 2\n0 1\n");
  EXPECT_THROW(read_hgr(in), Error);
}

TEST(Hgr, RejectsTruncatedFile) {
  std::istringstream in("2 3\n1 2\n");
  EXPECT_THROW(read_hgr(in), Error);
}

TEST(Hgr, RejectsIntegerOverflowInHeader) {
  // 2^64-scale counts must be caught during parsing, not wrap around.
  std::istringstream in("99999999999999999999999 2\n1 2\n");
  try {
    read_hgr(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
  }
}

TEST(Hgr, RejectsAllocationScaleHeader) {
  // Parseable but absurd counts must not drive a pre-allocation.
  std::istringstream in("4611686018427387904 2\n1 2\n");
  try {
    read_hgr(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("implausibly large"),
              std::string::npos);
  }
}

TEST(Hgr, RejectsTrailingGarbage) {
  std::istringstream in("1 2\n1 2\n1 2\n");
  try {
    read_hgr(in);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing garbage"),
              std::string::npos);
  }
}

TEST(Hgr, TrailingCommentsAndBlanksAreNotGarbage) {
  std::istringstream in("1 2\n1 2\n% trailing comment\n\n");
  const Hypergraph h = read_hgr(in);
  EXPECT_EQ(h.num_nets(), 1u);
}

TEST(Hgr, DuplicatePinsMergedAndReported) {
  std::istringstream in("2 3\n1 1 2\n2 3\n");
  Diagnostics diag;
  const Hypergraph h = read_hgr(in, &diag);
  EXPECT_EQ(h.net(0).size(), 2u);  // duplicate merged, parse still succeeds
  ASSERT_EQ(diag.events().size(), 1u);
  EXPECT_NE(diag.events()[0].message.find("duplicate"), std::string::npos);
  EXPECT_EQ(diag.status(), StatusCode::kOk);  // a warning, not a fallback
}

TEST(Hgr, RoundTrip) {
  Hypergraph h(4, {{0, 1, 2}, {2, 3}}, {1.0, 1.0});
  std::ostringstream out;
  write_hgr(h, out);
  std::istringstream in(out.str());
  const Hypergraph back = read_hgr(in);
  EXPECT_EQ(back.num_nodes(), h.num_nodes());
  EXPECT_EQ(back.num_nets(), h.num_nets());
  for (NetId e = 0; e < h.num_nets(); ++e) EXPECT_EQ(back.net(e), h.net(e));
}

TEST(Hgr, RoundTripWeighted) {
  Hypergraph h(3, {{0, 1}, {1, 2}}, {2.0, 1.0});
  std::ostringstream out;
  write_hgr(h, out);
  std::istringstream in(out.str());
  const Hypergraph back = read_hgr(in);
  EXPECT_DOUBLE_EQ(back.net_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(back.net_weight(1), 1.0);
}

/// parse(write(parse(text))) == parse(text) for a messy textual input:
/// comments, blank lines, net weights, and non-canonical spacing must all
/// wash out through one write/read cycle.
TEST(Hgr, ParseWriteParseEqualsDirectParse) {
  const std::string messy =
      "% comment before the header\n"
      "\n"
      "  3 5 1\n"
      "% weighted nets below\n"
      "2   1 2\n"
      "\n"
      "1 2 3   4\n"
      "3\t5 1\n"
      "% trailing comment\n";
  std::istringstream in1(messy);
  const Hypergraph direct = read_hgr(in1);

  std::ostringstream out;
  write_hgr(direct, out);
  std::istringstream in2(out.str());
  const Hypergraph cycled = read_hgr(in2);

  ASSERT_EQ(cycled.num_nodes(), direct.num_nodes());
  ASSERT_EQ(cycled.num_nets(), direct.num_nets());
  for (NetId e = 0; e < direct.num_nets(); ++e) {
    EXPECT_EQ(cycled.net(e), direct.net(e));
    EXPECT_DOUBLE_EQ(cycled.net_weight(e), direct.net_weight(e));
  }
  EXPECT_EQ(cycled.num_pins(), direct.num_pins());
}

/// The writer is canonical: writing, re-parsing and writing again emits
/// byte-identical text. This is what lets the service's wire protocol
/// embed .hgr payloads and still promise byte-stable request frames.
TEST(Hgr, WriterIsCanonicalFixedPoint) {
  const Hypergraph h(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}},
                     {1.0, 2.5, 1.0, 0.5});
  std::ostringstream first;
  write_hgr(h, first);
  std::istringstream in(first.str());
  const Hypergraph back = read_hgr(in);
  std::ostringstream second;
  write_hgr(back, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(NetD, ParsesPinList) {
  // Header: 0, #pins=6, #nets=2, #modules=4, pad offset 0.
  std::istringstream in(
      "0\n6\n2\n4\n0\n"
      "a0 s I\n"
      "a1 l O\n"
      "p0 l B\n"
      "a2 s I\n"
      "a1 l O\n"
      "p1 l B\n");
  const Hypergraph h = read_netd(in);
  EXPECT_EQ(h.num_nets(), 2u);
  EXPECT_EQ(h.num_nodes(), 5u);  // a0, a1, p0, a2, p1
  EXPECT_EQ(h.net(0).size(), 3u);
  EXPECT_EQ(h.node_names()[0], "a0");
  EXPECT_EQ(h.node_names()[3], "a2");
}

TEST(NetD, SharedModuleJoinsNets) {
  std::istringstream in(
      "0\n4\n2\n3\n0\n"
      "a0 s I\na1 l O\n"
      "a1 s I\na2 l O\n");
  const Hypergraph h = read_netd(in);
  EXPECT_TRUE(h.connected());
  EXPECT_EQ(h.node_degree(1), 2u);  // a1 is in both nets
}

TEST(NetD, RejectsPinCountMismatch) {
  std::istringstream in("0\n5\n1\n2\n0\na0 s I\na1 l O\n");
  EXPECT_THROW(read_netd(in), Error);
}

TEST(NetD, RejectsLeadingContinuation) {
  std::istringstream in("0\n1\n1\n1\n0\na0 l I\n");
  EXPECT_THROW(read_netd(in), Error);
}

TEST(NetD, RejectsBadPinKind) {
  std::istringstream in("0\n1\n1\n1\n0\na0 x I\n");
  EXPECT_THROW(read_netd(in), Error);
}

TEST(NetD, RoundTrip) {
  Hypergraph h(5, {{0, 1, 2}, {2, 3}, {3, 4}});
  h.set_node_names({"u0", "u1", "u2", "u3", "u4"});
  std::ostringstream out;
  write_netd(h, out);
  std::istringstream in(out.str());
  const Hypergraph back = read_netd(in);
  ASSERT_EQ(back.num_nodes(), h.num_nodes());
  ASSERT_EQ(back.num_nets(), h.num_nets());
  for (NetId e = 0; e < h.num_nets(); ++e) EXPECT_EQ(back.net(e), h.net(e));
  EXPECT_EQ(back.node_names()[3], "u3");
}

TEST(NetD, RoundTripUnnamed) {
  Hypergraph h(3, {{0, 1}, {1, 2}});
  std::ostringstream out;
  write_netd(h, out);
  std::istringstream in(out.str());
  const Hypergraph back = read_netd(in);
  EXPECT_EQ(back.num_pins(), h.num_pins());
  EXPECT_EQ(back.node_names()[0], "a0");
}

TEST(PartitionIo, WritesOnePerLine) {
  std::ostringstream out;
  write_partition({0, 1, 1, 0, 2}, out);
  EXPECT_EQ(out.str(), "0\n1\n1\n0\n2\n");
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW(read_hgr_file("/nonexistent/x.hgr"), Error);
  EXPECT_THROW(read_netd_file("/nonexistent/x.netD"), Error);
}

}  // namespace
}  // namespace specpart::graph
