// Tests for the min-cost max-flow solver.
#include <gtest/gtest.h>

#include "opt/mincostflow.h"

namespace specpart::opt {
namespace {

TEST(MinCostFlow, SimplePath) {
  MinCostFlow f(3);
  const auto a = f.add_arc(0, 1, 5.0, 1.0);
  const auto b = f.add_arc(1, 2, 3.0, 2.0);
  const auto r = f.solve(0, 2);
  EXPECT_DOUBLE_EQ(r.flow, 3.0);
  EXPECT_DOUBLE_EQ(r.cost, 9.0);
  EXPECT_DOUBLE_EQ(f.flow_on(a), 3.0);
  EXPECT_DOUBLE_EQ(f.flow_on(b), 3.0);
}

TEST(MinCostFlow, PrefersCheaperRoute) {
  // Two parallel routes; the cheap one saturates first.
  MinCostFlow f(4);
  const auto cheap1 = f.add_arc(0, 1, 2.0, 1.0);
  f.add_arc(1, 3, 2.0, 1.0);
  const auto costly1 = f.add_arc(0, 2, 2.0, 5.0);
  f.add_arc(2, 3, 2.0, 5.0);
  const auto r = f.solve(0, 3);
  EXPECT_DOUBLE_EQ(r.flow, 4.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0 * 2.0 + 2.0 * 10.0);
  EXPECT_DOUBLE_EQ(f.flow_on(cheap1), 2.0);
  EXPECT_DOUBLE_EQ(f.flow_on(costly1), 2.0);
}

TEST(MinCostFlow, NegativeCostsHandled) {
  MinCostFlow f(3);
  const auto a = f.add_arc(0, 1, 1.0, -4.0);
  f.add_arc(1, 2, 1.0, 1.0);
  const auto r = f.solve(0, 2);
  EXPECT_DOUBLE_EQ(r.flow, 1.0);
  EXPECT_DOUBLE_EQ(r.cost, -3.0);
  EXPECT_DOUBLE_EQ(f.flow_on(a), 1.0);
}

TEST(MinCostFlow, DisconnectedGivesZeroFlow) {
  MinCostFlow f(4);
  f.add_arc(0, 1, 1.0, 1.0);
  f.add_arc(2, 3, 1.0, 1.0);
  const auto r = f.solve(0, 3);
  EXPECT_DOUBLE_EQ(r.flow, 0.0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(MinCostFlow, AssignmentProblem) {
  // 2x2 assignment: worker i -> job j with costs [[1, 10], [10, 1]];
  // optimum assigns diagonally for total cost 2.
  // Nodes: 0 src, 1-2 workers, 3-4 jobs, 5 sink.
  MinCostFlow f(6);
  f.add_arc(0, 1, 1.0, 0.0);
  f.add_arc(0, 2, 1.0, 0.0);
  const auto a00 = f.add_arc(1, 3, 1.0, 1.0);
  const auto a01 = f.add_arc(1, 4, 1.0, 10.0);
  const auto a10 = f.add_arc(2, 3, 1.0, 10.0);
  const auto a11 = f.add_arc(2, 4, 1.0, 1.0);
  f.add_arc(3, 5, 1.0, 0.0);
  f.add_arc(4, 5, 1.0, 0.0);
  const auto r = f.solve(0, 5);
  EXPECT_DOUBLE_EQ(r.flow, 2.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_DOUBLE_EQ(f.flow_on(a00), 1.0);
  EXPECT_DOUBLE_EQ(f.flow_on(a11), 1.0);
  EXPECT_DOUBLE_EQ(f.flow_on(a01), 0.0);
  EXPECT_DOUBLE_EQ(f.flow_on(a10), 0.0);
}

TEST(MinCostFlow, ReroutesThroughResidualArcs) {
  // Classic rerouting instance: the greedy-first path must be partially
  // undone via the residual arc to reach max flow at min cost.
  // 0 -> 1 -> 3 and 0 -> 2 -> 3 with a middle arc 1 -> 2.
  MinCostFlow f(4);
  f.add_arc(0, 1, 1.0, 1.0);
  f.add_arc(0, 2, 1.0, 4.0);
  f.add_arc(1, 2, 1.0, 1.0);
  f.add_arc(1, 3, 1.0, 4.0);
  f.add_arc(2, 3, 1.0, 1.0);
  const auto r = f.solve(0, 3);
  EXPECT_DOUBLE_EQ(r.flow, 2.0);
  // Optimal: 0-1-2-3 (cost 3) + 0-2... capacity 2->3 is 1. Routes:
  // 0-1-3 (5) and 0-2-3 (5) = 10, or 0-1-2-3 (3) + 0-2(4)->blocked.
  // Max flow 2 requires using both 1->3 and 2->3: cost = 1+4 + 4+1 = 10
  // or 1+1+1 (0-1-2-3) + 0-2 is full... 2->3 already used. So 10.
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
}

}  // namespace
}  // namespace specpart::opt
