// Property-based sweeps (TEST_P) over randomized instances: invariants that
// must hold for every seed, size, and parameter combination.
#include <gtest/gtest.h>

#include <numeric>

#include "core/drivers.h"
#include "core/maxcut.h"
#include "core/reduction.h"
#include "graph/generator.h"
#include "graph/laplacian.h"
#include "model/clique_models.h"
#include "model/transforms.h"
#include "part/fm.h"
#include "part/multilevel.h"
#include "part/objectives.h"
#include "part/ordering.h"
#include "spectral/dprp.h"
#include "spectral/embedding.h"
#include "spectral/rsb.h"
#include "util/rng.h"

namespace specpart {
namespace {

graph::Hypergraph instance(std::size_t n, std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = n;
  cfg.num_nets = n + n / 4;
  cfg.num_clusters = 3 + seed % 4;
  cfg.subclusters_per_cluster = 2;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CutIdentitiesAcrossRepresentations) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(120, seed);
  Rng rng(seed * 3 + 1);
  std::vector<std::uint32_t> a(h.num_nodes());
  for (auto& c : a) c = static_cast<std::uint32_t>(rng.next_below(3));
  const part::Partition p(a, 3);

  // Sum of hypergraph cluster degrees >= 2x cut (every cut net touches at
  // least 2 clusters) and <= 3x cut (at most 3 clusters exist).
  const double cut = part::cut_nets(h, p);
  const auto deg = part::cluster_degrees(h, p);
  const double total_deg = deg[0] + deg[1] + deg[2];
  EXPECT_GE(total_deg, 2.0 * cut - 1e-9);
  EXPECT_LE(total_deg, 3.0 * cut + 1e-9);

  // Graph f = trace identity: f computed from cluster degrees equals 2*cut.
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  const auto gdeg = part::cluster_degrees(g, p);
  EXPECT_NEAR(gdeg[0] + gdeg[1] + gdeg[2], part::paper_f(g, p), 1e-9);
}

TEST_P(SeedSweep, PaperFEqualsTraceForm) {
  // f(P_k) = trace(X^T Q X) — computed explicitly via the Laplacian.
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(40, seed);
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kStandard);
  const auto q = graph::build_laplacian(g);
  Rng rng(seed + 5);
  std::vector<std::uint32_t> a(g.num_nodes());
  for (auto& c : a) c = static_cast<std::uint32_t>(rng.next_below(4));
  const part::Partition p(a, 4);

  double trace_form = 0.0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    linalg::Vec x(g.num_nodes(), 0.0);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
      if (p.cluster_of(v) == c) x[v] = 1.0;
    trace_form += linalg::dot(x, q.matvec(x));
  }
  EXPECT_NEAR(trace_form, part::paper_f(g, p), 1e-9);
}

TEST_P(SeedSweep, MeloOrderingAlwaysPermutation) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(90, seed);
  for (core::CoordScaling sc :
       {core::CoordScaling::kSqrtGap, core::CoordScaling::kInvSqrtLambda}) {
    core::MeloOptions m;
    m.scaling = sc;
    m.num_eigenvectors = 6;
    m.seed = seed;
    const auto runs = core::melo_orderings(h, m);
    EXPECT_TRUE(part::is_permutation(runs[0].ordering, h.num_nodes()));
  }
}

TEST_P(SeedSweep, DprpNeverWorseThanUniformSplit) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(80, seed);
  part::Ordering o(h.num_nodes());
  std::iota(o.begin(), o.end(), 0u);
  Rng rng(seed + 11);
  rng.shuffle(o);
  const std::uint32_t k = 4;
  spectral::DprpOptions opts;
  opts.k = k;
  const auto dp = spectral::dprp_split(h, o, opts);

  // Uniform contiguous split of the same ordering is a feasible solution.
  std::vector<std::uint32_t> a(h.num_nodes());
  for (std::size_t pos = 0; pos < o.size(); ++pos)
    a[o[pos]] = static_cast<std::uint32_t>(
        std::min<std::size_t>(k - 1, pos * k / o.size()));
  const double uniform = part::scaled_cost(h, part::Partition(a, k));
  EXPECT_LE(dp.scaled_cost, uniform + 1e-9);
}

TEST_P(SeedSweep, FmNeverWorsensAndKeepsBalance) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(100, seed);
  Rng rng(seed + 17);
  std::vector<std::uint32_t> a(h.num_nodes());
  // Balanced random start.
  std::vector<graph::NodeId> ids(h.num_nodes());
  std::iota(ids.begin(), ids.end(), 0u);
  rng.shuffle(ids);
  for (std::size_t i = 0; i < ids.size(); ++i) a[ids[i]] = i % 2;
  const part::Partition init(a, 2);
  const double before = part::cut_nets(h, init);

  part::FmOptions opts;
  opts.seed = seed;
  const auto r = part::fm_refine(h, init, opts);
  EXPECT_LE(r.cut, before + 1e-9);
  EXPECT_TRUE(opts.balance.satisfied(r.partition));
}

TEST_P(SeedSweep, RsbClusterSizesSumToN) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(70, seed);
  spectral::RsbOptions opts;
  opts.seed = seed;
  const part::Partition p = spectral::rsb_partition(h, 5, opts);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < 5; ++c) total += p.cluster_size(c);
  EXPECT_EQ(total, h.num_nodes());
}

TEST_P(SeedSweep, EigenbasisOrthonormalAndOrdered) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(60, seed);
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  spectral::EmbeddingOptions opts;
  opts.count = 5;
  opts.seed = seed;
  const auto basis = spectral::compute_eigenbasis(g, opts);
  for (std::size_t i = 0; i < basis.dimension(); ++i) {
    if (i > 0) {
      EXPECT_LE(basis.values[i - 1], basis.values[i] + 1e-9);
    }
    for (std::size_t j = i; j < basis.dimension(); ++j) {
      const double dot_ij =
          linalg::dot(basis.vectors.col(i), basis.vectors.col(j));
      EXPECT_NEAR(dot_ij, i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST_P(SeedSweep, PrefixCutsEndpointsZero) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(50, seed);
  part::Ordering o(h.num_nodes());
  std::iota(o.begin(), o.end(), 0u);
  Rng rng(seed + 23);
  rng.shuffle(o);
  const auto cuts = part::prefix_cuts(h, o);
  EXPECT_DOUBLE_EQ(cuts.front(), 0.0);
  EXPECT_DOUBLE_EQ(cuts.back(), 0.0);
  for (double c : cuts) EXPECT_GE(c, 0.0);
}

TEST_P(SeedSweep, MultilevelCompetitiveWithFlatFm) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(220, seed);
  part::FmOptions fm;
  fm.seed = seed;
  const double flat = part::fm_bipartition(h, fm).cut;
  part::MultilevelOptions ml;
  ml.seed = seed;
  const double multi = part::multilevel_bipartition(h, ml).cut;
  // Multilevel must be in the same league as flat FM (usually better on
  // larger instances; never catastrophically worse).
  EXPECT_LE(multi, 1.5 * flat + 5.0) << "flat=" << flat;
}

TEST_P(SeedSweep, StarExpandCutDominatesNetCut) {
  // With each net's dummy vertex placed on its majority side, the star
  // model's edge cut is >= the hypergraph net cut (each cut net leaves at
  // least one star edge crossing).
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(60, seed);
  std::vector<std::uint32_t> dummy_of;
  const graph::Graph star = model::star_expand(h, 1.0, &dummy_of);
  Rng rng(seed + 31);
  std::vector<std::uint32_t> a(star.num_nodes(), 0);
  for (graph::NodeId v = 0; v < h.num_nodes(); ++v)
    a[v] = rng.next_bool() ? 1 : 0;
  const part::Partition hp(
      std::vector<std::uint32_t>(a.begin(),
                                 a.begin() + static_cast<std::ptrdiff_t>(
                                                 h.num_nodes())),
      2);
  // Place each dummy on its net's majority side.
  for (graph::NetId e = 0; e < h.num_nets(); ++e) {
    if (dummy_of[e] == UINT32_MAX) continue;
    std::size_t side1 = 0;
    for (graph::NodeId v : h.net(e)) side1 += a[v];
    a[dummy_of[e]] = 2 * side1 >= h.net(e).size() ? 1 : 0;
  }
  const part::Partition sp(a, 2);
  EXPECT_GE(part::cut_weight(star, sp) + 1e-9, part::cut_nets(h, hp));
}

TEST_P(SeedSweep, MaxCutHeuristicsDeterministic) {
  const std::uint64_t seed = GetParam();
  const graph::Hypergraph h = instance(50, seed);
  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kStandard);
  core::MaxCutOptions opts;
  opts.seed = seed;
  const auto a = core::max_cut_melo(g, opts);
  const auto b = core::max_cut_melo(g, opts);
  EXPECT_EQ(a.partition.assignment(), b.partition.assignment());
  EXPECT_DOUBLE_EQ(a.cut, b.cut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace specpart
