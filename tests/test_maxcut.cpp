// Tests for the max-cut module (objective, spectral reduction heuristics,
// exact oracle).
#include <gtest/gtest.h>

#include "core/maxcut.h"
#include "util/error.h"
#include "util/rng.h"

namespace specpart::core {
namespace {

graph::Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < n; ++i)
    for (graph::NodeId j = i + 1; j < n; ++j)
      if (rng.next_bool(p)) edges.push_back({i, j, 1.0});
  // Ensure no isolated vertices (ring).
  for (graph::NodeId i = 0; i < n; ++i)
    edges.push_back({i, static_cast<graph::NodeId>((i + 1) % n), 1.0});
  return graph::Graph(n, edges);
}

TEST(MaxCut, ExactOnCompleteBipartiteStructure) {
  // K4 has max cut 4 (2+2 split).
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 4; ++i)
    for (graph::NodeId j = i + 1; j < 4; ++j) edges.push_back({i, j, 1.0});
  const graph::Graph k4(4, edges);
  EXPECT_DOUBLE_EQ(max_cut_exact(k4).cut, 4.0);
}

TEST(MaxCut, ExactOnEvenCycleIsAllEdges) {
  // An even cycle is bipartite: max cut = all edges.
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 8; ++i)
    edges.push_back({i, static_cast<graph::NodeId>((i + 1) % 8), 1.0});
  const graph::Graph c8(8, edges);
  EXPECT_DOUBLE_EQ(max_cut_exact(c8).cut, 8.0);
}

TEST(MaxCut, HeuristicsFindRegularBipartiteOptimum) {
  // For a REGULAR bipartite graph (complete bipartite K_{8,8}) the top
  // Laplacian eigenvector is exactly the +/- side indicator, so both
  // heuristics reach the full cut.
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i < 8; ++i)
    for (graph::NodeId j = 8; j < 16; ++j) edges.push_back({i, j, 1.0});
  const graph::Graph g(16, edges);
  const double total = g.total_edge_weight();

  MaxCutOptions opts;
  EXPECT_DOUBLE_EQ(max_cut_melo(g, opts).cut, total);
  EXPECT_DOUBLE_EQ(max_cut_hyperplane(g, opts).cut, total);
}

TEST(MaxCut, HeuristicsNearOptimalOnIrregularBipartite) {
  // Irregular bipartite: the top eigenvector only approximates the side
  // indicator, but the heuristics should stay close to the full cut.
  std::vector<graph::Edge> edges;
  Rng rng(5);
  for (graph::NodeId i = 0; i < 10; ++i)
    for (graph::NodeId j = 10; j < 20; ++j)
      if (rng.next_bool(0.5)) edges.push_back({i, j, 1.0});
  for (graph::NodeId i = 0; i < 10; ++i)
    edges.push_back({i, static_cast<graph::NodeId>(10 + i), 1.0});
  const graph::Graph g(20, edges);
  const double total = g.total_edge_weight();

  MaxCutOptions opts;
  EXPECT_GE(max_cut_melo(g, opts).cut, 0.85 * total);
  EXPECT_GE(max_cut_hyperplane(g, opts).cut, 0.85 * total);
}

class MaxCutSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxCutSweep, HeuristicsNearExactOnSmallRandom) {
  const graph::Graph g = random_graph(12, 0.4, GetParam());
  const double exact = max_cut_exact(g).cut;
  MaxCutOptions opts;
  opts.seed = GetParam();
  const double melo = max_cut_melo(g, opts).cut;
  const double hyper = max_cut_hyperplane(g, opts).cut;
  EXPECT_LE(melo, exact + 1e-9);
  EXPECT_LE(hyper, exact + 1e-9);
  // Spectral max-cut heuristics should land within 85% of optimum on these
  // tiny instances (they usually hit it).
  EXPECT_GE(std::max(melo, hyper), 0.85 * exact);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxCutSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(MaxCut, ValueMatchesObjectiveModule) {
  const graph::Graph g = random_graph(15, 0.3, 9);
  MaxCutOptions opts;
  const MaxCutResult r = max_cut_melo(g, opts);
  EXPECT_DOUBLE_EQ(r.cut, max_cut_value(g, r.partition));
}

TEST(MaxCut, RejectsDegenerate) {
  graph::Graph tiny(1, {});
  EXPECT_THROW(max_cut_melo(tiny, MaxCutOptions{}), Error);
  graph::Graph big(30, {{0, 1, 1.0}});
  EXPECT_THROW(max_cut_exact(big), Error);
}

TEST(MaxCut, LargerGraphRunsViaLanczos) {
  const graph::Graph g = random_graph(400, 0.01, 11);
  MaxCutOptions opts;
  opts.num_eigenvectors = 6;
  const MaxCutResult r = max_cut_melo(g, opts);
  // Any bipartition cuts at least something on a connected graph; sanity:
  // at least half the edges (max cut >= m/2 always, and spectral methods
  // comfortably exceed the random bound).
  EXPECT_GE(r.cut, 0.5 * g.total_edge_weight());
}

}  // namespace
}  // namespace specpart::core
