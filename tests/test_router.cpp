// Tests for the fault-tolerant serving tier: consistent-hash ring,
// content-based routing keys, backoff policy, the ShardClient circuit
// breaker (driven both by real dead ports and by the net.* fault domain),
// ring failover with a shard killed mid-run, and the cross-shard
// byte-identity guarantee.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "graph/generator.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/router.h"
#include "service/server.h"
#include "service/service.h"
#include "util/fault.h"

namespace specpart::service {
namespace {

constexpr bool kFaultsCompiled =
#ifdef SPECPART_FAULT_INJECTION
    true;
#else
    false;
#endif

class RouterTestEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    // Shards die mid-write in these tests by design.
    std::signal(SIGPIPE, SIG_IGN);
  }
};
const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new RouterTestEnv);

graph::Hypergraph small_netlist(std::uint64_t seed = 7,
                                std::size_t modules = 60) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 3;
  cfg.num_clusters = 4;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

PartitionRequest make_request(std::uint64_t graph_seed = 7,
                              std::size_t d = 6) {
  PartitionRequest req;
  req.id = "t";
  req.graph = small_netlist(graph_seed);
  req.pipeline.num_eigenvectors = d;
  return req;
}

std::string wire(const PartitionResponse& resp) {
  std::ostringstream out;
  write_response(resp, out);
  return out.str();
}

/// Fast-failing client options against `port` (tiny timeouts/backoff so
/// dead-shard paths don't slow the suite down).
ShardClientOptions fast_opts(std::uint16_t port) {
  ShardClientOptions opts;
  opts.port = port;
  opts.connect_timeout_ms = 250;
  opts.io_timeout_ms = 5000;
  opts.backoff.base_ms = 1;
  opts.backoff.max_ms = 4;
  opts.breaker.failure_threshold = 3;
  opts.breaker.cooldown_seconds = 0.05;
  return opts;
}

TEST(HashRing, CoversAllShardsInDistinctOrder) {
  const HashRing ring(4, 64);
  for (std::uint64_t point : {0ull, 1ull, 0x123456789abcdefull, ~0ull}) {
    const std::vector<std::size_t> order = ring.route(point);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 4u);
    EXPECT_EQ(order.front(), ring.primary(point));
  }
}

TEST(HashRing, DeterministicAndBalanced) {
  const HashRing a(4, 64);
  const HashRing b(4, 64);
  std::vector<std::size_t> owners(4, 0);
  for (std::uint64_t k = 0; k < 512; ++k) {
    const std::uint64_t point = k * 0x9E3779B97F4A7C15ULL;
    EXPECT_EQ(a.route(point), b.route(point));
    ++owners[a.primary(point)];
  }
  // 64 vnodes/shard spread 512 keys far from degenerate: every shard owns
  // a meaningful slice.
  for (const std::size_t n : owners) EXPECT_GE(n, 512u / 16);
}

TEST(HashRing, LosingAShardOnlyRemapsItsKeys) {
  const HashRing four(4, 64);
  // The ring-walk failover order already encodes this: a key whose primary
  // survives keeps it as first choice, so failover only moves keys that
  // were on the dead shard.
  for (std::uint64_t k = 0; k < 128; ++k) {
    const std::uint64_t point = k * 0x2545F4914F6CDD1DULL;
    const std::vector<std::size_t> order = four.route(point);
    if (order[0] != 0) continue;  // shard 0 "dies" below
    // The first non-0 entry is where this key fails over; it must be the
    // same shard every time we ask.
    EXPECT_EQ(four.route(point)[1], order[1]);
  }
}

TEST(RoutingKey, TracksNetlistContentNotPipelineKnobs) {
  PartitionRequest a = make_request(7);
  PartitionRequest b = make_request(7);
  b.k = 4;
  b.balance = 0.35;
  b.pipeline.num_eigenvectors = 12;
  b.pipeline.seed ^= 99;
  // Same netlist, different experiment knobs: same shard, warm cache.
  EXPECT_EQ(routing_key(a), routing_key(b));

  PartitionRequest c = make_request(11);
  EXPECT_NE(routing_key(a), routing_key(c));

  PartitionRequest d = make_request(7);
  d.pipeline.net_model = model::NetModel::kStandard;
  // The net model changes the expanded graph (and the cache key), so it
  // changes the placement too.
  EXPECT_NE(routing_key(a), routing_key(d));
}

TEST(Backoff, DeterministicJitteredExponentialWithCap) {
  BackoffPolicy p;
  p.base_ms = 10;
  p.max_ms = 80;
  EXPECT_EQ(p.delay_ms(0, 1), 0.0);
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    const double capped =
        std::min(p.max_ms, p.base_ms * std::pow(2.0, double(attempt - 1)));
    const double d = p.delay_ms(attempt, 42);
    EXPECT_GE(d, 0.5 * capped);
    EXPECT_LE(d, capped);
    EXPECT_EQ(d, p.delay_ms(attempt, 42));  // reproducible
  }
  // Different salts decorrelate concurrent callers.
  EXPECT_NE(p.delay_ms(3, 1), p.delay_ms(3, 2));
}

TEST(ShardClient, CallAgainstLiveShardMatchesLocalBytes) {
  ShardServer server;
  ShardClient client(fast_opts(server.port()));
  const PartitionRequest req = make_request();

  const std::optional<PartitionResponse> remote = client.call(req);
  ASSERT_TRUE(remote.has_value());
  PartitionService local;
  EXPECT_EQ(wire(*remote), wire(local.execute(req)));
  EXPECT_EQ(client.state(), ShardState::kClosed);
  EXPECT_EQ(client.stats().successes, 1u);
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(ShardClient, DeadPortOpensBreakerAndSkipsCalls) {
  // Grab a kernel-assigned port, then close it: nothing listens there.
  std::uint16_t dead_port = 0;
  {
    ShardServer probe;
    dead_port = probe.port();
    probe.stop();
  }
  ShardClientOptions opts = fast_opts(dead_port);
  opts.backoff.max_retries = 0;  // one attempt per call
  opts.breaker.cooldown_seconds = 60.0;
  ShardClient client(opts);
  const PartitionRequest req = make_request();
  for (std::size_t i = 0; i < opts.breaker.failure_threshold; ++i) {
    EXPECT_FALSE(client.call(req).has_value());
  }
  EXPECT_EQ(client.state(), ShardState::kOpen);
  EXPECT_EQ(client.stats().breaker_opens, 1u);
  // While open, calls are refused without touching the network.
  EXPECT_FALSE(client.call(req).has_value());
  EXPECT_EQ(client.stats().skipped, 1u);
}

TEST(ShardClient, BreakerHalfOpenProbeFailsThenRecovers) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  ShardServer server;
  ShardClientOptions opts = fast_opts(server.port());
  opts.backoff.max_retries = 0;
  ShardClient client(opts);
  const PartitionRequest req = make_request();

  // Trip the breaker with injected connect refusals.
  fault::arm("net.connect_refused", opts.breaker.failure_threshold);
  for (std::size_t i = 0; i < opts.breaker.failure_threshold; ++i)
    EXPECT_FALSE(client.call(req).has_value());
  ASSERT_EQ(client.state(), ShardState::kOpen);

  // Cooldown elapses; the half-open probe fails -> straight back to open.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  fault::arm("net.connect_refused", 1);
  EXPECT_FALSE(client.call(req).has_value());
  EXPECT_EQ(client.state(), ShardState::kOpen);
  EXPECT_EQ(client.stats().breaker_opens, 2u);

  // Cooldown again, no faults: the probe succeeds and closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(client.call(req).has_value());
  EXPECT_EQ(client.state(), ShardState::kClosed);
  server.stop();
}

TEST(ShardClient, MidFrameDisconnectIsRetriedAndServerSurvives) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  ShardServer server;
  ShardClient client(fast_opts(server.port()));
  const PartitionRequest req = make_request();
  const std::string expected = wire(*client.call(req));

  // The next request dies halfway through the frame; the retry must
  // resend it cleanly and the shard must shrug off the garbage stream.
  fault::arm("net.mid_frame_disconnect", 1);
  const std::optional<PartitionResponse> resp = client.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(wire(*resp), expected);
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(fault::triggered("net.mid_frame_disconnect"), 1u);

  // And the server still answers fresh connections afterwards.
  ShardClient again(fast_opts(server.port()));
  EXPECT_TRUE(again.ping());
  server.stop();
}

TEST(ShardClient, SlowShardReadDeadlineIsRetried) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  ShardServer server;
  ShardClient client(fast_opts(server.port()));
  const PartitionRequest req = make_request();

  fault::arm("net.slow_shard", 1);
  const std::optional<PartitionResponse> resp = client.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_GE(client.stats().retries, 1u);
  server.stop();
}

TEST(ShardRouter, TwoShardsMatchLocalBytesAndPinNetlistsToShards) {
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions opts;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<ShardServer>());
    opts.shards.push_back(fast_opts(servers.back()->port()));
  }
  ShardRouter router(opts);
  PartitionService local;

  for (const std::uint64_t seed : {7ull, 11ull, 13ull, 17ull}) {
    const PartitionRequest req = make_request(seed);
    EXPECT_EQ(wire(router.route(req)), wire(local.execute(req)));
  }
  const MetricsSnapshot snap = router.snapshot();
  EXPECT_TRUE(snap.router.present);
  EXPECT_EQ(snap.router.requests, 4u);
  EXPECT_EQ(snap.router.failovers, 0u);
  EXPECT_EQ(snap.router.local_fallbacks, 0u);
  EXPECT_EQ(snap.router.shards_live, 2u);
  // Both shards stayed closed: traffic reached them directly.
  std::uint64_t shard_requests = 0;
  for (const RouterShardMetrics& m : snap.router.shards) {
    EXPECT_EQ(m.state, static_cast<int>(ShardState::kClosed));
    shard_requests += m.requests;
  }
  EXPECT_EQ(shard_requests, 4u);
  for (auto& s : servers) s->stop();
}

TEST(ShardRouter, KillShardMidRunFailsOverWithIdenticalBytes) {
  std::vector<std::unique_ptr<ShardServer>> servers;
  RouterOptions opts;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<ShardServer>());
    opts.shards.push_back(fast_opts(servers.back()->port()));
  }
  ShardRouter router(opts);
  PartitionService local;

  std::vector<PartitionRequest> reqs;
  for (const std::uint64_t seed : {7ull, 11ull, 13ull, 17ull})
    reqs.push_back(make_request(seed));

  // Warm pass, everything live.
  for (const PartitionRequest& req : reqs)
    EXPECT_EQ(wire(router.route(req)), wire(local.execute(req)));

  // Hard-kill the primary shard of reqs[0] and replay: requests that
  // hashed there must fail over (or, with both dead, fall back locally)
  // with byte-identical responses throughout.
  const HashRing ring(2, opts.vnodes);
  const Fingerprint key = routing_key(reqs[0]);
  servers[ring.primary(key.hi ^ key.lo)]->kill();
  for (const PartitionRequest& req : reqs)
    EXPECT_EQ(wire(router.route(req)), wire(local.execute(req)));

  const MetricsSnapshot snap = router.snapshot();
  EXPECT_GE(snap.router.failovers + snap.router.local_fallbacks, 1u);
  EXPECT_LE(snap.router.shards_live, 1u);
  for (auto& s : servers) s->stop();
}

TEST(ShardRouter, AllShardsDownDegradesToLocalFallback) {
  // Shards that were never started: connect fails immediately.
  std::uint16_t dead = 0;
  {
    ShardServer probe;
    dead = probe.port();
    probe.stop();
  }
  RouterOptions opts;
  ShardClientOptions shard = fast_opts(dead);
  shard.backoff.max_retries = 0;
  opts.shards.push_back(shard);
  opts.local_deadline_seconds = 30.0;
  ShardRouter router(opts);

  const PartitionRequest req = make_request();
  const PartitionResponse resp = router.route(req);
  EXPECT_TRUE(resp.ok()) << resp.error;
  PartitionService local;
  EXPECT_EQ(wire(resp), wire(local.execute(req)));

  const MetricsSnapshot snap = router.snapshot();
  EXPECT_EQ(snap.router.local_fallbacks, 1u);
  // The degraded deadline reached the local engine.
  EXPECT_EQ(router.local_service().options().deadline_seconds, 30.0);
  // The recovery is visible in the metrics frame.
  bool found = false;
  for (const auto& [k, v] : snap.key_values())
    if (k == "router_local_fallbacks") {
      found = true;
      EXPECT_EQ(v, 1.0);
    }
  EXPECT_TRUE(found);
}

TEST(ShardRouter, HealthPingClosesOpenBreaker) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFaults guard;
  ShardServer server;
  RouterOptions opts;
  ShardClientOptions shard = fast_opts(server.port());
  shard.backoff.max_retries = 0;
  opts.shards.push_back(shard);
  opts.health_interval_seconds = 0.05;
  ShardRouter router(opts);

  // Trip the breaker with injected refusals against the (healthy) shard.
  // The health thread races us for the armed counts (its pings also fail
  // and also feed the breaker), so arm generously and loop to the state.
  ShardClient& client = router.shard(0);
  fault::arm("net.connect_refused", 1000);
  const PartitionRequest req = make_request();
  for (int i = 0; i < 100 && client.state() != ShardState::kOpen; ++i)
    (void)client.call(req);
  ASSERT_EQ(client.state(), ShardState::kOpen);
  fault::reset();  // heal the network; only the PING may close the breaker

  // Within a few health intervals (cooldown 50 ms), the PING probe runs
  // against the healthy server and closes the breaker — no request
  // needed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (client.state() != ShardState::kClosed &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(client.state(), ShardState::kClosed);
  EXPECT_GE(client.stats().pings_ok, 1u);
  server.stop();
}

TEST(ShardServer, IdleTimeoutReleasesStalledConnections) {
  ShardServerOptions opts;
  opts.idle_timeout_seconds = 0.1;
  ShardServer server(opts);
  const int fd = tcp_connect("127.0.0.1", server.port());
  FdStreamBuf in_buf(fd);
  std::istream in(&in_buf);
  // Send nothing: the server must hang up on its own.
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  while (std::getline(in, line)) {
  }
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);  // closed by the idle deadline, not by stop()
  fd_close(fd);
  server.stop();
}

TEST(Metrics, RouterSectionOnlyPresentForRouters) {
  PartitionService plain;
  for (const auto& [k, v] : plain.snapshot().key_values())
    EXPECT_EQ(k.rfind("router_", 0), std::string::npos) << k;

  RouterOptions opts;  // zero shards: pure local
  ShardRouter router(opts);
  const PartitionResponse resp = router.route(make_request());
  EXPECT_TRUE(resp.ok());
  bool saw_router = false, saw_fallback = false;
  for (const auto& [k, v] : router.snapshot().key_values()) {
    if (k == "router_requests") {
      saw_router = true;
      EXPECT_EQ(v, 1.0);
    }
    if (k == "router_local_fallbacks") saw_fallback = true;
  }
  EXPECT_TRUE(saw_router);
  EXPECT_TRUE(saw_fallback);
  // And the human rendering mentions the tier.
  EXPECT_NE(router.snapshot().render_text().find("router"), std::string::npos);
}

}  // namespace
}  // namespace specpart::service
