// Tests for the objective-model refactor: the normalized-symmetric
// Laplacian helpers (linalg/objective.h), the conductance sweep cut
// (part/sweep_cut.h), isolated-vertex safety, disjoint cache-key domains,
// the basis-store header extension, the wire-protocol objective field,
// the metrics gating, and spectral-gap automatic dimension selection.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/drivers.h"
#include "core/pipeline_config.h"
#include "graph/generator.h"
#include "graph/laplacian.h"
#include "linalg/objective.h"
#include "model/assembly.h"
#include "model/clique_models.h"
#include "part/fm.h"
#include "part/ordering.h"
#include "part/sweep_cut.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "service/service.h"
#include "spectral/embedding.h"
#include "storage/basis_store.h"
#include "util/error.h"
#include "util/rng.h"

namespace fs = std::filesystem;

namespace specpart {
namespace {

graph::Hypergraph make_netlist(std::size_t modules, std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules + modules / 5;
  cfg.num_clusters = 4;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

/// Stored value of N at (i, j), or 0 when the entry is absent.
double entry_at(const linalg::SymCsrMatrix& m, std::size_t i, std::size_t j) {
  for (std::size_t k = m.row_begin(i); k < m.row_end(i); ++k)
    if (m.col_index(k) == j) return m.value(k);
  return 0.0;
}

TEST(NormalizedLaplacian, EntriesMatchDegreeScaling) {
  // Triangle 0-1-2 with a pendant 3 hanging off vertex 2, weighted.
  const graph::Graph g(4, {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 1.0},
                           {2, 3, 0.5}});
  const linalg::SymCsrMatrix l = graph::build_laplacian(g);
  const linalg::SymCsrMatrix n = linalg::normalized_laplacian(l);
  ASSERT_EQ(n.size(), 4u);
  // Pattern is preserved (same storage, rescaled values).
  EXPECT_EQ(n.nnz(), l.nnz());
  const linalg::Vec s = linalg::inv_sqrt_degree_scale(l);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(entry_at(n, i, j), entry_at(l, i, j) * s[i] * s[j], 1e-15)
          << "entry (" << i << ", " << j << ")";
  // Every non-isolated diagonal of N is exactly 1, so trace(N) counts the
  // non-isolated vertices.
  double trace = 0.0;
  for (std::size_t i = 0; i < 4; ++i) trace += entry_at(n, i, i);
  EXPECT_NEAR(trace, 4.0, 1e-12);
}

TEST(NormalizedLaplacian, ZeroDegreeRowsScaleToZero) {
  // Vertex 3 is isolated: its Laplacian row is a stored zero diagonal, and
  // D^{-1/2} must treat the zero degree as scale 0, not 1/sqrt(0).
  const graph::Graph g(4, {{0, 1, 1.0}, {1, 2, 1.0}});
  const linalg::SymCsrMatrix l = graph::build_laplacian(g);
  const linalg::Vec s = linalg::inv_sqrt_degree_scale(l);
  EXPECT_EQ(s[3], 0.0);
  EXPECT_GT(s[0], 0.0);
  const linalg::SymCsrMatrix n = linalg::normalized_laplacian(l);
  for (std::size_t k = n.row_begin(3); k < n.row_end(3); ++k)
    EXPECT_EQ(n.value(k), 0.0);
  double trace = 0.0;
  for (std::size_t i = 0; i < 4; ++i) trace += entry_at(n, i, i);
  EXPECT_NEAR(trace, 3.0, 1e-12);  // 3 non-isolated vertices
  // All eigenvalues of the normalized operator lie in [0, 2].
  spectral::EmbeddingOptions eo;
  eo.count = 4;
  const spectral::EigenBasis b = spectral::compute_eigenbasis(n, eo);
  for (const double v : b.values) {
    EXPECT_GE(v, -1e-10);
    EXPECT_LE(v, 2.0 + 1e-10);
  }
}

TEST(SweepCut, VolumesFollowNetEligibility) {
  // Net {2} has one pin and net {} would have zero: neither contributes to
  // volume, exactly like neither can contribute to a cut.
  // Weight 100 on the 1-pin net is ineligible and must not appear anywhere;
  // vertex 4 is in no net at all.
  graph::Hypergraph h(5, {{0, 1}, {1, 2, 3}, {2}}, {2.0, 3.0, 100.0});
  const std::vector<double> vol = part::vertex_volumes(h);
  EXPECT_DOUBLE_EQ(vol[0], 2.0);
  EXPECT_DOUBLE_EQ(vol[1], 5.0);
  EXPECT_DOUBLE_EQ(vol[2], 3.0);
  EXPECT_DOUBLE_EQ(vol[3], 3.0);
  EXPECT_DOUBLE_EQ(vol[4], 0.0);  // isolated
}

TEST(SweepCut, BruteForceAgreement) {
  const graph::Hypergraph h = make_netlist(40, 7);
  Rng rng(3);
  part::Ordering o(h.num_nodes());
  std::iota(o.begin(), o.end(), 0u);
  rng.shuffle(o);

  const part::SplitResult best = part::best_conductance_split(h, o);
  ASSERT_TRUE(best.feasible);
  double manual = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < h.num_nodes(); ++i) {
    const double phi =
        part::conductance(h, part::split_to_partition(o, i));
    if (std::isfinite(phi)) manual = std::min(manual, phi);
  }
  EXPECT_DOUBLE_EQ(best.objective, manual);
  EXPECT_DOUBLE_EQ(
      part::conductance(h, part::split_to_partition(o, best.split)),
      best.objective);
}

TEST(SweepCut, MinFractionBoundsTheSplit) {
  const graph::Hypergraph h = make_netlist(30, 9);
  part::Ordering o(h.num_nodes());
  std::iota(o.begin(), o.end(), 0u);
  const part::SplitResult best = part::best_conductance_split(h, o, 0.4);
  ASSERT_TRUE(best.feasible);
  const std::size_t min_side = 12;  // ceil(0.4 * 30)
  EXPECT_GE(best.split, min_side);
  EXPECT_LE(best.split, h.num_nodes() - min_side);
}

TEST(SweepCut, NormalizedPipelineSurvivesIsolatedVertices) {
  // Vertices 6 and 7 are pinless, net {4} is single-pin: the regression
  // netlist for zero-degree rows through the full normalized pipeline.
  const graph::Hypergraph h(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4, 5}, {0, 2},
                                {4, 5}, {1, 3}, {4}});
  core::MeloOptions m;
  m.num_eigenvectors = 4;
  m.objective = core::ObjectiveModel::kNormalizedSymmetric;
  const core::MeloBipartitionResult r = core::melo_bipartition(h, m, 0.0);
  EXPECT_EQ(r.partition.num_nodes(), h.num_nodes());
  EXPECT_TRUE(std::isfinite(r.conductance));
  EXPECT_GE(r.conductance, 0.0);
  EXPECT_DOUBLE_EQ(r.conductance, part::conductance(h, r.partition));
}

TEST(SweepCut, NormalizedObjectiveMinimizesConductance) {
  const graph::Hypergraph h = make_netlist(120, 21);
  core::MeloOptions m;
  m.num_eigenvectors = 8;
  m.num_starts = 3;

  core::MeloOptions norm = m;
  norm.objective = core::ObjectiveModel::kNormalizedSymmetric;
  const core::MeloBipartitionResult sweep =
      core::melo_bipartition(h, norm, 0.25);

  part::FmOptions fo;
  fo.balance = {0.25, 0.75};
  const part::FmResult fm = part::fm_bipartition(h, fo);
  const double fm_phi = part::conductance(h, fm.partition);

  EXPECT_GT(sweep.conductance, 0.0);
  EXPECT_LE(sweep.conductance, fm_phi + 1e-12)
      << "sweep cut should not lose to the FM split on its own objective";
}

TEST(CacheKeys, ObjectiveLivesInADisjointDomain) {
  const graph::Hypergraph h = make_netlist(60, 11);
  spectral::EmbeddingOptions base;
  base.count = 8;
  spectral::EmbeddingOptions norm = base;
  norm.objective = linalg::ObjectiveModel::kNormalizedSymmetric;

  using Cache = service::EmbeddingCache;
  const Fingerprint k_default = Cache::netlist_key(
      h, model::NetModel::kPartitioningSpecific, 0, base, 8);
  const Fingerprint k_norm = Cache::netlist_key(
      h, model::NetModel::kPartitioningSpecific, 0, norm, 8);
  EXPECT_NE(k_default, k_norm);
  // Same inputs, same key: the default domain is stable.
  EXPECT_EQ(k_default, Cache::netlist_key(
                           h, model::NetModel::kPartitioningSpecific, 0,
                           base, 8));

  const graph::Graph g =
      model::clique_expand(h, model::NetModel::kPartitioningSpecific);
  EXPECT_NE(Cache::eigen_key(g, base, 8), Cache::eigen_key(g, norm, 8));
}

TEST(CacheKeys, UnnormalizedWarmedCacheMissesUnderNormalized) {
  const graph::Hypergraph h = make_netlist(50, 13);
  const model::CliqueModel cm(h, model::NetModel::kPartitioningSpecific);
  service::EmbeddingCache cache;
  spectral::EmbeddingOptions opts;
  opts.count = 6;

  cache.compute(cm, opts, nullptr, nullptr);  // cold: miss + insert
  cache.compute(cm, opts, nullptr, nullptr);  // warm: hit
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  spectral::EmbeddingOptions norm = opts;
  norm.objective = linalg::ObjectiveModel::kNormalizedSymmetric;
  const spectral::EigenBasis nb = cache.compute(cm, norm, nullptr, nullptr);
  EXPECT_EQ(cache.stats().misses, 2u)
      << "a normalized request must not hit the unnormalized entry";
  EXPECT_EQ(cache.stats().hits, 1u);
  // And the normalized basis really is the spectrum of a different
  // operator: every nontrivial eigenvalue of N is <= 2.
  ASSERT_GE(nb.dimension(), 2u);
  EXPECT_LE(nb.values.back(), 2.0 + 1e-8);
}

TEST(BasisStore, ObjectiveTokenRoundTripsThroughTheHeader) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("specpart_objhdr_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  spectral::EigenBasis b;
  b.n = 9;
  b.requested = 3;
  b.converged = true;
  b.converged_pairs = 3;
  b.values = {0.0, 0.3, 0.9};
  b.vectors = linalg::DenseMatrix(9, 3);
  Rng rng(17);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 9; ++i) b.vectors.at(i, j) = rng.next_normal();
  Hasher hk;
  hk.mix_string("objhdr");
  const Fingerprint key = hk.digest();

  const std::string def_path = dir + "/default.eb";
  const std::string norm_path = dir + "/normalized.eb";
  storage::write_basis_file(def_path, key, b, "scalar", "flat");
  storage::write_basis_file(norm_path, key, b, "scalar", "flat",
                            "normalized");

  const auto def_hdr = storage::read_basis_header(def_path);
  ASSERT_TRUE(def_hdr.has_value());
  EXPECT_EQ(def_hdr->objective_token, "unnormalized");
  const auto norm_hdr = storage::read_basis_header(norm_path);
  ASSERT_TRUE(norm_hdr.has_value());
  EXPECT_EQ(norm_hdr->objective_token, "normalized");
  EXPECT_EQ(norm_hdr->solver_token, "scalar");

  // Default files keep the pre-extension layout: the zone is all zeros,
  // and spelling the default token out loud writes identical bytes.
  std::ifstream def_in(def_path, std::ios::binary);
  std::vector<char> def_bytes((std::istreambuf_iterator<char>(def_in)),
                              std::istreambuf_iterator<char>());
  ASSERT_GE(def_bytes.size(), storage::kHeaderBytes);
  for (std::size_t i = 128; i < 160; ++i)
    EXPECT_EQ(def_bytes[i], 0) << "extension byte " << i;
  const std::string spelled_path = dir + "/spelled.eb";
  storage::write_basis_file(spelled_path, key, b, "scalar", "flat",
                            "unnormalized");
  std::ifstream spelled_in(spelled_path, std::ios::binary);
  std::vector<char> spelled_bytes(
      (std::istreambuf_iterator<char>(spelled_in)),
      std::istreambuf_iterator<char>());
  EXPECT_EQ(def_bytes, spelled_bytes);

  // The payload reads back bit-identical either way, and the extension
  // zone is integrity-checked: flipping one token byte invalidates the
  // header instead of decoding a wrong objective.
  const spectral::EigenBasis r = storage::read_basis_columns(norm_path, 0);
  EXPECT_EQ(r.values[1], b.values[1]);
  std::fstream corrupt(norm_path,
                       std::ios::binary | std::ios::in | std::ios::out);
  corrupt.seekp(130);
  corrupt.put('x');
  corrupt.close();
  EXPECT_FALSE(storage::read_basis_header(norm_path).has_value());

  fs::remove_all(dir);
}

TEST(Protocol, ObjectiveFieldRoundTripsAndDefaultsStayBare) {
  service::PartitionRequest req;
  req.id = "obj";
  req.k = 2;
  req.graph = make_netlist(20, 5);

  // Default objective: the wire bytes carry no objective token at all.
  std::ostringstream def_wire;
  service::write_request(req, def_wire);
  EXPECT_EQ(def_wire.str().find("objective="), std::string::npos);

  req.pipeline.objective = core::ObjectiveModel::kNormalizedSymmetric;
  std::ostringstream wire;
  service::write_request(req, wire);
  EXPECT_NE(wire.str().find(" objective=normalized"), std::string::npos);

  std::istringstream in(wire.str());
  const std::optional<service::PartitionRequest> parsed =
      service::read_request(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pipeline.objective,
            core::ObjectiveModel::kNormalizedSymmetric);
  std::ostringstream rewire;
  service::write_request(*parsed, rewire);
  EXPECT_EQ(wire.str(), rewire.str());
}

TEST(Protocol, UnknownObjectiveTokenIsABadRequest) {
  service::PartitionRequest req;
  req.id = "obj";
  req.k = 2;
  req.graph = make_netlist(20, 5);
  req.pipeline.objective = core::ObjectiveModel::kNormalizedSymmetric;
  std::ostringstream wire;
  service::write_request(req, wire);
  std::string bytes = wire.str();
  const std::size_t pos = bytes.find("objective=normalized");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, std::string("objective=normalized").size(),
                "objective=sharpened");
  std::istringstream in(bytes);
  try {
    service::read_request(in);
    FAIL() << "unknown objective token must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad_request"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sharpened"), std::string::npos);
  }
}

TEST(Service, NormalizedRequestsServeAndGateTheMetrics) {
  service::ServiceOptions opts;
  opts.num_workers = 0;
  service::PartitionService svc(opts);

  service::PartitionRequest req;
  req.id = "default";
  req.k = 2;
  req.graph = make_netlist(40, 19);
  const service::PartitionResponse def_resp = svc.execute(req);
  EXPECT_TRUE(def_resp.ok());

  // Default traffic: the METRICS key set is byte-compatible with the
  // pre-objective frame (no objective_* keys at all).
  for (const auto& [key, value] : svc.snapshot().key_values())
    EXPECT_EQ(key.find("objective"), std::string::npos) << key;

  req.id = "normalized";
  req.pipeline.objective = core::ObjectiveModel::kNormalizedSymmetric;
  const service::PartitionResponse resp = svc.execute(req);
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.assignment.size(), req.graph.num_nodes());

  const service::MetricsSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.objective_normalized_requests, 1u);
  bool found = false;
  for (const auto& [key, value] : snap.key_values())
    if (key == "objective_normalized_requests") {
      found = true;
      EXPECT_EQ(value, 1.0);
    }
  EXPECT_TRUE(found);
}

TEST(AutoDimension, GapRatioSelectsBetweenTwoAndTheProbeCap) {
  const graph::Hypergraph h = make_netlist(80, 23);
  core::MeloOptions m;
  m.num_eigenvectors = 0;  // automatic
  const std::vector<core::MeloOrderingRun> runs = core::melo_orderings(h, m);
  ASSERT_FALSE(runs.empty());
  EXPECT_GE(runs[0].eigenvectors_used, 2u);
  EXPECT_LE(runs[0].eigenvectors_used, 16u);
  // Deterministic: the same input picks the same d.
  const std::vector<core::MeloOrderingRun> again = core::melo_orderings(h, m);
  EXPECT_EQ(runs[0].eigenvectors_used, again[0].eigenvectors_used);
  // And the auto pipeline completes end to end under both objectives.
  const core::MeloBipartitionResult r = core::melo_bipartition(h, m, 0.3);
  EXPECT_EQ(r.partition.num_nodes(), h.num_nodes());
  core::MeloOptions norm = m;
  norm.objective = core::ObjectiveModel::kNormalizedSymmetric;
  const core::MeloBipartitionResult rn = core::melo_bipartition(h, norm, 0.3);
  EXPECT_GT(rn.conductance, 0.0);
}

TEST(NormalizedSolve, FlatAndMultilevelAgreeAndThreadsAreBitIdentical) {
  const graph::Hypergraph h = make_netlist(600, 31);
  const model::CliqueModel cm(h, model::NetModel::kPartitioningSpecific);
  const linalg::SymCsrMatrix& n =
      cm.operator_matrix(linalg::ObjectiveModel::kNormalizedSymmetric);

  spectral::EmbeddingOptions flat;
  flat.count = 6;
  flat.objective = linalg::ObjectiveModel::kNormalizedSymmetric;
  spectral::EmbeddingOptions ml = flat;
  ml.solver.strategy = linalg::SolverStrategy::kMultilevel;

  const spectral::EigenBasis fb = spectral::compute_eigenbasis(n, flat);
  const spectral::EigenBasis mb = spectral::compute_eigenbasis(n, ml);
  ASSERT_EQ(fb.dimension(), mb.dimension());
  for (std::size_t j = 0; j < fb.dimension(); ++j)
    EXPECT_NEAR(fb.values[j], mb.values[j],
                ml.solver.ml_refine_tolerance * std::max(1.0, fb.values[j]))
        << "eigenvalue " << j;

  // The V-cycle over the normalized operator (general Galerkin coarse
  // operators) keeps the fixed-block determinism contract: 1, 2 and 8
  // threads return bit-identical bases.
  spectral::EigenBasis per_threads[3];
  const std::size_t thread_counts[3] = {1, 2, 8};
  for (std::size_t t = 0; t < 3; ++t) {
    spectral::EmbeddingOptions o = ml;
    o.parallel = ParallelConfig::with_threads(thread_counts[t]);
    per_threads[t] = spectral::compute_eigenbasis(n, o);
  }
  for (std::size_t t = 1; t < 3; ++t) {
    ASSERT_EQ(per_threads[t].dimension(), per_threads[0].dimension());
    for (std::size_t j = 0; j < per_threads[0].dimension(); ++j) {
      EXPECT_EQ(per_threads[t].values[j], per_threads[0].values[j]);
      for (std::size_t i = 0; i < per_threads[0].n; ++i)
        EXPECT_EQ(per_threads[t].vectors.at(i, j),
                  per_threads[0].vectors.at(i, j))
            << "threads=" << thread_counts[t] << " entry (" << i << ", "
            << j << ")";
    }
  }
}

}  // namespace
}  // namespace specpart
