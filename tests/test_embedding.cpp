// Tests for the spectral embedding driver.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "spectral/embedding.h"

namespace specpart::spectral {
namespace {

graph::Graph path(std::size_t n) {
  std::vector<graph::Edge> edges;
  for (graph::NodeId i = 0; i + 1 < n; ++i)
    edges.push_back({i, static_cast<graph::NodeId>(i + 1), 1.0});
  return graph::Graph(n, edges);
}

TEST(Embedding, PathEigenvaluesKnown) {
  const std::size_t n = 16;
  EmbeddingOptions opts;
  opts.count = 4;
  const EigenBasis basis = compute_eigenbasis(path(n), opts);
  ASSERT_EQ(basis.dimension(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(k) /
                             static_cast<double>(n));
    EXPECT_NEAR(basis.values[k], expected, 1e-8) << "k=" << k;
  }
}

TEST(Embedding, SkipTrivialDropsConstantVector) {
  EmbeddingOptions opts;
  opts.count = 1;
  opts.skip_trivial = true;
  const EigenBasis basis = compute_eigenbasis(path(10), opts);
  ASSERT_EQ(basis.dimension(), 1u);
  EXPECT_GT(basis.values[0], 1e-6);  // lambda_2, not lambda_1 = 0
  // Fiedler vector of a path is monotone.
  const linalg::Vec f = basis.vectors.col(0);
  const bool increasing = f[1] > f[0];
  for (std::size_t i = 1; i < f.size(); ++i)
    EXPECT_EQ(f[i] > f[i - 1], increasing) << "position " << i;
}

TEST(Embedding, TraceIsSumOfAllEigenvalues) {
  const graph::Graph g = path(8);
  EmbeddingOptions opts;
  opts.count = 8;
  const EigenBasis basis = compute_eigenbasis(g, opts);
  double sum = 0.0;
  for (double v : basis.values) sum += v;
  EXPECT_NEAR(basis.laplacian_trace, sum, 1e-9);
  EXPECT_NEAR(basis.laplacian_trace, 2.0 * g.total_edge_weight(), 1e-12);
}

TEST(Embedding, LanczosPathAgreesWithDense) {
  // Force the sparse path by setting a tiny dense threshold.
  const graph::Graph g = path(200);
  EmbeddingOptions dense_opts;
  dense_opts.count = 5;
  dense_opts.solver.dense_threshold = 1000;
  EmbeddingOptions sparse_opts = dense_opts;
  sparse_opts.solver.dense_threshold = 0;
  const EigenBasis a = compute_eigenbasis(g, dense_opts);
  const EigenBasis b = compute_eigenbasis(g, sparse_opts);
  ASSERT_TRUE(b.converged);
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_NEAR(a.values[j], b.values[j], 1e-6) << "pair " << j;
}

TEST(Embedding, CountClampedToN) {
  EmbeddingOptions opts;
  opts.count = 100;
  const EigenBasis basis = compute_eigenbasis(path(6), opts);
  EXPECT_EQ(basis.dimension(), 6u);
}

TEST(Embedding, VectorsAreUnitNorm) {
  EmbeddingOptions opts;
  opts.count = 3;
  const EigenBasis basis = compute_eigenbasis(path(30), opts);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(linalg::norm(basis.vectors.col(j)), 1.0, 1e-9);
}

}  // namespace
}  // namespace specpart::spectral
