// Tests for dense vectors/matrices (linalg/dense.h).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense.h"
#include "util/rng.h"

namespace specpart::linalg {
namespace {

TEST(VecOps, DotAndNorm) {
  const Vec a{1, 2, 3};
  const Vec b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm_sq(a), 14.0);
  EXPECT_DOUBLE_EQ(norm(a), std::sqrt(14.0));
}

TEST(VecOps, Axpy) {
  Vec y{1, 1, 1};
  const Vec x{1, 2, 3};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(VecOps, ScaleAndNormalize) {
  Vec x{3, 4};
  EXPECT_DOUBLE_EQ(normalize(x), 5.0);
  EXPECT_NEAR(norm(x), 1.0, 1e-15);
  Vec zero{0, 0};
  EXPECT_DOUBLE_EQ(normalize(zero), 0.0);  // untouched, no NaN
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VecOps, AddSub) {
  const Vec a{1, 2}, b{3, 5};
  EXPECT_DOUBLE_EQ(add(a, b)[1], 7.0);
  EXPECT_DOUBLE_EQ(sub(b, a)[0], 2.0);
}

TEST(DenseMatrix, IdentityMatvec) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  const Vec x{1, 2, 3};
  const Vec y = eye.matvec(x);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(DenseMatrix, MatvecKnown) {
  DenseMatrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const Vec y = m.matvec({1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const Vec z = m.matvec_transposed({1, 1});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(DenseMatrix, RowColRoundTrip) {
  DenseMatrix m(3, 2);
  m.at(1, 0) = 7;
  m.at(1, 1) = 8;
  const Vec r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 7.0);
  EXPECT_DOUBLE_EQ(r[1], 8.0);
  m.set_col(0, Vec{9, 10, 11});
  EXPECT_DOUBLE_EQ(m.col(0)[2], 11.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 10.0);
}

TEST(DenseMatrix, MultiplyAgainstManual) {
  DenseMatrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(DenseMatrix, TransposeInvolution) {
  Rng rng(5);
  DenseMatrix m(4, 3);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) m.at(i, j) = rng.next_normal();
  const DenseMatrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_EQ(mt.cols(), 4u);
  EXPECT_DOUBLE_EQ(m.max_abs_diff(mt.transposed()), 0.0);
}

TEST(DenseMatrix, FrobeniusNorm) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 3;
  m.at(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.frobenius(), 5.0);
}

TEST(DenseMatrix, MultiplyAssociativeWithIdentity) {
  Rng rng(9);
  DenseMatrix m(5, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) m.at(i, j) = rng.next_normal();
  const DenseMatrix eye = DenseMatrix::identity(5);
  EXPECT_LT(m.multiply(eye).max_abs_diff(m), 1e-15);
  EXPECT_LT(eye.multiply(m).max_abs_diff(m), 1e-15);
}

}  // namespace
}  // namespace specpart::linalg
