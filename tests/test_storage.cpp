// Tests for the persistent eigenbasis store (src/storage): on-disk format
// round-trips, hyperslab column reads, prefix reuse, corruption
// quarantine, crash-safe writes, byte-budgeted eviction, and the serving
// tier's restart/thread-count determinism with tier 2 enabled.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generator.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "service/service.h"
#include "storage/basis_store.h"
#include "storage/store_index.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"

namespace fs = std::filesystem;

namespace specpart::storage {
namespace {

/// Unique temp directory, removed (with contents) at scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::uint64_t counter = 0;
    path_ = (fs::temp_directory_path() /
             ("specpart_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Deterministic synthetic basis with full-entropy fp64 payloads (so a
/// byte-level round-trip failure cannot hide behind pretty values).
spectral::EigenBasis make_basis(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  spectral::EigenBasis b;
  b.n = n;
  b.requested = d;
  b.converged = true;
  b.converged_pairs = d;
  b.laplacian_trace = 12.5 + static_cast<double>(seed);
  b.values.resize(d);
  b.vectors = linalg::DenseMatrix(n, d);
  Rng rng(seed);
  for (std::size_t j = 0; j < d; ++j) {
    b.values[j] = static_cast<double>(j) + rng.next_double();
    for (std::size_t i = 0; i < n; ++i)
      b.vectors.at(i, j) = rng.next_normal();
  }
  return b;
}

Fingerprint make_key(std::uint64_t seed) {
  Hasher h;
  h.mix_string("test.storage.key");
  h.mix_u64(seed);
  return h.digest();
}

void expect_bit_equal(const spectral::EigenBasis& a,
                      const spectral::EigenBasis& b, std::size_t d) {
  ASSERT_EQ(b.dimension(), d);
  ASSERT_EQ(a.n, b.n);
  EXPECT_EQ(a.laplacian_trace, b.laplacian_trace);
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_EQ(a.values[j], b.values[j]) << "value " << j;
    for (std::size_t i = 0; i < a.n; ++i)
      EXPECT_EQ(a.vectors.at(i, j), b.vectors.at(i, j))
          << "entry (" << i << ", " << j << ")";
  }
}

TEST(BasisFile, RoundTripIsBitIdentical) {
  TempDir dir("roundtrip");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/a.eb";
  const spectral::EigenBasis b = make_basis(37, 10, 3);
  const Fingerprint key = make_key(3);
  write_basis_file(path, key, b, "scalar", "flat");

  BasisHeader hdr;
  const spectral::EigenBasis r = read_basis_columns(path, 0, &hdr);
  expect_bit_equal(b, r, 10);
  EXPECT_EQ(hdr.n, 37u);
  EXPECT_EQ(hdr.d, 10u);
  EXPECT_EQ(hdr.key, key);
  EXPECT_EQ(hdr.solver_token, "scalar");
  EXPECT_EQ(hdr.strategy_token, "flat");
  // The loaded basis presents as a clean zero-cost cache hit.
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.converged_pairs, 10u);
  EXPECT_FALSE(r.truncated);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_EQ(r.solve_flops, 0u);
  // The file size formula matches reality (the eviction accounting
  // depends on it).
  EXPECT_EQ(fs::file_size(path), basis_file_size(37, 10, kDefaultChunkCols));
}

TEST(BasisFile, HyperslabReadsAnyLeadingColumnRange) {
  TempDir dir("hyperslab");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/a.eb";
  const spectral::EigenBasis b = make_basis(23, 16, 5);
  write_basis_file(path, make_key(5), b, "scalar", "flat", {}, 4);

  // Every d_req in [1, 16]: chunk-interior, chunk-boundary, full.
  for (std::size_t d_req = 1; d_req <= 16; ++d_req) {
    const spectral::EigenBasis r = read_basis_columns(path, d_req);
    expect_bit_equal(b, r, d_req);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.converged_pairs, d_req);
  }
  // Asking beyond the stored spectrum is an input error, not garbage.
  EXPECT_THROW(read_basis_columns(path, 17), Error);
}

TEST(BasisFile, HeaderRejectsGarbageWithoutThrowing) {
  TempDir dir("garbage");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/junk.eb";
  std::ofstream(path, std::ios::binary) << "this is not a basis file";
  EXPECT_FALSE(read_basis_header(path).has_value());
  EXPECT_FALSE(read_basis_header(dir.path() + "/absent.eb").has_value());

  // A valid file truncated mid-chunk fails the exact-size check.
  const std::string full = dir.path() + "/full.eb";
  write_basis_file(full, make_key(1), make_basis(19, 8, 1), "scalar", "flat");
  const auto size = fs::file_size(full);
  fs::resize_file(full, size - 16);
  EXPECT_FALSE(read_basis_header(full).has_value());
}

TEST(BasisFile, FlippedByteFailsTheChunkChecksum) {
  TempDir dir("bitrot");
  fs::create_directories(dir.path());
  const std::string path = dir.path() + "/a.eb";
  write_basis_file(path, make_key(2), make_basis(19, 8, 2), "scalar", "flat");

  // Flip one byte in the last chunk's payload; the header stays valid,
  // so only the chunk checksum can catch it.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(-32, std::ios::end);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-32, std::ios::end);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();

  EXPECT_TRUE(read_basis_header(path).has_value());
  EXPECT_THROW(read_basis_columns(path, 0), Error);
  // ...but a hyperslab that stops before the corrupt chunk still serves.
  const spectral::EigenBasis r = read_basis_columns(path, 4);
  EXPECT_EQ(r.dimension(), 4u);
}

TEST(StoreIndex, StoreLoadAndRebuildOnOpen) {
  TempDir dir("index");
  const spectral::EigenBasis b = make_basis(29, 8, 7);
  const Fingerprint key = make_key(7);
  {
    StoreOptions opts;
    opts.dir = dir.path();
    StoreIndex index(opts);
    EXPECT_FALSE(index.load(key).has_value());  // miss on empty
    EXPECT_TRUE(index.store(key, b, "scalar", "flat"));
    EXPECT_TRUE(index.contains(key));
    EXPECT_TRUE(index.store(key, b, "scalar", "flat"));  // idempotent
    const StoreStats s = index.stats();
    EXPECT_EQ(s.spills, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.misses, 1u);
  }
  {
    // A fresh index over the same directory rebuilds from the files alone.
    StoreOptions opts;
    opts.dir = dir.path();
    StoreIndex index(opts);
    EXPECT_TRUE(index.contains(key));
    const auto loaded = index.load(key);
    ASSERT_TRUE(loaded.has_value());
    expect_bit_equal(b, *loaded, 8);
    EXPECT_EQ(index.stats().hits, 1u);
  }
}

TEST(StoreIndex, QuarantinesCorruptAndMisnamedEntriesOnOpen) {
  TempDir dir("quarantine");
  const Fingerprint key = make_key(11);
  {
    StoreOptions opts;
    opts.dir = dir.path();
    StoreIndex index(opts);
    index.store(key, make_basis(17, 8, 11), "scalar", "flat");
  }
  // Plant a garbage entry, a misnamed-but-valid entry (wrong content for
  // its name — must never be served), and an orphaned temp file.
  std::ofstream(dir.path() + "/" + make_key(12).hex() + ".eb",
                std::ios::binary)
      << "garbage";
  write_basis_file(dir.path() + "/" + make_key(13).hex() + ".eb",
                   make_key(14), make_basis(17, 8, 14), "scalar", "flat");
  std::ofstream(dir.path() + "/" + make_key(15).hex() + ".eb.tmp",
                std::ios::binary)
      << "half-written";

  StoreOptions opts;
  opts.dir = dir.path();
  StoreIndex index(opts);  // must not throw, must not abort
  EXPECT_TRUE(index.contains(key));
  EXPECT_FALSE(index.contains(make_key(12)));
  EXPECT_FALSE(index.contains(make_key(13)));
  const StoreStats s = index.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.corrupt_quarantined, 2u);

  // Quarantined files are renamed aside (evidence kept), temps removed.
  std::size_t quarantined = 0, temps = 0;
  for (const auto& de : fs::directory_iterator(dir.path())) {
    const std::string name = de.path().filename().string();
    if (name.size() > 12 &&
        name.substr(name.size() - 12) == ".quarantined")
      ++quarantined;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") ++temps;
  }
  EXPECT_EQ(quarantined, 2u);
  EXPECT_EQ(temps, 0u);
}

TEST(StoreIndex, ReadCorruptionQuarantinesAndDegradesToMiss) {
  TempDir dir("readrot");
  const Fingerprint key = make_key(21);
  StoreOptions opts;
  opts.dir = dir.path();
  StoreIndex index(opts);
  index.store(key, make_basis(17, 8, 21), "scalar", "flat");

  // Corrupt the published file in place (post-open bit rot).
  const std::string path = index.entry_path(key);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-16, std::ios::end);
  f.write("\xff", 1);
  f.close();

  EXPECT_FALSE(index.load(key).has_value());  // degraded, not thrown
  EXPECT_FALSE(index.contains(key));
  const StoreStats s = index.stats();
  EXPECT_EQ(s.corrupt_quarantined, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".quarantined"));
}

TEST(StoreIndex, EvictsLeastRecentlyUsedBeyondBudget) {
  TempDir dir("evict");
  const std::size_t entry_bytes = basis_file_size(16, 8, kDefaultChunkCols);
  StoreOptions opts;
  opts.dir = dir.path();
  opts.budget_bytes = 3 * entry_bytes;  // room for three entries
  StoreIndex index(opts);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(
        index.store(make_key(i), make_basis(16, 8, i), "scalar", "flat"));

  const StoreStats s = index.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_LE(s.bytes_on_disk, opts.budget_bytes);
  // Oldest two gone, newest three kept — and the files agree.
  EXPECT_FALSE(index.contains(make_key(0)));
  EXPECT_FALSE(index.contains(make_key(1)));
  for (std::uint64_t i = 2; i < 5; ++i) {
    EXPECT_TRUE(index.contains(make_key(i)));
    EXPECT_TRUE(fs::exists(index.entry_path(make_key(i))));
  }
  EXPECT_FALSE(fs::exists(index.entry_path(make_key(0))));
}

#ifdef SPECPART_FAULT_INJECTION

TEST(StorageFaults, ShortReadDegradesToQuarantinedMiss) {
  TempDir dir("shortread");
  const Fingerprint key = make_key(31);
  StoreOptions opts;
  opts.dir = dir.path();
  StoreIndex index(opts);
  index.store(key, make_basis(17, 8, 31), "scalar", "flat");

  fault::ScopedFaults guard;
  fault::arm("storage.short_read", 1);
  EXPECT_FALSE(index.load(key).has_value());
  EXPECT_EQ(fault::triggered("storage.short_read"), 1u);
  EXPECT_EQ(index.stats().corrupt_quarantined, 1u);
}

TEST(StorageFaults, ChecksumFlipDegradesToQuarantinedMiss) {
  TempDir dir("flip");
  const Fingerprint key = make_key(32);
  StoreOptions opts;
  opts.dir = dir.path();
  StoreIndex index(opts);
  index.store(key, make_basis(17, 8, 32), "scalar", "flat");

  fault::ScopedFaults guard;
  fault::arm("storage.checksum_flip", 1);
  EXPECT_FALSE(index.load(key).has_value());
  EXPECT_EQ(index.stats().corrupt_quarantined, 1u);
}

TEST(StorageFaults, EnospcOnSpillLeavesNoDebrisAndNoEntry) {
  TempDir dir("enospc");
  const Fingerprint key = make_key(33);
  StoreOptions opts;
  opts.dir = dir.path();
  StoreIndex index(opts);

  fault::ScopedFaults guard;
  fault::arm("storage.enospc", 1);
  EXPECT_FALSE(index.store(key, make_basis(17, 8, 33), "scalar", "flat"));
  EXPECT_EQ(index.stats().spill_failures, 1u);
  EXPECT_FALSE(index.contains(key));
  EXPECT_TRUE(fs::is_empty(dir.path()));

  // The same store succeeds once space is back.
  fault::reset();
  EXPECT_TRUE(index.store(key, make_basis(17, 8, 33), "scalar", "flat"));
  EXPECT_TRUE(index.load(key).has_value());
}

TEST(StorageFaults, CrashBeforeRenameNeverPublishesAndRecoversOnReopen) {
  TempDir dir("crash");
  const Fingerprint key = make_key(34);
  const spectral::EigenBasis b = make_basis(17, 8, 34);
  {
    StoreOptions opts;
    opts.dir = dir.path();
    StoreIndex index(opts);
    fault::ScopedFaults guard;
    fault::arm("storage.crash_before_rename", 1);
    EXPECT_FALSE(index.store(key, b, "scalar", "flat"));
    // The "crash" leaves the temp file exactly as a real crash would.
    EXPECT_TRUE(fs::exists(index.entry_path(key) + ".tmp"));
    EXPECT_FALSE(fs::exists(index.entry_path(key)));
    EXPECT_FALSE(index.contains(key));
  }
  // Reopen = restart: the orphan temp is swept, nothing is served from
  // it, and a clean store over the same key succeeds.
  StoreOptions opts;
  opts.dir = dir.path();
  StoreIndex index(opts);
  EXPECT_FALSE(fs::exists(index.entry_path(key) + ".tmp"));
  EXPECT_FALSE(index.contains(key));
  EXPECT_EQ(index.stats().corrupt_quarantined, 0u);
  EXPECT_TRUE(index.store(key, b, "scalar", "flat"));
  const auto loaded = index.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_bit_equal(b, *loaded, 8);
}

#endif  // SPECPART_FAULT_INJECTION

// ---- The serving tier with tier 2 enabled ------------------------------

graph::Hypergraph tier_netlist(std::uint64_t seed = 7) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 90;
  cfg.num_nets = 120;
  cfg.num_clusters = 4;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

service::PartitionRequest tier_request(std::uint64_t seed = 7,
                                       std::size_t d = 8) {
  service::PartitionRequest req;
  req.id = "t";
  req.graph = tier_netlist(seed);
  req.pipeline.num_eigenvectors = d;
  return req;
}

std::string wire(const service::PartitionResponse& resp) {
  std::ostringstream out;
  service::write_response(resp, out);
  return out.str();
}

TEST(ServiceTier2, ColdSpillThenDiskHitIsByteIdentical) {
  TempDir dir("tier");
  service::ServiceOptions opts;
  opts.num_workers = 0;
  opts.cache.cache_dir = dir.path();

  std::string cold;
  {
    service::PartitionService svc(opts);
    cold = wire(svc.execute(tier_request()));
    const service::MetricsSnapshot snap = svc.snapshot();
    EXPECT_TRUE(snap.storage.present);
    EXPECT_EQ(snap.storage.spills, 1u);
    EXPECT_EQ(snap.storage.disk_hits, 0u);
  }
  {
    // Fresh service, same dir: tier 1 is cold, tier 2 must serve.
    service::PartitionService svc(opts);
    Diagnostics diag;
    const std::string warm = wire(svc.execute(tier_request(), &diag));
    EXPECT_EQ(cold, warm);
    bool disk_hit = false, eigensolve = false;
    for (const StageStats& s : diag.stages()) {
      if (s.name == "embedding_cache_disk_hit") disk_hit = true;
      if (s.name == "eigensolve") eigensolve = true;
    }
    EXPECT_TRUE(disk_hit);
    EXPECT_FALSE(eigensolve);
    EXPECT_EQ(svc.snapshot().storage.disk_hits, 1u);
  }
}

TEST(ServiceTier2, PromotionServesFromMemoryOnTheSecondLookup) {
  TempDir dir("promote");
  service::ServiceOptions opts;
  opts.num_workers = 0;
  opts.cache.cache_dir = dir.path();
  {
    service::PartitionService svc(opts);
    svc.execute(tier_request());
  }
  service::PartitionService svc(opts);
  svc.execute(tier_request());  // disk hit + promotion
  svc.execute(tier_request());  // must now be a tier-1 hit
  const service::MetricsSnapshot snap = svc.snapshot();
  EXPECT_EQ(snap.storage.disk_hits, 1u);
  EXPECT_EQ(snap.cache_hits, 1u);
}

TEST(ServiceTier2, PrefixRequestAfterRestartStaysByteIdenticalToCold) {
  // d = 10 quantizes to 16; the restarted service must promote the full
  // 16-column basis (not a 10-column prefix), so a later d = 12 request
  // in the same bucket still gets the untruncated slice.
  TempDir dir("prefix");
  service::ServiceOptions opts;
  opts.num_workers = 0;
  opts.cache.cache_dir = dir.path();

  std::string cold10, cold12;
  {
    service::ServiceOptions cold_opts = opts;
    cold_opts.cache.cache_dir.clear();  // no tier: pure cold compute
    service::PartitionService svc(cold_opts);
    cold10 = wire(svc.execute(tier_request(7, 10)));
    cold12 = wire(svc.execute(tier_request(7, 12)));
  }
  {
    service::PartitionService svc(opts);
    EXPECT_EQ(cold10, wire(svc.execute(tier_request(7, 10))));
  }
  service::PartitionService svc(opts);  // restart
  Diagnostics diag;
  EXPECT_EQ(cold12, wire(svc.execute(tier_request(7, 12), &diag)));
  bool disk_hit = false;
  for (const StageStats& s : diag.stages())
    if (s.name == "embedding_cache_disk_hit") disk_hit = true;
  EXPECT_TRUE(disk_hit);
}

TEST(ServiceTier2, ByteIdenticalAcrossThreadCountsWithTierEnabled) {
  std::vector<std::string> cold_wires, warm_wires;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    TempDir dir("threads" + std::to_string(threads));
    service::ServiceOptions opts;
    opts.num_workers = 0;
    opts.cache.cache_dir = dir.path();
    opts.parallel = ParallelConfig::with_threads(threads);
    {
      service::PartitionService svc(opts);
      cold_wires.push_back(wire(svc.execute(tier_request())));
    }
    service::PartitionService svc(opts);  // warm restart, disk-served
    warm_wires.push_back(wire(svc.execute(tier_request())));
    EXPECT_EQ(svc.snapshot().storage.disk_hits, 1u);
  }
  for (std::size_t i = 1; i < cold_wires.size(); ++i)
    EXPECT_EQ(cold_wires[0], cold_wires[i]) << "cold lane " << i;
  for (std::size_t i = 0; i < warm_wires.size(); ++i)
    EXPECT_EQ(cold_wires[0], warm_wires[i]) << "warm lane " << i;
}

TEST(ServiceTier2, MetricsFrameIsByteStableWhenTierDisabled) {
  // A tier-less deployment must emit exactly the pre-storage METRICS
  // frame: no storage_* keys at all.
  service::ServiceOptions opts;
  opts.num_workers = 0;
  service::PartitionService svc(opts);
  svc.execute(tier_request());
  const service::MetricsSnapshot snap = svc.snapshot();
  EXPECT_FALSE(snap.storage.present);
  for (const auto& [key, value] : snap.key_values())
    EXPECT_EQ(key.rfind("storage_", 0), std::string::npos) << key;
  EXPECT_EQ(snap.render_text().find("storage"), std::string::npos);
}

}  // namespace
}  // namespace specpart::storage
