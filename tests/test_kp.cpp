// Tests for the KP directional-cosine k-way baseline.
#include <gtest/gtest.h>

#include "graph/generator.h"
#include "part/objectives.h"
#include "spectral/kp.h"
#include "util/error.h"

namespace specpart::spectral {
namespace {

graph::Hypergraph planted(std::size_t modules, std::size_t clusters,
                          std::uint64_t seed) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules * 3;
  cfg.num_clusters = clusters;
  cfg.subclusters_per_cluster = 1;
  cfg.p_subcluster = 0.92;
  cfg.p_cluster = 0.0;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

TEST(Kp, ProducesKNonEmptyClusters) {
  const graph::Hypergraph h = planted(90, 3, 1);
  for (std::uint32_t k : {2u, 3u, 4u, 6u}) {
    const part::Partition p = kp_partition(h, k, KpOptions{});
    EXPECT_EQ(p.k(), k);
    EXPECT_EQ(p.num_nonempty(), k) << "k=" << k;
  }
}

TEST(Kp, BeatsRoundRobinOnPlanted) {
  const graph::Hypergraph h = planted(120, 4, 2);
  const part::Partition p = kp_partition(h, 4, KpOptions{});
  std::vector<std::uint32_t> rr(h.num_nodes());
  for (std::size_t i = 0; i < rr.size(); ++i) rr[i] = i % 4;
  EXPECT_LT(part::scaled_cost(h, p),
            part::scaled_cost(h, part::Partition(rr, 4)));
}

TEST(Kp, DeterministicForFixedSeed) {
  const graph::Hypergraph h = planted(60, 3, 3);
  const part::Partition a = kp_partition(h, 3, KpOptions{});
  const part::Partition b = kp_partition(h, 3, KpOptions{});
  EXPECT_EQ(a.assignment(), b.assignment());
}

TEST(Kp, RejectsBadK) {
  const graph::Hypergraph h = planted(20, 2, 4);
  EXPECT_THROW(kp_partition(h, 1, KpOptions{}), Error);
  EXPECT_THROW(kp_partition(h, 100, KpOptions{}), Error);
}

TEST(Kp, NetModelConfigurable) {
  const graph::Hypergraph h = planted(60, 2, 5);
  for (model::NetModel m : {model::NetModel::kStandard,
                            model::NetModel::kPartitioningSpecific,
                            model::NetModel::kFrankle}) {
    KpOptions opts;
    opts.net_model = m;
    const part::Partition p = kp_partition(h, 2, opts);
    EXPECT_EQ(p.num_nonempty(), 2u) << model::net_model_name(m);
  }
}

TEST(Kp, TwoCliquesExactRecovery) {
  // Two 6-cliques joined by one net: the 2-way KP partition must cut only
  // the bridge.
  std::vector<std::vector<graph::NodeId>> nets;
  for (graph::NodeId i = 0; i < 6; ++i)
    for (graph::NodeId j = i + 1; j < 6; ++j) nets.push_back({i, j});
  for (graph::NodeId i = 6; i < 12; ++i)
    for (graph::NodeId j = i + 1; j < 12; ++j) nets.push_back({i, j});
  nets.push_back({0, 6});
  const graph::Hypergraph h(12, std::move(nets));
  const part::Partition p = kp_partition(h, 2, KpOptions{});
  EXPECT_DOUBLE_EQ(part::cut_nets(h, p), 1.0);
}

}  // namespace
}  // namespace specpart::spectral
