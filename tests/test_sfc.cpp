// Tests for the spacefilling-curve machinery (Hilbert/Morton indices and
// embedding orderings).
#include <gtest/gtest.h>

#include <set>

#include "graph/generator.h"
#include "part/ordering.h"
#include "spectral/sfc.h"
#include "util/rng.h"

namespace specpart::spectral {
namespace {

TEST(Hilbert, Dim2Order1IsTheClassicU) {
  // The 2x2 Hilbert curve visits (0,0), (0,1), (1,1), (1,0) in some
  // orientation: indices 0..3, each cell distinct.
  std::set<unsigned long long> seen;
  for (std::uint32_t x = 0; x < 2; ++x)
    for (std::uint32_t y = 0; y < 2; ++y)
      seen.insert(
          static_cast<unsigned long long>(hilbert_index({x, y}, 1)));
  EXPECT_EQ(seen.size(), 4u);
  for (auto v : seen) EXPECT_LT(v, 4ull);
}

class HilbertBijection
    : public ::testing::TestWithParam<std::pair<std::size_t, unsigned>> {};

TEST_P(HilbertBijection, IndicesAreAPermutationOfTheLattice) {
  const auto [d, bits] = GetParam();
  const std::size_t side = 1u << bits;
  std::size_t total = 1;
  for (std::size_t i = 0; i < d; ++i) total *= side;
  std::set<unsigned long long> seen;
  std::vector<std::uint32_t> coords(d, 0);
  for (std::size_t cell = 0; cell < total; ++cell) {
    std::size_t rest = cell;
    for (std::size_t i = 0; i < d; ++i) {
      coords[i] = static_cast<std::uint32_t>(rest % side);
      rest /= side;
    }
    const auto key =
        static_cast<unsigned long long>(hilbert_index(coords, bits));
    EXPECT_LT(key, total);
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), total);
}

INSTANTIATE_TEST_SUITE_P(
    Lattices, HilbertBijection,
    ::testing::Values(std::make_pair<std::size_t, unsigned>(2, 1),
                      std::make_pair<std::size_t, unsigned>(2, 3),
                      std::make_pair<std::size_t, unsigned>(3, 2),
                      std::make_pair<std::size_t, unsigned>(4, 2),
                      std::make_pair<std::size_t, unsigned>(5, 1)));

TEST(Hilbert, ConsecutiveCellsAreLatticeNeighbours) {
  // The defining Hilbert property: consecutive curve positions differ by
  // exactly 1 in exactly one coordinate.
  const unsigned bits = 3;
  const std::size_t d = 2;
  const std::size_t side = 1u << bits;
  std::vector<std::vector<std::uint32_t>> by_index(side * side);
  for (std::uint32_t x = 0; x < side; ++x)
    for (std::uint32_t y = 0; y < side; ++y) {
      const auto key =
          static_cast<std::size_t>(hilbert_index({x, y}, bits));
      by_index[key] = {x, y};
    }
  for (std::size_t i = 1; i < by_index.size(); ++i) {
    std::size_t manhattan = 0;
    for (std::size_t c = 0; c < d; ++c) {
      const std::int64_t delta =
          static_cast<std::int64_t>(by_index[i][c]) -
          static_cast<std::int64_t>(by_index[i - 1][c]);
      manhattan += static_cast<std::size_t>(delta < 0 ? -delta : delta);
    }
    EXPECT_EQ(manhattan, 1u) << "between index " << i - 1 << " and " << i;
  }
}

TEST(Hilbert, ConsecutiveCells3D) {
  // The unit-step property also holds in 3 dimensions.
  const unsigned bits = 2;
  const std::size_t side = 1u << bits;
  std::vector<std::vector<std::uint32_t>> by_index(side * side * side);
  for (std::uint32_t x = 0; x < side; ++x)
    for (std::uint32_t y = 0; y < side; ++y)
      for (std::uint32_t z = 0; z < side; ++z) {
        const auto key =
            static_cast<std::size_t>(hilbert_index({x, y, z}, bits));
        by_index[key] = {x, y, z};
      }
  for (std::size_t i = 1; i < by_index.size(); ++i) {
    std::size_t manhattan = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      const std::int64_t delta =
          static_cast<std::int64_t>(by_index[i][c]) -
          static_cast<std::int64_t>(by_index[i - 1][c]);
      manhattan += static_cast<std::size_t>(delta < 0 ? -delta : delta);
    }
    EXPECT_EQ(manhattan, 1u) << "between index " << i - 1 << " and " << i;
  }
}

TEST(Morton, BijectiveOnSmallLattice) {
  std::set<unsigned long long> seen;
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y)
      seen.insert(static_cast<unsigned long long>(morton_index({x, y}, 3)));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(CurveOrdering, ReturnsPermutation) {
  linalg::DenseMatrix embedding(50, 3);
  std::uint64_t state = 9;
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      embedding.at(i, j) =
          static_cast<double>(splitmix64(state) % 1000) / 1000.0;
  for (CurveKind kind : {CurveKind::kHilbert, CurveKind::kMorton}) {
    const part::Ordering o = curve_ordering(embedding, kind);
    EXPECT_TRUE(part::is_permutation(o, 50));
  }
}

TEST(CurveOrdering, OneDimensionSortsByCoordinate) {
  linalg::DenseMatrix embedding(5, 1);
  const double values[] = {0.9, 0.1, 0.5, 0.3, 0.7};
  for (std::size_t i = 0; i < 5; ++i) embedding.at(i, 0) = values[i];
  const part::Ordering o = curve_ordering(embedding, CurveKind::kMorton);
  EXPECT_EQ(o, (part::Ordering{1, 3, 2, 4, 0}));
}

TEST(SfcOrdering, LocalityOnNetlist) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = 100;
  cfg.num_nets = 260;
  cfg.num_clusters = 2;
  cfg.subclusters_per_cluster = 1;
  cfg.p_subcluster = 0.95;
  cfg.p_cluster = 0.0;
  cfg.seed = 23;
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  SfcOptions opts;
  opts.dimensions = 2;
  const part::Ordering o = sfc_ordering(h, opts);
  ASSERT_TRUE(part::is_permutation(o, h.num_nodes()));
  // Splitting the SFC ordering in the middle should roughly recover the
  // planted 2-block structure: the cut must be far below a random split.
  const auto cuts = part::prefix_cuts(h, o);
  const double mid_cut = cuts[h.num_nodes() / 2];
  EXPECT_LT(mid_cut, 0.35 * static_cast<double>(h.num_nets()));
}

}  // namespace
}  // namespace specpart::spectral
