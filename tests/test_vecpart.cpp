// Tests for the vector partitioning problem module.
#include <gtest/gtest.h>

#include "core/vecpart.h"
#include "util/error.h"

namespace specpart::core {
namespace {

VectorInstance make_instance(std::vector<std::vector<double>> rows) {
  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(rows.size(), rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < rows[i].size(); ++j)
      inst.vectors.at(i, j) = rows[i][j];
  return inst;
}

TEST(VecPart, SubsetVectors) {
  const VectorInstance inst =
      make_instance({{1, 0}, {0, 1}, {1, 1}, {-1, 0}});
  const part::Partition p({0, 0, 1, 1}, 2);
  const auto sums = subset_vectors(inst, p);
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_DOUBLE_EQ(sums[0][0], 1.0);
  EXPECT_DOUBLE_EQ(sums[0][1], 1.0);
  EXPECT_DOUBLE_EQ(sums[1][0], 0.0);
  EXPECT_DOUBLE_EQ(sums[1][1], 1.0);
}

TEST(VecPart, SumOfSquaredMagnitudes) {
  const VectorInstance inst = make_instance({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(sum_of_squared_magnitudes(inst, part::Partition({0, 0}, 1)),
                   25.0);
  EXPECT_DOUBLE_EQ(sum_of_squared_magnitudes(inst, part::Partition({0, 1}, 2)),
                   9.0 + 16.0);
}

TEST(VecPart, MaxSumGroupsAlignedVectors) {
  // Two aligned pairs; max-sum wants aligned vectors together.
  const VectorInstance inst =
      make_instance({{1, 0}, {1, 0}, {0, 1}, {0, 1}});
  const part::Partition p = solve_max_sum_exact(inst, 2, 2, 2);
  EXPECT_EQ(p.cluster_of(0), p.cluster_of(1));
  EXPECT_EQ(p.cluster_of(2), p.cluster_of(3));
  EXPECT_NE(p.cluster_of(0), p.cluster_of(2));
  EXPECT_DOUBLE_EQ(sum_of_squared_magnitudes(inst, p), 8.0);
}

TEST(VecPart, MinSumSeparatesAlignedVectors) {
  const VectorInstance inst =
      make_instance({{1, 0}, {1, 0}, {-1, 0}, {-1, 0}});
  const part::Partition p = solve_min_sum_exact(inst, 2, 2, 2);
  // Best min-sum pairs each +x with a -x: both subset sums are zero.
  EXPECT_DOUBLE_EQ(sum_of_squared_magnitudes(inst, p), 0.0);
}

TEST(VecPart, ExactRespectsSizeConstraints) {
  const VectorInstance inst =
      make_instance({{5, 0}, {5, 0}, {5, 0}, {0.1, 0}});
  // Unconstrained max-sum puts everything in one cluster; with sizes
  // forced to 2+2 it cannot.
  const part::Partition p = solve_max_sum_exact(inst, 2, 2, 2);
  EXPECT_EQ(p.cluster_size(0), 2u);
  EXPECT_EQ(p.cluster_size(1), 2u);
}

TEST(VecPart, UnconstrainedMaxSumMergesEverything) {
  const VectorInstance inst = make_instance({{1, 0}, {1, 0}, {1, 0}});
  const part::Partition p = solve_max_sum_exact(inst, 2);
  // All three vectors aligned: one cluster of 3 dominates (9 > any split).
  EXPECT_EQ(std::max(p.cluster_size(0), p.cluster_size(1)), 3u);
}

TEST(VecPart, ExactRejectsHugeInstances) {
  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(30, 2);
  EXPECT_THROW(solve_max_sum_exact(inst, 4), Error);
}

TEST(VecPart, ExactRejectsInfeasibleConstraints) {
  const VectorInstance inst = make_instance({{1, 0}, {0, 1}});
  EXPECT_THROW(solve_max_sum_exact(inst, 2, 2, 2), Error);
}

TEST(VpLocalSearch, NeverDecreasesObjective) {
  const VectorInstance inst = make_instance(
      {{1, 0}, {0.8, 0.2}, {0, 1}, {0.1, 0.9}, {-1, 0}, {0, -1}});
  const part::Partition init({0, 1, 0, 1, 0, 1}, 2);
  const double before = sum_of_squared_magnitudes(inst, init);
  const part::Partition improved = vp_local_search_max_sum(inst, init);
  EXPECT_GE(sum_of_squared_magnitudes(inst, improved), before - 1e-12);
}

TEST(VpLocalSearch, ReachesExactOptimumOnEasyInstance) {
  // Two aligned groups; local search from the interleaved start must find
  // the grouped optimum under 2+2 size bounds.
  const VectorInstance inst =
      make_instance({{1, 0}, {0, 1}, {1, 0.1}, {0.1, 1}});
  const part::Partition init({0, 0, 1, 1}, 2);
  const part::Partition improved =
      vp_local_search_max_sum(inst, init, 2, 2);
  const part::Partition exact = solve_max_sum_exact(inst, 2, 2, 2);
  EXPECT_NEAR(sum_of_squared_magnitudes(inst, improved),
              sum_of_squared_magnitudes(inst, exact), 1e-12);
  EXPECT_EQ(improved.cluster_of(0), improved.cluster_of(2));
}

TEST(VpLocalSearch, RespectsSizeBounds) {
  const VectorInstance inst =
      make_instance({{5, 0}, {5, 0}, {5, 0}, {5, 0}, {0, 0.1}, {0, 0.2}});
  // Unconstrained optimum merges everything; bounds 2..4 forbid it.
  const part::Partition init({0, 0, 0, 1, 1, 1}, 2);
  const part::Partition improved =
      vp_local_search_max_sum(inst, init, 2, 4);
  for (std::uint32_t c = 0; c < 2; ++c) {
    EXPECT_GE(improved.cluster_size(c), 2u);
    EXPECT_LE(improved.cluster_size(c), 4u);
  }
}

}  // namespace
}  // namespace specpart::core
