// Tests for the MELO greedy ordering and its end-to-end drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/drivers.h"
#include "core/melo.h"
#include "core/reduction.h"
#include "graph/generator.h"
#include "part/objectives.h"
#include "spectral/sb.h"
#include "util/error.h"

namespace specpart::core {
namespace {

VectorInstance make_instance(std::vector<std::vector<double>> rows) {
  VectorInstance inst;
  inst.vectors = linalg::DenseMatrix(rows.size(), rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < rows[i].size(); ++j)
      inst.vectors.at(i, j) = rows[i][j];
  return inst;
}

graph::Hypergraph planted(std::size_t modules, std::size_t clusters,
                          std::uint64_t seed, double p_local = 0.9) {
  graph::GeneratorConfig cfg;
  cfg.num_modules = modules;
  cfg.num_nets = modules * 2;
  cfg.num_clusters = clusters;
  cfg.subclusters_per_cluster = 2;
  cfg.p_subcluster = p_local - 0.2;
  cfg.p_cluster = 0.2;
  cfg.seed = seed;
  return graph::generate_netlist(cfg);
}

TEST(MeloOrder, IsPermutationForAllSchemes) {
  const VectorInstance inst = make_instance(
      {{1, 0}, {0.9, 0.1}, {0, 1}, {-0.5, 0.5}, {0.2, -0.8}, {0.5, 0.5}});
  for (SelectionRule s : {SelectionRule::kMagnitude,
                          SelectionRule::kProjection,
                          SelectionRule::kCosine}) {
    MeloOrderingOptions opts;
    opts.selection = s;
    const part::Ordering o = melo_order_vectors(inst, opts);
    EXPECT_TRUE(part::is_permutation(o, 6)) << selection_rule_name(s);
  }
}

TEST(MeloOrder, StartsFromLongestVector) {
  const VectorInstance inst = make_instance({{1, 0}, {5, 0}, {2, 0}});
  const part::Ordering o = melo_order_vectors(inst, MeloOrderingOptions{});
  EXPECT_EQ(o.front(), 1u);
}

TEST(MeloOrder, StartRankPicksAlternateSeeds) {
  const VectorInstance inst = make_instance({{1, 0}, {5, 0}, {2, 0}});
  MeloOrderingOptions opts;
  opts.start_rank = 1;
  EXPECT_EQ(melo_order_vectors(inst, opts).front(), 2u);
  opts.start_rank = 2;
  EXPECT_EQ(melo_order_vectors(inst, opts).front(), 0u);
  opts.start_rank = 99;  // clamped to last
  EXPECT_EQ(melo_order_vectors(inst, opts).front(), 0u);
}

TEST(MeloOrder, MagnitudeSchemeGroupsAlignedVectors) {
  // Vectors split into +x and +y groups: greedy magnitude keeps growing in
  // one direction before crossing over.
  const VectorInstance inst = make_instance(
      {{1, 0}, {0, 1}, {1, 0.05}, {0.05, 1}, {1, -0.05}, {-0.05, 1}});
  const part::Ordering o = melo_order_vectors(inst, MeloOrderingOptions{});
  // First three selections must be one aligned group.
  std::set<graph::NodeId> first(o.begin(), o.begin() + 3);
  const std::set<graph::NodeId> x_group{0, 2, 4};
  const std::set<graph::NodeId> y_group{1, 3, 5};
  EXPECT_TRUE(first == x_group || first == y_group);
}

TEST(MeloOrder, LazyRankingIsPermutationAndClose) {
  const graph::Hypergraph h = planted(120, 4, 3);
  MeloOptions exact = MeloOptions{};
  exact.num_eigenvectors = 8;
  MeloOptions lazy = exact;
  lazy.lazy_ranking = true;
  const auto runs_exact = melo_orderings(h, exact);
  const auto runs_lazy = melo_orderings(h, lazy);
  EXPECT_TRUE(part::is_permutation(runs_lazy[0].ordering, h.num_nodes()));
  // Quality sanity: the lazy ordering's best ratio-cut split is within 3x
  // of the exact one's (normally they are near-identical).
  const double r_exact =
      part::best_ratio_cut_split(h, runs_exact[0].ordering).objective;
  const double r_lazy =
      part::best_ratio_cut_split(h, runs_lazy[0].ordering).objective;
  EXPECT_LT(r_lazy, 3.0 * r_exact + 1e-12);
}

TEST(MeloOrder, ReadjustCallbackFiresOnce) {
  const VectorInstance inst = make_instance(
      {{1, 0}, {0.5, 0.5}, {0, 1}, {1, 1}, {0.3, 0.7}, {0.9, 0.2}});
  int calls = 0;
  MeloReadjust readjust;
  readjust.at = 3;
  readjust.rebuild = [&](const std::vector<graph::NodeId>& chosen) {
    ++calls;
    EXPECT_EQ(chosen.size(), 3u);
    return inst;  // identity rebuild
  };
  const part::Ordering o =
      melo_order_vectors(inst, MeloOrderingOptions{}, &readjust);
  EXPECT_TRUE(part::is_permutation(o, 6));
  EXPECT_EQ(calls, 1);
}

TEST(MeloOrder, DeterministicForSameInputs) {
  const graph::Hypergraph h = planted(80, 3, 5);
  MeloOptions opts;
  const auto a = melo_orderings(h, opts);
  const auto b = melo_orderings(h, opts);
  EXPECT_EQ(a[0].ordering, b[0].ordering);
}

TEST(MeloDrivers, BipartitionValidAndBalanced) {
  const graph::Hypergraph h = planted(150, 2, 7);
  MeloOptions opts;
  const MeloBipartitionResult r = melo_bipartition(h, opts, 0.45);
  const std::size_t n = h.num_nodes();
  EXPECT_GE(r.partition.cluster_size(0), static_cast<std::size_t>(0.45 * n));
  EXPECT_GE(r.partition.cluster_size(1), static_cast<std::size_t>(0.45 * n));
  EXPECT_DOUBLE_EQ(r.cut, part::cut_nets(h, r.partition));
}

TEST(MeloDrivers, BeatsOrMatchesSbOnPlanted) {
  // The headline claim, in miniature: MELO (d = 10) should not lose to SB
  // on balanced (45-55%) min-cut bipartitioning. The advantage shows on
  // realistically noisy netlists (the suite's parameter regime), not on
  // tiny perfectly-separable toys where every method finds the same cut.
  graph::GeneratorConfig cfg;
  cfg.num_modules = 800;
  cfg.num_nets = 740;
  cfg.num_clusters = 6;
  cfg.subclusters_per_cluster = 3;
  cfg.seed = 0x1001;  // the suite's "balu"
  const graph::Hypergraph h = graph::generate_netlist(cfg);
  MeloOptions opts;
  opts.num_eigenvectors = 10;
  opts.num_starts = 3;
  const MeloBipartitionResult melo = melo_bipartition(h, opts, 0.45);
  spectral::SbOptions sb_opts;
  sb_opts.min_fraction = 0.45;
  const spectral::SbResult sb = spectral::spectral_bipartition(h, sb_opts);
  const double sb_cut = part::cut_nets(h, sb.partition);
  EXPECT_LE(melo.cut, sb_cut * 1.02 + 1e-12);
}

TEST(MeloDrivers, MultiwayProducesKClusters) {
  const graph::Hypergraph h = planted(160, 4, 13);
  MeloOptions opts;
  for (std::uint32_t k : {2u, 4u, 6u}) {
    const MeloMultiwayResult r = melo_multiway(h, k, opts);
    EXPECT_EQ(r.partition.k(), k);
    EXPECT_EQ(r.partition.num_nonempty(), k);
    EXPECT_NEAR(r.scaled_cost, part::scaled_cost(h, r.partition), 1e-12);
  }
}

TEST(MeloDrivers, MultiStartNeverWorse) {
  const graph::Hypergraph h = planted(120, 3, 17);
  MeloOptions one;
  one.num_starts = 1;
  MeloOptions many = one;
  many.num_starts = 4;
  const double r1 = melo_bipartition(h, one).ratio_cut;
  const double r4 = melo_bipartition(h, many).ratio_cut;
  EXPECT_LE(r4, r1 + 1e-12);
}

TEST(MeloDrivers, HOverrideRespected) {
  const graph::Hypergraph h = planted(60, 2, 19);
  MeloOptions opts;
  opts.h_override = 1e6;  // enormous H: all coordinates scale up together
  const auto runs = melo_orderings(h, opts);
  EXPECT_DOUBLE_EQ(runs[0].h_initial, 1e6);
  EXPECT_DOUBLE_EQ(runs[0].h_final, 1e6);  // no readjustment with override
}

TEST(MeloDrivers, ReadjustChangesH) {
  const graph::Hypergraph h = planted(100, 2, 23);
  MeloOptions opts;
  opts.readjust_h = true;
  const auto runs = melo_orderings(h, opts);
  // h_final was recomputed (readjusted_h rarely equals the a-priori mean).
  EXPECT_NE(runs[0].h_initial, runs[0].h_final);
  EXPECT_GE(runs[0].h_final, 0.0);
}

TEST(MeloDrivers, RejectsDegenerateInputs) {
  graph::Hypergraph tiny(1, {});
  EXPECT_THROW(melo_bipartition(tiny, MeloOptions{}), Error);
  // num_eigenvectors == 0 is no longer degenerate: it selects d
  // automatically from the spectral gap (at least 2 columns).
  const graph::Hypergraph h = planted(20, 2, 29);
  MeloOptions opts;
  opts.num_eigenvectors = 0;
  const MeloBipartitionResult r = melo_bipartition(h, opts);
  EXPECT_GE(r.eigenvectors_used, 2u);
}

TEST(MeloDrivers, DEqualsNStillWorks) {
  const graph::Hypergraph h = planted(40, 2, 31);
  MeloOptions opts;
  opts.num_eigenvectors = 40;
  opts.solver.dense_threshold = 100;
  const MeloBipartitionResult r = melo_bipartition(h, opts);
  EXPECT_TRUE(part::is_permutation(r.ordering, 40));
  // With all n eigenvectors, each scaling family must still order validly.
  for (CoordScaling sc : {CoordScaling::kGap, CoordScaling::kInvSqrtLambda,
                          CoordScaling::kUnit}) {
    MeloOptions o2 = opts;
    o2.scaling = sc;
    EXPECT_TRUE(
        part::is_permutation(melo_bipartition(h, o2).ordering, 40))
        << coord_scaling_name(sc);
  }
}

}  // namespace
}  // namespace specpart::core
