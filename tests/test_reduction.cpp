// Tests for the paper's central theory: the reduction from graph
// partitioning to vector partitioning.
//
// These are executable versions of the paper's results:
//  * Theorem 1:    f(P_k) = trace(X^T Q X)
//  * Corollary:    with all n eigenvectors, sum_h ||Y_h||^2 = nH - f(P_k)
//  * Corollary 6:  ||y_i^n||^2 = deg(v_i)
//  * dual form:    sum_h ||Z_h||^2 = f(P_k) for z_i[j] = sqrt(lambda_j) mu_j(i)
//  * exactness of optimum: max-sum vector partitioning at d = n recovers a
//    minimum-cut partition (checked by exhaustive enumeration).
#include <gtest/gtest.h>

#include <cmath>

#include "core/reduction.h"
#include "core/vecpart.h"
#include "graph/graph.h"
#include "graph/laplacian.h"
#include "part/objectives.h"
#include "spectral/embedding.h"
#include "util/rng.h"

namespace specpart::core {
namespace {

graph::Graph random_connected_graph(std::size_t n, std::size_t extra,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (std::size_t v = 1; v < n; ++v)
    edges.push_back({static_cast<graph::NodeId>(rng.next_below(v)),
                     static_cast<graph::NodeId>(v), 0.5 + rng.next_double()});
  for (std::size_t e = 0; e < extra; ++e) {
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    const auto v = static_cast<graph::NodeId>(rng.next_below(n));
    if (u != v) edges.push_back({u, v, 0.5 + rng.next_double()});
  }
  return graph::Graph(n, edges);
}

spectral::EigenBasis full_basis(const graph::Graph& g) {
  spectral::EmbeddingOptions opts;
  opts.count = g.num_nodes();
  opts.solver.dense_threshold = 10000;  // exact dense solve
  return spectral::compute_eigenbasis(g, opts);
}

part::Partition random_partition(std::size_t n, std::uint32_t k,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> a(n);
  for (auto& c : a) c = static_cast<std::uint32_t>(rng.next_below(k));
  return part::Partition(a, k);
}

class ReductionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(ReductionSweep, FullBasisIdentity) {
  const auto [n, k] = GetParam();
  const graph::Graph g = random_connected_graph(n, 2 * n, 50 + n + k);
  const spectral::EigenBasis basis = full_basis(g);
  const double h_const = default_h(basis);  // = lambda_n at d = n
  const VectorInstance inst = build_max_sum_instance(basis, h_const);

  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    const part::Partition p = random_partition(n, k, 900 + trial);
    const double f = part::paper_f(g, p);
    const double g_sum = sum_of_squared_magnitudes(inst, p);
    // sum_h ||Y_h||^2 = n H - f(P_k)
    EXPECT_NEAR(g_sum, static_cast<double>(n) * h_const - f,
                1e-7 * (1.0 + std::fabs(f)))
        << "n=" << n << " k=" << k << " trial=" << trial;
  }
}

TEST_P(ReductionSweep, MinSumDualIdentity) {
  const auto [n, k] = GetParam();
  const graph::Graph g = random_connected_graph(n, 2 * n, 70 + n + k);
  const spectral::EigenBasis basis = full_basis(g);
  const VectorInstance inst = build_min_sum_instance(basis);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    const part::Partition p = random_partition(n, k, 300 + trial);
    EXPECT_NEAR(sum_of_squared_magnitudes(inst, p), part::paper_f(g, p),
                1e-7 * (1.0 + part::paper_f(g, p)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndK, ReductionSweep,
    ::testing::Combine(::testing::Values<std::size_t>(6, 10, 16, 24),
                       ::testing::Values<std::uint32_t>(2, 3, 5)));

TEST(Reduction, Corollary6VectorNormsAreDegrees) {
  const graph::Graph g = random_connected_graph(14, 20, 123);
  const spectral::EigenBasis basis = full_basis(g);
  // Corollary 6 concerns the H-free part: ||y_i^n||^2 with the sqrt(H - l)
  // scaling equals H - contribution... The cleanest executable form uses
  // the min-sum vectors: ||z_i^n||^2 = deg(v_i).
  const VectorInstance z = build_min_sum_instance(basis);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(linalg::norm_sq(z.vectors.row(v)), g.degree(v),
                1e-8 * (1.0 + g.degree(v)))
        << "vertex " << v;
  }
  // And the max-sum vectors obey ||y_i^n||^2 = H - deg(v_i) + ... actually
  // ||y_i||^2 = sum_j (H - lambda_j) mu_j(i)^2 = H * 1 - deg(v_i) since
  // rows of the eigenvector matrix are unit vectors.
  const double h_const = default_h(basis);
  const VectorInstance y = build_max_sum_instance(basis, h_const);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(linalg::norm_sq(y.vectors.row(v)), h_const - g.degree(v),
                1e-8 * (1.0 + h_const));
  }
}

TEST(Reduction, MaxSumOptimumIsMinCut) {
  // Exhaustive check of Corollary 5's reduction on a small graph with a
  // balance constraint: the max-sum optimum over balanced bipartitions is
  // exactly the min-cut balanced bipartition.
  const std::size_t n = 8;
  const graph::Graph g = random_connected_graph(n, 10, 321);
  const spectral::EigenBasis basis = full_basis(g);
  const VectorInstance inst = build_max_sum_instance(basis, default_h(basis));

  const part::Partition best_vp = solve_max_sum_exact(inst, 2, 4, 4);
  const double vp_cut = part::paper_f(g, best_vp);

  // Brute force the min-cut balanced bipartition directly.
  double min_cut = 1e300;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != 4) continue;
    std::vector<std::uint32_t> a(n);
    for (std::size_t i = 0; i < n; ++i) a[i] = (mask >> i) & 1u;
    min_cut = std::min(min_cut, part::paper_f(g, part::Partition(a, 2)));
  }
  EXPECT_NEAR(vp_cut, min_cut, 1e-6);
}

TEST(Reduction, DefaultHFullBasisIsLambdaMax) {
  const graph::Graph g = random_connected_graph(10, 15, 77);
  const spectral::EigenBasis basis = full_basis(g);
  EXPECT_NEAR(default_h(basis), basis.values.back(), 1e-12);
}

TEST(Reduction, DefaultHTruncatedIsUnusedMean) {
  const graph::Graph g = random_connected_graph(12, 18, 88);
  const spectral::EigenBasis full = full_basis(g);
  spectral::EmbeddingOptions opts;
  opts.count = 4;
  opts.solver.dense_threshold = 10000;
  const spectral::EigenBasis trunc = spectral::compute_eigenbasis(g, opts);
  double unused = 0.0;
  for (std::size_t j = 4; j < 12; ++j) unused += full.values[j];
  EXPECT_NEAR(default_h(trunc), unused / 8.0, 1e-8);
  EXPECT_GE(default_h(trunc), trunc.values.back() - 1e-12);
}

TEST(Reduction, ReadjustedHMatchesExactAlphaWeights) {
  // readjusted_h computes the alpha^2-weighted mean of the *unused*
  // eigenvalues without ever seeing them. Verify against the full basis.
  const std::size_t n = 14;
  const std::size_t d = 5;
  const graph::Graph g = random_connected_graph(n, 25, 99);
  const spectral::EigenBasis full = full_basis(g);
  spectral::EmbeddingOptions opts;
  opts.count = d;
  opts.solver.dense_threshold = 10000;
  const spectral::EigenBasis trunc = spectral::compute_eigenbasis(g, opts);

  const std::vector<graph::NodeId> cluster{0, 2, 3, 7, 9};
  std::vector<std::uint32_t> a(n, 1);
  for (graph::NodeId v : cluster) a[v] = 0;
  const part::Partition p(a, 2);
  const double degree = part::cluster_degrees(g, p)[0];

  // Exact weighted mean from the full spectrum.
  double num = 0.0, den = 0.0;
  for (std::size_t j = d; j < n; ++j) {
    double alpha = 0.0;
    for (graph::NodeId v : cluster) alpha += full.vectors.at(v, j);
    num += full.values[j] * alpha * alpha;
    den += alpha * alpha;
  }
  ASSERT_GT(den, 1e-9);
  const double expected = num / den;
  EXPECT_NEAR(readjusted_h(trunc, cluster, degree), expected,
              1e-6 * (1.0 + expected));
}

TEST(Reduction, TruncatedApproximationErrorShrinksWithD) {
  // The defining claim of the title: the truncation error of the identity
  // nH - f = sum ||Y_h||^2 decreases (weakly) as d grows.
  // With H fixed at lambda_max the error sum_{j>d} (H - lambda_j) alpha^2
  // is a sum of non-negative terms, so it is monotone non-increasing in d.
  const std::size_t n = 20;
  const graph::Graph g = random_connected_graph(n, 40, 555);
  const part::Partition p = random_partition(n, 2, 808);
  const double f = part::paper_f(g, p);
  const double h_fixed = full_basis(g).values.back();

  double prev_err = 1e300;
  for (std::size_t d : {2u, 5u, 10u, 15u, 20u}) {
    spectral::EmbeddingOptions opts;
    opts.count = d;
    opts.solver.dense_threshold = 10000;
    const spectral::EigenBasis basis = spectral::compute_eigenbasis(g, opts);
    const VectorInstance inst = build_max_sum_instance(basis, h_fixed);
    const double err = std::fabs(sum_of_squared_magnitudes(inst, p) -
                                 (static_cast<double>(n) * h_fixed - f));
    EXPECT_LE(err, prev_err + 1e-7) << "d=" << d;
    prev_err = err;
    if (d == 20) {
      EXPECT_NEAR(err, 0.0, 1e-7);
    }
  }
}

}  // namespace
}  // namespace specpart::core
