// Golden-value regression tests.
//
// Every randomized component of the library is seeded, so whole-pipeline
// outputs are deterministic. These tests pin concrete values measured on
// the quarter-scale suite; an unintended behavior change anywhere in the
// stack (generator, net model, eigensolver, greedy, splitter, FM) shows up
// here even if all the invariant-based tests still pass. If a change is
// INTENTIONAL, re-measure and update the constants (and mention it in the
// commit message).
#include <gtest/gtest.h>

#include "core/drivers.h"
#include "exp/suite.h"
#include "part/fm.h"
#include "part/objectives.h"
#include "spectral/rsb.h"
#include "spectral/sb.h"

namespace specpart {
namespace {

struct Golden {
  const char* name;
  std::size_t nodes;
  std::size_t nets;
  std::size_t pins;
  double sb_cut;
  double melo_cut;
  double fm_cut;
  double rsb_scaled_cost;
};

// Measured at suite scale 0.25, limit 3, default seeds (2026-07).
constexpr Golden kGolden[] = {
    {"balu", 200, 198, 559, 22, 19, 18, 0.001592},
    {"bm1", 221, 239, 656, 29, 34, 24, 0.001040},
    {"prim1", 208, 233, 661, 23, 26, 20, 0.001516},
};

class GoldenValues : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenValues, GeneratorStatisticsPinned) {
  const Golden g = GetParam();
  const auto suite = exp::paper_suite(0.25, 3);
  const graph::Hypergraph h = exp::load(exp::find_benchmark(suite, g.name));
  EXPECT_EQ(h.num_nodes(), g.nodes);
  EXPECT_EQ(h.num_nets(), g.nets);
  EXPECT_EQ(h.num_pins(), g.pins);
}

TEST_P(GoldenValues, SbCutPinned) {
  const Golden g = GetParam();
  const auto suite = exp::paper_suite(0.25, 3);
  const graph::Hypergraph h = exp::load(exp::find_benchmark(suite, g.name));
  spectral::SbOptions opts;
  opts.min_fraction = 0.45;
  const auto r = spectral::spectral_bipartition(h, opts);
  EXPECT_DOUBLE_EQ(part::cut_nets(h, r.partition), g.sb_cut);
}

TEST_P(GoldenValues, MeloCutPinned) {
  const Golden g = GetParam();
  const auto suite = exp::paper_suite(0.25, 3);
  const graph::Hypergraph h = exp::load(exp::find_benchmark(suite, g.name));
  const auto r = core::melo_bipartition(h, core::MeloOptions{}, 0.45);
  EXPECT_DOUBLE_EQ(r.cut, g.melo_cut);
}

TEST_P(GoldenValues, FmCutPinned) {
  const Golden g = GetParam();
  const auto suite = exp::paper_suite(0.25, 3);
  const graph::Hypergraph h = exp::load(exp::find_benchmark(suite, g.name));
  const auto r = part::fm_bipartition(h, part::FmOptions{});
  EXPECT_DOUBLE_EQ(r.cut, g.fm_cut);
}

TEST_P(GoldenValues, RsbScaledCostPinned) {
  const Golden g = GetParam();
  const auto suite = exp::paper_suite(0.25, 3);
  const graph::Hypergraph h = exp::load(exp::find_benchmark(suite, g.name));
  const auto p = spectral::rsb_partition(h, 4, spectral::RsbOptions{});
  EXPECT_NEAR(part::scaled_cost(h, p), g.rsb_scaled_cost, 5e-7);
}

INSTANTIATE_TEST_SUITE_P(QuarterScaleSuite, GoldenValues,
                         ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace specpart
